#!/usr/bin/env python3
"""Mechanical style gate for the whole tree.

Checks every C++ source for the rules that never depend on a formatter
version: no tab indentation, no trailing whitespace, no CRLF line
endings, exactly one trailing newline. CI runs this as a hard gate
(the clang-format job covers layout on changed files).

Exit code 0 when clean; 1 with one line per violation otherwise.
"""

import glob
import sys

PATTERNS = [
    "src/**/*.cc",
    "src/**/*.h",
    "tests/*.cc",
    "bench/*.cc",
    "bench/*.h",
    "examples/*.cpp",
]


def check_file(path: str) -> list:
    problems = []
    with open(path, "rb") as f:
        raw = f.read()
    if b"\r" in raw:
        problems.append(f"{path}: CRLF line endings")
    if raw and not raw.endswith(b"\n"):
        problems.append(f"{path}: missing trailing newline")
    if raw.endswith(b"\n\n"):
        problems.append(f"{path}: multiple trailing newlines")
    for i, line in enumerate(raw.split(b"\n"), start=1):
        if b"\t" in line:
            problems.append(f"{path}:{i}: tab character")
        if line != line.rstrip():
            problems.append(f"{path}:{i}: trailing whitespace")
    return problems


def main() -> int:
    files = sorted({f for p in PATTERNS for f in glob.glob(p, recursive=True)})
    if not files:
        print("check_style: no sources found (run from the repo root)")
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(
        f"check_style: {len(files)} files, "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
