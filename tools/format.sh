#!/usr/bin/env bash
# Formats the tree with the project .clang-format (or checks it with
# --check). CI pins the same clang-format version (see ci.yml) and
# checks the files a PR touches.
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
MODE="${1:---fix}"

mapfile -t files < <(find src tests bench examples \
  -name '*.cc' -o -name '*.h' -o -name '*.cpp')

if [[ "$MODE" == "--check" ]]; then
  "$CLANG_FORMAT" --dry-run -Werror "${files[@]}"
else
  "$CLANG_FORMAT" -i "${files[@]}"
fi
