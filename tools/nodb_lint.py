#!/usr/bin/env python3
"""Project-invariant linter for the whole tree (hard CI gate).

Grown from the old check_style.py whitespace gate into the enforcement
point for the project's C++ invariants — the ones a formatter or a
generic linter cannot know:

  style            no tabs, no CRLF, no trailing whitespace, exactly
                   one trailing newline
  naked-lock       .lock()/.unlock()/.try_lock() calls outside the
                   RAII guards in src/util/mutex.h; every acquisition
                   must be a guard object the thread-safety analysis
                   can see
  std-mutex        std::mutex / std::lock_guard / std::unique_lock and
                   friends outside src/util/mutex.h; all locking goes
                   through the CAPABILITY-annotated wrappers
  raw-new          owning `new` not immediately handed to a smart
                   pointer (the function-local static leak idiom is
                   allowed), and any `delete` expression
  banned-fn        sprintf / rand / strtok (unbounded, non-reentrant,
                   or statistically unsound — snprintf, util/random.h
                   and manual tokenizing replace them)
  mutex-guard      a Mutex/SharedMutex member in a src/ header whose
                   name never appears in a GUARDED_BY/REQUIRES/ACQUIRE
                   cluster in that header guards nothing the analysis
                   can check
  nolint-form      NOLINT must name the check and give a reason:
                   `NOLINT(check): reason` / `NOLINTNEXTLINE(check): reason`
  ntsa-reason      NO_THREAD_SAFETY_ANALYSIS needs a nearby
                   `NO_THREAD_SAFETY_ANALYSIS: <why>` comment
  void-discard     `(void)Call(...)` discards need a nearby comment
                   saying why dropping the result is correct
  header-guard     headers carry a NODB_*_H_ include guard (or
                   #pragma once)
  include-order    contiguous runs of same-kind #include lines are
                   sorted
  generation-tag   DropBlocksFrom / component Clear() call sites must
                   say, in a nearby comment, how stale producers are
                   fenced (the generation-tag story)
  isa-sibling      every `#if NODB_HAVE_AVX2`-style ISA-gated branch
                   must have a scalar sibling: an #else in the chain,
                   or a scalar fallback (named in code or comment)
                   within reach of its #endif — no kernel may exist
                   only in SIMD form
  span-name        trace span names at OpenSpan/EmitSpan/ScopedSpan
                   call sites follow the `component.verb` taxonomy
                   with a known component (query, scan, exec, cache,
                   map, store, persist, promoter, pool, snapshot) so
                   traces stay greppable and dashboards stay stable
  server-seam      src/server/ talks to the engine only through its
                   public seams (engines/, obs/, monitor/, types/,
                   util/ plus the streaming/cancel/config headers);
                   including scan, store, cache, SQL or persistence
                   internals from the wire layer is a layering bug

Exit code 0 when clean; 1 with one line per violation otherwise.
"""

import glob
import os
import re
import sys

PATTERNS = [
    "src/**/*.cc",
    "src/**/*.h",
    "tests/**/*.cc",
    "bench/*.cc",
    "bench/*.h",
    "examples/*.cpp",
]

# Files implementing the RAII guards themselves: the one place raw
# std primitives and .lock()/.unlock() calls are legitimate.
MUTEX_IMPL_FILES = {"src/util/mutex.h"}

NAKED_LOCK_RE = re.compile(
    r"\.\s*(?:lock|unlock|try_lock|lock_shared|unlock_shared)\s*\(")
STD_MUTEX_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")
NEW_RE = re.compile(r"\bnew\b")
DELETE_RE = re.compile(r"\bdelete\b")
BANNED_FN_RE = re.compile(r"\b(sprintf|strtok|rand)\s*\(")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:nodb::)?(?:Mutex|SharedMutex)\s+"
    r"([A-Za-z_]\w*)\s*(?:ACQUIRED_(?:BEFORE|AFTER)\([^)]*\)\s*)?;")
NOLINT_RE = re.compile(r"NOLINT\w*")
NOLINT_FORM_RE = re.compile(r"NOLINT(?:NEXTLINE)?\([\w\-,. ]+\): \S")
VOID_DISCARD_RE = re.compile(r"^\s*\(void\)\s*[\w:]+(?:\.\w+|->\w+)*\s*\(")
DROP_CALL_RE = re.compile(r"\.\s*DropBlocksFrom\s*\(|\w+_\.\s*Clear\s*\(")
ISA_MACRO_RE = re.compile(r"\bNODB_HAVE_[A-Z0-9_]+\b")
INCLUDE_RE = re.compile(r'^#include\s+(["<])([^">]+)[">]')
SPAN_CALL_RE = re.compile(r"\b(?:OpenSpan|EmitSpan|ScopedSpan)\s*\(")
SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$")
SPAN_COMPONENTS = {"query", "scan", "exec", "cache", "map", "store",
                   "persist", "promoter", "pool", "snapshot"}
# The tracer implementation itself (declarations, not span sites).
SPAN_IMPL_FILES = {"src/obs/trace.h", "src/obs/trace.cc"}

# The server front end is a client of the engine, not part of it: it
# may use the engine facade, observability, shared plumbing, and the
# handful of headers that *are* the public execution seam — nothing
# below that (no scan/store/cache/SQL/persistence internals).
SERVER_ALLOWED_PREFIXES = ("server/", "engines/", "obs/", "monitor/",
                           "types/", "util/")
SERVER_ALLOWED_HEADERS = {
    "exec/cancel.h",        # cooperative per-query cancel tokens
    "exec/operator.h",      # BatchSink, the streaming seam
    "exec/query_result.h",  # result container + Drain
    "raw/nodb_config.h",    # server_* knobs live in the shared config
}


def strip_comments_and_strings(lines):
    """Returns a per-line copy with comments and literals blanked."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            c = line[i]
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                res.append(quote + quote)
                continue
            res.append(c)
            i += 1
        out.append("".join(res))
    return out


def has_nearby_comment(lines, idx, needle=None, back=6):
    """True if a comment (optionally containing `needle`) sits on the
    line itself or within `back` lines above it."""
    for j in range(idx, max(-1, idx - back - 1), -1):
        line = lines[j]
        pos = line.find("//")
        if pos < 0 and j != idx:
            # A non-comment line above the site ends the search unless
            # it is the flagged line itself.
            if j != idx and line.strip() and "*/" not in line and \
                    not line.strip().startswith("*") and \
                    not line.strip().startswith("/*"):
                if j < idx:
                    break
            continue
        comment = line[pos:] if pos >= 0 else line
        if needle is None or needle in comment:
            return True
    return False


def check_style(path, raw, problems):
    if b"\r" in raw:
        problems.append(f"{path}: [style] CRLF line endings")
    if raw and not raw.endswith(b"\n"):
        problems.append(f"{path}: [style] missing trailing newline")
    if raw.endswith(b"\n\n"):
        problems.append(f"{path}: [style] multiple trailing newlines")
    for i, line in enumerate(raw.split(b"\n"), start=1):
        if b"\t" in line:
            problems.append(f"{path}:{i}: [style] tab character")
        if line != line.rstrip():
            problems.append(f"{path}:{i}: [style] trailing whitespace")


def check_locking(path, code, problems):
    if path in MUTEX_IMPL_FILES:
        return
    for i, line in enumerate(code, start=1):
        if NAKED_LOCK_RE.search(line):
            problems.append(
                f"{path}:{i}: [naked-lock] direct lock()/unlock() call; "
                "use the RAII guards in util/mutex.h")
        if STD_MUTEX_RE.search(line):
            problems.append(
                f"{path}:{i}: [std-mutex] raw std locking primitive; "
                "use the annotated wrappers in util/mutex.h")


def check_new_delete(path, code, problems):
    allow = ("unique_ptr", "shared_ptr", "OperatorPtr(", "static ",
             "make_unique", "make_shared")
    for i, line in enumerate(code, start=1):
        if NEW_RE.search(line):
            context = (code[i - 2] if i >= 2 else "") + line
            if not any(tok in context for tok in allow):
                problems.append(
                    f"{path}:{i}: [raw-new] owning `new` outside a smart "
                    "pointer; use std::make_unique/make_shared")
        for m in DELETE_RE.finditer(line):
            before = line[:m.start()].rstrip()
            if before.endswith("="):
                continue  # deleted special member
            problems.append(
                f"{path}:{i}: [raw-delete] `delete` expression; owning "
                "pointers must be smart pointers")


def check_banned_fns(path, code, problems):
    for i, line in enumerate(code, start=1):
        m = BANNED_FN_RE.search(line)
        if m:
            problems.append(
                f"{path}:{i}: [banned-fn] {m.group(1)}() is banned "
                "(use snprintf / util/random.h / manual tokenizing)")


def check_mutex_members(path, code, problems):
    if not path.startswith("src/") or not path.endswith(".h"):
        return
    if path in MUTEX_IMPL_FILES:
        return
    joined = "\n".join(code)
    for i, line in enumerate(code, start=1):
        m = MUTEX_MEMBER_RE.match(line)
        if not m:
            continue
        name = m.group(1)
        cluster = re.compile(
            r"(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|"
            r"ACQUIRE|ACQUIRE_SHARED|EXCLUDES|RETURN_CAPABILITY)"
            r"\([^)]*\b" + re.escape(name) + r"\b")
        if not cluster.search(joined):
            problems.append(
                f"{path}:{i}: [mutex-guard] mutex member {name} has no "
                "GUARDED_BY/REQUIRES cluster in this header")


def check_nolint(path, lines, problems):
    for i, line in enumerate(lines, start=1):
        if NOLINT_RE.search(line) and not NOLINT_FORM_RE.search(line):
            problems.append(
                f"{path}:{i}: [nolint-form] NOLINT without check name "
                "and reason; use NOLINT(check): reason")


def check_ntsa(path, lines, problems):
    if path.endswith("util/thread_annotations.h"):
        return
    for i, line in enumerate(lines, start=1):
        if "NO_THREAD_SAFETY_ANALYSIS" not in line:
            continue
        if line.lstrip().startswith("//") or line.lstrip().startswith("*"):
            continue
        if not has_nearby_comment(lines, i - 1,
                                  needle="NO_THREAD_SAFETY_ANALYSIS:"):
            problems.append(
                f"{path}:{i}: [ntsa-reason] NO_THREAD_SAFETY_ANALYSIS "
                "without a nearby `NO_THREAD_SAFETY_ANALYSIS: <why>` "
                "comment")


def check_void_discards(path, lines, code, problems):
    for i, line in enumerate(code, start=1):
        if not VOID_DISCARD_RE.match(line):
            continue
        if not has_nearby_comment(lines, i - 1):
            problems.append(
                f"{path}:{i}: [void-discard] discarded call result "
                "without a comment saying why dropping it is correct")


def check_header_guard(path, lines, problems):
    if not path.endswith(".h"):
        return
    text = "\n".join(lines)
    if "#pragma once" in text:
        return
    if re.search(r"#ifndef NODB_\w+_H_", text) and \
            re.search(r"#define NODB_\w+_H_", text):
        return
    problems.append(
        f"{path}: [header-guard] missing NODB_*_H_ include guard "
        "(or #pragma once)")


def check_include_order(path, lines, problems):
    run_kind = None
    run = []
    run_start = 0

    def flush():
        if len(run) > 1 and run != sorted(run):
            problems.append(
                f"{path}:{run_start}: [include-order] includes not "
                "sorted within their block")

    for i, line in enumerate(lines, start=1):
        m = INCLUDE_RE.match(line)
        if m:
            kind = m.group(1)
            if kind != run_kind:
                flush()
                run_kind, run, run_start = kind, [], i
            run.append(m.group(2))
        else:
            flush()
            run_kind, run = None, []
    flush()


def check_generation_tags(path, lines, code, problems):
    if not path.startswith("src/"):
        return
    for i, line in enumerate(code, start=1):
        if not DROP_CALL_RE.search(line):
            continue
        # Skip declarations/definitions of the methods themselves.
        if re.search(r"(?:void|Status)\s+\w*(?:::)?(?:DropBlocksFrom|"
                     r"Clear)\s*\(", line):
            continue
        lo = max(0, i - 11)
        hi = min(len(lines), i + 4)
        window = "\n".join(lines[lo:hi])
        if "generation" not in window and "Generation" not in window:
            problems.append(
                f"{path}:{i}: [generation-tag] DropBlocksFrom/Clear "
                "call without a nearby comment on how stale producers "
                "are fenced (generation tags / re-validation)")


def check_isa_siblings(path, lines, problems):
    """Every ISA-gated branch needs a scalar sibling.

    A conditional chain whose #if/#elif condition tests an
    NODB_HAVE_* tier macro either carries an #else (the fallback is
    part of the chain — a `default:` dispatch arm or a scalar
    expression), or names its scalar sibling within the #endif line
    plus the 20 lines after it (a `*Scalar` kernel, a kScalar return,
    or an explicit `(scalar siblings: ...)` note on the #endif). The
    #ifndef defaulting idiom (`#ifndef NODB_HAVE_X` / `#define
    NODB_HAVE_X 0`) is exempt: it *creates* the macro, it does not
    gate a kernel on it.
    """
    stack = []  # [start_line, gates_on_isa_macro, has_else]
    for i, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped.startswith("#"):
            continue
        directive = stripped[1:].lstrip()
        if directive.startswith("ifndef"):
            stack.append([i, False, False])
        elif directive.startswith("if"):  # #if and #ifdef
            stack.append([i, bool(ISA_MACRO_RE.search(directive)), False])
        elif directive.startswith("elif"):
            if stack and ISA_MACRO_RE.search(directive):
                stack[-1][1] = True
        elif directive.startswith("else"):
            if stack:
                stack[-1][2] = True
        elif directive.startswith("endif"):
            if not stack:
                continue
            start, isa, has_else = stack.pop()
            if not isa or has_else:
                continue
            window = "\n".join(lines[i - 1:min(len(lines), i + 20)])
            if "scalar" not in window.lower():
                problems.append(
                    f"{path}:{start}: [isa-sibling] NODB_HAVE_* branch "
                    "with no #else and no scalar sibling near its "
                    "#endif; every ISA tier needs an always-available "
                    "scalar fallback")


def check_span_names(path, lines, code, problems):
    """Span-name literals must be `component.verb` with a known
    component. Dynamic names are checked on their literal component
    prefix (`"exec." + kind`); fully computed names are trusted."""
    if path in SPAN_IMPL_FILES:
        return
    for i, stripped in enumerate(code, start=1):
        m = SPAN_CALL_RE.search(stripped)
        if not m:
            continue
        rest = lines[i - 1][m.start():]
        lit = re.search(r'"([^"]*)"\s*(\+?)', rest)
        if not lit:
            continue  # name passed as a variable: not checkable here
        name, concat = lit.group(1), lit.group(2)
        if concat == "+" and name.endswith("."):
            ok = name[:-1] in SPAN_COMPONENTS
        else:
            ok = bool(SPAN_NAME_RE.match(name)) and \
                name.split(".")[0] in SPAN_COMPONENTS
        if not ok:
            problems.append(
                f"{path}:{i}: [span-name] span name \"{name}\" does not "
                "follow the component.verb taxonomy (components: "
                + ", ".join(sorted(SPAN_COMPONENTS)) + ")")


def check_server_seam(path, lines, problems):
    if not path.startswith("src/server/"):
        return
    for i, line in enumerate(lines, start=1):
        m = INCLUDE_RE.match(line)
        if not m or m.group(1) != '"':
            continue
        header = m.group(2)
        if header.startswith(SERVER_ALLOWED_PREFIXES):
            continue
        if header in SERVER_ALLOWED_HEADERS:
            continue
        problems.append(
            f"{path}:{i}: [server-seam] src/server/ must not include "
            f"\"{header}\"; the front end talks to the engine only "
            "through engines/, obs/, monitor/, types/, util/ and the "
            "public execution seam headers")


def check_file(path):
    problems = []
    with open(path, "rb") as f:
        raw = f.read()
    check_style(path, raw, problems)
    lines = raw.decode("utf-8", errors="replace").split("\n")
    code = strip_comments_and_strings(lines)
    check_locking(path, code, problems)
    check_new_delete(path, code, problems)
    check_banned_fns(path, code, problems)
    check_mutex_members(path, code, problems)
    check_nolint(path, lines, problems)
    check_ntsa(path, lines, problems)
    check_void_discards(path, lines, code, problems)
    check_header_guard(path, lines, problems)
    check_include_order(path, lines, problems)
    check_generation_tags(path, lines, code, problems)
    check_isa_siblings(path, lines, problems)
    check_span_names(path, lines, code, problems)
    check_server_seam(path, lines, problems)
    return problems


def main():
    files = sorted({f for p in PATTERNS for f in glob.glob(p, recursive=True)})
    files = [f.replace(os.sep, "/") for f in files]
    if not files:
        print("nodb_lint: no sources found (run from the repo root)")
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"nodb_lint: {len(files)} files, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
