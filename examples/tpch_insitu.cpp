// In-situ TPC-H: query freshly generated lineitem/orders raw files
// without loading them, including a join, then append "today's" new
// orders and watch the engine pick them up incrementally.

#include <cstdio>

#include "catalog/catalog.h"
#include "datagen/tpch.h"
#include "engines/nodb_engine.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "monitor/panel.h"

using namespace nodb;

namespace {

void Run(NoDbEngine& engine, const char* label, const std::string& sql) {
  auto outcome = engine.Execute(sql);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s: %s\n", label,
                 outcome.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("\n[%s]  %.2f ms\n%s", label, outcome->metrics.total_ns / 1e6,
              outcome->result.ToString(6).c_str());
}

}  // namespace

int main() {
  auto dir = TempDir::Create("nodb-tpch-example");
  if (!dir.ok()) return 1;
  TpchSpec spec;
  spec.scale_factor = 0.005;
  std::string li = dir->FilePath("lineitem.tbl");
  std::string ord = dir->FilePath("orders.tbl");
  if (!GenerateTpchLineitem(li, spec).ok()) return 1;
  if (!GenerateTpchOrders(ord, spec).ok()) return 1;

  Catalog catalog;
  if (!catalog.RegisterTable({"lineitem", li, TpchLineitemSchema(),
                              CsvDialect::Pipe()})
           .ok()) {
    return 1;
  }
  if (!catalog.RegisterTable({"orders", ord, TpchOrdersSchema(),
                              CsvDialect::Pipe()})
           .ok()) {
    return 1;
  }

  NoDbEngine engine(catalog, NoDbConfig());

  Run(engine, "Q1-style pricing summary",
      "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
      "AVG(l_extendedprice) AS avg_price, COUNT(*) AS n FROM lineitem "
      "WHERE l_shipdate <= DATE '1998-08-01' "
      "GROUP BY l_returnflag, l_linestatus "
      "ORDER BY l_returnflag, l_linestatus");

  Run(engine, "Q6-style revenue forecast",
      "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
      "WHERE l_shipdate >= DATE '1994-01-01' "
      "AND l_shipdate < DATE '1995-01-01' "
      "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24");

  Run(engine, "join: urgent orders' lineitems",
      "SELECT o.o_orderpriority, COUNT(*) AS lineitems "
      "FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey "
      "GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority");

  // "New data arrived": append more orders to the raw file directly.
  {
    TpchSpec tail;
    tail.scale_factor = 0.0005;
    tail.seed = 777;
    std::string extra = dir->FilePath("extra.tbl");
    if (!GenerateTpchOrders(extra, tail).ok()) return 1;
    auto content = ReadFileToString(extra);
    if (!content.ok()) return 1;
    auto app = OpenAppendableFile(ord);
    if (!app.ok() || !(*app)->Append(*content).ok() ||
        !(*app)->Close().ok()) {
      return 1;
    }
    std::printf("\n>>> appended %zu bytes of new orders to the raw file "
                "(outside the engine!)\n",
                content->size());
  }

  Run(engine, "count after external append (auto-detected)",
      "SELECT COUNT(*) AS orders_now FROM orders");

  std::printf("\n%s",
              MonitorPanel::RenderTableState(*engine.table_state("lineitem"))
                  .c_str());
  return 0;
}
