// nodb_client: one-shot remote query runner for nodb_server.
//
// Usage:
//   nodb_client --connect HOST:PORT "SELECT ..." ["SELECT ..." ...]
//   nodb_client --connect HOST:PORT --tenant analytics "SELECT ..."
//   echo "SELECT ..." | nodb_client --connect HOST:PORT
//
// Each statement prints its full result followed by the server-side
// timing breakdown, using the same rendering as the shell, so output
// can be diffed against a local run of the same query.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "monitor/panel.h"
#include "server/client.h"
#include "util/string_util.h"

using namespace nodb;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: nodb_client --connect HOST:PORT [--tenant NAME] "
               "[SQL ...]\n       (reads statements from stdin when none "
               "are given)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  std::string tenant = "client";
  std::vector<std::string> statements;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      target = argv[++i];
    } else if (arg == "--tenant" && i + 1 < argc) {
      tenant = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      statements.push_back(std::move(arg));
    }
  }
  size_t colon = target.rfind(':');
  if (target.empty() || colon == std::string::npos) return Usage();
  std::string host = target.substr(0, colon);
  int port = std::atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return Usage();

  if (statements.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      auto trimmed = TrimView(line);
      if (!trimmed.empty()) statements.emplace_back(trimmed);
    }
    if (statements.empty()) return Usage();
  }

  auto conn = server::ClientConnection::Connect(
      host, static_cast<uint16_t>(port), tenant, "nodb_client");
  if (!conn.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 conn.status().ToString().c_str());
    return 1;
  }

  int failures = 0;
  for (const auto& sql : statements) {
    auto outcome = conn->Execute(sql);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      ++failures;
      if (!conn->connected()) return 1;  // transport gone; stop here
      continue;
    }
    // Same rendering as the shell: full result, then the breakdown.
    std::fputs(outcome->result.ToString(25).c_str(), stdout);
    std::fputs(
        MonitorPanel::RenderBreakdown("  time", outcome->metrics).c_str(),
        stdout);
  }
  conn->Close();
  return failures == 0 ? 0 : 1;
}
