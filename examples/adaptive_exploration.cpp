// Adaptive exploration: the demo's Part-II scenario as a library user
// experiences it. A scientist "skims" an unfamiliar wide CSV file:
// exploratory queries move across the attributes, and the engine's
// positional map / cache / statistics follow the workload — visible in
// the monitoring panel after every phase.

#include <cstdio>

#include "catalog/catalog.h"
#include "datagen/synthetic.h"
#include "engines/nodb_engine.h"
#include "io/temp_dir.h"
#include "monitor/panel.h"

using namespace nodb;

namespace {

void RunPhase(NoDbEngine& engine, const char* title,
              const std::vector<std::string>& queries) {
  std::printf("\n##### %s\n", title);
  for (const auto& sql : queries) {
    auto outcome = engine.Execute(sql);
    if (!outcome.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   outcome.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("  %-70s %10.2f ms  (%zu rows)\n", sql.c_str(),
                outcome->metrics.total_ns / 1e6,
                outcome->result.num_rows());
  }
  std::printf("\n%s",
              MonitorPanel::RenderTableState(*engine.table_state("sky"))
                  .c_str());
}

}  // namespace

int main() {
  auto dir = TempDir::Create("nodb-explore");
  if (!dir.ok()) return 1;

  // An astronomy-flavoured file: 80k observations x 24 attributes.
  SyntheticSpec spec;
  spec.num_tuples = 80000;
  spec.num_attributes = 24;
  spec.ints_per_cycle = 2;
  spec.doubles_per_cycle = 1;
  spec.strings_per_cycle = 0;
  spec.dates_per_cycle = 1;
  spec.attribute_width = 10;
  std::string path = dir->FilePath("sky.csv");
  if (!GenerateSyntheticCsv(path, spec, CsvDialect()).ok()) return 1;

  Catalog catalog;
  if (!catalog.RegisterTable({"sky", path, spec.MakeSchema(),
                              CsvDialect()})
           .ok()) {
    return 1;
  }

  NoDbConfig config;
  config.positional_map_budget = 16u << 20;
  config.cache_budget = 32u << 20;
  NoDbEngine engine(catalog, config);

  RunPhase(engine, "phase 1: first contact - what is in this file?",
           {
               "SELECT COUNT(*) FROM sky",
               "SELECT attr0, attr1, attr2 FROM sky LIMIT 5",
           });

  RunPhase(engine,
           "phase 2: drill into the first attribute window (it warms up)",
           {
               "SELECT MIN(attr0) AS lo, MAX(attr0) AS hi FROM sky",
               "SELECT AVG(attr2) AS mean FROM sky WHERE attr0 < 3000000000",
               "SELECT AVG(attr2) AS mean FROM sky WHERE attr0 < 1000000000",
           });

  RunPhase(engine,
           "phase 3: the investigation moves - new attributes, new "
           "structures, old ones age out",
           {
               "SELECT attr16, attr18 FROM sky WHERE attr17 < 1000000000 "
               "LIMIT 10",
               "SELECT COUNT(*) AS flagged FROM sky "
               "WHERE attr18 > 5000000000 AND attr16 < 2000000000",
               "SELECT MAX(attr19) AS latest FROM sky",
           });

  std::printf(
      "\nDone: the engine never loaded the file, yet repeated queries "
      "run at loaded-database speed for the touched attributes.\n");
  return 0;
}
