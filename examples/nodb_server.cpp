// nodb_server: serves raw CSV files over the NoDB wire protocol and
// HTTP, with graceful drain on SIGTERM/SIGINT (or a remote \shutdown).
//
// Usage:
//   nodb_server                                # demo table, port 0
//   nodb_server file.csv ["a:int,b:string"]    # schema inferred if omitted
//   nodb_server --port 7878 file.csv
//
// The bound port is printed on startup (port 0 asks the kernel for an
// ephemeral one). Talk to it with:
//   nodb_shell --connect 127.0.0.1:PORT
//   nodb_client --connect 127.0.0.1:PORT "SELECT ..."
//   curl -d 'SELECT COUNT(*) FROM t' http://127.0.0.1:PORT/query
//   curl http://127.0.0.1:PORT/metrics
//
// On shutdown the server stops accepting, lets in-flight queries finish
// (cancelling stragglers at the drain deadline), saves every table's
// adaptive-state snapshot, and exits 0 — the next start recovers the
// positional map, statistics, zone maps and shadow store instead of
// re-paying the first-touch cost.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "catalog/catalog.h"
#include "csv/schema_inference.h"
#include "datagen/synthetic.h"
#include "engines/nodb_engine.h"
#include "io/temp_dir.h"
#include "server/server.h"
#include "util/string_util.h"

using namespace nodb;

namespace {

Result<std::shared_ptr<Schema>> ParseSchemaSpec(const std::string& spec) {
  std::vector<Field> fields;
  for (const auto& part : SplitString(spec, ',')) {
    auto nv = SplitString(std::string(TrimView(part)), ':');
    if (nv.size() != 2) {
      return Status::InvalidArgument(
          "schema spec must be name:type[,name:type...]; got '" + part +
          "'");
    }
    NODB_ASSIGN_OR_RETURN(DataType type, DataTypeFromString(nv[1]));
    fields.push_back(Field{nv[0], type});
  }
  return Schema::Make(std::move(fields));
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else {
      positional.push_back(argv[i]);
    }
  }

  // SIGTERM/SIGINT are handled by a dedicated sigwait thread, so block
  // them here before any thread is spawned (children inherit the mask
  // and the signal is never delivered asynchronously anywhere).
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGTERM);
  sigaddset(&signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  Catalog catalog;
  std::unique_ptr<TempDir> demo_dir;
  if (positional.size() >= 2) {
    auto schema = ParseSchemaSpec(positional[1]);
    if (!schema.ok()) {
      std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
      return 1;
    }
    Status st =
        catalog.RegisterTable({"t", positional[0], *schema, CsvDialect()});
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  } else if (positional.size() == 1) {
    auto inferred = InferSchema(positional[0], CsvDialect());
    if (!inferred.ok()) {
      std::fprintf(stderr, "%s\n", inferred.status().ToString().c_str());
      return 1;
    }
    Status st = catalog.RegisterTable(
        {"t", positional[0], inferred->schema, inferred->dialect});
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("serving '%s' as table t (%s)\n", positional[0].c_str(),
                inferred->schema->ToString().c_str());
  } else {
    auto dir = TempDir::Create("nodb-server");
    if (!dir.ok()) return 1;
    demo_dir = std::make_unique<TempDir>(std::move(*dir));
    SyntheticSpec spec;
    spec.num_tuples = 20000;
    spec.num_attributes = 8;
    spec.ints_per_cycle = 2;
    spec.strings_per_cycle = 1;
    spec.dates_per_cycle = 1;
    std::string path = demo_dir->FilePath("demo.csv");
    if (!GenerateSyntheticCsv(path, spec, CsvDialect()).ok()) return 1;
    // Cannot fail: the catalog is empty, so "demo" is never a duplicate.
    (void)catalog.RegisterTable(
        {"demo", path, spec.MakeSchema(), CsvDialect()});
    std::printf("no file given; serving demo table 'demo' (%s)\n",
                spec.MakeSchema()->ToString().c_str());
  }

  NoDbConfig config;
  config.server_port = port;
  NoDbEngine engine(catalog, config);
  server::Server server(&engine, config);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("nodb_server listening on 127.0.0.1:%u (SIGTERM or shell "
              "\\shutdown drains)\n",
              server.port());
  std::fflush(stdout);

  std::thread signal_waiter([&signals, &server] {
    int sig = 0;
    if (sigwait(&signals, &sig) == 0) server.RequestShutdown();
  });

  server.Wait();
  Status drained = server.Shutdown();
  if (!drained.ok()) {
    std::fprintf(stderr, "drain: %s\n", drained.ToString().c_str());
  } else {
    std::printf("drained; adaptive state saved\n");
  }
  // The waiter may still be parked in sigwait when shutdown came from
  // a remote \shutdown; poke it with the signal it is waiting for.
  pthread_kill(signal_waiter.native_handle(), SIGTERM);
  signal_waiter.join();
  return drained.ok() ? 0 : 1;
}
