// Quickstart: query a raw CSV file with zero loading.
//
// Demonstrates the core NoDB workflow:
//   1. generate (or point at) a raw CSV file,
//   2. register it in a catalog — no data is touched,
//   3. run SQL immediately; watch response times improve as the
//      positional map and cache adapt.

#include <cstdio>

#include "catalog/catalog.h"
#include "datagen/synthetic.h"
#include "engines/nodb_engine.h"
#include "io/temp_dir.h"
#include "monitor/panel.h"
#include "util/string_util.h"

using namespace nodb;

int main() {
  auto dir = TempDir::Create("nodb-quickstart");
  if (!dir.ok()) {
    std::fprintf(stderr, "temp dir: %s\n", dir.status().ToString().c_str());
    return 1;
  }

  // 1. A raw file: 50,000 tuples x 20 integer attributes.
  SyntheticSpec spec;
  spec.num_tuples = 50000;
  spec.num_attributes = 20;
  spec.attribute_width = 8;
  std::string path = dir->FilePath("events.csv");
  auto bytes = GenerateSyntheticCsv(path, spec, CsvDialect());
  if (!bytes.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 bytes.status().ToString().c_str());
    return 1;
  }
  std::printf("raw file: %s (%s)\n", path.c_str(),
              FormatBytes(*bytes).c_str());

  // 2. Register the file. NoDB touches no data here.
  Catalog catalog;
  Status st = catalog.RegisterTable(
      {"events", path, spec.MakeSchema(), CsvDialect()});
  if (!st.ok()) {
    std::fprintf(stderr, "register: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Query immediately.
  NoDbEngine engine(catalog, NoDbConfig());
  const char* queries[] = {
      "SELECT COUNT(*) FROM events",
      "SELECT attr5, attr10 FROM events WHERE attr5 < 01000000 LIMIT 5",
      "SELECT AVG(attr10) AS avg10, MAX(attr5) AS max5 FROM events "
      "WHERE attr10 >= 00500000",
      // Repeat: the map and cache now serve most of the work.
      "SELECT AVG(attr10) AS avg10, MAX(attr5) AS max5 FROM events "
      "WHERE attr10 >= 00500000",
  };
  for (const char* sql : queries) {
    auto outcome = engine.Execute(sql);
    if (!outcome.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("\n> %s\n%s", sql, outcome->result.ToString(5).c_str());
    std::printf("%s", MonitorPanel::RenderBreakdown(
                          "  cost", outcome->metrics)
                          .c_str());
  }

  std::printf("\n%s\n",
              MonitorPanel::RenderTableState(*engine.table_state("events"))
                  .c_str());
  return 0;
}
