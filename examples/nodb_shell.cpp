// nodb_shell: an interactive SQL shell over raw CSV files.
//
// Usage:
//   nodb_shell                      # starts with a demo table
//   nodb_shell file.csv "a:int,b:string,c:date" [delimiter]
//   nodb_shell --connect HOST:PORT [TENANT]   # remote nodb_server mode
//
// Meta-commands:
//   \open NAME PATH SCHEMA [DELIM]  register a raw file as a table
//   \tables                         list registered tables
//   \panel [TABLE]                  show the monitoring panel
//   \tiers [TABLE]                  per-table storage-tier report
//   \explain SQL                    show the (adaptive) query plan
//   \save [TABLE]                   persist adaptive state (.nodbmeta)
//   \restore [TABLE]                recover adaptive state from sidecar
//   \baseline on|off                toggle map+cache+stats+store
//   \timing on|off                  per-query breakdown line
//   \metrics [prom]                 engine-wide metrics registry dump
//   \trace on|off [PATH]            per-query trace spans (JSONL export)
//   \help  \quit
//
// Every other line is executed as SQL. Runs fine non-interactively:
// pipe SQL in, one statement per line.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "catalog/catalog.h"
#include "csv/schema_inference.h"
#include "datagen/synthetic.h"
#include "engines/nodb_engine.h"
#include "engines/result_export.h"
#include "io/temp_dir.h"
#include "monitor/panel.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "util/string_util.h"

using namespace nodb;

namespace {

Result<std::shared_ptr<Schema>> ParseSchemaSpec(const std::string& spec) {
  std::vector<Field> fields;
  for (const auto& part : SplitString(spec, ',')) {
    auto nv = SplitString(std::string(TrimView(part)), ':');
    if (nv.size() != 2) {
      return Status::InvalidArgument(
          "schema spec must be name:type[,name:type...]; got '" + part +
          "'");
    }
    NODB_ASSIGN_OR_RETURN(DataType type, DataTypeFromString(nv[1]));
    fields.push_back(Field{nv[0], type});
  }
  return Schema::Make(std::move(fields));
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  \\open NAME PATH SCHEMA [DELIM]   e.g. \\open t data.csv "
      "\"id:int,name:string\" ,\n"
      "  \\tables    \\panel [TABLE]    \\tiers [TABLE]    \\explain SQL\n"
      "  \\export FILE SQL                 run SQL, write result as CSV\n"
      "  \\save [TABLE]    \\restore [TABLE]   persist / recover adaptive "
      "state\n"
      "  \\baseline on|off    \\timing on|off    \\help    \\quit\n"
      "  \\metrics [prom]                  metrics registry (text or "
      "Prometheus)\n"
      "  \\trace on|off [PATH]             trace spans; PATH appends "
      "Chrome JSONL\n"
      "anything else runs as SQL (EXPLAIN / EXPLAIN ANALYZE included). "
      "Omit SCHEMA in \\open to infer it.\n");
}

/// Remote mode (`--connect HOST:PORT`): the same SQL loop against a
/// running nodb_server. Results and timing lines render through the
/// exact same QueryResult / MonitorPanel code as local execution, so
/// the output is byte-identical either way (a server_bench gate).
int RunRemote(const std::string& host, uint16_t port,
              const std::string& tenant) {
  auto conn = server::ClientConnection::Connect(host, port, tenant,
                                                "nodb_shell");
  if (!conn.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 conn.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "connected to %s at %s:%u as tenant '%s'\n"
      "commands: \\metrics [prom]   \\timing on|off   \\shutdown   "
      "\\quit; anything else runs as SQL on the server\n",
      conn->server_name().c_str(), host.c_str(), port, tenant.c_str());
  bool timing = true;
  bool interactive = isatty(0);
  std::string line;
  while (true) {
    if (interactive) {
      std::printf("nodb(%s:%u)> ", host.c_str(), port);
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = TrimView(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '\\') {
      std::istringstream iss{std::string(trimmed)};
      std::string cmd;
      iss >> cmd;
      if (cmd == "\\quit" || cmd == "\\q") break;
      if (cmd == "\\timing") {
        std::string mode;
        iss >> mode;
        timing = (mode != "off");
        std::printf("timing %s\n", timing ? "on" : "off");
      } else if (cmd == "\\metrics") {
        // The server renders these, including its front-end section
        // (connections, in-flight, per-tenant rows served).
        std::string format;
        iss >> format;
        auto body = conn->FetchMetrics(format == "prom");
        if (!body.ok()) {
          std::printf("error: %s\n", body.status().ToString().c_str());
        } else {
          std::printf("%s", body->c_str());
        }
      } else if (cmd == "\\shutdown") {
        Status st = conn->SendShutdown();
        std::printf("%s\n", st.ok() ? "server draining; bye"
                                    : st.ToString().c_str());
        if (st.ok()) return 0;
      } else {
        std::printf("unknown remote command %s\n", cmd.c_str());
      }
      continue;
    }
    auto outcome = conn->Execute(trimmed);
    if (!outcome.ok()) {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
      if (!conn->connected()) return 1;
      continue;
    }
    std::printf("%s", outcome->result.ToString(25).c_str());
    if (timing) {
      std::printf("%s", MonitorPanel::RenderBreakdown("  time",
                                                      outcome->metrics)
                            .c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--connect") {
    std::string target = argv[2];
    size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect needs HOST:PORT\n");
      return 1;
    }
    return RunRemote(target.substr(0, colon),
                     static_cast<uint16_t>(
                         std::atoi(target.c_str() + colon + 1)),
                     argc >= 4 ? argv[3] : "shell");
  }

  Catalog catalog;
  std::unique_ptr<TempDir> demo_dir;

  if (argc >= 3) {
    auto schema = ParseSchemaSpec(argv[2]);
    if (!schema.ok()) {
      std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
      return 1;
    }
    CsvDialect dialect;
    if (argc >= 4) dialect.delimiter = argv[3][0];
    Status st = catalog.RegisterTable({"t", argv[1], *schema, dialect});
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("registered '%s' as table t (%s)\n", argv[1],
                (*schema)->ToString().c_str());
  } else if (argc == 2) {
    // File without a schema: infer it from a sample.
    auto inferred = InferSchema(argv[1], CsvDialect());
    if (!inferred.ok()) {
      std::fprintf(stderr, "%s\n",
                   inferred.status().ToString().c_str());
      return 1;
    }
    Status st = catalog.RegisterTable(
        {"t", argv[1], inferred->schema, inferred->dialect});
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("registered '%s' as table t with inferred schema (%s)%s\n",
                argv[1], inferred->schema->ToString().c_str(),
                inferred->dialect.has_header ? " [header detected]" : "");
  } else {
    // No file given: create a demo table so the shell is explorable.
    auto dir = TempDir::Create("nodb-shell");
    if (!dir.ok()) return 1;
    demo_dir = std::make_unique<TempDir>(std::move(*dir));
    SyntheticSpec spec;
    spec.num_tuples = 20000;
    spec.num_attributes = 8;
    spec.ints_per_cycle = 2;
    spec.strings_per_cycle = 1;
    spec.dates_per_cycle = 1;
    std::string path = demo_dir->FilePath("demo.csv");
    if (!GenerateSyntheticCsv(path, spec, CsvDialect()).ok()) return 1;
    // Cannot fail: the catalog is empty, so "demo" is never a duplicate.
    (void)catalog.RegisterTable(
        {"demo", path, spec.MakeSchema(), CsvDialect()});
    std::printf("no file given; created table 'demo' (%s)\n",
                spec.MakeSchema()->ToString().c_str());
  }

  NoDbEngine engine(catalog, NoDbConfig());
  bool timing = true;
  bool interactive = isatty(0);
  PrintHelp();

  std::string line;
  while (true) {
    if (interactive) {
      std::printf("nodb> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = TrimView(line);
    if (trimmed.empty()) continue;

    if (trimmed[0] == '\\') {
      std::istringstream iss{std::string(trimmed)};
      std::string cmd;
      iss >> cmd;
      if (cmd == "\\quit" || cmd == "\\q") break;
      if (cmd == "\\help") {
        PrintHelp();
      } else if (cmd == "\\tables") {
        for (const auto& name : engine.catalog().TableNames()) {
          auto info = engine.catalog().GetTable(name);
          std::printf("  %-12s %s  (%s)\n", name.c_str(),
                      info->path.c_str(), info->schema->ToString().c_str());
        }
      } else if (cmd == "\\panel") {
        std::string table;
        iss >> table;
        if (table.empty() && !engine.catalog().TableNames().empty()) {
          table = engine.catalog().TableNames()[0];
        }
        const RawTableState* state = engine.table_state(table);
        if (state == nullptr) {
          std::printf("no adaptive state yet for '%s' (query it first)\n",
                      table.c_str());
        } else {
          std::printf("%s", MonitorPanel::RenderTableState(*state).c_str());
        }
      } else if (cmd == "\\tiers") {
        std::string table;
        iss >> table;
        // Settle in-flight background promotions so the report shows
        // the store the next query will actually see.
        engine.WaitForPromotions();
        std::vector<std::string> tables;
        if (!table.empty()) {
          tables.push_back(table);
        } else {
          tables = engine.catalog().TableNames();
        }
        for (const auto& name : tables) {
          const RawTableState* state = engine.table_state(name);
          if (state == nullptr) {
            std::printf("no adaptive state yet for '%s' (query it first)\n",
                        name.c_str());
          } else {
            std::printf("%s",
                        MonitorPanel::RenderStorageTiers(*state).c_str());
          }
        }
      } else if (cmd == "\\explain") {
        std::string sql;
        std::getline(iss, sql);
        auto plan = engine.Explain(sql);
        if (!plan.ok()) {
          std::printf("error: %s\n", plan.status().ToString().c_str());
        } else {
          std::printf("%s", plan->c_str());
        }
      } else if (cmd == "\\export") {
        std::string out_path, sql;
        iss >> out_path;
        std::getline(iss, sql);
        auto outcome = engine.Execute(TrimView(sql));
        if (!outcome.ok()) {
          std::printf("error: %s\n", outcome.status().ToString().c_str());
          continue;
        }
        CsvDialect out_dialect;
        out_dialect.has_header = true;
        out_dialect.allow_quoting = true;
        Status st =
            WriteResultToCsv(outcome->result, out_path, out_dialect);
        std::printf("%s\n", st.ok()
                                ? ("wrote " +
                                   std::to_string(outcome->result.num_rows()) +
                                   " rows to " + out_path)
                                      .c_str()
                                : st.ToString().c_str());
      } else if (cmd == "\\save" || cmd == "\\restore") {
        std::string table;
        iss >> table;
        std::vector<std::string> tables;
        if (!table.empty()) {
          tables.push_back(table);
        } else {
          tables = engine.catalog().TableNames();
        }
        for (const auto& name : tables) {
          if (cmd == "\\save") {
            Status st = engine.SaveSnapshot(name);
            std::printf("%-12s %s\n", name.c_str(),
                        st.ok() ? "snapshot saved" : st.ToString().c_str());
            continue;
          }
          auto report = engine.LoadSnapshot(name);
          if (!report.ok()) {
            std::printf("%-12s %s\n", name.c_str(),
                        report.status().ToString().c_str());
          } else if (report->any_recovered()) {
            std::printf(
                "%-12s recovered %llu rows, %llu chunks, %llu zone "
                "entries, %llu store segments%s\n",
                name.c_str(),
                static_cast<unsigned long long>(report->rows_recovered),
                static_cast<unsigned long long>(
                    report->chunks_recovered),
                static_cast<unsigned long long>(
                    report->zone_entries_recovered),
                static_cast<unsigned long long>(
                    report->store_segments_recovered),
                report->stats_recovered ? ", stats" : "");
          } else {
            std::printf("%-12s nothing recovered (%s)\n", name.c_str(),
                        report->detail.c_str());
          }
        }
      } else if (cmd == "\\baseline") {
        std::string mode;
        iss >> mode;
        bool on = (mode == "on");
        engine.SetPositionalMapEnabled(!on);
        engine.SetCacheEnabled(!on);
        engine.SetStatisticsEnabled(!on);
        engine.SetStoreEnabled(!on);
        std::printf("NoDB components %s\n", on ? "DISABLED (baseline "
                                                 "external-files mode)"
                                               : "enabled");
      } else if (cmd == "\\timing") {
        std::string mode;
        iss >> mode;
        timing = (mode != "off");
        std::printf("timing %s\n", timing ? "on" : "off");
      } else if (cmd == "\\metrics") {
        std::string format;
        iss >> format;
        std::printf("%s",
                    format == "prom"
                        ? obs::MetricsRegistry::Global()
                              .RenderPrometheus()
                              .c_str()
                        : obs::MetricsRegistry::Global()
                              .RenderText()
                              .c_str());
      } else if (cmd == "\\trace") {
        std::string mode, path;
        iss >> mode >> path;
        bool on = (mode == "on");
        engine.tracer().SetEnabled(on);
        if (!path.empty()) engine.tracer().SetPath(path);
        if (on && engine.tracer().path().empty()) {
          std::printf(
              "tracing on (in-memory ring only; give a PATH to append "
              "Chrome-trace JSONL)\n");
        } else {
          std::printf("tracing %s%s%s\n", on ? "on" : "off",
                      engine.tracer().path().empty() ? "" : " -> ",
                      engine.tracer().path().c_str());
        }
      } else if (cmd == "\\open") {
        std::string name, path, schema_spec, delim;
        iss >> name >> path;
        // Schema may be quoted.
        std::string rest;
        std::getline(iss, rest);
        rest = std::string(TrimView(rest));
        if (!rest.empty() && rest[0] == '"') {
          size_t close = rest.find('"', 1);
          schema_spec = rest.substr(1, close - 1);
          if (close != std::string::npos && close + 1 < rest.size()) {
            delim = std::string(TrimView(rest.substr(close + 1)));
          }
        } else {
          std::istringstream rss(rest);
          rss >> schema_spec >> delim;
        }
        if (schema_spec.empty()) {
          // No schema given: infer it.
          CsvDialect dialect;
          if (!delim.empty()) dialect.delimiter = delim[0];
          auto inferred = InferSchema(path, dialect);
          if (!inferred.ok()) {
            std::printf("error: %s\n",
                        inferred.status().ToString().c_str());
            continue;
          }
          Status st = engine.catalog().RegisterTable(
              {name, path, inferred->schema, inferred->dialect});
          std::printf("%s (inferred: %s)\n",
                      st.ok() ? "registered" : st.ToString().c_str(),
                      inferred->schema->ToString().c_str());
          continue;
        }
        auto schema = ParseSchemaSpec(schema_spec);
        if (!schema.ok()) {
          std::printf("error: %s\n", schema.status().ToString().c_str());
          continue;
        }
        CsvDialect dialect;
        if (!delim.empty()) dialect.delimiter = delim[0];
        Status st =
            engine.catalog().RegisterTable({name, path, *schema, dialect});
        std::printf("%s\n", st.ok() ? "registered" : st.ToString().c_str());
      } else {
        std::printf("unknown command %s (try \\help)\n", cmd.c_str());
      }
      continue;
    }

    auto outcome = engine.Execute(trimmed);
    if (!outcome.ok()) {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
      continue;
    }
    std::printf("%s", outcome->result.ToString(25).c_str());
    if (timing) {
      std::printf("%s", MonitorPanel::RenderBreakdown("  time",
                                                      outcome->metrics)
                            .c_str());
    }
  }
  return 0;
}
