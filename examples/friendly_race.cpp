// The friendly race (demo Part III) as a runnable example: four
// engines receive the same raw file and the same queries at the
// "starting shot"; the conventional contestants must load first.
// Prints a live-ish commentary of who answers when.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "datagen/synthetic.h"
#include "engines/load_first_engine.h"
#include "engines/nodb_engine.h"
#include "io/temp_dir.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace nodb;

namespace {

struct Event {
  int64_t at_ns;
  std::string text;
};

void RunContestant(Engine* engine, const std::vector<std::string>& queries,
                   std::vector<Event>* events) {
  Stopwatch shot;
  auto init = engine->Initialize();
  if (!init.ok()) std::exit(1);
  if (shot.ElapsedNanos() > 1000000) {
    events->push_back({shot.ElapsedNanos(),
                       std::string(engine->name()) +
                           " finished initializing (loading/tuning)"});
  } else {
    events->push_back({shot.ElapsedNanos(),
                       std::string(engine->name()) +
                           " is ready instantly (nothing to load)"});
  }
  int q = 0;
  for (const auto& sql : queries) {
    ++q;
    auto outcome = engine->Execute(sql);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s failed on %s: %s\n",
                   std::string(engine->name()).c_str(), sql.c_str(),
                   outcome.status().ToString().c_str());
      std::exit(1);
    }
    events->push_back({shot.ElapsedNanos(),
                       std::string(engine->name()) + " answered query " +
                           std::to_string(q)});
  }
}

}  // namespace

int main() {
  auto dir = TempDir::Create("nodb-race-example");
  if (!dir.ok()) return 1;
  SyntheticSpec spec;
  spec.num_tuples = 100000;
  spec.num_attributes = 16;
  std::string path = dir->FilePath("race.csv");
  auto bytes = GenerateSyntheticCsv(path, spec, CsvDialect());
  if (!bytes.ok()) return 1;
  std::printf("the track: %s of raw CSV, 6 queries, nothing pre-loaded\n",
              FormatBytes(*bytes).c_str());

  Catalog catalog;
  if (!catalog.RegisterTable({"race", path, spec.MakeSchema(),
                              CsvDialect()})
           .ok()) {
    return 1;
  }

  std::vector<std::string> queries;
  for (int q = 0; q < 6; ++q) {
    int a = (q * 2) % 12;
    queries.push_back("SELECT COUNT(*) AS n, AVG(attr" +
                      std::to_string(a) + ") AS mean FROM race WHERE attr" +
                      std::to_string(a + 1) + " < " +
                      std::to_string((q + 3) * 100000000));
  }

  // Each contestant runs its own lane (sequentially; timestamps are
  // lane-relative from the shared starting shot).
  std::vector<Event> events;
  NoDbEngine raw(catalog, NoDbConfig(), "PostgresRaw");
  RunContestant(&raw, queries, &events);
  LoadFirstEngine pg(catalog, LoadProfile::kPostgres);
  RunContestant(&pg, queries, &events);
  LoadFirstEngine my(catalog, LoadProfile::kMySql);
  RunContestant(&my, queries, &events);
  LoadFirstEngine dx(catalog, LoadProfile::kDbmsX);
  RunContestant(&dx, queries, &events);

  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.at_ns < b.at_ns; });
  std::printf("\n--- race commentary (time from the starting shot) ---\n");
  for (const Event& e : events) {
    std::printf("%10s  %s\n", FormatNanos(e.at_ns).c_str(),
                e.text.c_str());
  }

  std::printf("\n--- final standings (data-to-query time) ---\n");
  const Engine* engines[] = {&raw, &pg, &my, &dx};
  for (const Engine* engine : engines) {
    std::printf("%-12s init %10s + queries %10s = %10s\n",
                std::string(engine->name()).c_str(),
                FormatNanos(engine->totals().init_ns).c_str(),
                FormatNanos(engine->totals().query_ns).c_str(),
                FormatNanos(engine->totals().data_to_query_ns()).c_str());
  }
  return 0;
}
