#include "exec/query_result.h"

#include <algorithm>
#include <utility>

#include "exec/cancel.h"

namespace nodb {

Result<QueryResult> QueryResult::Drain(ExecOperator* op, BatchSink* sink) {
  QueryResult result;
  result.schema_ = op->output_schema();
  result.rows_ = std::make_shared<RecordBatch>(result.schema_);
  NODB_RETURN_NOT_OK(op->Open());
  if (sink != nullptr) NODB_RETURN_NOT_OK(sink->OnSchema(result.schema_));
  size_t rows = 0;
  while (true) {
    NODB_RETURN_NOT_OK(CheckQueryNotCancelled());
    NODB_ASSIGN_OR_RETURN(BatchPtr batch, op->Next());
    if (batch == nullptr) break;
    if (sink != nullptr) {
      NODB_RETURN_NOT_OK(sink->OnBatch(*batch));
      continue;  // streamed, not materialized
    }
    for (size_t c = 0; c < batch->num_columns(); ++c) {
      ColumnVector& dst = result.rows_->column(c);
      for (size_t i = 0; i < batch->num_rows(); ++i) {
        dst.AppendFrom(batch->column(c), i);
      }
    }
    rows += batch->num_rows();
  }
  result.rows_->SetNumRows(rows);
  return result;
}

QueryResult QueryResult::FromParts(std::shared_ptr<Schema> schema,
                                   BatchPtr rows) {
  QueryResult result;
  result.schema_ = std::move(schema);
  result.rows_ = std::move(rows);
  return result;
}

std::vector<std::string> QueryResult::CanonicalRows() const {
  std::vector<std::string> out;
  out.reserve(num_rows());
  for (size_t i = 0; i < num_rows(); ++i) {
    std::string line;
    for (size_t c = 0; c < rows_->num_columns(); ++c) {
      if (c > 0) line += "|";
      line += rows_->column(c).GetValue(i).ToString();
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < schema_->num_fields(); ++c) {
    if (c > 0) out += " | ";
    out += schema_->field(c).name;
  }
  out += "\n";
  size_t n = std::min(max_rows, num_rows());
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < rows_->num_columns(); ++c) {
      if (c > 0) out += " | ";
      out += rows_->column(c).GetValue(i).ToString();
    }
    out += "\n";
  }
  if (num_rows() > n) {
    out += "... (" + std::to_string(num_rows() - n) + " more rows)\n";
  }
  return out;
}

}  // namespace nodb
