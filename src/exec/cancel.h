#ifndef NODB_EXEC_CANCEL_H_
#define NODB_EXEC_CANCEL_H_

#include <atomic>

#include "util/status.h"

namespace nodb {

/// Cooperative per-query cancellation.
///
/// A QueryCancelFlag is owned by whoever can abandon a query — a
/// server connection whose client hung up, a drain deadline, a test.
/// The executing thread installs it with ScopedQueryCancel for the
/// duration of one query; QueryResult::Drain polls it at every batch
/// boundary and aborts with Status::Cancelled. Cancellation is
/// strictly cooperative: a batch in flight finishes, and worker
/// threads of a parallel first-touch scan are not interrupted
/// mid-block — the drain loop is the single check point, which keeps
/// the hot path at one relaxed-ish load per batch.
class QueryCancelFlag {
 public:
  QueryCancelFlag() = default;
  QueryCancelFlag(const QueryCancelFlag&) = delete;
  QueryCancelFlag& operator=(const QueryCancelFlag&) = delete;

  /// Requests cancellation; safe from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Installs `flag` as the current thread's active cancel flag for the
/// scope's lifetime (nullptr = uncancellable, the default). Nests: the
/// previous flag is restored on destruction, mirroring
/// obs::ScopedSessionLabel.
class ScopedQueryCancel {
 public:
  explicit ScopedQueryCancel(const QueryCancelFlag* flag);
  ~ScopedQueryCancel();

  ScopedQueryCancel(const ScopedQueryCancel&) = delete;
  ScopedQueryCancel& operator=(const ScopedQueryCancel&) = delete;

  /// The flag installed on the calling thread, or nullptr.
  static const QueryCancelFlag* Current();

 private:
  const QueryCancelFlag* previous_;
};

/// OK unless the calling thread's installed flag has fired.
Status CheckQueryNotCancelled();

}  // namespace nodb

#endif  // NODB_EXEC_CANCEL_H_
