#include "exec/column_store.h"

namespace nodb {

ColumnStoreTable::ColumnStoreTable(std::shared_ptr<Schema> schema)
    : schema_(std::move(schema)) {
  columns_.reserve(schema_->num_fields());
  for (const Field& f : schema_->fields()) {
    columns_.push_back(std::make_shared<ColumnVector>(f.type));
  }
}

size_t ColumnStoreTable::MemoryUsage() const {
  size_t total = 0;
  for (const auto& col : columns_) total += col->MemoryUsage();
  return total;
}

ColumnStoreScan::ColumnStoreScan(
    std::shared_ptr<const ColumnStoreTable> table,
    std::vector<size_t> projection)
    : table_(std::move(table)), projection_(std::move(projection)) {
  schema_ = table_->schema()->Project(projection_);
}

std::vector<size_t> ColumnStoreScan::AllColumns(
    const ColumnStoreTable& table) {
  std::vector<size_t> all(table.schema()->num_fields());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

Status ColumnStoreScan::Open() {
  cursor_ = 0;
  return Status::OK();
}

Result<BatchPtr> ColumnStoreScan::Next() {
  if (cursor_ >= table_->num_rows()) return BatchPtr();
  size_t n = std::min(RecordBatch::kDefaultBatchRows,
                      table_->num_rows() - cursor_);
  // Batches copy the row range column-wise; a slice view would avoid the
  // copy but complicate ownership for filters that gather anyway.
  std::vector<std::shared_ptr<ColumnVector>> cols;
  cols.reserve(projection_.size());
  for (size_t p : projection_) {
    const ColumnVector& src = table_->column(p);
    auto dst = std::make_shared<ColumnVector>(src.type());
    dst->Reserve(n);
    for (size_t i = 0; i < n; ++i) dst->AppendFrom(src, cursor_ + i);
    cols.push_back(std::move(dst));
  }
  cursor_ += n;
  return std::make_shared<RecordBatch>(schema_, std::move(cols), n);
}

}  // namespace nodb
