#ifndef NODB_EXEC_EXPR_H_
#define NODB_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "types/record_batch.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/result.h"

namespace nodb {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Binary comparison operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Binary/unary logical connectives with SQL three-valued semantics.
enum class LogicalOp { kAnd, kOr, kNot };

/// Binary arithmetic operators.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

std::string_view CompareOpToString(CompareOp op);
std::string_view ArithOpToString(ArithOp op);

/// A scalar expression evaluated column-at-a-time over a RecordBatch.
///
/// Expressions are produced by the SQL binder with column references
/// already resolved to positional indices into the operator's input
/// schema. Booleans are represented as kInt64 columns holding 0/1/NULL
/// (SQL three-valued logic).
class Expr {
 public:
  virtual ~Expr() = default;

  /// Result type of this expression over `schema`.
  virtual Result<DataType> OutputType(const Schema& schema) const = 0;

  /// Evaluates over all rows of `batch`.
  virtual Result<std::shared_ptr<ColumnVector>> Evaluate(
      const RecordBatch& batch) const = 0;

  /// Appends the input-column indices this expression reads.
  virtual void CollectColumns(std::vector<size_t>* cols) const = 0;

  virtual std::string ToString() const = 0;
};

/// Reference to input column `index` (name kept for display).
class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(size_t index, std::string name, DataType type)
      : index_(index), name_(std::move(name)), type_(type) {}

  size_t index() const { return index_; }
  const std::string& name() const { return name_; }
  DataType type() const { return type_; }

  Result<DataType> OutputType(const Schema& schema) const override;
  Result<std::shared_ptr<ColumnVector>> Evaluate(
      const RecordBatch& batch) const override;
  void CollectColumns(std::vector<size_t>* cols) const override {
    cols->push_back(index_);
  }
  std::string ToString() const override { return name_; }

 private:
  size_t index_;
  std::string name_;
  DataType type_;
};

/// A constant.
class LiteralExpr final : public Expr {
 public:
  LiteralExpr(Value value, DataType type)
      : value_(std::move(value)), type_(type) {}

  const Value& value() const { return value_; }
  DataType type() const { return type_; }

  Result<DataType> OutputType(const Schema& schema) const override;
  Result<std::shared_ptr<ColumnVector>> Evaluate(
      const RecordBatch& batch) const override;
  void CollectColumns(std::vector<size_t>*) const override {}
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
  DataType type_;
};

/// left <op> right with NULL-propagating semantics.
class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Result<DataType> OutputType(const Schema& schema) const override;
  Result<std::shared_ptr<ColumnVector>> Evaluate(
      const RecordBatch& batch) const override;
  void CollectColumns(std::vector<size_t>* cols) const override {
    left_->CollectColumns(cols);
    right_->CollectColumns(cols);
  }
  std::string ToString() const override;

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// AND / OR / NOT with three-valued logic.
class LogicalExpr final : public Expr {
 public:
  /// For kNot, `right` is null.
  LogicalExpr(LogicalOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  LogicalOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Result<DataType> OutputType(const Schema& schema) const override;
  Result<std::shared_ptr<ColumnVector>> Evaluate(
      const RecordBatch& batch) const override;
  void CollectColumns(std::vector<size_t>* cols) const override {
    left_->CollectColumns(cols);
    if (right_) right_->CollectColumns(cols);
  }
  std::string ToString() const override;

 private:
  LogicalOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// left <op> right. INT op INT stays INT (except /), everything else
/// computes in double. DATE participates as its day number.
class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  ArithOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Result<DataType> OutputType(const Schema& schema) const override;
  Result<std::shared_ptr<ColumnVector>> Evaluate(
      const RecordBatch& batch) const override;
  void CollectColumns(std::vector<size_t>* cols) const override {
    left_->CollectColumns(cols);
    right_->CollectColumns(cols);
  }
  std::string ToString() const override;

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// col IS [NOT] NULL.
class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr input, bool negated)
      : input_(std::move(input)), negated_(negated) {}

  const ExprPtr& input() const { return input_; }
  bool negated() const { return negated_; }

  Result<DataType> OutputType(const Schema& schema) const override;
  Result<std::shared_ptr<ColumnVector>> Evaluate(
      const RecordBatch& batch) const override;
  void CollectColumns(std::vector<size_t>* cols) const override {
    input_->CollectColumns(cols);
  }
  std::string ToString() const override;

 private:
  ExprPtr input_;
  bool negated_;
};

/// string LIKE pattern with '%' and '_' wildcards.
class LikeExpr final : public Expr {
 public:
  LikeExpr(ExprPtr input, std::string pattern, bool negated)
      : input_(std::move(input)),
        pattern_(std::move(pattern)),
        negated_(negated) {}

  const ExprPtr& input() const { return input_; }
  const std::string& pattern() const { return pattern_; }
  bool negated() const { return negated_; }

  Result<DataType> OutputType(const Schema& schema) const override;
  Result<std::shared_ptr<ColumnVector>> Evaluate(
      const RecordBatch& batch) const override;
  void CollectColumns(std::vector<size_t>* cols) const override {
    input_->CollectColumns(cols);
  }
  std::string ToString() const override;

  /// Wildcard matcher exposed for direct use and tests.
  static bool Match(std::string_view text, std::string_view pattern);

 private:
  ExprPtr input_;
  std::string pattern_;
  bool negated_;
};

/// Clones `e` with every ColumnRefExpr index shifted down by `delta`
/// (re-targeting an expression bound over a combined join schema onto
/// the build side's own output schema). Returns nullptr for node kinds
/// it does not know how to clone — callers must treat that as "cannot
/// rebase", not an error.
ExprPtr RebaseColumnRefs(const ExprPtr& e, size_t delta);

}  // namespace nodb

#endif  // NODB_EXEC_EXPR_H_
