#include "exec/filter.h"

namespace nodb {

Status FilterOperator::Open() { return child_->Open(); }

Result<BatchPtr> FilterOperator::Next() {
  while (true) {
    NODB_ASSIGN_OR_RETURN(BatchPtr batch, child_->Next());
    if (batch == nullptr) return BatchPtr();
    NODB_ASSIGN_OR_RETURN(auto mask, predicate_->Evaluate(*batch));

    size_t n = batch->num_rows();
    size_t passing = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!mask->IsNull(i) && mask->GetInt64(i) != 0) ++passing;
    }
    if (passing == 0) continue;       // fully filtered; pull next batch
    if (passing == n) return batch;   // nothing filtered; pass through

    auto out = std::make_shared<RecordBatch>(batch->schema());
    for (size_t c = 0; c < batch->num_columns(); ++c) {
      ColumnVector& dst = out->column(c);
      dst.Reserve(passing);
      const ColumnVector& src = batch->column(c);
      for (size_t i = 0; i < n; ++i) {
        if (!mask->IsNull(i) && mask->GetInt64(i) != 0) {
          dst.AppendFrom(src, i);
        }
      }
    }
    out->SetNumRows(passing);
    return out;
  }
}

}  // namespace nodb
