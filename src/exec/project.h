#ifndef NODB_EXEC_PROJECT_H_
#define NODB_EXEC_PROJECT_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace nodb {

/// Computes one output column per expression.
///
/// Construction validates expression types against the child schema via
/// Create() so planner errors surface before execution starts.
class ProjectOperator final : public ExecOperator {
 public:
  static Result<OperatorPtr> Create(OperatorPtr child,
                                    std::vector<ExprPtr> exprs,
                                    std::vector<std::string> names);

  Status Open() override;
  Result<BatchPtr> Next() override;
  std::shared_ptr<Schema> output_schema() const override { return schema_; }

 private:
  ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                  std::shared_ptr<Schema> schema)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        schema_(std::move(schema)) {}

  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  std::shared_ptr<Schema> schema_;
};

}  // namespace nodb

#endif  // NODB_EXEC_PROJECT_H_
