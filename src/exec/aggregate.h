#ifndef NODB_EXEC_AGGREGATE_H_
#define NODB_EXEC_AGGREGATE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace nodb {

/// Aggregate functions supported by the engine.
enum class AggFunc { kCountStar, kCount, kSum, kAvg, kMin, kMax };

std::string_view AggFuncToString(AggFunc func);

/// One aggregate in the SELECT list: FUNC(input) AS name.
struct AggregateSpec {
  AggFunc func;
  /// Input expression; null only for kCountStar.
  ExprPtr input;
  std::string name;
};

/// Hash aggregation (blocking): consumes the child fully, then emits
/// one row per group. With no GROUP BY keys a single global group is
/// emitted even over empty input, matching SQL semantics.
class HashAggregateOperator final : public ExecOperator {
 public:
  static Result<OperatorPtr> Create(OperatorPtr child,
                                    std::vector<ExprPtr> group_by,
                                    std::vector<std::string> group_names,
                                    std::vector<AggregateSpec> aggregates);

  Status Open() override;
  Result<BatchPtr> Next() override;
  std::shared_ptr<Schema> output_schema() const override { return schema_; }

 private:
  /// Running state for one (group, aggregate) pair.
  struct AggState {
    int64_t count = 0;
    int64_t isum = 0;
    double dsum = 0;
    bool has_value = false;
    Value extreme;  // MIN/MAX carrier
  };

  struct Group {
    std::vector<Value> keys;
    std::vector<AggState> states;
  };

  HashAggregateOperator(OperatorPtr child, std::vector<ExprPtr> group_by,
                        std::vector<AggregateSpec> aggregates,
                        std::vector<DataType> agg_types,
                        std::shared_ptr<Schema> schema)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)),
        agg_types_(std::move(agg_types)),
        schema_(std::move(schema)) {}

  Status ConsumeChild();
  void UpdateState(AggState* state, const AggregateSpec& spec,
                   const ColumnVector* input, size_t row);
  Value Finalize(const AggState& state, const AggregateSpec& spec,
                 DataType out_type) const;

  OperatorPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggregateSpec> aggregates_;
  std::vector<DataType> agg_types_;
  std::shared_ptr<Schema> schema_;

  std::unordered_map<std::string, size_t> group_index_;
  std::vector<Group> groups_;
  size_t emit_cursor_ = 0;
  bool consumed_ = false;
};

}  // namespace nodb

#endif  // NODB_EXEC_AGGREGATE_H_
