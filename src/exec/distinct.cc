#include "exec/distinct.h"

namespace nodb {

namespace {

void SerializeCell(const ColumnVector& col, size_t row, std::string* key) {
  if (col.IsNull(row)) {
    key->push_back('\0');
    return;
  }
  key->push_back('\1');
  switch (col.type()) {
    case DataType::kInt64:
    case DataType::kDate: {
      int64_t v = col.GetInt64(row);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kDouble: {
      double v = col.GetDouble(row);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kString: {
      std::string_view s = col.GetString(row);
      uint32_t len = static_cast<uint32_t>(s.size());
      key->append(reinterpret_cast<const char*>(&len), sizeof(len));
      key->append(s.data(), s.size());
      break;
    }
  }
}

}  // namespace

Status DistinctOperator::Open() {
  seen_.clear();
  return child_->Open();
}

Result<BatchPtr> DistinctOperator::Next() {
  std::string key;
  while (true) {
    NODB_ASSIGN_OR_RETURN(BatchPtr batch, child_->Next());
    if (batch == nullptr) return BatchPtr();

    auto out = std::make_shared<RecordBatch>(batch->schema());
    size_t kept = 0;
    for (size_t i = 0; i < batch->num_rows(); ++i) {
      key.clear();
      for (size_t c = 0; c < batch->num_columns(); ++c) {
        SerializeCell(batch->column(c), i, &key);
      }
      if (!seen_.insert(key).second) continue;
      for (size_t c = 0; c < batch->num_columns(); ++c) {
        out->column(c).AppendFrom(batch->column(c), i);
      }
      ++kept;
    }
    if (kept == 0) continue;
    out->SetNumRows(kept);
    return out;
  }
}

}  // namespace nodb
