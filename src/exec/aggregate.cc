#include "exec/aggregate.h"

#include <cassert>
#include <cstring>

namespace nodb {

namespace {

/// Serializes one column cell into the group hash key.
void AppendKeyBytes(const ColumnVector& col, size_t row, std::string* key) {
  if (col.IsNull(row)) {
    key->push_back('\0');
    return;
  }
  key->push_back('\1');
  switch (col.type()) {
    case DataType::kInt64:
    case DataType::kDate: {
      int64_t v = col.GetInt64(row);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kDouble: {
      double v = col.GetDouble(row);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kString: {
      std::string_view s = col.GetString(row);
      uint32_t len = static_cast<uint32_t>(s.size());
      key->append(reinterpret_cast<const char*>(&len), sizeof(len));
      key->append(s.data(), s.size());
      break;
    }
  }
}

/// Ordering for MIN/MAX across the types we support.
int CompareValues(const Value& a, const Value& b) {
  if (a.is_string()) {
    return a.str().compare(b.str());
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

}  // namespace

std::string_view AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

Result<OperatorPtr> HashAggregateOperator::Create(
    OperatorPtr child, std::vector<ExprPtr> group_by,
    std::vector<std::string> group_names,
    std::vector<AggregateSpec> aggregates) {
  if (group_by.size() != group_names.size()) {
    return Status::Internal("group_by exprs/names size mismatch");
  }
  const Schema& in = *child->output_schema();
  std::vector<Field> fields;
  for (size_t i = 0; i < group_by.size(); ++i) {
    NODB_ASSIGN_OR_RETURN(DataType t, group_by[i]->OutputType(in));
    fields.push_back(Field{group_names[i], t});
  }
  std::vector<DataType> agg_types;
  for (const auto& spec : aggregates) {
    DataType out = DataType::kInt64;
    switch (spec.func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        out = DataType::kInt64;
        break;
      case AggFunc::kAvg:
        out = DataType::kDouble;
        break;
      case AggFunc::kSum: {
        NODB_ASSIGN_OR_RETURN(DataType t, spec.input->OutputType(in));
        if (t == DataType::kString) {
          return Status::InvalidArgument("SUM over string column");
        }
        out = (t == DataType::kInt64 || t == DataType::kDate)
                  ? DataType::kInt64
                  : DataType::kDouble;
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        NODB_ASSIGN_OR_RETURN(out, spec.input->OutputType(in));
        break;
      }
    }
    if (spec.func == AggFunc::kAvg) {
      NODB_ASSIGN_OR_RETURN(DataType t, spec.input->OutputType(in));
      if (t == DataType::kString) {
        return Status::InvalidArgument("AVG over string column");
      }
    }
    agg_types.push_back(out);
    fields.push_back(Field{spec.name, out});
  }
  auto schema = Schema::Make(std::move(fields));
  return OperatorPtr(new HashAggregateOperator(
      std::move(child), std::move(group_by), std::move(aggregates),
      std::move(agg_types), std::move(schema)));
}

Status HashAggregateOperator::Open() {
  group_index_.clear();
  groups_.clear();
  emit_cursor_ = 0;
  consumed_ = false;
  return child_->Open();
}

void HashAggregateOperator::UpdateState(AggState* state,
                                        const AggregateSpec& spec,
                                        const ColumnVector* input,
                                        size_t row) {
  if (spec.func == AggFunc::kCountStar) {
    ++state->count;
    return;
  }
  if (input->IsNull(row)) return;  // aggregates skip NULLs
  switch (spec.func) {
    case AggFunc::kCountStar:
      break;
    case AggFunc::kCount:
      ++state->count;
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      ++state->count;
      if (input->type() == DataType::kDouble) {
        state->dsum += input->GetDouble(row);
      } else {
        state->isum += input->GetInt64(row);
        state->dsum += static_cast<double>(input->GetInt64(row));
      }
      break;
    case AggFunc::kMin:
    case AggFunc::kMax: {
      Value v = input->GetValue(row);
      if (!state->has_value) {
        state->extreme = std::move(v);
        state->has_value = true;
      } else {
        int cmp = CompareValues(v, state->extreme);
        if ((spec.func == AggFunc::kMin && cmp < 0) ||
            (spec.func == AggFunc::kMax && cmp > 0)) {
          state->extreme = std::move(v);
        }
      }
      break;
    }
  }
}

Status HashAggregateOperator::ConsumeChild() {
  std::string key;
  while (true) {
    NODB_ASSIGN_OR_RETURN(BatchPtr batch, child_->Next());
    if (batch == nullptr) break;

    // Evaluate group keys and aggregate inputs once per batch.
    std::vector<std::shared_ptr<ColumnVector>> key_cols;
    key_cols.reserve(group_by_.size());
    for (const auto& expr : group_by_) {
      NODB_ASSIGN_OR_RETURN(auto col, expr->Evaluate(*batch));
      key_cols.push_back(std::move(col));
    }
    std::vector<std::shared_ptr<ColumnVector>> agg_inputs(
        aggregates_.size());
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      if (aggregates_[a].input) {
        NODB_ASSIGN_OR_RETURN(agg_inputs[a],
                              aggregates_[a].input->Evaluate(*batch));
      }
    }

    for (size_t row = 0; row < batch->num_rows(); ++row) {
      key.clear();
      for (const auto& col : key_cols) AppendKeyBytes(*col, row, &key);
      auto [it, inserted] = group_index_.emplace(key, groups_.size());
      if (inserted) {
        Group g;
        g.keys.reserve(key_cols.size());
        for (const auto& col : key_cols) g.keys.push_back(col->GetValue(row));
        g.states.resize(aggregates_.size());
        groups_.push_back(std::move(g));
      }
      Group& group = groups_[it->second];
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        UpdateState(&group.states[a], aggregates_[a], agg_inputs[a].get(),
                    row);
      }
    }
  }

  // Global aggregation emits exactly one row even for empty input.
  if (group_by_.empty() && groups_.empty()) {
    Group g;
    g.states.resize(aggregates_.size());
    groups_.push_back(std::move(g));
  }
  return Status::OK();
}

Value HashAggregateOperator::Finalize(const AggState& state,
                                      const AggregateSpec& spec,
                                      DataType out_type) const {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int64(state.count);
    case AggFunc::kSum:
      if (state.count == 0) return Value::Null();
      return out_type == DataType::kInt64 ? Value::Int64(state.isum)
                                          : Value::Double(state.dsum);
    case AggFunc::kAvg:
      if (state.count == 0) return Value::Null();
      return Value::Double(state.dsum / static_cast<double>(state.count));
    case AggFunc::kMin:
    case AggFunc::kMax:
      return state.has_value ? state.extreme : Value::Null();
  }
  return Value::Null();
}

Result<BatchPtr> HashAggregateOperator::Next() {
  if (!consumed_) {
    NODB_RETURN_NOT_OK(ConsumeChild());
    consumed_ = true;
  }
  if (emit_cursor_ >= groups_.size()) return BatchPtr();

  size_t n = std::min(RecordBatch::kDefaultBatchRows,
                      groups_.size() - emit_cursor_);
  auto out = std::make_shared<RecordBatch>(schema_);
  for (size_t i = 0; i < n; ++i) {
    const Group& g = groups_[emit_cursor_ + i];
    std::vector<Value> row;
    row.reserve(schema_->num_fields());
    for (const Value& k : g.keys) row.push_back(k);
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      row.push_back(Finalize(g.states[a], aggregates_[a], agg_types_[a]));
    }
    out->AppendRow(row);
  }
  emit_cursor_ += n;
  return out;
}

}  // namespace nodb
