#ifndef NODB_EXEC_LIMIT_H_
#define NODB_EXEC_LIMIT_H_

#include <memory>

#include "exec/operator.h"

namespace nodb {

/// LIMIT n [OFFSET m]: stops pulling from the child once satisfied.
class LimitOperator final : public ExecOperator {
 public:
  LimitOperator(OperatorPtr child, uint64_t limit, uint64_t offset = 0)
      : child_(std::move(child)), limit_(limit), offset_(offset) {}

  Status Open() override;
  Result<BatchPtr> Next() override;
  std::shared_ptr<Schema> output_schema() const override {
    return child_->output_schema();
  }

 private:
  OperatorPtr child_;
  uint64_t limit_;
  uint64_t offset_;
  uint64_t skipped_ = 0;
  uint64_t emitted_ = 0;
};

}  // namespace nodb

#endif  // NODB_EXEC_LIMIT_H_
