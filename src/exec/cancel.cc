#include "exec/cancel.h"

namespace nodb {

namespace {
thread_local const QueryCancelFlag* tls_cancel_flag = nullptr;
}  // namespace

ScopedQueryCancel::ScopedQueryCancel(const QueryCancelFlag* flag)
    : previous_(tls_cancel_flag) {
  tls_cancel_flag = flag;
}

ScopedQueryCancel::~ScopedQueryCancel() { tls_cancel_flag = previous_; }

const QueryCancelFlag* ScopedQueryCancel::Current() {
  return tls_cancel_flag;
}

Status CheckQueryNotCancelled() {
  const QueryCancelFlag* flag = tls_cancel_flag;
  if (flag != nullptr && flag->cancelled()) {
    return Status::Cancelled("query cancelled at batch boundary");
  }
  return Status::OK();
}

}  // namespace nodb
