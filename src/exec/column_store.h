#ifndef NODB_EXEC_COLUMN_STORE_H_
#define NODB_EXEC_COLUMN_STORE_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "types/column_vector.h"
#include "types/schema.h"

namespace nodb {

/// A fully-loaded, in-memory binary table (one ColumnVector per column).
///
/// This is what a conventional DBMS owns *after* its loading phase; the
/// LoadFirstEngine materializes one of these per table, and its scans
/// read from here instead of the raw file.
class ColumnStoreTable {
 public:
  explicit ColumnStoreTable(std::shared_ptr<Schema> schema);

  const std::shared_ptr<Schema>& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }

  ColumnVector& column(size_t i) { return *columns_[i]; }
  const ColumnVector& column(size_t i) const { return *columns_[i]; }
  const std::shared_ptr<ColumnVector>& column_ptr(size_t i) const {
    return columns_[i];
  }

  /// Recomputes row count after direct column appends.
  void SetNumRows(size_t n) { num_rows_ = n; }

  size_t MemoryUsage() const;

 private:
  std::shared_ptr<Schema> schema_;
  std::vector<std::shared_ptr<ColumnVector>> columns_;
  size_t num_rows_ = 0;
};

/// Leaf operator scanning a ColumnStoreTable in batches.
///
/// `projection` selects which columns are emitted, letting the planner
/// push column pruning down to the loaded table just as the raw scan
/// prunes attributes. An empty projection is meaningful: it emits
/// zero-column batches that still carry row counts (COUNT(*) plans).
class ColumnStoreScan final : public ExecOperator {
 public:
  ColumnStoreScan(std::shared_ptr<const ColumnStoreTable> table,
                  std::vector<size_t> projection);

  /// Convenience: a scan emitting every column.
  static std::vector<size_t> AllColumns(const ColumnStoreTable& table);

  Status Open() override;
  Result<BatchPtr> Next() override;
  std::shared_ptr<Schema> output_schema() const override { return schema_; }

 private:
  std::shared_ptr<const ColumnStoreTable> table_;
  std::vector<size_t> projection_;
  std::shared_ptr<Schema> schema_;
  size_t cursor_ = 0;
};

}  // namespace nodb

#endif  // NODB_EXEC_COLUMN_STORE_H_
