#ifndef NODB_EXEC_SORT_H_
#define NODB_EXEC_SORT_H_

#include <memory>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace nodb {

/// One ORDER BY key.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Blocking in-memory sort. NULLs order first ascending / last
/// descending (PostgreSQL's NULLS semantics inverted — we use the
/// MySQL/SQLite convention of NULLs-first on ASC).
class SortOperator final : public ExecOperator {
 public:
  SortOperator(OperatorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Status Open() override;
  Result<BatchPtr> Next() override;
  std::shared_ptr<Schema> output_schema() const override {
    return child_->output_schema();
  }

 private:
  Status Materialize();

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  BatchPtr materialized_;             // all input rows, concatenated
  std::vector<size_t> order_;         // row permutation
  size_t emit_cursor_ = 0;
  bool sorted_ = false;
};

}  // namespace nodb

#endif  // NODB_EXEC_SORT_H_
