#include "exec/sort.h"

#include <algorithm>

namespace nodb {

Status SortOperator::Open() {
  materialized_.reset();
  order_.clear();
  emit_cursor_ = 0;
  sorted_ = false;
  return child_->Open();
}

Status SortOperator::Materialize() {
  auto schema = child_->output_schema();
  materialized_ = std::make_shared<RecordBatch>(schema);
  size_t rows = 0;
  while (true) {
    auto next = child_->Next();
    NODB_RETURN_NOT_OK(next.status());
    BatchPtr batch = *next;
    if (batch == nullptr) break;
    for (size_t c = 0; c < batch->num_columns(); ++c) {
      ColumnVector& dst = materialized_->column(c);
      for (size_t i = 0; i < batch->num_rows(); ++i) {
        dst.AppendFrom(batch->column(c), i);
      }
    }
    rows += batch->num_rows();
  }
  materialized_->SetNumRows(rows);

  // Evaluate sort keys once over the whole materialized input.
  std::vector<std::shared_ptr<ColumnVector>> key_cols;
  key_cols.reserve(keys_.size());
  for (const auto& key : keys_) {
    auto col = key.expr->Evaluate(*materialized_);
    NODB_RETURN_NOT_OK(col.status());
    key_cols.push_back(*col);
  }

  order_.resize(rows);
  for (size_t i = 0; i < rows; ++i) order_[i] = i;
  std::stable_sort(
      order_.begin(), order_.end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < keys_.size(); ++k) {
          const ColumnVector& col = *key_cols[k];
          bool an = col.IsNull(a);
          bool bn = col.IsNull(b);
          int cmp;
          if (an && bn) {
            cmp = 0;
          } else if (an) {
            cmp = -1;  // NULLs first on ascending
          } else if (bn) {
            cmp = 1;
          } else if (col.type() == DataType::kString) {
            cmp = col.GetString(a).compare(col.GetString(b));
            cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
          } else {
            double x = col.GetNumeric(a);
            double y = col.GetNumeric(b);
            cmp = x < y ? -1 : (x > y ? 1 : 0);
          }
          if (cmp != 0) return keys_[k].ascending ? cmp < 0 : cmp > 0;
        }
        return false;
      });
  return Status::OK();
}

Result<BatchPtr> SortOperator::Next() {
  if (!sorted_) {
    NODB_RETURN_NOT_OK(Materialize());
    sorted_ = true;
  }
  size_t total = order_.size();
  if (emit_cursor_ >= total) return BatchPtr();
  size_t n = std::min(RecordBatch::kDefaultBatchRows, total - emit_cursor_);
  auto out = std::make_shared<RecordBatch>(materialized_->schema());
  for (size_t c = 0; c < materialized_->num_columns(); ++c) {
    ColumnVector& dst = out->column(c);
    dst.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      dst.AppendFrom(materialized_->column(c), order_[emit_cursor_ + i]);
    }
  }
  out->SetNumRows(n);
  emit_cursor_ += n;
  return out;
}

}  // namespace nodb
