#include "exec/hash_join.h"

namespace nodb {

namespace {

/// Join keys normalize numerics to int64/double-compatible bytes: INT
/// and DATE serialize as int64; DOUBLE as its bit pattern. NULL keys
/// never match (SQL inner-join semantics), signaled by returning false.
bool AppendJoinKey(const ColumnVector& col, size_t row, std::string* key) {
  if (col.IsNull(row)) return false;
  switch (col.type()) {
    case DataType::kInt64:
    case DataType::kDate: {
      int64_t v = col.GetInt64(row);
      key->push_back('i');
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kDouble: {
      double v = col.GetDouble(row);
      key->push_back('d');
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kString: {
      std::string_view s = col.GetString(row);
      key->push_back('s');
      uint32_t len = static_cast<uint32_t>(s.size());
      key->append(reinterpret_cast<const char*>(&len), sizeof(len));
      key->append(s.data(), s.size());
      break;
    }
  }
  return true;
}

}  // namespace

Result<OperatorPtr> HashJoinOperator::Create(
    OperatorPtr probe, OperatorPtr build, std::vector<ExprPtr> probe_keys,
    std::vector<ExprPtr> build_keys) {
  if (probe_keys.size() != build_keys.size() || probe_keys.empty()) {
    return Status::InvalidArgument("join requires matching key lists");
  }
  for (size_t i = 0; i < probe_keys.size(); ++i) {
    NODB_ASSIGN_OR_RETURN(DataType pt,
                          probe_keys[i]->OutputType(*probe->output_schema()));
    NODB_ASSIGN_OR_RETURN(DataType bt,
                          build_keys[i]->OutputType(*build->output_schema()));
    bool compatible =
        pt == bt ||
        (pt != DataType::kString && bt != DataType::kString &&
         pt != DataType::kDouble && bt != DataType::kDouble);
    if (!compatible) {
      return Status::InvalidArgument(
          "join key type mismatch: " + std::string(DataTypeToString(pt)) +
          " vs " + std::string(DataTypeToString(bt)));
    }
  }
  std::vector<Field> fields = probe->output_schema()->fields();
  for (const Field& f : build->output_schema()->fields()) {
    fields.push_back(f);
  }
  auto schema = Schema::Make(std::move(fields));
  return OperatorPtr(new HashJoinOperator(
      std::move(probe), std::move(build), std::move(probe_keys),
      std::move(build_keys), std::move(schema)));
}

Status HashJoinOperator::Open() {
  table_.clear();
  build_rows_.reset();
  built_ = false;
  NODB_RETURN_NOT_OK(probe_->Open());
  return build_->Open();
}

Status HashJoinOperator::BuildTable() {
  build_rows_ = std::make_shared<RecordBatch>(build_->output_schema());
  size_t rows = 0;
  std::string key;
  while (true) {
    auto next = build_->Next();
    NODB_RETURN_NOT_OK(next.status());
    BatchPtr batch = *next;
    if (batch == nullptr) break;

    std::vector<std::shared_ptr<ColumnVector>> key_cols;
    for (const auto& expr : build_keys_) {
      auto col = expr->Evaluate(*batch);
      NODB_RETURN_NOT_OK(col.status());
      key_cols.push_back(*col);
    }
    for (size_t i = 0; i < batch->num_rows(); ++i) {
      for (size_t c = 0; c < batch->num_columns(); ++c) {
        build_rows_->column(c).AppendFrom(batch->column(c), i);
      }
      key.clear();
      bool valid = true;
      for (const auto& col : key_cols) {
        if (!AppendJoinKey(*col, i, &key)) {
          valid = false;
          break;
        }
      }
      if (valid) table_.emplace(key, rows);
      ++rows;
    }
  }
  build_rows_->SetNumRows(rows);
  return Status::OK();
}

Result<BatchPtr> HashJoinOperator::Next() {
  if (!built_) {
    NODB_RETURN_NOT_OK(BuildTable());
    built_ = true;
  }
  std::string key;
  while (true) {
    NODB_ASSIGN_OR_RETURN(BatchPtr batch, probe_->Next());
    if (batch == nullptr) return BatchPtr();

    std::vector<std::shared_ptr<ColumnVector>> key_cols;
    for (const auto& expr : probe_keys_) {
      NODB_ASSIGN_OR_RETURN(auto col, expr->Evaluate(*batch));
      key_cols.push_back(std::move(col));
    }

    auto out = std::make_shared<RecordBatch>(schema_);
    size_t out_rows = 0;
    size_t probe_cols = batch->num_columns();
    for (size_t i = 0; i < batch->num_rows(); ++i) {
      key.clear();
      bool valid = true;
      for (const auto& col : key_cols) {
        if (!AppendJoinKey(*col, i, &key)) {
          valid = false;
          break;
        }
      }
      if (!valid) continue;
      auto [lo, hi] = table_.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        for (size_t c = 0; c < probe_cols; ++c) {
          out->column(c).AppendFrom(batch->column(c), i);
        }
        for (size_t c = 0; c < build_rows_->num_columns(); ++c) {
          out->column(probe_cols + c)
              .AppendFrom(build_rows_->column(c), it->second);
        }
        ++out_rows;
      }
    }
    if (out_rows == 0) continue;
    out->SetNumRows(out_rows);
    return out;
  }
}

}  // namespace nodb
