#ifndef NODB_EXEC_HASH_JOIN_H_
#define NODB_EXEC_HASH_JOIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace nodb {

/// Inner equi-join: builds a hash table on the right (build) input,
/// then streams the left (probe) input. Output schema is the left
/// fields followed by the right fields (the binder qualifies duplicate
/// names before planning).
class HashJoinOperator final : public ExecOperator {
 public:
  static Result<OperatorPtr> Create(OperatorPtr probe, OperatorPtr build,
                                    std::vector<ExprPtr> probe_keys,
                                    std::vector<ExprPtr> build_keys);

  Status Open() override;
  Result<BatchPtr> Next() override;
  std::shared_ptr<Schema> output_schema() const override { return schema_; }

 private:
  HashJoinOperator(OperatorPtr probe, OperatorPtr build,
                   std::vector<ExprPtr> probe_keys,
                   std::vector<ExprPtr> build_keys,
                   std::shared_ptr<Schema> schema)
      : probe_(std::move(probe)),
        build_(std::move(build)),
        probe_keys_(std::move(probe_keys)),
        build_keys_(std::move(build_keys)),
        schema_(std::move(schema)) {}

  Status BuildTable();

  OperatorPtr probe_;
  OperatorPtr build_;
  std::vector<ExprPtr> probe_keys_;
  std::vector<ExprPtr> build_keys_;
  std::shared_ptr<Schema> schema_;

  BatchPtr build_rows_;  // materialized build side
  std::unordered_multimap<std::string, size_t> table_;
  bool built_ = false;
};

}  // namespace nodb

#endif  // NODB_EXEC_HASH_JOIN_H_
