#include "exec/limit.h"

namespace nodb {

Status LimitOperator::Open() {
  skipped_ = 0;
  emitted_ = 0;
  return child_->Open();
}

Result<BatchPtr> LimitOperator::Next() {
  while (emitted_ < limit_) {
    NODB_ASSIGN_OR_RETURN(BatchPtr batch, child_->Next());
    if (batch == nullptr) return BatchPtr();
    size_t n = batch->num_rows();

    size_t begin = 0;
    if (skipped_ < offset_) {
      uint64_t skip = std::min<uint64_t>(offset_ - skipped_, n);
      skipped_ += skip;
      begin = skip;
      if (begin >= n) continue;
    }
    size_t take = std::min<uint64_t>(limit_ - emitted_, n - begin);
    emitted_ += take;
    if (begin == 0 && take == n) return batch;

    auto out = std::make_shared<RecordBatch>(batch->schema());
    for (size_t c = 0; c < batch->num_columns(); ++c) {
      ColumnVector& dst = out->column(c);
      dst.Reserve(take);
      for (size_t i = 0; i < take; ++i) {
        dst.AppendFrom(batch->column(c), begin + i);
      }
    }
    out->SetNumRows(take);
    return out;
  }
  return BatchPtr();
}

}  // namespace nodb
