#ifndef NODB_EXEC_QUERY_RESULT_H_
#define NODB_EXEC_QUERY_RESULT_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "types/record_batch.h"

namespace nodb {

/// A fully-materialized query answer.
///
/// Engines drain the root operator into one of these; tests and the
/// equivalence property suite compare results across engines via
/// CanonicalRows().
class QueryResult {
 public:
  QueryResult() = default;

  /// Drains `op` (Open + Next-until-null).
  static Result<QueryResult> Drain(ExecOperator* op);

  const std::shared_ptr<Schema>& schema() const { return schema_; }
  size_t num_rows() const { return rows_ ? rows_->num_rows() : 0; }

  std::vector<Value> Row(size_t i) const { return rows_->Row(i); }
  const RecordBatch& batch() const { return *rows_; }

  /// All rows rendered to strings and sorted — an order-insensitive
  /// canonical form for cross-engine comparison.
  std::vector<std::string> CanonicalRows() const;

  /// Pretty-prints up to `max_rows` rows with a header.
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::shared_ptr<Schema> schema_;
  BatchPtr rows_;
};

}  // namespace nodb

#endif  // NODB_EXEC_QUERY_RESULT_H_
