#ifndef NODB_EXEC_QUERY_RESULT_H_
#define NODB_EXEC_QUERY_RESULT_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "types/record_batch.h"

namespace nodb {

/// Incremental consumer of a query's output stream.
///
/// Handed to QueryResult::Drain (and up the stack to
/// Engine::ExecuteStreaming) to observe result batches as the Volcano
/// loop produces them instead of after full materialization — the
/// server front end forwards each batch over the wire this way.
/// OnSchema is called exactly once, before any batch; returning a
/// non-OK Status from either hook aborts the drain (a dead client
/// connection stops its query at the next batch boundary).
class BatchSink {
 public:
  virtual ~BatchSink() = default;

  virtual Status OnSchema(const std::shared_ptr<Schema>& schema) = 0;
  virtual Status OnBatch(const RecordBatch& batch) = 0;
};

/// A fully-materialized query answer.
///
/// Engines drain the root operator into one of these; tests and the
/// equivalence property suite compare results across engines via
/// CanonicalRows().
class QueryResult {
 public:
  QueryResult() = default;

  /// Drains `op` (Open + Next-until-null), checking the thread's
  /// installed QueryCancelFlag (exec/cancel.h) at each batch boundary.
  /// With a sink, batches are forwarded to it instead of being
  /// materialized: the returned QueryResult carries the schema and an
  /// empty batch, and the sink is the sole owner of the rows.
  static Result<QueryResult> Drain(ExecOperator* op,
                                   BatchSink* sink = nullptr);

  /// Wraps an already-built batch (e.g. decoded from the wire by
  /// server/client.h) so remote results render through the exact same
  /// ToString/CanonicalRows code as local ones.
  static QueryResult FromParts(std::shared_ptr<Schema> schema,
                               BatchPtr rows);

  const std::shared_ptr<Schema>& schema() const { return schema_; }
  size_t num_rows() const { return rows_ ? rows_->num_rows() : 0; }

  std::vector<Value> Row(size_t i) const { return rows_->Row(i); }
  const RecordBatch& batch() const { return *rows_; }

  /// All rows rendered to strings and sorted — an order-insensitive
  /// canonical form for cross-engine comparison.
  std::vector<std::string> CanonicalRows() const;

  /// Pretty-prints up to `max_rows` rows with a header.
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::shared_ptr<Schema> schema_;
  BatchPtr rows_;
};

}  // namespace nodb

#endif  // NODB_EXEC_QUERY_RESULT_H_
