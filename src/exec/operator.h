#ifndef NODB_EXEC_OPERATOR_H_
#define NODB_EXEC_OPERATOR_H_

#include <memory>

#include "types/record_batch.h"
#include "types/schema.h"
#include "util/result.h"
#include "util/status.h"

namespace nodb {

using BatchPtr = std::shared_ptr<RecordBatch>;

/// Vectorized volcano operator: pull batches until nullptr (exhausted).
///
/// The contract mirrors the paper's architecture claim — PostgresRaw
/// "overrides the scan operator … the rest of the query plan works
/// without any changes": every plan above the leaf uses this interface
/// only, so the in-situ RawScanOperator, the loaded-table scan and the
/// test vector scan are interchangeable leaves.
class ExecOperator {
 public:
  virtual ~ExecOperator() = default;

  /// Called once before the first Next().
  virtual Status Open() = 0;

  /// Returns the next batch, or nullptr when exhausted.
  virtual Result<BatchPtr> Next() = 0;

  /// Schema of emitted batches.
  virtual std::shared_ptr<Schema> output_schema() const = 0;
};

using OperatorPtr = std::unique_ptr<ExecOperator>;

}  // namespace nodb

#endif  // NODB_EXEC_OPERATOR_H_
