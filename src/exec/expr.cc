#include "exec/expr.h"

#include <cassert>
#include <cmath>

#include "util/logging.h"

namespace nodb {

namespace {

/// Emits a boolean (kInt64 0/1) column.
std::shared_ptr<ColumnVector> MakeBoolColumn(size_t reserve) {
  auto col = std::make_shared<ColumnVector>(DataType::kInt64);
  col->Reserve(reserve);
  return col;
}

bool IsComparableNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kDate;
}

template <typename T>
bool ApplyCompare(CompareOp op, const T& a, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

// ---------------------------------------------------------------- ColumnRef

Result<DataType> ColumnRefExpr::OutputType(const Schema& schema) const {
  if (index_ >= schema.num_fields()) {
    return Status::Internal("column index out of range: " +
                            std::to_string(index_));
  }
  return schema.field(index_).type;
}

Result<std::shared_ptr<ColumnVector>> ColumnRefExpr::Evaluate(
    const RecordBatch& batch) const {
  if (index_ >= batch.num_columns()) {
    return Status::Internal("column index out of range in batch");
  }
  return batch.column_ptr(index_);
}

// ------------------------------------------------------------------ Literal

Result<DataType> LiteralExpr::OutputType(const Schema&) const {
  return type_;
}

Result<std::shared_ptr<ColumnVector>> LiteralExpr::Evaluate(
    const RecordBatch& batch) const {
  auto col = std::make_shared<ColumnVector>(type_);
  col->Reserve(batch.num_rows());
  for (size_t i = 0; i < batch.num_rows(); ++i) col->AppendValue(value_);
  return col;
}

// ------------------------------------------------------------------ Compare

Result<DataType> CompareExpr::OutputType(const Schema& schema) const {
  NODB_ASSIGN_OR_RETURN(DataType lt, left_->OutputType(schema));
  NODB_ASSIGN_OR_RETURN(DataType rt, right_->OutputType(schema));
  bool ok = (IsComparableNumeric(lt) && IsComparableNumeric(rt)) ||
            (lt == DataType::kString && rt == DataType::kString);
  if (!ok) {
    return Status::InvalidArgument(
        "cannot compare " + std::string(DataTypeToString(lt)) + " with " +
        std::string(DataTypeToString(rt)) + " in " + ToString());
  }
  return DataType::kInt64;
}

Result<std::shared_ptr<ColumnVector>> CompareExpr::Evaluate(
    const RecordBatch& batch) const {
  NODB_ASSIGN_OR_RETURN(auto lhs, left_->Evaluate(batch));
  NODB_ASSIGN_OR_RETURN(auto rhs, right_->Evaluate(batch));
  size_t n = batch.num_rows();
  auto out = MakeBoolColumn(n);

  const bool strings = lhs->type() == DataType::kString;
  // Integer-exact path when neither side is floating point.
  const bool int_exact = !strings && lhs->type() != DataType::kDouble &&
                         rhs->type() != DataType::kDouble;
  for (size_t i = 0; i < n; ++i) {
    if (lhs->IsNull(i) || rhs->IsNull(i)) {
      out->AppendNull();
      continue;
    }
    bool pass;
    if (strings) {
      pass = ApplyCompare(op_, lhs->GetString(i), rhs->GetString(i));
    } else if (int_exact) {
      pass = ApplyCompare(op_, lhs->GetInt64(i), rhs->GetInt64(i));
    } else {
      pass = ApplyCompare(op_, lhs->GetNumeric(i), rhs->GetNumeric(i));
    }
    out->AppendInt64(pass ? 1 : 0);
  }
  return out;
}

std::string CompareExpr::ToString() const {
  return "(" + left_->ToString() + " " +
         std::string(CompareOpToString(op_)) + " " + right_->ToString() +
         ")";
}

// ------------------------------------------------------------------ Logical

Result<DataType> LogicalExpr::OutputType(const Schema& schema) const {
  NODB_ASSIGN_OR_RETURN(DataType lt, left_->OutputType(schema));
  if (lt != DataType::kInt64) {
    return Status::InvalidArgument("logical operand is not boolean: " +
                                   left_->ToString());
  }
  if (right_) {
    NODB_ASSIGN_OR_RETURN(DataType rt, right_->OutputType(schema));
    if (rt != DataType::kInt64) {
      return Status::InvalidArgument("logical operand is not boolean: " +
                                     right_->ToString());
    }
  }
  return DataType::kInt64;
}

Result<std::shared_ptr<ColumnVector>> LogicalExpr::Evaluate(
    const RecordBatch& batch) const {
  NODB_ASSIGN_OR_RETURN(auto lhs, left_->Evaluate(batch));
  size_t n = batch.num_rows();
  auto out = MakeBoolColumn(n);

  if (op_ == LogicalOp::kNot) {
    for (size_t i = 0; i < n; ++i) {
      if (lhs->IsNull(i)) {
        out->AppendNull();
      } else {
        out->AppendInt64(lhs->GetInt64(i) != 0 ? 0 : 1);
      }
    }
    return out;
  }

  NODB_ASSIGN_OR_RETURN(auto rhs, right_->Evaluate(batch));
  for (size_t i = 0; i < n; ++i) {
    // Three-valued logic: unknown (NULL) combines per SQL rules.
    int l = lhs->IsNull(i) ? -1 : (lhs->GetInt64(i) != 0 ? 1 : 0);
    int r = rhs->IsNull(i) ? -1 : (rhs->GetInt64(i) != 0 ? 1 : 0);
    int v;
    if (op_ == LogicalOp::kAnd) {
      if (l == 0 || r == 0) {
        v = 0;
      } else if (l == -1 || r == -1) {
        v = -1;
      } else {
        v = 1;
      }
    } else {  // OR
      if (l == 1 || r == 1) {
        v = 1;
      } else if (l == -1 || r == -1) {
        v = -1;
      } else {
        v = 0;
      }
    }
    if (v == -1) {
      out->AppendNull();
    } else {
      out->AppendInt64(v);
    }
  }
  return out;
}

std::string LogicalExpr::ToString() const {
  if (op_ == LogicalOp::kNot) return "(NOT " + left_->ToString() + ")";
  return "(" + left_->ToString() +
         (op_ == LogicalOp::kAnd ? " AND " : " OR ") + right_->ToString() +
         ")";
}

// --------------------------------------------------------------- Arithmetic

Result<DataType> ArithExpr::OutputType(const Schema& schema) const {
  NODB_ASSIGN_OR_RETURN(DataType lt, left_->OutputType(schema));
  NODB_ASSIGN_OR_RETURN(DataType rt, right_->OutputType(schema));
  if (!IsComparableNumeric(lt) || !IsComparableNumeric(rt)) {
    return Status::InvalidArgument("arithmetic on non-numeric operand in " +
                                   ToString());
  }
  if (op_ != ArithOp::kDiv && lt != DataType::kDouble &&
      rt != DataType::kDouble) {
    return DataType::kInt64;
  }
  return DataType::kDouble;
}

Result<std::shared_ptr<ColumnVector>> ArithExpr::Evaluate(
    const RecordBatch& batch) const {
  NODB_ASSIGN_OR_RETURN(auto lhs, left_->Evaluate(batch));
  NODB_ASSIGN_OR_RETURN(auto rhs, right_->Evaluate(batch));
  size_t n = batch.num_rows();
  bool int_out = op_ != ArithOp::kDiv &&
                 lhs->type() != DataType::kDouble &&
                 rhs->type() != DataType::kDouble;
  auto out = std::make_shared<ColumnVector>(
      int_out ? DataType::kInt64 : DataType::kDouble);
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (lhs->IsNull(i) || rhs->IsNull(i)) {
      out->AppendNull();
      continue;
    }
    if (int_out) {
      int64_t a = lhs->GetInt64(i);
      int64_t b = rhs->GetInt64(i);
      int64_t v = 0;
      switch (op_) {
        case ArithOp::kAdd:
          v = a + b;
          break;
        case ArithOp::kSub:
          v = a - b;
          break;
        case ArithOp::kMul:
          v = a * b;
          break;
        case ArithOp::kDiv:
          break;  // unreachable: division always emits double
      }
      out->AppendInt64(v);
    } else {
      double a = lhs->GetNumeric(i);
      double b = rhs->GetNumeric(i);
      double v = 0;
      switch (op_) {
        case ArithOp::kAdd:
          v = a + b;
          break;
        case ArithOp::kSub:
          v = a - b;
          break;
        case ArithOp::kMul:
          v = a * b;
          break;
        case ArithOp::kDiv:
          if (b == 0) {
            out->AppendNull();  // SQL engines yield error; we yield NULL
            continue;
          }
          v = a / b;
          break;
      }
      out->AppendDouble(v);
    }
  }
  return out;
}

std::string ArithExpr::ToString() const {
  return "(" + left_->ToString() + " " +
         std::string(ArithOpToString(op_)) + " " + right_->ToString() + ")";
}

// ------------------------------------------------------------------ IsNull

Result<DataType> IsNullExpr::OutputType(const Schema& schema) const {
  NODB_RETURN_NOT_OK(input_->OutputType(schema).status());
  return DataType::kInt64;
}

Result<std::shared_ptr<ColumnVector>> IsNullExpr::Evaluate(
    const RecordBatch& batch) const {
  NODB_ASSIGN_OR_RETURN(auto in, input_->Evaluate(batch));
  size_t n = batch.num_rows();
  auto out = MakeBoolColumn(n);
  for (size_t i = 0; i < n; ++i) {
    bool is_null = in->IsNull(i);
    out->AppendInt64((is_null != negated_) ? 1 : 0);
  }
  return out;
}

std::string IsNullExpr::ToString() const {
  return "(" + input_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL") +
         ")";
}

// -------------------------------------------------------------------- Like

Result<DataType> LikeExpr::OutputType(const Schema& schema) const {
  NODB_ASSIGN_OR_RETURN(DataType t, input_->OutputType(schema));
  if (t != DataType::kString) {
    return Status::InvalidArgument("LIKE on non-string operand in " +
                                   ToString());
  }
  return DataType::kInt64;
}

bool LikeExpr::Match(std::string_view text, std::string_view pattern) {
  // Iterative wildcard match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<std::shared_ptr<ColumnVector>> LikeExpr::Evaluate(
    const RecordBatch& batch) const {
  NODB_ASSIGN_OR_RETURN(auto in, input_->Evaluate(batch));
  size_t n = batch.num_rows();
  auto out = MakeBoolColumn(n);
  for (size_t i = 0; i < n; ++i) {
    if (in->IsNull(i)) {
      out->AppendNull();
      continue;
    }
    bool m = Match(in->GetString(i), pattern_);
    out->AppendInt64((m != negated_) ? 1 : 0);
  }
  return out;
}

std::string LikeExpr::ToString() const {
  return "(" + input_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
         pattern_ + "')";
}

// ------------------------------------------------------------------ Rebase

ExprPtr RebaseColumnRefs(const ExprPtr& e, size_t delta) {
  if (e == nullptr) return nullptr;
  if (const auto* ref = dynamic_cast<const ColumnRefExpr*>(e.get())) {
    NODB_CHECK(ref->index() >= delta);
    return std::make_shared<ColumnRefExpr>(ref->index() - delta,
                                           ref->name(), ref->type());
  }
  if (dynamic_cast<const LiteralExpr*>(e.get()) != nullptr) {
    return e;  // no column references; share the node
  }
  if (const auto* cmp = dynamic_cast<const CompareExpr*>(e.get())) {
    ExprPtr l = RebaseColumnRefs(cmp->left(), delta);
    ExprPtr r = RebaseColumnRefs(cmp->right(), delta);
    if (l == nullptr || r == nullptr) return nullptr;
    return std::make_shared<CompareExpr>(cmp->op(), std::move(l),
                                         std::move(r));
  }
  if (const auto* logical = dynamic_cast<const LogicalExpr*>(e.get())) {
    ExprPtr l = RebaseColumnRefs(logical->left(), delta);
    if (l == nullptr) return nullptr;
    ExprPtr r;
    if (logical->op() != LogicalOp::kNot) {
      r = RebaseColumnRefs(logical->right(), delta);
      if (r == nullptr) return nullptr;
    }
    return std::make_shared<LogicalExpr>(logical->op(), std::move(l),
                                         std::move(r));
  }
  if (const auto* arith = dynamic_cast<const ArithExpr*>(e.get())) {
    ExprPtr l = RebaseColumnRefs(arith->left(), delta);
    ExprPtr r = RebaseColumnRefs(arith->right(), delta);
    if (l == nullptr || r == nullptr) return nullptr;
    return std::make_shared<ArithExpr>(arith->op(), std::move(l),
                                       std::move(r));
  }
  if (const auto* isnull = dynamic_cast<const IsNullExpr*>(e.get())) {
    ExprPtr in = RebaseColumnRefs(isnull->input(), delta);
    if (in == nullptr) return nullptr;
    return std::make_shared<IsNullExpr>(std::move(in), isnull->negated());
  }
  if (const auto* like = dynamic_cast<const LikeExpr*>(e.get())) {
    ExprPtr in = RebaseColumnRefs(like->input(), delta);
    if (in == nullptr) return nullptr;
    return std::make_shared<LikeExpr>(std::move(in), like->pattern(),
                                      like->negated());
  }
  return nullptr;  // unknown node kind: caller keeps the original plan
}

}  // namespace nodb
