#include "exec/project.h"

namespace nodb {

Result<OperatorPtr> ProjectOperator::Create(OperatorPtr child,
                                            std::vector<ExprPtr> exprs,
                                            std::vector<std::string> names) {
  if (exprs.size() != names.size()) {
    return Status::Internal("projection exprs/names size mismatch");
  }
  std::vector<Field> fields;
  fields.reserve(exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    NODB_ASSIGN_OR_RETURN(DataType t,
                          exprs[i]->OutputType(*child->output_schema()));
    fields.push_back(Field{names[i], t});
  }
  return OperatorPtr(new ProjectOperator(std::move(child), std::move(exprs),
                                         Schema::Make(std::move(fields))));
}

Status ProjectOperator::Open() { return child_->Open(); }

Result<BatchPtr> ProjectOperator::Next() {
  NODB_ASSIGN_OR_RETURN(BatchPtr batch, child_->Next());
  if (batch == nullptr) return BatchPtr();
  std::vector<std::shared_ptr<ColumnVector>> cols;
  cols.reserve(exprs_.size());
  for (const auto& expr : exprs_) {
    NODB_ASSIGN_OR_RETURN(auto col, expr->Evaluate(*batch));
    cols.push_back(std::move(col));
  }
  return std::make_shared<RecordBatch>(schema_, std::move(cols),
                                       batch->num_rows());
}

}  // namespace nodb
