#ifndef NODB_EXEC_DISTINCT_H_
#define NODB_EXEC_DISTINCT_H_

#include <memory>
#include <string>
#include <unordered_set>

#include "exec/operator.h"

namespace nodb {

/// SELECT DISTINCT: streaming hash-based row deduplication. Rows are
/// serialized (type-tagged, NULL-aware) and emitted on first sight, so
/// the operator pipelines — no full materialization.
class DistinctOperator final : public ExecOperator {
 public:
  explicit DistinctOperator(OperatorPtr child)
      : child_(std::move(child)) {}

  Status Open() override;
  Result<BatchPtr> Next() override;
  std::shared_ptr<Schema> output_schema() const override {
    return child_->output_schema();
  }

 private:
  OperatorPtr child_;
  std::unordered_set<std::string> seen_;
};

}  // namespace nodb

#endif  // NODB_EXEC_DISTINCT_H_
