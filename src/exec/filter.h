#ifndef NODB_EXEC_FILTER_H_
#define NODB_EXEC_FILTER_H_

#include <memory>

#include "exec/expr.h"
#include "exec/operator.h"

namespace nodb {

/// Keeps rows whose predicate evaluates to TRUE (not FALSE, not NULL).
///
/// Filtering happens column-at-a-time: the predicate produces a boolean
/// column and passing rows are gathered into a fresh batch. Combined
/// with the leaf scans emitting only required columns, this realizes the
/// paper's *selective tuple formation* — full tuples never exist for
/// rows that do not qualify.
class FilterOperator final : public ExecOperator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Open() override;
  Result<BatchPtr> Next() override;
  std::shared_ptr<Schema> output_schema() const override {
    return child_->output_schema();
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

}  // namespace nodb

#endif  // NODB_EXEC_FILTER_H_
