#include "csv/tokenizer.h"

#include <cstring>

namespace nodb {

uint32_t CsvTokenizer::ScanStarts(Slice line, uint32_t from_field,
                                  uint32_t from_offset, uint32_t until_field,
                                  uint32_t* starts) const {
  // CRLF tolerance at the record level: a trailing '\r' is a line-ending
  // artifact, not data, and must not leak into the last field.
  if (!line.empty() && line[line.size() - 1] == '\r') {
    line = line.SubSlice(0, line.size() - 1);
  }
  uint32_t field = from_field;
  uint32_t pos = from_offset;
  starts[field] = pos;
  const char* data = line.data();
  const uint32_t size = static_cast<uint32_t>(line.size());
  const char delim = dialect_.delimiter;

  if (field >= until_field) return field;

  if (!dialect_.allow_quoting) {
    // Fast path: fields cannot contain the delimiter, so each boundary
    // is the next delimiter byte.
    if (level_ != simd::SimdLevel::kScalar) {
      // Wide-register variant: one kernel call finds every remaining
      // boundary up to `until_field` and, with bias 1, writes the field
      // starts directly into place.
      const size_t found = simd::FindBytePositions(
          level_, data, size, pos, delim, until_field - field, /*bias=*/1,
          starts + field + 1);
      field += static_cast<uint32_t>(found);
      if (field >= until_field) return field;
      starts[field + 1] = size + 1;
      return field + 1;
    }
    while (pos <= size) {
      const char* hit = static_cast<const char*>(
          std::memchr(data + pos, delim, size - pos));
      if (hit == nullptr) {
        // Line exhausted: `field` is the last field.
        starts[field + 1] = size + 1;
        return field + 1;
      }
      pos = static_cast<uint32_t>(hit - data) + 1;
      ++field;
      starts[field] = pos;
      if (field >= until_field) return field;
    }
    starts[field + 1] = size + 1;
    return field + 1;
  }

  // Quote-aware path.
  while (true) {
    // `pos` is at the start of the current field's content.
    uint32_t cur = pos;
    if (cur < size && data[cur] == dialect_.quote) {
      // Scan to the closing quote, honoring doubled-quote escapes.
      ++cur;
      while (cur < size) {
        if (data[cur] == dialect_.quote) {
          if (cur + 1 < size && data[cur + 1] == dialect_.quote) {
            cur += 2;  // escaped quote
          } else {
            ++cur;  // closing quote
            break;
          }
        } else {
          ++cur;
        }
      }
    }
    // Scan to the delimiter (content after a closing quote is kept
    // verbatim, matching lenient RFC-4180 readers).
    while (cur < size && data[cur] != delim) ++cur;
    if (cur >= size) {
      starts[field + 1] = size + 1;
      return field + 1;
    }
    pos = cur + 1;
    ++field;
    starts[field] = pos;
    if (field >= until_field) return field;
  }
}

uint32_t CsvTokenizer::TokenizeLine(Slice line,
                                    std::vector<uint32_t>* starts) const {
  starts->clear();
  // Upper bound on the number of fields: one per byte plus one.
  starts->resize(line.size() + 2);
  uint32_t high = ScanStarts(line, 0, 0,
                             static_cast<uint32_t>(line.size() + 1),
                             starts->data());
  // ScanStarts exhausted the line, so `high` = field count + ... the
  // virtual start index, i.e. the count itself.
  starts->resize(high + 1);
  return high;
}

Slice CsvTokenizer::DecodeField(Slice raw, std::string* scratch) const {
  if (!dialect_.allow_quoting || raw.size() < 2 ||
      raw[0] != dialect_.quote || raw[raw.size() - 1] != dialect_.quote) {
    return raw;
  }
  Slice inner = raw.SubSlice(1, raw.size() - 2);
  // Fast path: no embedded quotes to unescape.
  if (std::memchr(inner.data(), dialect_.quote, inner.size()) == nullptr) {
    return inner;
  }
  scratch->clear();
  for (size_t i = 0; i < inner.size(); ++i) {
    char c = inner[i];
    scratch->push_back(c);
    if (c == dialect_.quote && i + 1 < inner.size() &&
        inner[i + 1] == dialect_.quote) {
      ++i;  // skip the second quote of the pair
    }
  }
  return Slice(*scratch);
}

}  // namespace nodb
