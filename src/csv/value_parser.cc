#include "csv/value_parser.h"

#include <charconv>

#include "types/date_util.h"

namespace nodb {

namespace {

/// std::from_chars rejects a leading '+', but real-world numeric CSV
/// columns ("+3.5") use it. Returns `text` without an explicit plus
/// sign; the next character must begin the number proper ("+-3", "+"
/// and "++1" stay invalid because from_chars then sees a sign).
Slice StripLeadingPlus(Slice text) {
  if (text.size() >= 2 && text[0] == '+' && text[1] != '+' &&
      text[1] != '-') {
    text.RemovePrefix(1);
  }
  return text;
}

}  // namespace

Result<int64_t> ValueParser::ParseInt64(Slice text) {
  Slice digits = StripLeadingPlus(text);
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    return Status::ParseError("not an integer: '" + text.ToString() + "'");
  }
  return value;
}

Result<double> ValueParser::ParseDouble(Slice text) {
  Slice digits = StripLeadingPlus(text);
  double value = 0;
  auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    return Status::ParseError("not a number: '" + text.ToString() + "'");
  }
  return value;
}

Result<int64_t> ValueParser::ParseDateDays(Slice text) {
  return ParseDate(text.view());
}

Status ValueParser::ParseInto(Slice text, DataType type,
                              ColumnVector* col) {
  if (text.empty()) {
    col->AppendNull();
    return Status::OK();
  }
  switch (type) {
    case DataType::kInt64: {
      NODB_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      col->AppendInt64(v);
      return Status::OK();
    }
    case DataType::kDouble: {
      NODB_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      col->AppendDouble(v);
      return Status::OK();
    }
    case DataType::kString:
      col->AppendString(text);
      return Status::OK();
    case DataType::kDate: {
      NODB_ASSIGN_OR_RETURN(int64_t v, ParseDateDays(text));
      col->AppendDate(v);
      return Status::OK();
    }
  }
  return Status::Internal("unhandled type in ParseInto");
}

}  // namespace nodb
