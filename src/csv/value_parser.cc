#include "csv/value_parser.h"

#include <charconv>
#include <cstring>

#include "types/date_util.h"

namespace nodb {

namespace {

/// std::from_chars rejects a leading '+', but real-world numeric CSV
/// columns ("+3.5") use it. Returns `text` without an explicit plus
/// sign; the next character must begin the number proper ("+-3", "+"
/// and "++1" stay invalid because from_chars then sees a sign).
Slice StripLeadingPlus(Slice text) {
  if (text.size() >= 2 && text[0] == '+' && text[1] != '+' &&
      text[1] != '-') {
    text.RemovePrefix(1);
  }
  return text;
}

// The branchless fast paths below accept only inputs whose value they
// produce bit-identically to std::from_chars (the differential fuzz in
// tests/csv_test.cc holds them to that); every other shape — including
// every malformed one — falls through, so from_chars remains the single
// authority on what parses and what the error text quotes.

// The SWAR digit tricks assume little-endian byte order (the first
// character must land in the low-order byte).
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define NODB_SWAR_LITTLE_ENDIAN 1
#else
#define NODB_SWAR_LITTLE_ENDIAN 0
#endif

/// Branchless conversion of 8 ASCII digits at `p` into their numeric
/// value: validate all 8 bytes at once with nibble masks, then reduce
/// pairs → quads → all 8 with three multiply-shift steps instead of a
/// per-byte loop. Returns false (leaving *out alone) when any byte is
/// not a digit.
inline bool Parse8Digits(const char* p, uint32_t* out) {
#if NODB_SWAR_LITTLE_ENDIAN
  uint64_t chunk;
  std::memcpy(&chunk, p, 8);
  // All high nibbles must be 3, and adding 6 to each low nibble must
  // not carry (i.e. every low nibble <= 9).
  if ((chunk & 0xF0F0F0F0F0F0F0F0ull) != 0x3030303030303030ull ||
      (((chunk + 0x0606060606060606ull) & 0xF0F0F0F0F0F0F0F0ull) !=
       0x3030303030303030ull)) {
    return false;
  }
  chunk &= 0x0F0F0F0F0F0F0F0Full;
  chunk = (chunk * ((10ull << 8) + 1)) >> 8;
  chunk = ((chunk & 0x00FF00FF00FF00FFull) * ((100ull << 16) + 1)) >> 16;
  chunk = ((chunk & 0x0000FFFF0000FFFFull) * ((10000ull << 32) + 1)) >> 32;
  *out = static_cast<uint32_t>(chunk);
  return true;
#else
  uint32_t value = 0;
  for (int i = 0; i < 8; ++i) {
    const uint32_t digit = static_cast<uint32_t>(p[i]) - '0';
    if (digit > 9) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
#endif
}

/// Exact double powers of ten: every entry up to 10^22 is exactly
/// representable, the precondition for the Clinger fast path below.
constexpr double kExactPow10[] = {
    1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
    1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22};

/// Clinger's fast path for plain decimals ("123", "-0.25", "1.050"):
/// when the digit string fits a 53-bit mantissa exactly and the scale
/// is within 10^±22, mantissa-as-double divided by an exact power of
/// ten is a single correctly-rounded operation — bit-identical to
/// from_chars. Exponent forms, inf/nan spellings, over-long digit
/// strings and everything malformed return false for the caller's
/// from_chars fallback.
inline bool FastParseDouble(const char* p, size_t size, double* out) {
  size_t i = 0;
  const bool negative = size > 0 && p[0] == '-';
  if (negative) i = 1;
  uint64_t mantissa = 0;
  int digit_count = 0;
  int frac_digits = 0;
  bool seen_dot = false;
  for (; i < size; ++i) {
    const char c = p[i];
    const uint32_t digit = static_cast<uint32_t>(c) - '0';
    if (digit <= 9) {
      if (++digit_count > 19) return false;  // may not fit 64 bits
      mantissa = mantissa * 10 + digit;
      frac_digits += seen_dot ? 1 : 0;
    } else if (c == '.' && !seen_dot) {
      seen_dot = true;
    } else {
      return false;
    }
  }
  if (digit_count == 0) return false;
  if (mantissa > (uint64_t{1} << 53)) return false;
  if (frac_digits > 22) return false;
  double value = static_cast<double>(mantissa);
  if (frac_digits > 0) value /= kExactPow10[frac_digits];
  *out = negative ? -value : value;
  return true;
}

}  // namespace

Result<int64_t> ValueParser::ParseInt64(Slice text) {
  Slice digits = StripLeadingPlus(text);
  const char* p = digits.data();
  size_t size = digits.size();
  bool negative = false;
  if (size > 0 && p[0] == '-') {
    negative = true;
    ++p;
    --size;
  }
  // Fast path: up to 18 digits cannot overflow int64, so the only
  // validation needed is digit-ness — done 8 bytes at a time.
  if (size >= 1 && size <= 18) {
    uint64_t magnitude = 0;
    size_t i = 0;
    bool all_digits = true;
    for (; i + 8 <= size; i += 8) {
      uint32_t chunk;
      if (!Parse8Digits(p + i, &chunk)) {
        all_digits = false;
        break;
      }
      magnitude = magnitude * 100000000u + chunk;
    }
    for (; all_digits && i < size; ++i) {
      const uint32_t digit = static_cast<uint32_t>(p[i]) - '0';
      if (digit > 9) {
        all_digits = false;
        break;
      }
      magnitude = magnitude * 10 + digit;
    }
    if (all_digits) {
      const int64_t value = static_cast<int64_t>(magnitude);
      return negative ? -value : value;
    }
  }
  // Slow path: 19/20-digit values near the int64 limits, and every
  // malformed input (from_chars owns rejection and overflow).
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    return Status::ParseError("not an integer: '" + text.ToString() + "'");
  }
  return value;
}

Result<double> ValueParser::ParseDouble(Slice text) {
  Slice digits = StripLeadingPlus(text);
  double fast = 0;
  if (FastParseDouble(digits.data(), digits.size(), &fast)) {
    return fast;
  }
  double value = 0;
  auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    return Status::ParseError("not a number: '" + text.ToString() + "'");
  }
  return value;
}

Result<int64_t> ValueParser::ParseDateDays(Slice text) {
  return ParseDate(text.view());
}

Status ValueParser::ParseInto(Slice text, DataType type,
                              ColumnVector* col) {
  if (text.empty()) {
    col->AppendNull();
    return Status::OK();
  }
  switch (type) {
    case DataType::kInt64: {
      NODB_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      col->AppendInt64(v);
      return Status::OK();
    }
    case DataType::kDouble: {
      NODB_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      col->AppendDouble(v);
      return Status::OK();
    }
    case DataType::kString:
      col->AppendString(text);
      return Status::OK();
    case DataType::kDate: {
      NODB_ASSIGN_OR_RETURN(int64_t v, ParseDateDays(text));
      col->AppendDate(v);
      return Status::OK();
    }
  }
  return Status::Internal("unhandled type in ParseInto");
}

}  // namespace nodb
