#ifndef NODB_CSV_CSV_WRITER_H_
#define NODB_CSV_CSV_WRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "csv/dialect.h"
#include "io/file.h"
#include "util/status.h"

namespace nodb {

/// Buffered writer of CSV records; used by the data generators and by
/// tests constructing raw fixtures.
///
/// When the dialect allows quoting, fields containing the delimiter,
/// quote or newline are quoted with doubled-quote escaping; otherwise
/// fields are written verbatim (the caller guarantees they are clean).
class CsvWriter {
 public:
  CsvWriter(std::unique_ptr<WritableFile> file, CsvDialect dialect,
            size_t buffer_bytes = 1 << 20);

  /// Writes one record followed by '\n'.
  Status WriteRecord(const std::vector<std::string>& fields);

  /// Appends one field of the current record (FinishRecord ends it).
  /// This avoids materializing a vector per row in tight generators.
  void BeginRecord();
  void AddField(std::string_view field);
  Status FinishRecord();

  /// Flushes buffered bytes and closes the file.
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  void AppendEscaped(std::string_view field);
  Status FlushBuffer();

  std::unique_ptr<WritableFile> file_;
  CsvDialect dialect_;
  std::string buffer_;
  size_t buffer_bytes_;
  uint64_t bytes_written_ = 0;
  bool record_open_ = false;
  bool first_field_ = true;
};

}  // namespace nodb

#endif  // NODB_CSV_CSV_WRITER_H_
