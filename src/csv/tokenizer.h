#ifndef NODB_CSV_TOKENIZER_H_
#define NODB_CSV_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "csv/dialect.h"
#include "simd/simd.h"
#include "util/slice.h"

namespace nodb {

/// Finds field boundaries inside one CSV record (a line without its
/// trailing newline).
///
/// Boundary representation used across the whole system — including the
/// adaptive positional map: `starts[f]` is the offset of the first byte
/// of field f, and a *virtual* start `starts[count] = line.size() + 1`
/// closes the last field, so for every field
///   content(f) == line[starts[f] .. starts[f+1] - 1)
/// (the byte before a start is the delimiter, except past end of line).
///
/// The scan primitives are incremental on purpose: *selective
/// tokenizing* (paper §3) stops at the last attribute a query needs,
/// and positional-map hits let the caller resume scanning from the
/// middle of a record rather than from byte 0.
///
/// A trailing '\r' on the record (CRLF line endings) is treated as part
/// of the line terminator, never as field content.
class CsvTokenizer {
 public:
  /// `level` picks the delimiter-scanning kernels for the unquoted fast
  /// path (the quote-aware path is inherently serial). Every level
  /// produces byte-identical boundaries; the default is the best tier
  /// the CPU offers unless a test forced another one.
  explicit CsvTokenizer(const CsvDialect& dialect,
                        simd::SimdLevel level = simd::ActiveLevel())
      : dialect_(dialect), level_(level) {}

  /// Incremental scan. `from_offset` must be the start of field
  /// `from_field` within `line` (commonly 0/0, or a positional-map
  /// anchor). Writes `starts[f]` for every field start discovered,
  /// stopping as soon as `starts[until_field]` is known or the line is
  /// exhausted. When the line is exhausted at final field L, also
  /// writes the virtual start `starts[L+1] = line.size()+1`.
  ///
  /// Returns the largest index `h` such that `starts[h]` is now valid.
  /// `h >= until_field` means the request was satisfied; otherwise the
  /// record has exactly `h` fields (h = L+1). `starts` must have room
  /// for `until_field + 1` entries.
  uint32_t ScanStarts(Slice line, uint32_t from_field, uint32_t from_offset,
                      uint32_t until_field, uint32_t* starts) const;

  /// Tokenizes the entire record. `starts` receives `count + 1` entries
  /// (including the virtual final start). Returns the field count.
  uint32_t TokenizeLine(Slice line, std::vector<uint32_t>* starts) const;

  /// Raw bytes of the field spanning [start, next_start - 1), given the
  /// virtual-start convention above.
  static Slice RawField(Slice line, uint32_t start, uint32_t next_start) {
    return line.SubSlice(start, next_start - 1 - start);
  }

  /// Removes the outer quotes of a quoted field and collapses doubled
  /// quotes; returns `raw` unchanged when unquoted. `scratch` backs the
  /// unescaped copy when unescaping is required.
  Slice DecodeField(Slice raw, std::string* scratch) const;

  const CsvDialect& dialect() const { return dialect_; }
  simd::SimdLevel level() const { return level_; }

 private:
  CsvDialect dialect_;
  simd::SimdLevel level_;
};

}  // namespace nodb

#endif  // NODB_CSV_TOKENIZER_H_
