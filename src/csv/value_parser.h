#ifndef NODB_CSV_VALUE_PARSER_H_
#define NODB_CSV_VALUE_PARSER_H_

#include <cstdint>

#include "types/column_vector.h"
#include "types/data_type.h"
#include "util/result.h"
#include "util/slice.h"

namespace nodb {

/// Converts raw field text into binary values (the paper's "parsing"
/// + "conversion" phase).
///
/// All parsers are locale-independent and allocation-free. Empty fields
/// parse as NULL for every type, matching the loaders of mainstream
/// systems.
class ValueParser {
 public:
  /// Parses decimal integers with optional sign.
  static Result<int64_t> ParseInt64(Slice text);

  /// Parses floating point (accepts integer-looking text too).
  static Result<double> ParseDouble(Slice text);

  /// Parses "YYYY-MM-DD" into days since epoch.
  static Result<int64_t> ParseDateDays(Slice text);

  /// Parses `text` as `type` and appends it to `col` (NULL when empty).
  static Status ParseInto(Slice text, DataType type, ColumnVector* col);
};

}  // namespace nodb

#endif  // NODB_CSV_VALUE_PARSER_H_
