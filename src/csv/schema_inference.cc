#include "csv/schema_inference.h"

#include <algorithm>
#include <vector>

#include "csv/tokenizer.h"
#include "csv/value_parser.h"
#include "io/buffered_reader.h"
#include "io/file.h"

namespace nodb {

namespace {

/// Type lattice position; larger = wider.
enum class Guess { kUnknown, kInt, kDate, kDouble, kString };

Guess GuessOf(Slice text) {
  if (ValueParser::ParseInt64(text).ok()) return Guess::kInt;
  if (ValueParser::ParseDouble(text).ok()) return Guess::kDouble;
  if (ValueParser::ParseDateDays(text).ok()) return Guess::kDate;
  return Guess::kString;
}

/// Widens `current` to also admit `observed`.
Guess Widen(Guess current, Guess observed) {
  if (current == Guess::kUnknown) return observed;
  if (current == observed) return current;
  // INT widens to DOUBLE; any numeric/date conflict widens to STRING.
  if ((current == Guess::kInt && observed == Guess::kDouble) ||
      (current == Guess::kDouble && observed == Guess::kInt)) {
    return Guess::kDouble;
  }
  return Guess::kString;
}

DataType ToDataType(Guess guess) {
  switch (guess) {
    case Guess::kInt:
      return DataType::kInt64;
    case Guess::kDouble:
      return DataType::kDouble;
    case Guess::kDate:
      return DataType::kDate;
    case Guess::kUnknown:
    case Guess::kString:
      return DataType::kString;
  }
  return DataType::kString;
}

}  // namespace

Result<InferredTable> InferSchema(const std::string& path,
                                  const CsvDialect& dialect,
                                  const InferenceOptions& options) {
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(path));
  BufferedReader reader(std::shared_ptr<RandomAccessFile>(std::move(file)));
  CsvTokenizer tokenizer(dialect);

  // Collect the raw fields of up to sample_rows+1 rows (the +1 is the
  // potential header).
  std::vector<std::vector<std::string>> rows;
  std::vector<uint32_t> starts;
  std::string scratch;
  uint64_t offset = 0;
  while (offset < reader.file_size() &&
         rows.size() < options.sample_rows + 1) {
    uint64_t line_end = 0;
    Status s = reader.FindNewline(offset, &line_end);
    if (!s.ok() && !s.IsOutOfRange()) return s;
    Slice line;
    NODB_RETURN_NOT_OK(reader.ReadAt(
        offset, static_cast<size_t>(line_end - offset), &line));
    // CRLF tolerance lives in the tokenizer; one layer trims.
    uint32_t nfields = tokenizer.TokenizeLine(line, &starts);
    std::vector<std::string> fields;
    fields.reserve(nfields);
    for (uint32_t f = 0; f < nfields; ++f) {
      Slice raw = CsvTokenizer::RawField(line, starts[f], starts[f + 1]);
      fields.emplace_back(tokenizer.DecodeField(raw, &scratch).view());
    }
    rows.push_back(std::move(fields));
    offset = line_end + 1;
  }
  if (rows.empty()) {
    return Status::InvalidArgument("cannot infer a schema from an empty "
                                   "file: " +
                                   path);
  }

  // Column count: the modal width of the sample (robust to stray rows).
  size_t num_columns = rows[0].size();
  {
    std::vector<std::pair<size_t, size_t>> widths;  // width -> count
    for (const auto& row : rows) {
      bool found = false;
      for (auto& [w, c] : widths) {
        if (w == row.size()) {
          ++c;
          found = true;
          break;
        }
      }
      if (!found) widths.emplace_back(row.size(), 1);
    }
    size_t best = 0;
    for (const auto& [w, c] : widths) {
      if (c > best) {
        best = c;
        num_columns = w;
      }
    }
  }

  auto infer_over = [&](size_t first_row) {
    std::vector<Guess> guesses(num_columns, Guess::kUnknown);
    for (size_t r = first_row; r < rows.size(); ++r) {
      if (rows[r].size() != num_columns) continue;
      for (size_t c = 0; c < num_columns; ++c) {
        const std::string& text = rows[r][c];
        if (text.empty()) continue;
        guesses[c] = Widen(guesses[c], GuessOf(text));
      }
    }
    return guesses;
  };

  // Header detection: the first row is a header when it is all-text
  // while the rest of the sample gives at least one column a narrower
  // type — i.e. the first row would *widen* an otherwise typed column.
  bool has_header = false;
  std::vector<Guess> guesses = infer_over(1);
  if (options.detect_header && rows.size() > 1 &&
      rows[0].size() == num_columns) {
    bool first_row_all_text = true;
    bool header_widens = false;
    for (size_t c = 0; c < num_columns; ++c) {
      if (rows[0][c].empty()) continue;
      Guess g = GuessOf(rows[0][c]);
      if (g != Guess::kString) first_row_all_text = false;
      if (guesses[c] != Guess::kString && guesses[c] != Guess::kUnknown &&
          g == Guess::kString) {
        header_widens = true;
      }
    }
    has_header = first_row_all_text && header_widens;
  }
  if (!has_header) guesses = infer_over(0);

  std::vector<Field> fields;
  fields.reserve(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    std::string name;
    if (has_header && c < rows[0].size() && !rows[0][c].empty()) {
      name = rows[0][c];
    } else {
      name = options.column_prefix + std::to_string(c);
    }
    fields.push_back(Field{std::move(name), ToDataType(guesses[c])});
  }

  InferredTable out;
  out.schema = Schema::Make(std::move(fields));
  out.dialect = dialect;
  out.dialect.has_header = has_header;
  out.sampled_rows = rows.size() - (has_header ? 1 : 0);
  return out;
}

}  // namespace nodb
