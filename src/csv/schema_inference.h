#ifndef NODB_CSV_SCHEMA_INFERENCE_H_
#define NODB_CSV_SCHEMA_INFERENCE_H_

#include <memory>
#include <string>

#include "csv/dialect.h"
#include "types/schema.h"
#include "util/result.h"

namespace nodb {

/// Options for schema inference.
struct InferenceOptions {
  /// Rows sampled from the head of the file.
  uint64_t sample_rows = 1000;
  /// Treat the first line as column names when every field of it fails
  /// to parse under the types inferred from the following rows.
  bool detect_header = true;
  /// Name prefix for unnamed columns: attr0, attr1, ...
  std::string column_prefix = "attr";
};

/// Result of InferSchema.
struct InferredTable {
  std::shared_ptr<Schema> schema;
  CsvDialect dialect;  // input dialect with has_header resolved
  uint64_t sampled_rows = 0;
};

/// Infers column count, names and types of a raw CSV file by sampling
/// its head — the zero-friction entry point of the NoDB philosophy: a
/// user should be able to query a file they have never described.
///
/// Type lattice per column, narrowed by every sampled value:
///   INT -> DOUBLE -> STRING, and DATE -> STRING
/// (a column starts as the most specific type its first non-empty
/// value admits; later values can only widen it). Empty fields are
/// ignored (NULLs carry no type evidence). A column with no non-empty
/// sample values falls back to STRING.
///
/// Header detection: if `detect_header` and the first row is all-text
/// while the remaining sample admits non-STRING types for at least one
/// column, the first row is taken as column names.
Result<InferredTable> InferSchema(const std::string& path,
                                  const CsvDialect& dialect,
                                  const InferenceOptions& options = {});

}  // namespace nodb

#endif  // NODB_CSV_SCHEMA_INFERENCE_H_
