#ifndef NODB_CSV_DIALECT_H_
#define NODB_CSV_DIALECT_H_

namespace nodb {

/// Syntactic parameters of a raw CSV file.
///
/// The engine supports classic comma-separated files and the
/// pipe-separated TPC-H convention; quoting (RFC-4180 doubled-quote
/// escaping) is optional because it disables the memchr fast path in
/// the tokenizer.
struct CsvDialect {
  char delimiter = ',';
  char quote = '"';
  /// When false the tokenizer treats quote characters as ordinary bytes.
  bool allow_quoting = false;
  /// When true the first line of the file holds column names.
  bool has_header = false;

  /// TPC-H style: '|'-separated, no quoting, no header.
  static CsvDialect Pipe() {
    CsvDialect d;
    d.delimiter = '|';
    return d;
  }

  /// Plain CSV with quoting enabled.
  static CsvDialect QuotedCsv() {
    CsvDialect d;
    d.allow_quoting = true;
    return d;
  }
};

}  // namespace nodb

#endif  // NODB_CSV_DIALECT_H_
