#include "csv/csv_writer.h"

namespace nodb {

CsvWriter::CsvWriter(std::unique_ptr<WritableFile> file, CsvDialect dialect,
                     size_t buffer_bytes)
    : file_(std::move(file)),
      dialect_(dialect),
      buffer_bytes_(buffer_bytes) {
  buffer_.reserve(buffer_bytes_ + 4096);
}

void CsvWriter::AppendEscaped(std::string_view field) {
  bool needs_quote = false;
  if (dialect_.allow_quoting) {
    for (char c : field) {
      if (c == dialect_.delimiter || c == dialect_.quote || c == '\n' ||
          c == '\r') {
        needs_quote = true;
        break;
      }
    }
  }
  if (!needs_quote) {
    buffer_.append(field);
    return;
  }
  buffer_.push_back(dialect_.quote);
  for (char c : field) {
    buffer_.push_back(c);
    if (c == dialect_.quote) buffer_.push_back(dialect_.quote);
  }
  buffer_.push_back(dialect_.quote);
}

void CsvWriter::BeginRecord() {
  record_open_ = true;
  first_field_ = true;
}

void CsvWriter::AddField(std::string_view field) {
  if (!first_field_) buffer_.push_back(dialect_.delimiter);
  first_field_ = false;
  AppendEscaped(field);
}

Status CsvWriter::FinishRecord() {
  buffer_.push_back('\n');
  record_open_ = false;
  if (buffer_.size() >= buffer_bytes_) return FlushBuffer();
  return Status::OK();
}

Status CsvWriter::WriteRecord(const std::vector<std::string>& fields) {
  BeginRecord();
  for (const auto& f : fields) AddField(f);
  return FinishRecord();
}

Status CsvWriter::FlushBuffer() {
  if (!buffer_.empty()) {
    NODB_RETURN_NOT_OK(file_->Append(Slice(buffer_)));
    bytes_written_ += buffer_.size();
    buffer_.clear();
  }
  return Status::OK();
}

Status CsvWriter::Close() {
  NODB_RETURN_NOT_OK(FlushBuffer());
  return file_->Close();
}

}  // namespace nodb
