#include "datagen/tpch.h"

#include <cstdio>

#include "csv/csv_writer.h"
#include "io/file.h"
#include "types/date_util.h"
#include "util/random.h"

namespace nodb {

namespace {

constexpr const char* kShipModes[] = {"AIR",  "TRUCK", "SHIP", "RAIL",
                                      "MAIL", "FOB",   "REG AIR"};
constexpr const char* kOrderPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                            "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kInstructions[] = {"DELIVER IN PERSON", "COLLECT COD",
                                         "NONE", "TAKE BACK RETURN"};

std::string Money(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

std::shared_ptr<Schema> TpchLineitemSchema() {
  return Schema::Make({
      {"l_orderkey", DataType::kInt64},
      {"l_partkey", DataType::kInt64},
      {"l_suppkey", DataType::kInt64},
      {"l_linenumber", DataType::kInt64},
      {"l_quantity", DataType::kDouble},
      {"l_extendedprice", DataType::kDouble},
      {"l_discount", DataType::kDouble},
      {"l_tax", DataType::kDouble},
      {"l_returnflag", DataType::kString},
      {"l_linestatus", DataType::kString},
      {"l_shipdate", DataType::kDate},
      {"l_commitdate", DataType::kDate},
      {"l_receiptdate", DataType::kDate},
      {"l_shipinstruct", DataType::kString},
      {"l_shipmode", DataType::kString},
      {"l_comment", DataType::kString},
  });
}

std::shared_ptr<Schema> TpchOrdersSchema() {
  return Schema::Make({
      {"o_orderkey", DataType::kInt64},
      {"o_custkey", DataType::kInt64},
      {"o_orderstatus", DataType::kString},
      {"o_totalprice", DataType::kDouble},
      {"o_orderdate", DataType::kDate},
      {"o_orderpriority", DataType::kString},
      {"o_clerk", DataType::kString},
      {"o_shippriority", DataType::kInt64},
      {"o_comment", DataType::kString},
  });
}

Result<uint64_t> GenerateTpchLineitem(const std::string& path,
                                      const TpchSpec& spec) {
  NODB_ASSIGN_OR_RETURN(auto file, OpenWritableFile(path));
  CsvWriter writer(std::move(file), CsvDialect::Pipe());
  Random rng(spec.seed);

  const int64_t start_date = CivilToDays(1992, 1, 1);
  const int64_t end_date = CivilToDays(1998, 8, 2);
  const int64_t date_span = end_date - start_date;
  const uint64_t orders = spec.num_orders();
  uint64_t rows = 0;
  char buf[64];

  for (uint64_t o = 1; o <= orders; ++o) {
    // dbgen emits 1-7 lineitems per order; mean 4.
    uint32_t lines = 1 + static_cast<uint32_t>(rng.Uniform(7));
    for (uint32_t ln = 1; ln <= lines; ++ln) {
      writer.BeginRecord();
      auto add_int = [&](uint64_t v) {
        int n = std::snprintf(buf, sizeof(buf), "%llu",
                              static_cast<unsigned long long>(v));
        writer.AddField(std::string_view(buf, n));
      };
      add_int(o);                                 // l_orderkey
      add_int(1 + rng.Uniform(200000));           // l_partkey
      add_int(1 + rng.Uniform(10000));            // l_suppkey
      add_int(ln);                                // l_linenumber
      double qty = 1 + static_cast<double>(rng.Uniform(50));
      writer.AddField(Money(qty));                // l_quantity
      double price = qty * (900 + static_cast<double>(rng.Uniform(100000)) /
                                      100.0);
      writer.AddField(Money(price));              // l_extendedprice
      writer.AddField(
          Money(static_cast<double>(rng.Uniform(11)) / 100.0));  // l_discount
      writer.AddField(
          Money(static_cast<double>(rng.Uniform(9)) / 100.0));   // l_tax
      int64_t ship = start_date + static_cast<int64_t>(
                                      rng.Uniform(date_span));
      // Return flag correlates with ship date as in dbgen: old rows are
      // resolved (R/A), recent ones are pending (N).
      bool old_row = ship < end_date - 120;
      writer.AddField(old_row ? (rng.Bernoulli(0.5) ? "R" : "A") : "N");
      writer.AddField(old_row ? "F" : "O");       // l_linestatus
      writer.AddField(FormatDate(ship));          // l_shipdate
      writer.AddField(FormatDate(ship + 1 + static_cast<int64_t>(
                                                rng.Uniform(30))));
      writer.AddField(FormatDate(ship + 1 + static_cast<int64_t>(
                                                rng.Uniform(30))));
      writer.AddField(kInstructions[rng.Uniform(4)]);
      writer.AddField(kShipModes[rng.Uniform(7)]);
      writer.AddField(rng.NextString(10 + rng.Uniform(34)));  // l_comment
      NODB_RETURN_NOT_OK(writer.FinishRecord());
      ++rows;
    }
  }
  NODB_RETURN_NOT_OK(writer.Close());
  return rows;
}

Result<uint64_t> GenerateTpchOrders(const std::string& path,
                                    const TpchSpec& spec) {
  NODB_ASSIGN_OR_RETURN(auto file, OpenWritableFile(path));
  CsvWriter writer(std::move(file), CsvDialect::Pipe());
  Random rng(spec.seed + 1);

  const int64_t start_date = CivilToDays(1992, 1, 1);
  const int64_t span = CivilToDays(1998, 8, 2) - start_date - 151;
  const uint64_t orders = spec.num_orders();
  char buf[64];

  for (uint64_t o = 1; o <= orders; ++o) {
    writer.BeginRecord();
    auto add_int = [&](uint64_t v) {
      int n = std::snprintf(buf, sizeof(buf), "%llu",
                            static_cast<unsigned long long>(v));
      writer.AddField(std::string_view(buf, n));
    };
    add_int(o);                                    // o_orderkey
    add_int(1 + rng.Uniform(150000));              // o_custkey
    const char* status[] = {"F", "O", "P"};
    writer.AddField(status[rng.Uniform(3)]);       // o_orderstatus
    writer.AddField(
        Money(1000 + static_cast<double>(rng.Uniform(45000000)) / 100.0));
    writer.AddField(
        FormatDate(start_date + static_cast<int64_t>(rng.Uniform(span))));
    writer.AddField(kOrderPriorities[rng.Uniform(5)]);
    int n = std::snprintf(buf, sizeof(buf), "Clerk#%09llu",
                          static_cast<unsigned long long>(
                              1 + rng.Uniform(1000)));
    writer.AddField(std::string_view(buf, n));     // o_clerk
    add_int(0);                                    // o_shippriority
    writer.AddField(rng.NextString(19 + rng.Uniform(59)));  // o_comment
    NODB_RETURN_NOT_OK(writer.FinishRecord());
  }
  NODB_RETURN_NOT_OK(writer.Close());
  return orders;
}

}  // namespace nodb
