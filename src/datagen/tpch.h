#ifndef NODB_DATAGEN_TPCH_H_
#define NODB_DATAGEN_TPCH_H_

#include <cstdint>
#include <memory>
#include <string>

#include "csv/dialect.h"
#include "types/schema.h"
#include "util/result.h"

namespace nodb {

/// TPC-H-shaped raw-data generator.
///
/// The SIGMOD'12 PostgresRaw evaluation (which this demo showcases) uses
/// TPC-H CSV files; dbgen itself is proprietary-ish tooling we replace
/// with a generator that reproduces the schemas, cardinality ratios
/// (lineitem ≈ 4 × orders) and value domains (dates in 1992-1998,
/// quantities 1-50, prices, flags) that the benchmark queries select on.
/// See DESIGN.md §3 for the substitution note.
struct TpchSpec {
  /// Scale factor: SF 1 ≈ 6M lineitem rows; default keeps CI-sized runs.
  double scale_factor = 0.01;
  uint64_t seed = 42;

  uint64_t num_orders() const {
    return static_cast<uint64_t>(1500000 * scale_factor);
  }
};

/// Schema of the generated lineitem file (16 columns, dbgen order).
std::shared_ptr<Schema> TpchLineitemSchema();

/// Schema of the generated orders file (9 columns, dbgen order).
std::shared_ptr<Schema> TpchOrdersSchema();

/// Writes lineitem rows as '|'-separated text. Returns rows written.
Result<uint64_t> GenerateTpchLineitem(const std::string& path,
                                      const TpchSpec& spec);

/// Writes orders rows as '|'-separated text. Returns rows written.
Result<uint64_t> GenerateTpchOrders(const std::string& path,
                                    const TpchSpec& spec);

}  // namespace nodb

#endif  // NODB_DATAGEN_TPCH_H_
