#ifndef NODB_DATAGEN_SYNTHETIC_H_
#define NODB_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "csv/dialect.h"
#include "types/schema.h"
#include "util/result.h"

namespace nodb {

/// Knobs of the demo's workload generator (§4.2 "we allow the user to
/// directly generate their own input CSV files and choose parameters
/// such as the number of attributes and the number of tuples in the
/// file, the width of attributes, as well as the type of the input
/// data").
struct SyntheticSpec {
  uint64_t num_tuples = 10000;
  uint32_t num_attributes = 10;

  /// Type mix; columns cycle through the enabled types. Ratios are
  /// expressed as counts per cycle, so {int=1,double=0,string=0,date=0}
  /// means all-integer (the demo's default stress case).
  uint32_t ints_per_cycle = 1;
  uint32_t doubles_per_cycle = 0;
  uint32_t strings_per_cycle = 0;
  uint32_t dates_per_cycle = 0;

  /// Width (digits/characters) of generated attribute text. Wider
  /// attributes make positional jumps more valuable.
  uint32_t attribute_width = 8;

  /// Distinct values per attribute; values are uniform over the domain
  /// unless zipf_theta > 0.
  uint64_t domain_size = 1000000;
  double zipf_theta = 0.0;

  /// Fraction of fields emitted empty (NULL).
  double null_fraction = 0.0;

  uint64_t seed = 42;

  /// Column names are attr0..attrN-1.
  std::shared_ptr<Schema> MakeSchema() const;
};

/// Writes a raw CSV file per `spec` with `dialect`. Returns the file
/// size in bytes.
Result<uint64_t> GenerateSyntheticCsv(const std::string& path,
                                      const SyntheticSpec& spec,
                                      const CsvDialect& dialect);

}  // namespace nodb

#endif  // NODB_DATAGEN_SYNTHETIC_H_
