#include "datagen/synthetic.h"

#include <cstdio>
#include <optional>

#include "csv/csv_writer.h"
#include "io/file.h"
#include "types/date_util.h"
#include "util/random.h"

namespace nodb {

namespace {

DataType TypeForColumn(const SyntheticSpec& spec, uint32_t col) {
  uint32_t cycle = spec.ints_per_cycle + spec.doubles_per_cycle +
                   spec.strings_per_cycle + spec.dates_per_cycle;
  if (cycle == 0) return DataType::kInt64;
  uint32_t r = col % cycle;
  if (r < spec.ints_per_cycle) return DataType::kInt64;
  r -= spec.ints_per_cycle;
  if (r < spec.doubles_per_cycle) return DataType::kDouble;
  r -= spec.doubles_per_cycle;
  if (r < spec.strings_per_cycle) return DataType::kString;
  return DataType::kDate;
}

}  // namespace

std::shared_ptr<Schema> SyntheticSpec::MakeSchema() const {
  std::vector<Field> fields;
  fields.reserve(num_attributes);
  for (uint32_t c = 0; c < num_attributes; ++c) {
    fields.push_back(
        Field{"attr" + std::to_string(c), TypeForColumn(*this, c)});
  }
  return Schema::Make(std::move(fields));
}

Result<uint64_t> GenerateSyntheticCsv(const std::string& path,
                                      const SyntheticSpec& spec,
                                      const CsvDialect& dialect) {
  NODB_ASSIGN_OR_RETURN(auto file, OpenWritableFile(path));
  CsvWriter writer(std::move(file), dialect);
  Random rng(spec.seed);
  std::optional<ZipfGenerator> zipf;
  if (spec.zipf_theta > 0) {
    zipf.emplace(spec.domain_size, spec.zipf_theta, spec.seed);
  }
  auto schema = spec.MakeSchema();

  if (dialect.has_header) {
    writer.BeginRecord();
    for (const Field& f : schema->fields()) writer.AddField(f.name);
    NODB_RETURN_NOT_OK(writer.FinishRecord());
  }

  const uint32_t width = spec.attribute_width == 0 ? 1 : spec.attribute_width;
  char buf[64];
  for (uint64_t row = 0; row < spec.num_tuples; ++row) {
    writer.BeginRecord();
    for (uint32_t col = 0; col < spec.num_attributes; ++col) {
      if (spec.null_fraction > 0 && rng.Bernoulli(spec.null_fraction)) {
        writer.AddField("");
        continue;
      }
      uint64_t draw = zipf ? zipf->Next() : rng.Uniform(spec.domain_size);
      switch (schema->field(col).type) {
        case DataType::kInt64: {
          // Zero-padded to the requested width so every field has a
          // predictable text length.
          int n = std::snprintf(buf, sizeof(buf), "%0*llu",
                                static_cast<int>(width),
                                static_cast<unsigned long long>(draw));
          writer.AddField(std::string_view(buf, n));
          break;
        }
        case DataType::kDouble: {
          // Zero-padded to width (spaces are not valid numeric text).
          int n = std::snprintf(buf, sizeof(buf), "%0*.2f",
                                static_cast<int>(width),
                                static_cast<double>(draw) / 100.0);
          writer.AddField(std::string_view(buf, n));
          break;
        }
        case DataType::kString: {
          std::string s = rng.NextString(width);
          // Embed the draw so strings carry selectable information.
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(draw % 100));
          for (size_t i = 0; buf[i] != '\0' && i < s.size(); ++i) {
            s[i] = buf[i];
          }
          writer.AddField(s);
          break;
        }
        case DataType::kDate: {
          // Dates span 1992-01-01 .. ~1998 like TPC-H.
          int64_t base = CivilToDays(1992, 1, 1);
          writer.AddField(FormatDate(base + static_cast<int64_t>(
                                                draw % 2500)));
          break;
        }
      }
    }
    NODB_RETURN_NOT_OK(writer.FinishRecord());
  }
  uint64_t bytes = writer.bytes_written();
  NODB_RETURN_NOT_OK(writer.Close());
  NODB_ASSIGN_OR_RETURN(bytes, GetFileSize(path));
  return bytes;
}

}  // namespace nodb
