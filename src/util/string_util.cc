#include "util/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace nodb {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string FormatNanos(int64_t nanos) {
  char buf[32];
  double v = static_cast<double>(nanos);
  if (nanos < 1000) {
    std::snprintf(buf, sizeof(buf), "%lld ns",
                  static_cast<long long>(nanos));
  } else if (nanos < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1f us", v / 1e3);
  } else if (nanos < 1000LL * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", v / 1e9);
  }
  return buf;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.substr(0, prefix.size()) == prefix;
}

}  // namespace nodb
