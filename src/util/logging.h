#ifndef NODB_UTIL_LOGGING_H_
#define NODB_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace nodb {

/// Severity for the minimal logging facility.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

/// Stream-collecting helper behind the NODB_LOG macro.
class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogCapture& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

}  // namespace internal
}  // namespace nodb

#define NODB_LOG(level)                                              \
  ::nodb::internal::LogCapture(::nodb::LogLevel::k##level, __FILE__, \
                               __LINE__)

/// Fatal invariant check, active in all build modes.
#define NODB_CHECK(expr)                                            \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::nodb::internal::CheckFailed(__FILE__, __LINE__, #expr, ""); \
    }                                                               \
  } while (false)

#define NODB_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::nodb::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg)); \
    }                                                                  \
  } while (false)

#endif  // NODB_UTIL_LOGGING_H_
