#ifndef NODB_UTIL_SLICE_H_
#define NODB_UTIL_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace nodb {

/// A non-owning view over a byte range, in the RocksDB idiom.
///
/// Slice is used where the viewed bytes may be raw (not guaranteed to be
/// text) and where we want explicit pointer/size access for parser hot
/// loops. It converts to/from std::string_view freely.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design —
  // Slice stands in for any contiguous string argument.
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design —
  // Slice stands in for any contiguous string argument.
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  /// Drops the first n bytes (n must be <= size()).
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  /// Returns the sub-slice [offset, offset+len), clamped to the end.
  Slice SubSlice(size_t offset, size_t len) const {
    if (offset >= size_) return Slice(data_ + size_, 0);
    if (len > size_ - offset) len = size_ - offset;
    return Slice(data_ + offset, len);
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }
  // NOLINTNEXTLINE(google-explicit-constructor): symmetric with the
  // implicit string_view constructor above.
  operator std::string_view() const { return view(); }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }
  bool operator!=(const Slice& other) const { return !(*this == other); }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace nodb

#endif  // NODB_UTIL_SLICE_H_
