#ifndef NODB_UTIL_MUTEX_H_
#define NODB_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace nodb {

/// `std::mutex` wrapped as a Clang thread-safety CAPABILITY.
///
/// Every mutex in the tree is one of these (or a SharedMutex) so the
/// static analysis can see which lock guards which data. Lock/Unlock
/// are public for the RAII guards below; calling them directly is
/// banned by tools/nodb_lint.py — use MutexLock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Static assertion-only hand-off marker: tells the analysis the
  /// calling thread holds this mutex when the fact cannot be proven
  /// structurally (e.g. a baton passed between threads). No runtime
  /// cost; std::mutex cannot check ownership.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  /// The wrapped handle, for condition-variable adoption in MutexLock.
  std::mutex& native_handle() { return mu_; }

 private:
  mutable std::mutex mu_;
};

/// RAII exclusive lock over a Mutex (the std::lock_guard of this
/// codebase), with relock/unlock support for hand-off patterns and
/// condition-variable waits.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. before rethrowing an exception or running a
  /// task outside the critical section).
  void Unlock() RELEASE() {
    mu_->Unlock();
    held_ = false;
  }

  /// Re-acquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

  /// Blocks on `cv` with this lock (which must be held) released for
  /// the duration of the wait, exactly like
  /// std::condition_variable::wait. The capability is held again when
  /// this returns, so the analysis view — held throughout — is sound.
  void Wait(std::condition_variable& cv) {
    std::unique_lock<std::mutex> adopted(mu_->native_handle(),
                                         std::adopt_lock);
    cv.wait(adopted);
    adopted.release();  // ownership stays with this MutexLock
  }

  /// Timed variant of Wait(): blocks until notified or until the
  /// steady-clock `deadline` passes. Returns false on timeout. Like
  /// Wait(), the lock is held again when this returns, so callers
  /// re-check their predicate either way (spurious wakeups included).
  bool WaitUntil(std::condition_variable& cv,
                 std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> adopted(mu_->native_handle(),
                                         std::adopt_lock);
    std::cv_status status = cv.wait_until(adopted, deadline);
    adopted.release();  // ownership stays with this MutexLock
    return status != std::cv_status::timeout;
  }

 private:
  Mutex* mu_;
  bool held_ = true;
};

/// `std::shared_mutex` wrapped as a Clang thread-safety CAPABILITY.
/// Use WriterLock / ReaderLock; direct Lock calls are banned by
/// tools/nodb_lint.py.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  mutable std::shared_mutex mu_;
};

/// RAII exclusive lock over a SharedMutex (mutations).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~WriterLock() RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared lock over a SharedMutex (concurrent readers).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->LockShared();
  }
  ~ReaderLock() RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace nodb

#endif  // NODB_UTIL_MUTEX_H_
