#ifndef NODB_UTIL_HASH_H_
#define NODB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace nodb {

/// 64-bit FNV-1a over a byte range.
///
/// Used for the KMV distinct-count sketch, hash-join/aggregate keys and
/// the file-prefix checksum in update detection. Not cryptographic.
inline uint64_t Fnv1a64(const char* data, size_t size,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes a 64-bit integer (finalizer from MurmurHash3).
inline uint64_t MixHash64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Combines two hashes (boost::hash_combine shape, 64-bit).
inline uint64_t CombineHash64(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace nodb

#endif  // NODB_UTIL_HASH_H_
