#ifndef NODB_UTIL_RANDOM_H_
#define NODB_UTIL_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nodb {

/// Deterministic xorshift128+ PRNG.
///
/// Used everywhere randomness is needed (data generation, property test
/// sweeps, sampling) so that runs are reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 42);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Random ASCII lowercase string of exactly `len` characters.
  std::string NextString(size_t len);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf-distributed integer generator over [0, n).
///
/// Uses the standard rejection-free inverse-CDF-over-precomputed-weights
/// approach; construction is O(n), sampling O(log n). Models the skewed
/// attribute popularity used in the adaptation/cache experiments.
class ZipfGenerator {
 public:
  /// theta=0 degenerates to uniform; typical skew is 0.5-1.2.
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  Random rng_;
  std::vector<double> cdf_;
};

}  // namespace nodb

#endif  // NODB_UTIL_RANDOM_H_
