#ifndef NODB_UTIL_THREAD_POOL_H_
#define NODB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nodb {

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// Small by design: the parallel raw scan needs fork/join over file
/// chunks, nothing more. Submit() never blocks; Wait() blocks the
/// caller until every task submitted so far has finished, after which
/// the pool is reusable for the next batch.
class ThreadPool {
 public:
  /// `num_threads` is clamped to at least 1.
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// std::thread::hardware_concurrency() with a fallback of 1.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task or stop
  std::condition_variable idle_cv_;  // signals Wait(): all drained
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Runs fn(0) .. fn(n-1) on `pool` and blocks until all complete. The
/// caller must not submit unrelated work to `pool` concurrently (Wait
/// synchronizes on the whole pool).
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace nodb

#endif  // NODB_UTIL_THREAD_POOL_H_
