#ifndef NODB_UTIL_THREAD_POOL_H_
#define NODB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nodb {

/// Optional pool instrumentation (obs/metrics.h): queue depth counts
/// queued + running tasks (returns to zero once Wait() returns), wait
/// is submit-to-start, run is task execution time. Null members are
/// simply not recorded.
struct ThreadPoolMetrics {
  obs::Gauge* queue_depth = nullptr;
  obs::LatencyHistogram* task_wait_ns = nullptr;
  obs::LatencyHistogram* task_run_ns = nullptr;
  obs::Counter* tasks_total = nullptr;
};

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// Small by design: the parallel raw scan needs fork/join over file
/// chunks and the concurrent query path needs a shared set of client
/// workers, nothing more. Submit() never blocks; Wait() blocks the
/// caller until every task submitted so far has finished, after which
/// the pool is reusable for the next batch.
///
/// A task that throws does not take the process down: the first
/// exception is captured and rethrown by Wait() (tasks submitted
/// through a TaskGroup deliver to that group's Wait() instead).
class ThreadPool {
 public:
  /// `num_threads` is clamped to at least 1.
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Attaches metric handles; applies to tasks submitted afterwards.
  /// Safe to call while the pool is running.
  void SetMetrics(const ThreadPoolMetrics& metrics) EXCLUDES(mu_);

  /// Blocks until the queue is empty and no task is running, then
  /// rethrows the first exception any directly-submitted task threw
  /// since the last Wait().
  void Wait() EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// std::thread::hardware_concurrency() with a fallback of 1.
  static size_t DefaultThreadCount();

 private:
  /// A queued task plus the metric handles and submit stamp captured
  /// at submit time. Stamping the handles per task keeps increments
  /// and decrements on the same gauge even when SetMetrics is called
  /// while tasks are in flight.
  struct Task {
    std::function<void()> fn;
    ThreadPoolMetrics metrics;
    int64_t submit_ns = 0;  // 0 when wait-latency recording is off
  };

  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task or stop
  std::condition_variable idle_cv_;  // signals Wait(): all drained
  std::deque<Task> queue_ GUARDED_BY(mu_);
  ThreadPoolMetrics metrics_ GUARDED_BY(mu_);
  std::exception_ptr first_error_ GUARDED_BY(mu_);  // from direct submits
  size_t active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // immutable after construction
};

/// A batch of tasks on a *shared* pool: Wait() returns when this
/// group's tasks are done, regardless of what else the pool is
/// running. This is what lets several concurrent query batches share
/// one pool without waiting on each other.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Drains remaining tasks without rethrowing (call Wait() first to
  /// observe errors); tasks must not outlive the group.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task`; an exception it throws is captured and rethrown
  /// by this group's Wait().
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every task submitted to *this group* finished, then
  /// rethrows the first captured exception.
  void Wait() EXCLUDES(mu_);

 private:
  ThreadPool* pool_;
  Mutex mu_;
  std::condition_variable done_cv_;
  size_t pending_ GUARDED_BY(mu_) = 0;
  std::exception_ptr first_error_ GUARDED_BY(mu_);
};

/// Runs fn(0) .. fn(n-1) on `pool` and blocks until all complete; the
/// first exception thrown by any fn is rethrown in the caller. Safe on
/// a shared pool (uses a TaskGroup internally).
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace nodb

#endif  // NODB_UTIL_THREAD_POOL_H_
