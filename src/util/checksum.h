#ifndef NODB_UTIL_CHECKSUM_H_
#define NODB_UTIL_CHECKSUM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace nodb {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding
/// the persisted snapshot sections (persist/snapshot.h). Table-driven
/// software implementation, dependency-free; strong enough to catch
/// the torn writes, truncations and bit rot the recovery path must
/// degrade on, and standardized so sidecars are verifiable by external
/// tooling (same vectors as iSCSI / ext4 / leveldb).
///
/// Streaming: `Crc32c(b, nb, Crc32c(a, na))` equals the CRC of the
/// concatenated bytes, so sections can be checksummed incrementally.
inline uint32_t Crc32c(const void* data, size_t size, uint32_t crc = 0) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace nodb

#endif  // NODB_UTIL_CHECKSUM_H_
