#ifndef NODB_UTIL_RESULT_H_
#define NODB_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace nodb {

/// A value-or-Status, in the Arrow idiom.
///
/// Result<T> holds either a T (status is OK) or a non-OK Status. Access
/// to the value when !ok() is a programming error checked by assert.
///
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit so functions can `return value;`.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design —
  // the ergonomic `return value;` at every success path depends on it.
  Result(T value) : value_(std::move(value)) {}

  /// Implicit so functions can `return Status::...(...)`. Must be non-OK.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design —
  // the ergonomic `return Status::...()` on error paths depends on it.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK Status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace nodb

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define NODB_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  NODB_ASSIGN_OR_RETURN_IMPL_(                                 \
      NODB_CONCAT_(_nodb_result, __LINE__), lhs, rexpr)

#define NODB_CONCAT_INNER_(a, b) a##b
#define NODB_CONCAT_(a, b) NODB_CONCAT_INNER_(a, b)
#define NODB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // NODB_UTIL_RESULT_H_
