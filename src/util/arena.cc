#include "util/arena.h"

#include <cstring>

namespace nodb {

char* Arena::Allocate(size_t size, size_t align) {
  if (size == 0) size = 1;
  uintptr_t cur = reinterpret_cast<uintptr_t>(cursor_);
  size_t pad = (align - (cur & (align - 1))) & (align - 1);
  if (pad + size > remaining_) {
    // Oversized requests get a dedicated block so we do not strand the
    // tail of the current block.
    if (size > block_size_ / 2) {
      char* ptr = AllocateNewBlock(size);
      bytes_allocated_ += size;
      return ptr;
    }
    cursor_ = AllocateNewBlock(block_size_);
    remaining_ = block_size_;
    pad = 0;
  }
  char* ptr = cursor_ + pad;
  cursor_ = ptr + size;
  remaining_ -= pad + size;
  bytes_allocated_ += size;
  return ptr;
}

char* Arena::CopyBytes(const char* data, size_t size) {
  char* dst = Allocate(size, 1);
  std::memcpy(dst, data, size);
  return dst;
}

char* Arena::AllocateNewBlock(size_t size) {
  Block block;
  block.data = std::make_unique<char[]>(size);
  block.size = size;
  bytes_reserved_ += size;
  char* ptr = block.data.get();
  blocks_.push_back(std::move(block));
  return ptr;
}

void Arena::Reset() {
  blocks_.clear();
  cursor_ = nullptr;
  remaining_ = 0;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
}

}  // namespace nodb
