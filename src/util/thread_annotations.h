#ifndef NODB_UTIL_THREAD_ANNOTATIONS_H_
#define NODB_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros.
///
/// These expand to Clang's `__attribute__((...))` thread-safety
/// attributes when compiling with Clang and to nothing everywhere
/// else, so the annotations are pure compile-time documentation that
/// the `clang -Wthread-safety -Werror` CI job turns into hard errors.
/// They have zero runtime cost on every compiler.
///
/// Usage follows the Abseil/Clang convention:
///
///   - Annotate shared data with the lock that protects it:
///       std::vector<T> items_ GUARDED_BY(mu_);
///   - Annotate internal helpers that assume the lock is already held:
///       void EvictOverBudget() REQUIRES(mu_);
///   - Annotate public entry points that must NOT be called with the
///     lock held (non-reentrancy / deadlock documentation):
///       void Clear() EXCLUDES(mu_);
///
/// The annotated `Mutex` / `SharedMutex` wrappers and their RAII
/// guards live in util/mutex.h; naked std::mutex members and naked
/// .lock()/.unlock() calls are banned by tools/nodb_lint.py so every
/// lock in the tree is visible to the analysis.

#if defined(__clang__)
#define NODB_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define NODB_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op on GCC/MSVC
#endif

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define CAPABILITY(x) NODB_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks a class as an RAII object that acquires a capability in its
/// constructor and releases it in its destructor.
#define SCOPED_CAPABILITY NODB_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define GUARDED_BY(x) NODB_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Declares that the data *pointed to* by a pointer member is
/// protected by the given capability (the pointer itself is not).
#define PT_GUARDED_BY(x) NODB_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Lock-ordering declarations: this capability must be acquired
/// before/after the listed ones (checked under -Wthread-safety-beta;
/// documentation of the canonical hierarchy otherwise).
#define ACQUIRED_BEFORE(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

/// The function must be called with the listed capabilities held
/// (exclusively / at least shared) and does not release them.
#define REQUIRES(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (exclusively / shared) and
/// holds it on return.
#define ACQUIRE(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (exclusive / shared / either).
#define RELEASE(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))

/// The function attempts to acquire the capability and returns the
/// given value on success.
#define TRY_ACQUIRE(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called with the listed capabilities held
/// (it acquires them itself; calling it re-entrantly would deadlock).
#define EXCLUDES(...) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability;
/// the analysis treats it as held from here on.
#define ASSERT_CAPABILITY(x) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(assert_shared_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Every use must
/// carry a justification comment (enforced by tools/nodb_lint.py).
#define NO_THREAD_SAFETY_ANALYSIS \
  NODB_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // NODB_UTIL_THREAD_ANNOTATIONS_H_
