#include "util/status.h"

namespace nodb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace nodb
