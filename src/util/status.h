#ifndef NODB_UTIL_STATUS_H_
#define NODB_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace nodb {

/// Error category for a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kParseError,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kCancelled,
  kUnavailable,
};

/// Returns the canonical lowercase name of a status code, e.g. "IOError".
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail, in the Arrow/RocksDB idiom.
///
/// A Status is either OK (the common, cheap case: a single enum compare)
/// or carries a code plus a human-readable message. Functions on hot
/// paths return Status instead of throwing; callers either handle the
/// failure or propagate it with NODB_RETURN_NOT_OK.
///
/// [[nodiscard]]: silently dropping a Status swallows an error. Every
/// call site must propagate, handle, or explicitly discard with
/// `(void)` plus a comment saying why dropping is correct (the
/// `(void)` form is lint-checked for that comment).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Cooperative cancellation (exec/cancel.h): the query was asked to
  /// stop and bailed at a batch boundary; not an engine fault.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// Resource refusal (server admission control, drain): the request
  /// was well-formed but the system declined to run it now.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace nodb

/// Propagates a non-OK Status to the caller.
#define NODB_RETURN_NOT_OK(expr)                   \
  do {                                             \
    ::nodb::Status _nodb_status = (expr);          \
    if (!_nodb_status.ok()) return _nodb_status;   \
  } while (false)

#endif  // NODB_UTIL_STATUS_H_
