#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace nodb {

Random::Random(uint64_t seed) {
  // SplitMix64 to expand the seed into two well-mixed state words.
  auto splitmix = [](uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Random::NextUint64() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) { return NextUint64() % n; }

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return (NextUint64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

std::string Random::NextString(size_t len) {
  std::string out(len, 'a');
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<char>('a' + Uniform(26));
  }
  return out;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), rng_(seed), cdf_(n) {
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

uint64_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace nodb
