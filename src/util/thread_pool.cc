#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace nodb {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) lock.Wait(idle_cv_);
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.Unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  MutexLock lock(mu_);
  while (true) {
    while (!stop_ && queue_.empty()) lock.Wait(work_cv_);
    if (queue_.empty()) return;  // stop_ and nothing left to run
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.Unlock();
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    lock.Lock();
    if (error != nullptr && first_error_ == nullptr) {
      first_error_ = error;
    }
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

size_t ThreadPool::DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

TaskGroup::~TaskGroup() {
  MutexLock lock(mu_);
  while (pending_ != 0) lock.Wait(done_cv_);
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    MutexLock lock(mu_);
    if (error != nullptr && first_error_ == nullptr) {
      first_error_ = error;
    }
    if (--pending_ == 0) done_cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  MutexLock lock(mu_);
  while (pending_ != 0) lock.Wait(done_cv_);
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.Unlock();
    std::rethrow_exception(error);
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  TaskGroup group(pool);
  for (size_t i = 0; i < n; ++i) {
    group.Submit([&fn, i] { fn(i); });
  }
  group.Wait();
}

}  // namespace nodb
