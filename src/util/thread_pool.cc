#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace nodb {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    Task queued;
    queued.fn = std::move(task);
    queued.metrics = metrics_;
    if (queued.metrics.task_wait_ns != nullptr) {
      queued.submit_ns = obs::TraceNowNs();
    }
    if (queued.metrics.queue_depth != nullptr) {
      queued.metrics.queue_depth->Add(1);
    }
    queue_.push_back(std::move(queued));
  }
  work_cv_.notify_one();
}

void ThreadPool::SetMetrics(const ThreadPoolMetrics& metrics) {
  MutexLock lock(mu_);
  metrics_ = metrics;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) lock.Wait(idle_cv_);
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.Unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  MutexLock lock(mu_);
  while (true) {
    while (!stop_ && queue_.empty()) lock.Wait(work_cv_);
    if (queue_.empty()) return;  // stop_ and nothing left to run
    Task task = std::move(queue_.front());
    queue_.pop_front();
    // Use the handles stamped at submit, not metrics_: a SetMetrics
    // racing with queued tasks must not split an Add/Sub pair across
    // two different gauges.
    ThreadPoolMetrics metrics = task.metrics;
    ++active_;
    lock.Unlock();
    if (metrics.task_wait_ns != nullptr && task.submit_ns != 0) {
      metrics.task_wait_ns->Record(obs::TraceNowNs() - task.submit_ns);
    }
    int64_t run_start =
        metrics.task_run_ns != nullptr ? obs::TraceNowNs() : 0;
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    if (metrics.task_run_ns != nullptr) {
      metrics.task_run_ns->Record(obs::TraceNowNs() - run_start);
    }
    if (metrics.tasks_total != nullptr) metrics.tasks_total->Add(1);
    // Depth drops before active_ does, so once Wait() observes the
    // pool drained every attached gauge is already back to zero.
    if (metrics.queue_depth != nullptr) metrics.queue_depth->Sub(1);
    lock.Lock();
    if (error != nullptr && first_error_ == nullptr) {
      first_error_ = error;
    }
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

size_t ThreadPool::DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

TaskGroup::~TaskGroup() {
  MutexLock lock(mu_);
  while (pending_ != 0) lock.Wait(done_cv_);
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    MutexLock lock(mu_);
    if (error != nullptr && first_error_ == nullptr) {
      first_error_ = error;
    }
    if (--pending_ == 0) done_cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  MutexLock lock(mu_);
  while (pending_ != 0) lock.Wait(done_cv_);
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.Unlock();
    std::rethrow_exception(error);
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  TaskGroup group(pool);
  for (size_t i = 0; i < n; ++i) {
    group.Submit([&fn, i] { fn(i); });
  }
  group.Wait();
}

}  // namespace nodb
