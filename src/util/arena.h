#ifndef NODB_UTIL_ARENA_H_
#define NODB_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace nodb {

/// Bump-pointer allocator for short-lived, same-lifetime allocations.
///
/// Used by the CSV parser and cache to hold variable-length string
/// payloads without per-value heap traffic. Memory is reclaimed all at
/// once by destroying or Reset()ing the arena; individual frees are not
/// supported. Not thread-safe.
class Arena {
 public:
  static constexpr size_t kDefaultBlockSize = 64 * 1024;

  explicit Arena(size_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two).
  char* Allocate(size_t size, size_t align = alignof(std::max_align_t));

  /// Copies [data, data+size) into the arena and returns the copy.
  char* CopyBytes(const char* data, size_t size);

  /// Total bytes handed out to callers since construction/Reset.
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total bytes reserved from the heap (>= bytes_allocated()).
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Frees every block and returns the arena to its initial state.
  void Reset();

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  char* AllocateNewBlock(size_t size);

  size_t block_size_;
  std::vector<Block> blocks_;
  char* cursor_ = nullptr;
  size_t remaining_ = 0;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace nodb

#endif  // NODB_UTIL_ARENA_H_
