#ifndef NODB_UTIL_STRING_UTIL_H_
#define NODB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace nodb {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// "1.2 KiB", "3.4 MiB", ... for human-readable sizes.
std::string FormatBytes(uint64_t bytes);

/// "12.3 ms", "1.20 s", ... for human-readable durations.
std::string FormatNanos(int64_t nanos);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace nodb

#endif  // NODB_UTIL_STRING_UTIL_H_
