#ifndef NODB_UTIL_STOPWATCH_H_
#define NODB_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace nodb {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a caller-owned counter on destruction.
///
/// Usage on hot paths:
///   { ScopedTimer t(&metrics.tokenize_ns);  ... tokenize ... }
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += watch_.ElapsedNanos(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* sink_;
  Stopwatch watch_;
};

}  // namespace nodb

#endif  // NODB_UTIL_STOPWATCH_H_
