#ifndef NODB_SERVER_HTTP_H_
#define NODB_SERVER_HTTP_H_

#include <string_view>

namespace nodb {
namespace server {

struct SessionEnv;

/// Minimal HTTP/1.0 dialect on the shared listener, for curl and
/// Prometheus scrapers:
///
///   POST /query   body = SQL, optional X-NoDB-Tenant header
///                 (default tenant "http"); answers text/csv through
///                 the same admission control as binary clients
///                 (503 on rejection).
///   GET  /metrics Prometheus text exposition, server section included.
///
/// One request per connection, `Connection: close` semantics. `prefix`
/// is whatever the magic sniff already consumed from the socket.
void ServeHttp(SessionEnv* env, int fd, std::string_view prefix);

}  // namespace server
}  // namespace nodb

#endif  // NODB_SERVER_HTTP_H_
