#include "server/http.h"

#include <errno.h>
#include <sys/socket.h>

#include <cstdlib>
#include <string>

#include "engines/result_export.h"
#include "obs/tenant.h"
#include "server/session.h"
#include "server/wire.h"

namespace nodb {
namespace server {

namespace {

constexpr size_t kMaxHeaderBytes = 64u << 10;

/// Appends whatever the socket has, once (EINTR-safe). False on
/// EOF/error.
bool ReadSome(int fd, std::string* buf) {
  char chunk[4096];
  for (;;) {
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return false;
    buf->append(chunk, static_cast<size_t>(got));
    return true;
  }
}

/// Case-insensitive header lookup over the raw header block; returns
/// the trimmed value or "".
std::string HeaderValue(std::string_view headers, std::string_view name) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = headers.size();
    std::string_view line = headers.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon != std::string_view::npos && colon == name.size()) {
      bool match = true;
      for (size_t i = 0; i < name.size(); ++i) {
        char a = line[i];
        char b = name[i];
        if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
        if (b >= 'A' && b <= 'Z') b = static_cast<char>(b - 'A' + 'a');
        if (a != b) {
          match = false;
          break;
        }
      }
      if (match) {
        std::string_view value = line.substr(colon + 1);
        while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
          value.remove_prefix(1);
        }
        while (!value.empty() && (value.back() == ' ' || value.back() == '\r')) {
          value.remove_suffix(1);
        }
        return std::string(value);
      }
    }
    pos = eol + 2;
  }
  return "";
}

void Respond(int fd, int code, const std::string& reason,
             const std::string& content_type, const std::string& body) {
  std::string response = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  (void)WriteFully(fd, response.data(), response.size());  // best effort:
  // the connection closes right after either way.
}

void ServeQuery(SessionEnv* env, int fd, const std::string& tenant_name,
                const std::string& sql) {
  if (sql.empty()) {
    Respond(fd, 400, "Bad Request", "text/plain", "empty request body\n");
    return;
  }
  uint32_t tenant = obs::TenantIdFor(tenant_name);
  Result<AdmissionTicket> ticket = env->admission->Admit(tenant);
  if (!ticket.ok()) {
    Respond(fd, 503, "Service Unavailable", "text/plain",
            ticket.status().ToString() + "\n");
    return;
  }
  QuerySession session(env->engine, tenant_name + "/http");
  obs::ScopedTenantLabel tenant_label(tenant);
  Result<QueryOutcome> outcome =
      session.ExecuteStreaming(sql, nullptr, nullptr);
  if (!outcome.ok()) {
    Respond(fd, 400, "Bad Request", "text/plain",
            outcome.status().ToString() + "\n");
    return;
  }
  env->admission->RecordRowsServed(
      tenant, static_cast<uint64_t>(outcome->result.num_rows()));
  CsvDialect dialect = CsvDialect::QuotedCsv();
  dialect.has_header = true;
  Respond(fd, 200, "OK", "text/csv",
          RenderResultCsv(outcome->result, dialect));
}

}  // namespace

void ServeHttp(SessionEnv* env, int fd, std::string_view prefix) {
  std::string request(prefix);
  size_t header_end;
  while ((header_end = request.find("\r\n\r\n")) == std::string::npos) {
    if (request.size() > kMaxHeaderBytes || !ReadSome(fd, &request)) {
      Respond(fd, 400, "Bad Request", "text/plain",
              "malformed HTTP request\n");
      return;
    }
  }
  std::string_view head = std::string_view(request).substr(0, header_end);
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  std::string_view headers =
      line_end == std::string_view::npos ? std::string_view()
                                         : head.substr(line_end + 2);

  size_t sp1 = request_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    Respond(fd, 400, "Bad Request", "text/plain", "malformed request line\n");
    return;
  }
  std::string_view method = request_line.substr(0, sp1);
  std::string_view path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  if (method == "GET" && path == "/metrics") {
    Respond(fd, 200, "OK", "text/plain; version=0.0.4",
            env->render_metrics(/*prometheus=*/true));
    return;
  }
  if (method == "POST" && path == "/query") {
    size_t content_length = 0;
    std::string length_header = HeaderValue(headers, "Content-Length");
    if (!length_header.empty()) {
      char* parse_end = nullptr;
      content_length = std::strtoull(length_header.c_str(), &parse_end, 10);
      if (parse_end == nullptr || *parse_end != '\0' ||
          content_length > env->config->server_max_frame_bytes) {
        Respond(fd, 400, "Bad Request", "text/plain",
                "bad Content-Length\n");
        return;
      }
    }
    std::string body = request.substr(header_end + 4);
    while (body.size() < content_length) {
      if (!ReadSome(fd, &body)) {
        Respond(fd, 400, "Bad Request", "text/plain", "truncated body\n");
        return;
      }
    }
    body.resize(content_length);
    std::string tenant = HeaderValue(headers, "X-NoDB-Tenant");
    ServeQuery(env, fd, tenant.empty() ? "http" : tenant, body);
    return;
  }
  Respond(fd, 404, "Not Found", "text/plain",
          "try POST /query or GET /metrics\n");
}

}  // namespace server
}  // namespace nodb
