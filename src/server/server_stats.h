#ifndef NODB_SERVER_SERVER_STATS_H_
#define NODB_SERVER_SERVER_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nodb {
namespace server {

/// Point-in-time admission state of one tenant.
struct TenantAdmissionStats {
  std::string name;
  uint32_t in_flight = 0;
  uint64_t admitted_total = 0;
  uint64_t rejected_total = 0;
  uint64_t rows_served = 0;
  size_t reserved_bytes = 0;
};

/// Point-in-time view of the whole server, snapshotted for the shell's
/// \metrics server section and MonitorPanel::RenderServer. Plain data
/// so monitor/ can render it without including server internals.
struct ServerStats {
  uint32_t connections = 0;
  uint32_t in_flight = 0;
  uint32_t queued = 0;
  uint32_t max_in_flight = 0;
  uint64_t admitted_total = 0;
  uint64_t rejected_total = 0;
  uint64_t queue_timeouts_total = 0;
  uint64_t queries_total = 0;
  bool draining = false;
  std::vector<TenantAdmissionStats> tenants;
};

}  // namespace server
}  // namespace nodb

#endif  // NODB_SERVER_SERVER_STATS_H_
