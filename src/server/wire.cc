#include "server/wire.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>
#include <vector>

namespace nodb {
namespace server {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + ::strerror(errno);
}

}  // namespace

/// ---- Primitives -------------------------------------------------------

void WireWriter::PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

void WireWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void WireWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void WireWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void WireWriter::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void WireWriter::PutDouble(double v) {
  // Bit pattern, not text: remote doubles must compare bit-identical
  // to local execution.
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

Status WireReader::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::ParseError("truncated frame payload");
  }
  return Status::OK();
}

Result<uint8_t> WireReader::GetU8() {
  NODB_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> WireReader::GetU16() {
  NODB_RETURN_NOT_OK(Need(2));
  uint16_t v = static_cast<uint16_t>(
      static_cast<uint8_t>(data_[pos_]) |
      (static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + 1])) << 8));
  pos_ += 2;
  return v;
}

Result<uint32_t> WireReader::GetU32() {
  NODB_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::GetU64() {
  NODB_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> WireReader::GetI64() {
  NODB_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> WireReader::GetDouble() {
  NODB_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::GetString() {
  NODB_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  NODB_RETURN_NOT_OK(Need(len));
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

Status WireReader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::ParseError("trailing bytes after frame payload");
  }
  return Status::OK();
}

/// ---- Typed payloads ---------------------------------------------------

void EncodeSchema(const Schema& schema, WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(schema.num_fields()));
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    w->PutU8(static_cast<uint8_t>(field.type));
    w->PutString(field.name);
  }
}

Result<std::shared_ptr<Schema>> DecodeSchema(WireReader* r) {
  NODB_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  // A field needs at least 5 encoded bytes; this caps allocation from
  // a hostile count before anything is reserved.
  if (n > r->remaining() / 5) {
    return Status::ParseError("schema field count exceeds payload");
  }
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    NODB_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
    if (type > static_cast<uint8_t>(DataType::kDate)) {
      return Status::ParseError("unknown column type in schema");
    }
    NODB_ASSIGN_OR_RETURN(std::string name, r->GetString());
    fields.push_back(Field{std::move(name), static_cast<DataType>(type)});
  }
  return Schema::Make(std::move(fields));
}

void EncodeBatchRows(const RecordBatch& batch, size_t row_begin,
                     size_t row_end, WireWriter* w) {
  size_t nrows = row_end - row_begin;
  w->PutU32(static_cast<uint32_t>(nrows));
  w->PutU32(static_cast<uint32_t>(batch.num_columns()));
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const ColumnVector& col = batch.column(c);
    w->PutU8(static_cast<uint8_t>(col.type()));
    for (size_t r = row_begin; r < row_end; ++r) {
      w->PutU8(col.IsNull(r) ? 0 : 1);
    }
    for (size_t r = row_begin; r < row_end; ++r) {
      if (col.IsNull(r)) continue;
      switch (col.type()) {
        case DataType::kInt64:
          w->PutI64(col.GetInt64(r));
          break;
        case DataType::kDate:
          w->PutI64(col.GetDate(r));
          break;
        case DataType::kDouble:
          w->PutDouble(col.GetDouble(r));
          break;
        case DataType::kString:
          w->PutString(col.GetString(r));
          break;
      }
    }
  }
}

Result<size_t> DecodeBatchInto(WireReader* r, RecordBatch* batch) {
  NODB_ASSIGN_OR_RETURN(uint32_t nrows, r->GetU32());
  NODB_ASSIGN_OR_RETURN(uint32_t ncols, r->GetU32());
  if (ncols != batch->num_columns()) {
    return Status::ParseError("batch column count does not match header");
  }
  for (size_t c = 0; c < ncols; ++c) {
    ColumnVector& col = batch->column(c);
    NODB_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
    if (type != static_cast<uint8_t>(col.type())) {
      return Status::ParseError("batch column type does not match header");
    }
    // Validity first (also the cheap structural bound: a hostile row
    // count dies here against the actual payload size).
    std::vector<uint8_t> valid(nrows);
    for (uint32_t i = 0; i < nrows; ++i) {
      NODB_ASSIGN_OR_RETURN(valid[i], r->GetU8());
    }
    for (uint32_t i = 0; i < nrows; ++i) {
      if (valid[i] == 0) {
        col.AppendNull();
        continue;
      }
      switch (col.type()) {
        case DataType::kInt64: {
          NODB_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
          col.AppendInt64(v);
          break;
        }
        case DataType::kDate: {
          NODB_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
          col.AppendDate(v);
          break;
        }
        case DataType::kDouble: {
          NODB_ASSIGN_OR_RETURN(double v, r->GetDouble());
          col.AppendDouble(v);
          break;
        }
        case DataType::kString: {
          NODB_ASSIGN_OR_RETURN(std::string v, r->GetString());
          col.AppendString(Slice(v));
          break;
        }
      }
    }
  }
  batch->SetNumRows(batch->num_rows() + nrows);
  return static_cast<size_t>(nrows);
}

void EncodeQueryMetrics(const QueryMetrics& metrics, WireWriter* w) {
  w->PutI64(metrics.total_ns);
  w->PutI64(metrics.parse_ns);
  w->PutI64(metrics.plan_ns);
  w->PutI64(metrics.drain_ns);
  const ScanMetrics& s = metrics.scan;
  w->PutI64(s.io_ns);
  w->PutI64(s.parsing_ns);
  w->PutI64(s.tokenize_ns);
  w->PutI64(s.convert_ns);
  w->PutI64(s.nodb_ns);
  w->PutU64(s.rows_scanned);
  w->PutU64(s.bytes_read);
  w->PutU64(s.fields_tokenized);
  w->PutU64(s.fields_converted);
  w->PutU64(s.cache_block_hits);
  w->PutU64(s.cache_block_misses);
  w->PutU64(s.map_exact_probes);
  w->PutU64(s.map_anchor_probes);
  w->PutU64(s.map_blind_rows);
  w->PutU64(s.store_block_hits);
  w->PutU64(s.rows_from_store);
  w->PutU64(s.rows_from_cache);
  w->PutU64(s.rows_from_raw);
  w->PutU64(s.zone_skipped_blocks);
  w->PutU64(s.zone_skipped_rows);
  w->PutU64(s.pushdown_rows_pruned);
  w->PutU64(s.pushdown_phase1_fields);
  w->PutU64(s.pushdown_phase2_fields);
  w->PutU64(s.scans_using_recovered_map);
  w->PutU64(s.scans_using_recovered_store);
}

Result<QueryMetrics> DecodeQueryMetrics(WireReader* r) {
  QueryMetrics m;
  NODB_ASSIGN_OR_RETURN(m.total_ns, r->GetI64());
  NODB_ASSIGN_OR_RETURN(m.parse_ns, r->GetI64());
  NODB_ASSIGN_OR_RETURN(m.plan_ns, r->GetI64());
  NODB_ASSIGN_OR_RETURN(m.drain_ns, r->GetI64());
  ScanMetrics& s = m.scan;
  NODB_ASSIGN_OR_RETURN(s.io_ns, r->GetI64());
  NODB_ASSIGN_OR_RETURN(s.parsing_ns, r->GetI64());
  NODB_ASSIGN_OR_RETURN(s.tokenize_ns, r->GetI64());
  NODB_ASSIGN_OR_RETURN(s.convert_ns, r->GetI64());
  NODB_ASSIGN_OR_RETURN(s.nodb_ns, r->GetI64());
  NODB_ASSIGN_OR_RETURN(s.rows_scanned, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.bytes_read, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.fields_tokenized, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.fields_converted, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.cache_block_hits, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.cache_block_misses, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.map_exact_probes, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.map_anchor_probes, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.map_blind_rows, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.store_block_hits, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.rows_from_store, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.rows_from_cache, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.rows_from_raw, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.zone_skipped_blocks, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.zone_skipped_rows, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.pushdown_rows_pruned, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.pushdown_phase1_fields, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.pushdown_phase2_fields, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.scans_using_recovered_map, r->GetU64());
  NODB_ASSIGN_OR_RETURN(s.scans_using_recovered_store, r->GetU64());
  return m;
}

uint8_t WireCodeFor(StatusCode code) { return static_cast<uint8_t>(code); }

StatusCode StatusCodeFromWire(uint8_t code) {
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(code);
}

/// ---- Transport --------------------------------------------------------

Result<int> ListenTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoMessage("socket"));
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IOError(ErrnoMessage("bind"));
    CloseFd(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    Status status = Status::IOError(ErrnoMessage("listen"));
    CloseFd(fd);
    return status;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::IOError(ErrnoMessage("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  const std::string& ip = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoMessage("socket"));
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
         0) {
    if (errno == EINTR) continue;
    Status status = Status::IOError(ErrnoMessage("connect " + host));
    CloseFd(fd);
    return status;
  }
  SetNoDelay(fd);
  return fd;
}

Status WriteFully(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("send"));
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
  return Status::OK();
}

Status ReadFully(int fd, void* data, size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    ssize_t got = ::recv(fd, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("recv"));
    }
    if (got == 0) return Status::IOError("connection closed");
    p += got;
    n -= static_cast<size_t>(got);
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd >= 0) (void)::close(fd);
}

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  // One send per frame: header and payload go out together so a
  // concurrent reader never sees a torn prefix from interleaved
  // writes on a dead socket.
  std::string buf;
  buf.reserve(5 + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (size_t i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  buf.push_back(static_cast<char>(type));
  buf.append(payload.data(), payload.size());
  return WriteFully(fd, buf.data(), buf.size());
}

Result<Frame> ReadFrame(int fd, size_t max_frame_bytes) {
  uint8_t header[5];
  NODB_RETURN_NOT_OK(ReadFully(fd, header, sizeof(header)));
  uint32_t len = 0;
  for (size_t i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (len > max_frame_bytes) {
    return Status::OutOfRange("frame of " + std::to_string(len) +
                              " bytes exceeds limit of " +
                              std::to_string(max_frame_bytes));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(len);
  if (len > 0) {
    NODB_RETURN_NOT_OK(ReadFully(fd, frame.payload.data(), len));
  }
  return frame;
}

}  // namespace server
}  // namespace nodb
