#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <utility>

#include "monitor/panel.h"
#include "obs/metrics.h"
#include "server/wire.h"

namespace nodb {
namespace server {

namespace {
constexpr int kAcceptPollMs = 100;
constexpr int kDrainPollMs = 10;
}  // namespace

Server::Server(NoDbEngine* engine, const NoDbConfig& config)
    : engine_(engine), config_(config), admission_(config) {
  env_.engine = engine_;
  env_.admission = &admission_;
  env_.config = &config_;
  env_.server_name = std::string(engine_->name());
  env_.request_shutdown = [this] { RequestShutdown(); };
  env_.render_metrics = [this](bool prometheus) {
    return RenderMetrics(prometheus);
  };
}

Server::~Server() {
  // Destruction without Shutdown() still tears everything down; the
  // snapshot save status has nowhere to go, hence the named call is
  // the supported path.
  (void)Shutdown();  // see above
}

Status Server::Start() {
  NODB_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(config_.server_port));
  NODB_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  obs::Gauge* connections_gauge = obs::MetricsRegistry::Global().GetGauge(
      "nodb_server_connections", "currently open client connections");
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;  // timeout tick or EINTR: re-check stopping_
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetNoDelay(fd);
    accepted_total_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(mu_);
    ReapFinishedLocked();
    if (stopping_.load(std::memory_order_acquire) ||
        connections_.size() >= config_.server_max_connections) {
      CloseFd(fd);
      continue;
    }
    Connection conn;
    conn.session = std::make_unique<ServerSession>(
        &env_, fd, next_session_id_.fetch_add(1, std::memory_order_relaxed));
    ServerSession* session = conn.session.get();
    conn.thread = std::thread([session, connections_gauge] {
      connections_gauge->Add(1);
      session->Run();
      connections_gauge->Sub(1);
    });
    connections_.push_back(std::move(conn));
  }
}

void Server::ReapFinishedLocked() {
  for (size_t i = 0; i < connections_.size();) {
    if (connections_[i].session->finished()) {
      connections_[i].thread.join();
      connections_[i] = std::move(connections_.back());
      connections_.pop_back();
    } else {
      ++i;
    }
  }
}

void Server::RequestShutdown() {
  {
    MutexLock lock(mu_);
    shutdown_requested_ = true;
  }
  shutdown_requested_cv_.notify_all();
}

void Server::Wait() {
  MutexLock lock(mu_);
  while (!shutdown_requested_) {
    lock.Wait(shutdown_requested_cv_);
  }
}

Status Server::Shutdown() {
  {
    MutexLock lock(mu_);
    if (drained_) return Status::OK();
    drained_ = true;
  }
  RequestShutdown();

  // Stop accepting before touching live connections.
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();

  // Fail queued admissions, then stop every session from reading more
  // requests; whatever is executing now is the drain set.
  admission_.BeginDrain();
  {
    MutexLock lock(mu_);
    for (Connection& conn : connections_) {
      conn.session->BeginDrain();
    }
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(config_.server_drain_timeout_ms);
  for (;;) {
    bool all_done = true;
    {
      MutexLock lock(mu_);
      for (Connection& conn : connections_) {
        if (!conn.session->finished()) {
          all_done = false;
          break;
        }
      }
    }
    if (all_done || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(kDrainPollMs));
  }

  // Deadline passed: abandon stragglers at their next batch boundary.
  {
    MutexLock lock(mu_);
    for (Connection& conn : connections_) {
      if (!conn.session->finished()) conn.session->ForceCancel();
    }
    for (Connection& conn : connections_) {
      conn.thread.join();
    }
    connections_.clear();
  }

  CloseFd(listen_fd_);
  listen_fd_ = -1;

  // The whole point of draining gently: the adaptive state the served
  // queries built survives into the next process.
  if (config_.snapshot_mode == SnapshotMode::kOff) return Status::OK();
  return engine_->SaveAllSnapshots();
}

ServerStats Server::Stats() const {
  ServerStats stats;
  {
    MutexLock lock(mu_);
    uint32_t live = 0;
    for (const Connection& conn : connections_) {
      if (!conn.session->finished()) ++live;
    }
    stats.connections = live;
    stats.draining = shutdown_requested_;
  }
  admission_.FillStats(&stats);
  stats.queries_total = stats.admitted_total;
  return stats;
}

std::string Server::RenderMetrics(bool prometheus) {
  if (prometheus) {
    // Admission counters/gauges live in the global registry, so the
    // scrape already carries the server series.
    return obs::MetricsRegistry::Global().RenderPrometheus();
  }
  return obs::MetricsRegistry::Global().RenderText() + "\n" +
         MonitorPanel::RenderServer(Stats());
}

}  // namespace server
}  // namespace nodb
