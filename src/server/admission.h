#ifndef NODB_SERVER_ADMISSION_H_
#define NODB_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "raw/nodb_config.h"
#include "server/server_stats.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nodb {
namespace server {

class AdmissionController;

/// RAII admission slot: holds one global in-flight slot, one tenant
/// concurrency slot and the tenant's per-query memory reservation
/// until destroyed (or Release()d). Move-only so a slot can never be
/// double-released — the failure mode the cancellation test guards.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket() { Release(); }

  AdmissionTicket(AdmissionTicket&& other) noexcept { *this = std::move(other); }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    Release();
    controller_ = other.controller_;
    tenant_ = other.tenant_;
    other.controller_ = nullptr;
    return *this;
  }

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool valid() const { return controller_ != nullptr; }
  uint32_t tenant() const { return tenant_; }

  void Release();

 private:
  friend class AdmissionController;
  AdmissionTicket(AdmissionController* controller, uint32_t tenant)
      : controller_(controller), tenant_(tenant) {}

  AdmissionController* controller_ = nullptr;
  uint32_t tenant_ = 0;
};

/// Gatekeeper between accepted connections and the engine: every query
/// must hold an AdmissionTicket while it executes.
///
/// Admit() blocks (up to server_queue_timeout_ms) until all three
/// budgets have room — global in-flight, the tenant's concurrent-query
/// cap, and the tenant's scan-memory budget (each running query
/// reserves server_query_memory_reserve bytes) — then returns a
/// ticket. On timeout it returns Unavailable, which the session layer
/// answers with a REJECTED frame; the client backs off, the server
/// does no work.
///
/// BeginDrain() fails all waiters and every later Admit() immediately
/// so a draining server empties its queue instead of starting work it
/// would have to cancel.
class AdmissionController {
 public:
  explicit AdmissionController(const NoDbConfig& config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until admitted or the queue timeout passes. `tenant` is an
  /// obs::TenantIdFor id. Unavailable on timeout or drain.
  Result<AdmissionTicket> Admit(uint32_t tenant) EXCLUDES(mu_);

  /// Fails all queued waiters and future Admit() calls.
  void BeginDrain() EXCLUDES(mu_);

  /// Adds `rows` to the tenant's served-rows tally (RESULT_DONE time).
  void RecordRowsServed(uint32_t tenant, uint64_t rows) EXCLUDES(mu_);

  /// Folds the admission columns into `stats` (tenants sorted by name).
  void FillStats(ServerStats* stats) const EXCLUDES(mu_);

  uint32_t max_in_flight() const { return max_in_flight_; }

 private:
  friend class AdmissionTicket;

  struct TenantState {
    uint32_t in_flight = 0;
    size_t reserved_bytes = 0;
    uint64_t admitted_total = 0;
    uint64_t rejected_total = 0;
    uint64_t rows_served = 0;
  };

  void ReleaseSlot(uint32_t tenant) EXCLUDES(mu_);
  bool HasRoomLocked(const TenantState& t) const REQUIRES(mu_);

  const uint32_t max_in_flight_;
  const uint32_t tenant_max_concurrent_;
  const size_t tenant_memory_budget_;
  const size_t query_memory_reserve_;
  const uint32_t queue_timeout_ms_;

  mutable Mutex mu_;
  std::condition_variable slot_free_;
  uint32_t in_flight_ GUARDED_BY(mu_) = 0;
  uint32_t queued_ GUARDED_BY(mu_) = 0;
  bool draining_ GUARDED_BY(mu_) = false;
  uint64_t admitted_total_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_total_ GUARDED_BY(mu_) = 0;
  uint64_t queue_timeouts_total_ GUARDED_BY(mu_) = 0;
  std::unordered_map<uint32_t, TenantState> tenants_ GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace nodb

#endif  // NODB_SERVER_ADMISSION_H_
