#ifndef NODB_SERVER_CLIENT_H_
#define NODB_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "engines/engine.h"
#include "util/result.h"
#include "util/status.h"

namespace nodb {
namespace server {

/// Client side of the wire protocol — the one implementation behind
/// examples/nodb_client and the shell's --connect mode, so every
/// remote consumer renders results through the same QueryResult code
/// as in-process execution (byte-identical output is a test).
///
/// Not thread-safe: one connection, one conversation at a time, like
/// QuerySession.
class ClientConnection {
 public:
  /// Dials host:port, sends the magic and HELLO{tenant, client_name},
  /// waits for HELLO_OK.
  static Result<ClientConnection> Connect(const std::string& host,
                                          uint16_t port,
                                          const std::string& tenant,
                                          const std::string& client_name);

  ClientConnection(ClientConnection&& other) noexcept;
  ClientConnection& operator=(ClientConnection&& other) noexcept;
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;
  ~ClientConnection();

  /// Runs one query remotely. The result is rebuilt from the streamed
  /// batches; metrics carry the server's full cost breakdown (sql is
  /// stamped back in client-side). REJECTED comes back as Unavailable,
  /// ERROR as its original status code.
  Result<QueryOutcome> Execute(std::string_view sql);

  /// Fetches the server's metrics rendering (text or Prometheus).
  Result<std::string> FetchMetrics(bool prometheus);

  /// Asks the server to drain and exit (shell \shutdown). The server
  /// answers GOODBYE before it begins draining.
  Status SendShutdown();

  /// Sends GOODBYE and closes. Also done by the destructor.
  void Close();

  const std::string& server_name() const { return server_name_; }
  bool connected() const { return fd_ >= 0; }

 private:
  ClientConnection() = default;

  int fd_ = -1;
  std::string server_name_;
  size_t max_frame_bytes_ = 0;
};

}  // namespace server
}  // namespace nodb

#endif  // NODB_SERVER_CLIENT_H_
