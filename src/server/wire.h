#ifndef NODB_SERVER_WIRE_H_
#define NODB_SERVER_WIRE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "monitor/query_metrics.h"
#include "types/record_batch.h"
#include "types/schema.h"
#include "util/result.h"
#include "util/status.h"

namespace nodb {
namespace server {

/// The NoDB wire protocol.
///
/// A connection opens with the 4-byte magic "NoDB" (which also lets
/// one listener tell binary clients from HTTP requests — no HTTP verb
/// starts with these bytes), followed by length-prefixed frames:
///
///   u32 payload length (LE) | u8 frame type | payload
///
/// All integers are little-endian; strings are u32 length + raw bytes;
/// doubles travel as their IEEE-754 bit pattern so results round-trip
/// bit-identically. The conversation:
///
///   client: HELLO{version, tenant, client}     server: HELLO_OK{name}
///   client: QUERY{sql}                         server: RESULT_HEADER
///                                                      RESULT_BATCH*
///                                                      RESULT_DONE
///                                              or      ERROR / REJECTED
///   client: METRICS{format}                    server: METRICS_REPLY
///   client: SHUTDOWN                           server: GOODBYE (drain)
///   client: GOODBYE                            (either side closes)
///
/// Result batches stream straight out of the Volcano drain, chunked to
/// NoDbConfig::server_result_batch_rows rows per frame, so the first
/// rows of a large answer arrive while the scan is still running.
inline constexpr char kMagic[4] = {'N', 'o', 'D', 'B'};
inline constexpr uint16_t kProtocolVersion = 1;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kQuery = 3,
  kResultHeader = 4,
  kResultBatch = 5,
  kResultDone = 6,
  kError = 7,
  kRejected = 8,
  kMetricsRequest = 9,
  kMetricsReply = 10,
  kGoodbye = 11,
  kShutdown = 12,
};

/// One decoded frame (payload still wire-encoded).
struct Frame {
  FrameType type = FrameType::kGoodbye;
  std::string payload;
};

/// Appends wire-encoded primitives to a payload buffer.
class WireWriter {
 public:
  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked cursor over a received payload. Every getter fails
/// with ParseError instead of reading past the end — a fuzzer's
/// truncated frame becomes an ERROR reply, never a crash.
class WireReader {
 public:
  explicit WireReader(std::string_view payload) : data_(payload) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();

  size_t remaining() const { return data_.size() - pos_; }

  /// Trailing bytes after the last field are a protocol error.
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

/// ---- Typed payloads ---------------------------------------------------

void EncodeSchema(const Schema& schema, WireWriter* w);
Result<std::shared_ptr<Schema>> DecodeSchema(WireReader* r);

/// Rows [row_begin, row_end) of `batch`, column-major: per column the
/// validity bytes then the non-null values.
void EncodeBatchRows(const RecordBatch& batch, size_t row_begin,
                     size_t row_end, WireWriter* w);

/// Appends the frame's rows onto `batch` (whose schema must match the
/// preceding RESULT_HEADER). Returns the row count appended.
Result<size_t> DecodeBatchInto(WireReader* r, RecordBatch* batch);

/// The full cost breakdown travels in RESULT_DONE so a remote shell's
/// `\timing` renders through the same MonitorPanel code as a local one
/// (the sql text stays client-side and is not re-sent).
void EncodeQueryMetrics(const QueryMetrics& metrics, WireWriter* w);
Result<QueryMetrics> DecodeQueryMetrics(WireReader* r);

/// StatusCode <-> wire byte for ERROR frames (unknown bytes decode as
/// kInternal rather than failing — forward compatibility).
uint8_t WireCodeFor(StatusCode code);
StatusCode StatusCodeFromWire(uint8_t code);

/// ---- Transport --------------------------------------------------------

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Returns the
/// listening fd.
Result<int> ListenTcp(uint16_t port);

/// The locally-bound port of a listening fd (resolves port 0).
Result<uint16_t> LocalPort(int fd);

/// Disables Nagle on `fd`. Frames are written whole, so coalescing
/// small writes only adds delayed-ACK stalls; both ends of every
/// connection want this (ConnectTcp applies it itself; accepted fds
/// must opt in).
void SetNoDelay(int fd);

/// Connects to `host`:`port`; `host` must be an IPv4 literal or
/// "localhost".
Result<int> ConnectTcp(const std::string& host, uint16_t port);

/// Loops over partial writes/reads; EINTR-safe; writes suppress
/// SIGPIPE. ReadFully reports a clean mid-stream EOF as IOError
/// "connection closed".
Status WriteFully(int fd, const void* data, size_t n);
Status ReadFully(int fd, void* data, size_t n);

void CloseFd(int fd);

/// One frame out / in. ReadFrame refuses payloads over
/// `max_frame_bytes` *before* allocating (the anti-DoS check); the
/// caller decides whether that kills the connection.
Status WriteFrame(int fd, FrameType type, std::string_view payload);
Result<Frame> ReadFrame(int fd, size_t max_frame_bytes);

}  // namespace server
}  // namespace nodb

#endif  // NODB_SERVER_WIRE_H_
