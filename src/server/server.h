#ifndef NODB_SERVER_SERVER_H_
#define NODB_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engines/nodb_engine.h"
#include "server/admission.h"
#include "server/server_stats.h"
#include "server/session.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nodb {
namespace server {

/// The network front end around one NoDbEngine: a loopback TCP
/// listener whose connections each get a thread and a ServerSession
/// (binary wire protocol or HTTP, sniffed per connection), all funneled
/// through one AdmissionController.
///
/// Lifecycle:
///   Server server(&engine, config);
///   NODB_RETURN_NOT_OK(server.Start());   // binds, spawns accept loop
///   ... serve (Wait() blocks until shutdown is requested) ...
///   server.RequestShutdown();             // SIGTERM handler / \shutdown
///   server.Shutdown();                    // graceful drain, see below
///
/// Graceful drain (Shutdown): stop accepting; tell every live session
/// to stop reading (buffered QUERYs answered REJECTED) while admission
/// fails all waiters; give in-flight queries server_drain_timeout_ms to
/// finish; fire their cancel flags so stragglers abort at the next
/// batch boundary; join everything; then SaveAllSnapshots() so the
/// engine's adaptive state survives the restart. Idempotent.
class Server {
 public:
  Server(NoDbEngine* engine, const NoDbConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:server_port (0 = ephemeral) and starts accepting.
  Status Start() EXCLUDES(mu_);

  /// The bound port (after Start; resolves port 0).
  uint16_t port() const { return port_; }

  /// Marks the server as shutting down and wakes Wait(). Callable from
  /// any thread, including a signal-triggered one. Does not drain.
  void RequestShutdown();

  /// Blocks until RequestShutdown is called (server main loop).
  void Wait() EXCLUDES(mu_);

  /// Runs the graceful drain described above and releases the
  /// listener. Returns the SaveAllSnapshots status (OK when snapshots
  /// are off). Idempotent; safe without Start().
  Status Shutdown() EXCLUDES(mu_);

  /// Point-in-time stats for \metrics and MonitorPanel::RenderServer.
  ServerStats Stats() const EXCLUDES(mu_);

  AdmissionController& admission() { return admission_; }

 private:
  struct Connection {
    std::unique_ptr<ServerSession> session;
    std::thread thread;
  };

  void AcceptLoop();
  void ReapFinishedLocked() REQUIRES(mu_);
  std::string RenderMetrics(bool prometheus);

  NoDbEngine* engine_;
  NoDbConfig config_;
  AdmissionController admission_;
  SessionEnv env_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> accepted_total_{0};

  mutable Mutex mu_;
  std::condition_variable shutdown_requested_cv_;
  bool shutdown_requested_ GUARDED_BY(mu_) = false;
  bool drained_ GUARDED_BY(mu_) = false;
  std::vector<Connection> connections_ GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace nodb

#endif  // NODB_SERVER_SERVER_H_
