#ifndef NODB_SERVER_SESSION_H_
#define NODB_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "engines/query_session.h"
#include "exec/cancel.h"
#include "raw/nodb_config.h"
#include "server/admission.h"
#include "util/status.h"

namespace nodb {
namespace server {

/// What a connection needs from the server that owns it, passed by
/// reference so session.h never includes server.h (no cyclic layering).
/// The callbacks keep the session ignorant of drain mechanics: it only
/// reports wishes upward.
struct SessionEnv {
  Engine* engine = nullptr;
  AdmissionController* admission = nullptr;
  const NoDbConfig* config = nullptr;
  std::string server_name;
  /// Invoked on a remote SHUTDOWN frame (when the config allows it).
  std::function<void()> request_shutdown;
  /// Renders the metrics body (text or Prometheus) including the
  /// server's own section.
  std::function<std::string(bool prometheus)> render_metrics;
};

/// One accepted connection, binary or HTTP, handled end-to-end on its
/// own thread.
///
/// The first four bytes decide the dialect: the "NoDB" magic starts the
/// framed binary protocol, anything else is treated as an HTTP/1.0
/// request line. A binary connection wraps a QuerySession (so
/// ScopedSessionLabel attribution works exactly as for in-process
/// clients) authenticated by the tenant name in HELLO.
///
/// Malformed-input policy, exercised by the fuzz test: a bad payload or
/// unknown frame type with intact framing gets an ERROR reply and the
/// connection lives on; an oversized length prefix gets an ERROR and
/// the connection is closed (the stream position is unrecoverable);
/// a truncated stream just closes. No path leaks an admission slot —
/// the ticket is scoped to HandleQuery.
class ServerSession {
 public:
  ServerSession(SessionEnv* env, int fd, uint64_t id);
  ~ServerSession();

  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  /// Thread body: dispatches on the magic, runs the conversation until
  /// the peer hangs up or drain closes the socket, marks finished().
  void Run();

  /// Drain step 1: stop reading new requests. Any QUERY already
  /// buffered is answered REJECTED; the current query keeps running.
  void BeginDrain();

  /// Drain step 2 (deadline passed): fire the cancel flag so the
  /// in-flight query aborts at its next batch boundary, and shut the
  /// socket both ways.
  void ForceCancel();

  bool finished() const { return finished_.load(std::memory_order_acquire); }
  uint64_t id() const { return id_; }

 private:
  void RunBinary();
  Status SendError(const Status& error);
  Status HandleHello(const std::string& payload, bool* saw_hello);
  Status HandleQuery(const std::string& payload);
  Status HandleMetrics(const std::string& payload);

  SessionEnv* env_;
  int fd_;
  uint64_t id_;
  /// Created at HELLO time, once the client has named itself.
  std::unique_ptr<QuerySession> session_;
  uint32_t tenant_id_ = 0;
  QueryCancelFlag cancel_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> finished_{false};
};

}  // namespace server
}  // namespace nodb

#endif  // NODB_SERVER_SESSION_H_
