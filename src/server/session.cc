#include "server/session.h"

#include <sys/socket.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/tenant.h"
#include "server/http.h"
#include "server/wire.h"

namespace nodb {
namespace server {

namespace {

/// Forwards the Volcano drain onto the socket: RESULT_HEADER once,
/// then RESULT_BATCH frames of at most `batch_rows` rows each. A write
/// failure (client hung up) propagates back through the drain loop and
/// aborts the query at the next batch boundary.
class WireBatchSink : public BatchSink {
 public:
  WireBatchSink(int fd, uint32_t batch_rows)
      : fd_(fd), batch_rows_(batch_rows == 0 ? 1 : batch_rows) {}

  Status OnSchema(const std::shared_ptr<Schema>& schema) override {
    WireWriter w;
    EncodeSchema(*schema, &w);
    return WriteFrame(fd_, FrameType::kResultHeader, w.data());
  }

  Status OnBatch(const RecordBatch& batch) override {
    for (size_t begin = 0; begin < batch.num_rows(); begin += batch_rows_) {
      size_t end = std::min(batch.num_rows(),
                            begin + static_cast<size_t>(batch_rows_));
      WireWriter w;
      EncodeBatchRows(batch, begin, end, &w);
      NODB_RETURN_NOT_OK(WriteFrame(fd_, FrameType::kResultBatch, w.data()));
      rows_sent_ += end - begin;
    }
    // An empty projection-only batch still counts rows.
    if (batch.num_columns() == 0) rows_sent_ += batch.num_rows();
    return Status::OK();
  }

  uint64_t rows_sent() const { return rows_sent_; }

 private:
  int fd_;
  uint32_t batch_rows_;
  uint64_t rows_sent_ = 0;
};

}  // namespace

ServerSession::ServerSession(SessionEnv* env, int fd, uint64_t id)
    : env_(env), fd_(fd), id_(id) {}

ServerSession::~ServerSession() { CloseFd(fd_); }

void ServerSession::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  // Wakes a blocked ReadFrame with EOF; data already buffered still
  // arrives, which is why the draining_ check above stays load-bearing.
  (void)::shutdown(fd_, SHUT_RD);  // best-effort: fd may already be closed
}

void ServerSession::ForceCancel() {
  cancel_.Cancel();
  (void)::shutdown(fd_, SHUT_RDWR);  // best-effort: unblocks any socket wait
}

void ServerSession::Run() {
  char magic[4] = {0, 0, 0, 0};
  Status status = ReadFully(fd_, magic, sizeof(magic));
  if (status.ok()) {
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) == 0) {
      RunBinary();
    } else {
      ServeHttp(env_, fd_, std::string_view(magic, sizeof(magic)));
    }
  }
  // The fd itself is closed by the destructor (BeginDrain/ForceCancel
  // may still poke it from the server thread); the peer gets its EOF
  // now, not at reap time.
  (void)::shutdown(fd_, SHUT_RDWR);  // best effort: peer may be gone
  finished_.store(true, std::memory_order_release);
}

Status ServerSession::SendError(const Status& error) {
  WireWriter w;
  w.PutU8(WireCodeFor(error.code()));
  w.PutString(error.message());
  return WriteFrame(fd_, FrameType::kError, w.data());
}

void ServerSession::RunBinary() {
  bool saw_hello = false;
  for (;;) {
    Result<Frame> frame =
        ReadFrame(fd_, env_->config->server_max_frame_bytes);
    if (!frame.ok()) {
      // Oversized length prefix: the stream position is unrecoverable,
      // so tell the client why and close. Truncation/EOF just closes.
      if (frame.status().IsOutOfRange()) {
        (void)SendError(frame.status());  // best effort on a doomed stream
      }
      return;
    }
    if (!saw_hello && frame->type != FrameType::kHello) {
      (void)SendError(  // best effort: closing either way
          Status::InvalidArgument("first frame must be HELLO"));
      return;
    }
    Status status = Status::OK();
    switch (frame->type) {
      case FrameType::kHello:
        status = HandleHello(frame->payload, &saw_hello);
        break;
      case FrameType::kQuery:
        status = HandleQuery(frame->payload);
        break;
      case FrameType::kMetricsRequest:
        status = HandleMetrics(frame->payload);
        break;
      case FrameType::kShutdown:
        if (!env_->config->server_allow_remote_shutdown) {
          status = SendError(Status::InvalidArgument(
              "remote shutdown is disabled (server_allow_remote_shutdown)"));
          break;
        }
        (void)WriteFrame(fd_, FrameType::kGoodbye, "");  // peer is leaving
        env_->request_shutdown();
        return;
      case FrameType::kGoodbye:
        return;
      default:
        // Unknown type with intact framing: survivable.
        status = SendError(Status::InvalidArgument(
            "unknown frame type " +
            std::to_string(static_cast<int>(frame->type))));
        break;
    }
    // A non-OK status here means the socket itself failed; protocol
    // errors were already answered with an ERROR frame.
    if (!status.ok()) return;
  }
}

Status ServerSession::HandleHello(const std::string& payload,
                                  bool* saw_hello) {
  WireReader r(payload);
  Result<uint16_t> version = r.GetU16();
  if (!version.ok()) return SendError(version.status());
  if (*version != kProtocolVersion) {
    return SendError(Status::InvalidArgument(
        "protocol version " + std::to_string(*version) +
        " not supported (server speaks " +
        std::to_string(kProtocolVersion) + ")"));
  }
  Result<std::string> tenant = r.GetString();
  if (!tenant.ok()) return SendError(tenant.status());
  Result<std::string> client = r.GetString();
  if (!client.ok()) return SendError(client.status());
  Status end = r.ExpectEnd();
  if (!end.ok()) return SendError(end);
  if (tenant->empty()) {
    return SendError(
        Status::InvalidArgument("HELLO must name a non-empty tenant"));
  }
  tenant_id_ = obs::TenantIdFor(*tenant);
  session_ = std::make_unique<QuerySession>(
      env_->engine, *tenant + "/" + *client + "#" + std::to_string(id_));
  *saw_hello = true;
  WireWriter w;
  w.PutU16(kProtocolVersion);
  w.PutString(env_->server_name);
  return WriteFrame(fd_, FrameType::kHelloOk, w.data());
}

Status ServerSession::HandleQuery(const std::string& payload) {
  WireReader r(payload);
  Result<std::string> sql = r.GetString();
  if (!sql.ok()) return SendError(sql.status());
  Status end = r.ExpectEnd();
  if (!end.ok()) return SendError(end);

  if (draining_.load(std::memory_order_acquire)) {
    WireWriter w;
    w.PutString("server is draining");
    return WriteFrame(fd_, FrameType::kRejected, w.data());
  }
  Result<AdmissionTicket> ticket = env_->admission->Admit(tenant_id_);
  if (!ticket.ok()) {
    if (ticket.status().IsUnavailable()) {
      WireWriter w;
      w.PutString(ticket.status().message());
      return WriteFrame(fd_, FrameType::kRejected, w.data());
    }
    return SendError(ticket.status());
  }

  WireBatchSink sink(fd_, env_->config->server_result_batch_rows);
  obs::ScopedTenantLabel tenant_label(tenant_id_);
  Result<QueryOutcome> outcome =
      session_->ExecuteStreaming(*sql, &sink, &cancel_);
  // Release before the terminal frame goes out: a client that has seen
  // RESULT_DONE/ERROR may immediately issue (or observe) another query,
  // and its slot must already be free by then.
  ticket->Release();
  if (!outcome.ok()) {
    // Covers query errors after RESULT_HEADER too: an ERROR frame
    // terminates the result stream wherever it lands. If the failure
    // was the socket itself, this send fails and closes the loop.
    return SendError(outcome.status());
  }
  env_->admission->RecordRowsServed(tenant_id_, sink.rows_sent());
  WireWriter w;
  w.PutU64(sink.rows_sent());
  EncodeQueryMetrics(outcome->metrics, &w);
  return WriteFrame(fd_, FrameType::kResultDone, w.data());
}

Status ServerSession::HandleMetrics(const std::string& payload) {
  WireReader r(payload);
  Result<uint8_t> format = r.GetU8();
  if (!format.ok()) return SendError(format.status());
  Status end = r.ExpectEnd();
  if (!end.ok()) return SendError(end);
  if (*format > 1) {
    return SendError(Status::InvalidArgument(
        "unknown metrics format " + std::to_string(*format)));
  }
  WireWriter w;
  w.PutString(env_->render_metrics(*format == 1));
  return WriteFrame(fd_, FrameType::kMetricsReply, w.data());
}

}  // namespace server
}  // namespace nodb
