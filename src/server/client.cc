#include "server/client.h"

#include <memory>
#include <utility>

#include "server/wire.h"

namespace nodb {
namespace server {

namespace {

/// Client-side receive cap. Deliberately larger than the server's
/// default send-side frame budget: a lagging client should never be
/// the one to declare a healthy server's batch oversized.
constexpr size_t kClientMaxFrameBytes = 256u << 20;

Status DecodeError(const Frame& frame) {
  WireReader r(frame.payload);
  Result<uint8_t> code = r.GetU8();
  if (!code.ok()) return code.status();
  Result<std::string> message = r.GetString();
  if (!message.ok()) return message.status();
  return Status(StatusCodeFromWire(*code), std::move(*message));
}

Status DecodeRejected(const Frame& frame) {
  WireReader r(frame.payload);
  Result<std::string> message = r.GetString();
  if (!message.ok()) return message.status();
  return Status::Unavailable(std::move(*message));
}

}  // namespace

Result<ClientConnection> ClientConnection::Connect(
    const std::string& host, uint16_t port, const std::string& tenant,
    const std::string& client_name) {
  ClientConnection conn;
  conn.max_frame_bytes_ = kClientMaxFrameBytes;
  NODB_ASSIGN_OR_RETURN(conn.fd_, ConnectTcp(host, port));
  NODB_RETURN_NOT_OK(WriteFully(conn.fd_, kMagic, sizeof(kMagic)));
  WireWriter hello;
  hello.PutU16(kProtocolVersion);
  hello.PutString(tenant);
  hello.PutString(client_name);
  NODB_RETURN_NOT_OK(WriteFrame(conn.fd_, FrameType::kHello, hello.data()));
  NODB_ASSIGN_OR_RETURN(Frame frame,
                        ReadFrame(conn.fd_, conn.max_frame_bytes_));
  if (frame.type == FrameType::kError) return DecodeError(frame);
  if (frame.type != FrameType::kHelloOk) {
    return Status::ParseError("expected HELLO_OK from server");
  }
  WireReader r(frame.payload);
  NODB_ASSIGN_OR_RETURN(uint16_t version, r.GetU16());
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("server speaks protocol version " +
                                   std::to_string(version));
  }
  NODB_ASSIGN_OR_RETURN(conn.server_name_, r.GetString());
  return conn;
}

ClientConnection::ClientConnection(ClientConnection&& other) noexcept {
  *this = std::move(other);
}

ClientConnection& ClientConnection::operator=(
    ClientConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    server_name_ = std::move(other.server_name_);
    max_frame_bytes_ = other.max_frame_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

ClientConnection::~ClientConnection() { Close(); }

void ClientConnection::Close() {
  if (fd_ < 0) return;
  (void)WriteFrame(fd_, FrameType::kGoodbye, "");  // best effort: closing
  CloseFd(fd_);
  fd_ = -1;
}

Result<QueryOutcome> ClientConnection::Execute(std::string_view sql) {
  if (fd_ < 0) return Status::IOError("not connected");
  WireWriter query;
  query.PutString(sql);
  Status sent = WriteFrame(fd_, FrameType::kQuery, query.data());
  if (!sent.ok()) {
    CloseFd(fd_);
    fd_ = -1;
    return sent;
  }
  std::shared_ptr<RecordBatch> rows;
  std::shared_ptr<Schema> schema;
  for (;;) {
    Result<Frame> frame = ReadFrame(fd_, max_frame_bytes_);
    if (!frame.ok()) {
      // Transport failure mid-conversation: the stream position is
      // unknown, so the connection is unusable from here on.
      CloseFd(fd_);
      fd_ = -1;
      return frame.status();
    }
    switch (frame->type) {
      case FrameType::kResultHeader: {
        WireReader r(frame->payload);
        NODB_ASSIGN_OR_RETURN(schema, DecodeSchema(&r));
        NODB_RETURN_NOT_OK(r.ExpectEnd());
        rows = std::make_shared<RecordBatch>(schema);
        break;
      }
      case FrameType::kResultBatch: {
        if (rows == nullptr) {
          return Status::ParseError("RESULT_BATCH before RESULT_HEADER");
        }
        WireReader r(frame->payload);
        NODB_RETURN_NOT_OK(DecodeBatchInto(&r, rows.get()).status());
        NODB_RETURN_NOT_OK(r.ExpectEnd());
        break;
      }
      case FrameType::kResultDone: {
        if (rows == nullptr) {
          return Status::ParseError("RESULT_DONE before RESULT_HEADER");
        }
        WireReader r(frame->payload);
        NODB_ASSIGN_OR_RETURN(uint64_t total_rows, r.GetU64());
        if (total_rows != rows->num_rows()) {
          return Status::Internal(
              "row count mismatch: server sent " +
              std::to_string(total_rows) + ", received " +
              std::to_string(rows->num_rows()));
        }
        NODB_ASSIGN_OR_RETURN(QueryMetrics metrics, DecodeQueryMetrics(&r));
        NODB_RETURN_NOT_OK(r.ExpectEnd());
        metrics.sql = std::string(sql);
        QueryOutcome outcome;
        outcome.result = QueryResult::FromParts(schema, std::move(rows));
        outcome.metrics = std::move(metrics);
        return outcome;
      }
      case FrameType::kError:
        return DecodeError(*frame);
      case FrameType::kRejected:
        return DecodeRejected(*frame);
      default:
        return Status::ParseError("unexpected frame type in query reply");
    }
  }
}

Result<std::string> ClientConnection::FetchMetrics(bool prometheus) {
  if (fd_ < 0) return Status::IOError("not connected");
  WireWriter request;
  request.PutU8(prometheus ? 1 : 0);
  NODB_RETURN_NOT_OK(
      WriteFrame(fd_, FrameType::kMetricsRequest, request.data()));
  NODB_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_, max_frame_bytes_));
  if (frame.type == FrameType::kError) return DecodeError(frame);
  if (frame.type != FrameType::kMetricsReply) {
    return Status::ParseError("expected METRICS_REPLY from server");
  }
  WireReader r(frame.payload);
  NODB_ASSIGN_OR_RETURN(std::string body, r.GetString());
  NODB_RETURN_NOT_OK(r.ExpectEnd());
  return body;
}

Status ClientConnection::SendShutdown() {
  if (fd_ < 0) return Status::IOError("not connected");
  NODB_RETURN_NOT_OK(WriteFrame(fd_, FrameType::kShutdown, ""));
  NODB_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_, max_frame_bytes_));
  if (frame.type == FrameType::kError) return DecodeError(frame);
  if (frame.type != FrameType::kGoodbye) {
    return Status::ParseError("expected GOODBYE from server");
  }
  CloseFd(fd_);
  fd_ = -1;
  return Status::OK();
}

}  // namespace server
}  // namespace nodb
