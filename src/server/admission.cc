#include "server/admission.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/tenant.h"

namespace nodb {
namespace server {

namespace {

struct AdmissionMetrics {
  obs::Counter* admitted;
  obs::Counter* rejected;
  obs::Counter* queue_timeouts;
  obs::Gauge* in_flight;
  obs::Gauge* queued;
  obs::LatencyHistogram* queue_wait;
};

AdmissionMetrics& Metrics() {
  static AdmissionMetrics* m = new AdmissionMetrics{
      obs::MetricsRegistry::Global().GetCounter(
          "nodb_server_admitted_total", "queries admitted past admission"),
      obs::MetricsRegistry::Global().GetCounter(
          "nodb_server_rejected_total",
          "queries rejected by admission (budget or drain)"),
      obs::MetricsRegistry::Global().GetCounter(
          "nodb_server_queue_timeouts_total",
          "admissions that waited the full queue timeout"),
      obs::MetricsRegistry::Global().GetGauge(
          "nodb_server_in_flight", "queries currently executing"),
      obs::MetricsRegistry::Global().GetGauge(
          "nodb_server_queued", "queries waiting for an admission slot"),
      obs::MetricsRegistry::Global().GetHistogram(
          "nodb_server_queue_wait_ns", "time spent waiting for admission"),
  };
  return *m;
}

}  // namespace

void AdmissionTicket::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseSlot(tenant_);
  controller_ = nullptr;
}

AdmissionController::AdmissionController(const NoDbConfig& config)
    : max_in_flight_(config.server_max_in_flight != 0
                         ? config.server_max_in_flight
                         : std::max(1u, std::thread::hardware_concurrency())),
      tenant_max_concurrent_(std::max(1u, config.server_tenant_max_concurrent)),
      tenant_memory_budget_(config.server_tenant_memory_budget),
      query_memory_reserve_(config.server_query_memory_reserve),
      queue_timeout_ms_(config.server_queue_timeout_ms) {}

bool AdmissionController::HasRoomLocked(const TenantState& t) const {
  return in_flight_ < max_in_flight_ && t.in_flight < tenant_max_concurrent_ &&
         t.reserved_bytes + query_memory_reserve_ <= tenant_memory_budget_;
}

Result<AdmissionTicket> AdmissionController::Admit(uint32_t tenant) {
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::milliseconds(queue_timeout_ms_);
  bool waited = false;
  {
    MutexLock lock(mu_);
    TenantState& t = tenants_[tenant];
    while (!draining_ && !HasRoomLocked(t)) {
      waited = true;
      ++queued_;
      Metrics().queued->Add(1);
      bool notified = lock.WaitUntil(slot_free_, deadline);
      --queued_;
      Metrics().queued->Sub(1);
      if (!notified && !HasRoomLocked(t) && !draining_) {
        ++queue_timeouts_total_;
        t.rejected_total += 1;
        ++rejected_total_;
        Metrics().queue_timeouts->Add(1);
        Metrics().rejected->Add(1);
        return Status::Unavailable(
            "admission queue timeout for tenant " + obs::TenantName(tenant) +
            " after " + std::to_string(queue_timeout_ms_) + "ms");
      }
    }
    if (draining_) {
      t.rejected_total += 1;
      ++rejected_total_;
      Metrics().rejected->Add(1);
      return Status::Unavailable("server is draining");
    }
    ++in_flight_;
    t.in_flight += 1;
    t.reserved_bytes += query_memory_reserve_;
    t.admitted_total += 1;
    ++admitted_total_;
  }
  Metrics().admitted->Add(1);
  Metrics().in_flight->Add(1);
  if (waited) {
    Metrics().queue_wait->Record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  return AdmissionTicket(this, tenant);
}

void AdmissionController::ReleaseSlot(uint32_t tenant) {
  {
    MutexLock lock(mu_);
    --in_flight_;
    TenantState& t = tenants_[tenant];
    t.in_flight -= 1;
    t.reserved_bytes -= query_memory_reserve_;
  }
  Metrics().in_flight->Sub(1);
  slot_free_.notify_all();
}

void AdmissionController::BeginDrain() {
  {
    MutexLock lock(mu_);
    draining_ = true;
  }
  slot_free_.notify_all();
}

void AdmissionController::RecordRowsServed(uint32_t tenant, uint64_t rows) {
  MutexLock lock(mu_);
  tenants_[tenant].rows_served += rows;
}

void AdmissionController::FillStats(ServerStats* stats) const {
  MutexLock lock(mu_);
  stats->in_flight = in_flight_;
  stats->queued = queued_;
  stats->max_in_flight = max_in_flight_;
  stats->admitted_total = admitted_total_;
  stats->rejected_total = rejected_total_;
  stats->queue_timeouts_total = queue_timeouts_total_;
  stats->draining = stats->draining || draining_;
  stats->tenants.clear();
  stats->tenants.reserve(tenants_.size());
  for (const auto& [id, t] : tenants_) {
    TenantAdmissionStats row;
    row.name = obs::TenantName(id);
    row.in_flight = t.in_flight;
    row.admitted_total = t.admitted_total;
    row.rejected_total = t.rejected_total;
    row.rows_served = t.rows_served;
    row.reserved_bytes = t.reserved_bytes;
    stats->tenants.push_back(std::move(row));
  }
  std::sort(stats->tenants.begin(), stats->tenants.end(),
            [](const TenantAdmissionStats& a, const TenantAdmissionStats& b) {
              return a.name < b.name;
            });
}

}  // namespace server
}  // namespace nodb
