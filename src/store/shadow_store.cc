#include "store/shadow_store.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/tenant.h"

namespace nodb {

namespace {

/// Process-wide store accounting across every table's ShadowStore; the
/// per-instance counters stay the per-table view.
obs::Counter* PromotionsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "nodb_store_promotions_total",
      "Column segments promoted into a ShadowStore");
  return counter;
}

obs::Counter* EvictionsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "nodb_store_evictions_total",
      "Column segments evicted from a ShadowStore by the LRU budget");
  return counter;
}

}  // namespace

std::shared_ptr<const ColumnVector> ShadowStore::Get(uint32_t attr,
                                                     uint64_t block) {
  MutexLock lock(mu_);
  auto it = entries_.find(Key{attr, block});
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.segment;
}

bool ShadowStore::Contains(uint32_t attr, uint64_t block) const {
  MutexLock lock(mu_);
  return entries_.find(Key{attr, block}) != entries_.end();
}

bool ShadowStore::GetBlock(
    const std::vector<uint32_t>& attrs, uint64_t block,
    std::vector<std::shared_ptr<const ColumnVector>>* out) {
  out->clear();
  MutexLock lock(mu_);
  out->reserve(attrs.size());
  std::vector<std::list<Key>::iterator> found;
  found.reserve(attrs.size());
  for (uint32_t attr : attrs) {
    auto it = entries_.find(Key{attr, block});
    if (it == entries_.end()) {
      out->clear();
      ++misses_;
      return false;
    }
    out->push_back(it->second.segment);
    found.push_back(it->second.lru_pos);
  }
  // All resident: the block will be served, refresh every segment.
  for (auto pos : found) lru_.splice(lru_.begin(), lru_, pos);
  ++hits_;
  return true;
}

void ShadowStore::Promote(uint32_t attr, uint64_t block,
                          std::shared_ptr<const ColumnVector> segment,
                          uint64_t generation) {
  if (segment == nullptr) return;
  size_t bytes = segment->MemoryUsage();
  MutexLock lock(mu_);
  if (generation != generation_) return;  // parsed a rewritten file
  if (bytes > budget_bytes_) return;      // could never fit
  Key key{attr, block};
  if (entries_.find(key) != entries_.end()) return;  // already promoted
  lru_.push_front(key);
  Entry entry;
  size_t rows = segment->size();
  entry.segment = std::move(segment);
  entry.bytes = bytes;
  entry.owner = obs::ScopedTenantLabel::CurrentId();
  entry.lru_pos = lru_.begin();
  owner_bytes_[entry.owner] += bytes;
  entries_.emplace(key, std::move(entry));
  bytes_used_ += bytes;
  if (attr >= rows_.size()) rows_.resize(attr + 1, 0);
  rows_[attr] += rows;
  ++promotions_;
  PromotionsCounter()->Add(1);
  EvictOverBudget();
}

void ShadowStore::RemoveLocked(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_used_ -= it->second.bytes;
  auto ob = owner_bytes_.find(it->second.owner);
  if (ob != owner_bytes_.end()) {
    ob->second -= std::min(ob->second, it->second.bytes);
    if (ob->second == 0) owner_bytes_.erase(ob);
  }
  if (key.attr < rows_.size()) {
    rows_[key.attr] -= it->second.segment->size();
  }
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void ShadowStore::EvictOverBudget() {
  while (bytes_used_ > budget_bytes_ && !lru_.empty()) {
    // An over-budget store always has an owner over the equal share
    // (pigeonhole), so the scan below normally finds a victim; the
    // global LRU tail is kept as a belt-and-braces fallback.
    size_t share =
        budget_bytes_ / std::max<size_t>(size_t{1}, owner_bytes_.size());
    Key victim = lru_.back();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto entry = entries_.find(*it);
      if (entry == entries_.end()) continue;
      auto ob = owner_bytes_.find(entry->second.owner);
      if (ob != owner_bytes_.end() && ob->second > share) {
        victim = *it;
        break;
      }
    }
    RemoveLocked(victim);
    ++evictions_;
    EvictionsCounter()->Add(1);
  }
}

void ShadowStore::DropBlocksFrom(uint64_t first_block) {
  MutexLock lock(mu_);
  std::vector<Key> doomed;
  for (const auto& [key, entry] : entries_) {
    if (key.block >= first_block) doomed.push_back(key);
  }
  for (const Key& key : doomed) RemoveLocked(key);
}

void ShadowStore::DropBlock(uint64_t block) {
  MutexLock lock(mu_);
  std::vector<Key> doomed;
  for (const auto& [key, entry] : entries_) {
    if (key.block == block) doomed.push_back(key);
  }
  for (const Key& key : doomed) RemoveLocked(key);
}

void ShadowStore::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
  rows_.assign(rows_.size(), 0);
  owner_bytes_.clear();
  bytes_used_ = 0;
  ++generation_;
}

ShadowStore::Image ShadowStore::ExportImage() const {
  MutexLock lock(mu_);
  Image image;
  image.segments.reserve(entries_.size());
  for (const Key& key : lru_) {
    auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    image.segments.push_back(
        Image::SegmentImage{key.attr, key.block, it->second.segment});
  }
  return image;
}

bool ShadowStore::ImportImage(const Image& image) {
  if (num_segments() != 0) return false;  // already promoting: live wins
  uint64_t generation;
  {
    MutexLock lock(mu_);
    generation = generation_;
  }
  for (auto it = image.segments.rbegin(); it != image.segments.rend();
       ++it) {
    Promote(it->attr, it->block, it->segment, generation);
  }
  return true;
}

size_t ShadowStore::bytes_used_by(uint32_t owner) const {
  MutexLock lock(mu_);
  auto it = owner_bytes_.find(owner);
  return it == owner_bytes_.end() ? 0 : it->second;
}

uint64_t ShadowStore::rows_materialized(uint32_t attr) const {
  MutexLock lock(mu_);
  return attr < rows_.size() ? rows_[attr] : 0;
}

std::vector<uint32_t> ShadowStore::MaterializedAttributes() const {
  MutexLock lock(mu_);
  std::vector<uint32_t> out;
  for (uint32_t a = 0; a < rows_.size(); ++a) {
    if (rows_[a] > 0) out.push_back(a);
  }
  return out;
}

}  // namespace nodb
