#ifndef NODB_STORE_PROMOTER_H_
#define NODB_STORE_PROMOTER_H_

#include <cstdint>
#include <vector>

#include "raw/table_state.h"
#include "util/status.h"

namespace nodb {

/// Background promotion into the shadow column store (the paper's
/// adaptive loading: hot raw data gradually becomes loaded data).
///
/// The policy lives here; the engine only decides *when* to run a pass
/// (after query completion, on the shared worker pool, at most one
/// pass per table at a time — see RawTableState::TryBeginPromotion).

/// Attributes whose access heat reached the table's promotion
/// threshold (NoDbConfig::promote_after_accesses), ascending.
std::vector<uint32_t> HotAttributes(const RawTableState& state);

/// True when some hot attribute still has rows the store does not
/// hold — either the store's coverage trails the known row count or
/// row discovery has not reached end of file yet.
bool PromotionPending(const RawTableState& state,
                      const std::vector<uint32_t>& hot_attrs);

/// Materializes every block of `hot_attrs` into the state's shadow
/// store by driving a RawScanOperator over exactly those columns:
/// blocks already promoted are skipped via the store fast path, cache-
/// resident segments are handed over without re-parsing, and only
/// genuinely missing blocks are parsed (once). Runs correctly
/// concurrently with queries over the same state.
Status PromoteHotColumns(RawTableState* state,
                         const std::vector<uint32_t>& hot_attrs);

}  // namespace nodb

#endif  // NODB_STORE_PROMOTER_H_
