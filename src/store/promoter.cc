#include "store/promoter.h"

#include "obs/metrics.h"
#include "raw/raw_scan.h"
#include "raw/scan_metrics.h"
#include "util/stopwatch.h"

namespace nodb {

std::vector<uint32_t> HotAttributes(const RawTableState& state) {
  const uint32_t threshold = state.config().promote_after_accesses;
  std::vector<uint64_t> heat = state.stats().access_heat_counts();
  std::vector<uint32_t> hot;
  for (uint32_t a = 0; a < heat.size(); ++a) {
    if (heat[a] >= threshold) hot.push_back(a);
  }
  return hot;
}

bool PromotionPending(const RawTableState& state,
                      const std::vector<uint32_t>& hot_attrs) {
  if (hot_attrs.empty()) return false;
  if (!state.map().rows_complete()) return true;  // undiscovered rows
  const uint64_t known = state.map().known_rows();
  for (uint32_t attr : hot_attrs) {
    if (state.store().rows_materialized(attr) < known) return true;
  }
  return false;
}

Status PromoteHotColumns(RawTableState* state,
                         const std::vector<uint32_t>& hot_attrs) {
  if (hot_attrs.empty()) return Status::OK();
  static obs::Counter* passes = obs::MetricsRegistry::Global().GetCounter(
      "nodb_promoter_passes_total", "Background promotion passes run");
  static obs::LatencyHistogram* pass_ns =
      obs::MetricsRegistry::Global().GetHistogram(
          "nodb_promoter_pass_ns", "Background promotion pass duration");
  passes->Add(1);
  Stopwatch watch;
  // The scan's own piggybacked promotion does all the work: every
  // committed block of a hot column lands in the store, so draining
  // the scan is the promotion pass. `internal`: this pass is not a
  // workload access, so it leaves usage counts and heat untouched.
  ScanMetrics scratch;
  RawScanOperator scan(state, hot_attrs, &scratch, /*internal=*/true);
  NODB_RETURN_NOT_OK(scan.Open());
  while (true) {
    NODB_ASSIGN_OR_RETURN(BatchPtr batch, scan.Next());
    if (batch == nullptr || batch->num_rows() == 0) break;
  }
  pass_ns->Record(watch.ElapsedNanos());
  return Status::OK();
}

}  // namespace nodb
