#ifndef NODB_STORE_SHADOW_STORE_H_
#define NODB_STORE_SHADOW_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "types/column_vector.h"
#include "util/hash.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nodb {

/// The shadow column store: the third storage tier between the raw
/// file and a conventionally loaded database (the paper's adaptive
/// loading end state — "frequently accessed data gradually becomes
/// loaded data").
///
/// Where the RawCache keeps whatever segments recent scans happened to
/// parse, the shadow store holds *promoted* segments: fully parsed
/// ColumnVector data for hot (attribute, row-block) pairs, admitted
/// only when the segment provably covers its whole block. A block all
/// of whose needed columns are resident here is served without
/// touching the raw file, the tokenizer, the value parser or the
/// positional map — the hot path of a loaded column store, reached
/// without ever running a load phase.
///
/// Synchronization follows the RawCache/PositionalMap discipline: one
/// internal mutex guards the index, LRU list and counters; segments
/// are immutable and shared-owned, so a scan that obtained a block's
/// segments keeps them valid even if they are evicted concurrently.
/// Invalidation mirrors the other structures: Clear() on rewrite,
/// DropBlocksFrom() on append (the block containing the old frontier
/// gains rows, so its segments no longer cover it; earlier full
/// blocks stay promoted).
class ShadowStore {
 public:
  explicit ShadowStore(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

  ShadowStore(const ShadowStore&) = delete;
  ShadowStore& operator=(const ShadowStore&) = delete;

  /// Returns the promoted segment for (attr, block) or nullptr. Hits
  /// refresh LRU recency; per-segment lookups are not counted (block
  /// probes are — see GetBlock).
  std::shared_ptr<const ColumnVector> Get(uint32_t attr, uint64_t block)
      EXCLUDES(mu_);

  /// Peeks without touching LRU or counters.
  bool Contains(uint32_t attr, uint64_t block) const EXCLUDES(mu_);

  /// All-or-nothing block probe: fills `out` with the segment of every
  /// attribute of `attrs` for `block` and refreshes their recency
  /// (one hit counted), or leaves the store untouched and returns
  /// false (one miss counted). This is the scan's fast-path check for
  /// "serve this block straight from the store".
  bool GetBlock(const std::vector<uint32_t>& attrs, uint64_t block,
                std::vector<std::shared_ptr<const ColumnVector>>* out)
      EXCLUDES(mu_);

  /// Installs a promoted segment; a no-op when (attr, block) is
  /// already resident (the existing segment parsed identical bytes)
  /// or when `generation` is stale — a scan that opened against a
  /// file generation that has since been rewritten must not repopulate
  /// the cleared store with old-file data. Evicts segments over
  /// budget fair-share by owner (see EvictOverBudget); segments larger
  /// than the whole budget are rejected silently. The segment is
  /// attributed to the calling thread's tenant
  /// (obs::ScopedTenantLabel::CurrentId(); 0 = untagged in-process
  /// work). The caller guarantees `segment` covers the entire block.
  void Promote(uint32_t attr, uint64_t block,
               std::shared_ptr<const ColumnVector> segment,
               uint64_t generation) EXCLUDES(mu_);

  /// The current file generation; snapshot it before opening the file
  /// handle a scan will parse from, and pass it back to Promote.
  uint64_t generation() const {
    MutexLock lock(mu_);
    return generation_;
  }

  /// Drops every segment of block >= `first_block` (append: the block
  /// containing the old frontier is about to gain rows).
  void DropBlocksFrom(uint64_t first_block) EXCLUDES(mu_);

  /// Drops every attribute's segment of exactly `block` (serve-time
  /// invalidation of one stale block).
  void DropBlock(uint64_t block) EXCLUDES(mu_);

  /// Drops everything and advances the generation (file rewritten /
  /// table replaced): in-flight promotions of the old file are
  /// rejected from here on.
  void Clear() EXCLUDES(mu_);

  size_t bytes_used() const {
    MutexLock lock(mu_);
    return bytes_used_;
  }
  size_t budget_bytes() const { return budget_bytes_; }
  double utilization() const {
    MutexLock lock(mu_);
    return budget_bytes_ == 0
               ? 0.0
               : static_cast<double>(bytes_used_) / budget_bytes_;
  }
  size_t num_segments() const {
    MutexLock lock(mu_);
    return entries_.size();
  }
  uint64_t hits() const {
    MutexLock lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    MutexLock lock(mu_);
    return misses_;
  }
  uint64_t evictions() const {
    MutexLock lock(mu_);
    return evictions_;
  }
  uint64_t promotions() const {
    MutexLock lock(mu_);
    return promotions_;
  }

  /// Bytes currently resident on behalf of `owner` (tenant id; 0 =
  /// untagged). Multi-tenant budget observability and tests.
  size_t bytes_used_by(uint32_t owner) const EXCLUDES(mu_);

  /// Rows of `attr` currently materialized (sum of resident segment
  /// sizes) — the promoter's coverage check.
  uint64_t rows_materialized(uint32_t attr) const EXCLUDES(mu_);

  /// Attributes with any resident segment, ascending (tier report).
  std::vector<uint32_t> MaterializedAttributes() const EXCLUDES(mu_);

  /// Serializable manifest of the store (persist/): every resident
  /// (attr, block) with a shared reference to its immutable segment —
  /// exporting copies no column data. LRU order, most recent first.
  struct Image {
    struct SegmentImage {
      uint32_t attr = 0;
      uint64_t block = 0;
      std::shared_ptr<const ColumnVector> segment;
    };
    std::vector<SegmentImage> segments;
  };

  Image ExportImage() const EXCLUDES(mu_);

  /// Re-promotes an image's segments into an *empty* store (false and
  /// no-op otherwise), oldest first so recency is reproduced; the
  /// normal budget/admission rules apply, so a smaller budget keeps
  /// the hottest tail.
  bool ImportImage(const Image& image) EXCLUDES(mu_);

 private:
  struct Key {
    uint32_t attr;
    uint64_t block;
    bool operator==(const Key& o) const {
      return attr == o.attr && block == o.block;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(
          CombineHash64(MixHash64(k.attr), MixHash64(k.block)));
    }
  };
  struct Entry {
    std::shared_ptr<const ColumnVector> segment;
    size_t bytes = 0;
    uint32_t owner = 0;  ///< tenant id that promoted it (0 = untagged)
    std::list<Key>::iterator lru_pos;
  };

  void RemoveLocked(const Key& key) REQUIRES(mu_);

  /// Fair-share eviction: while over budget, the victim is the
  /// least-recent segment of an owner holding more than budget /
  /// active-owners bytes — a hot tenant cannibalizes its own segments
  /// before touching another tenant's. With one owner (every
  /// non-server deployment) this degenerates to exactly the old global
  /// LRU.
  void EvictOverBudget() REQUIRES(mu_);

  const size_t budget_bytes_;
  mutable Mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_ GUARDED_BY(mu_);
  std::list<Key> lru_ GUARDED_BY(mu_);  // front = most recent
  std::vector<uint64_t> rows_ GUARDED_BY(mu_);  // per-attr rows
  /// Resident bytes per owner (entries removed at zero, so size() is
  /// the active-owner count the fair share divides by).
  std::unordered_map<uint32_t, size_t> owner_bytes_ GUARDED_BY(mu_);
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  size_t bytes_used_ GUARDED_BY(mu_) = 0;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
  uint64_t promotions_ GUARDED_BY(mu_) = 0;
};

}  // namespace nodb

#endif  // NODB_STORE_SHADOW_STORE_H_
