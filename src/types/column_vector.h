#ifndef NODB_TYPES_COLUMN_VECTOR_H_
#define NODB_TYPES_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "types/data_type.h"
#include "types/value.h"
#include "util/slice.h"

namespace nodb {

/// A typed column of values with per-row validity.
///
/// Layout follows Arrow's spirit: numeric types in a flat array, strings
/// as a shared byte buffer plus offsets. This is both the executor's
/// batch column and the unit stored by the NoDB raw-data cache (the
/// paper's cache "holds binary data", i.e. exactly this representation).
class ColumnVector {
 public:
  explicit ColumnVector(DataType type) : type_(type) {
    if (type == DataType::kString) str_offsets_.push_back(0);
  }

  DataType type() const { return type_; }
  size_t size() const { return validity_.size(); }

  void Reserve(size_t n);

  void AppendNull();
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(Slice v);
  /// Days since epoch (type must be kDate).
  void AppendDate(int64_t days);
  /// Appends a Value of matching type (or null).
  void AppendValue(const Value& v);

  bool IsNull(size_t i) const { return validity_[i] == 0; }

  int64_t GetInt64(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const { return doubles_[i]; }
  int64_t GetDate(size_t i) const { return ints_[i]; }
  std::string_view GetString(size_t i) const {
    return std::string_view(str_data_.data() + str_offsets_[i],
                            str_offsets_[i + 1] - str_offsets_[i]);
  }

  /// Numeric view for comparisons: INT/DATE -> value, DOUBLE -> value.
  double GetNumeric(size_t i) const {
    return type_ == DataType::kDouble ? doubles_[i]
                                      : static_cast<double>(ints_[i]);
  }

  /// Materializes row `i` as a Value (engine edges / tests only).
  Value GetValue(size_t i) const;

  /// Copies row `i` of `src` (same type) onto the end of this column.
  void AppendFrom(const ColumnVector& src, size_t i);

  /// Approximate heap footprint; used for cache accounting.
  size_t MemoryUsage() const;

  void Clear();

 private:
  DataType type_;
  std::vector<uint8_t> validity_;
  std::vector<int64_t> ints_;      // kInt64 and kDate payloads
  std::vector<double> doubles_;    // kDouble payloads
  std::vector<uint32_t> str_offsets_;  // kString: size()+1 entries
  std::string str_data_;
};

}  // namespace nodb

#endif  // NODB_TYPES_COLUMN_VECTOR_H_
