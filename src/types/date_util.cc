#include "types/date_util.h"

#include <cstdio>

namespace nodb {

// Algorithms from Howard Hinnant's chrono date paper (public domain).
int64_t CivilToDays(int year, int month, int day) {
  year -= month <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void DaysToCivil(int64_t days, int* year, int* month, int* day) {
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = static_cast<int>(y + (*month <= 2));
}

Result<int64_t> ParseDate(std::string_view text) {
  // Strict "YYYY-MM-DD" (4-2-2 digits).
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') {
    return Status::ParseError("bad date: " + std::string(text));
  }
  auto digits = [&](size_t pos, size_t len, int* out) {
    int v = 0;
    for (size_t i = pos; i < pos + len; ++i) {
      char c = text[i];
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
    }
    *out = v;
    return true;
  };
  int y, m, d;
  if (!digits(0, 4, &y) || !digits(5, 2, &m) || !digits(8, 2, &d)) {
    return Status::ParseError("bad date: " + std::string(text));
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::ParseError("date out of range: " + std::string(text));
  }
  return CivilToDays(y, m, d);
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  // Sized for the widest int expansions so -Wformat-truncation can
  // prove the output always fits.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace nodb
