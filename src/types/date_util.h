#ifndef NODB_TYPES_DATE_UTIL_H_
#define NODB_TYPES_DATE_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace nodb {

/// Converts a proleptic-Gregorian civil date to days since 1970-01-01.
int64_t CivilToDays(int year, int month, int day);

/// Inverse of CivilToDays.
void DaysToCivil(int64_t days, int* year, int* month, int* day);

/// Parses "YYYY-MM-DD" into days since epoch.
Result<int64_t> ParseDate(std::string_view text);

/// Formats days since epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

}  // namespace nodb

#endif  // NODB_TYPES_DATE_UTIL_H_
