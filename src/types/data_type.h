#ifndef NODB_TYPES_DATA_TYPE_H_
#define NODB_TYPES_DATA_TYPE_H_

#include <string>
#include <string_view>

#include "util/result.h"

namespace nodb {

/// Column data types supported by the engine.
///
/// kDate is stored as int64 days since the Unix epoch; its raw-file
/// text form is "YYYY-MM-DD" (the TPC-H convention).
enum class DataType {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kDate = 3,
};

/// "INT", "DOUBLE", "STRING", "DATE".
std::string_view DataTypeToString(DataType type);

/// Parses a type name (case-insensitive); accepts common aliases
/// (INT/INTEGER/BIGINT, DOUBLE/FLOAT/REAL/DECIMAL, STRING/VARCHAR/TEXT/
/// CHAR, DATE).
Result<DataType> DataTypeFromString(std::string_view name);

/// True for types whose computations run on numbers (kInt64, kDouble,
/// kDate).
bool IsNumeric(DataType type);

}  // namespace nodb

#endif  // NODB_TYPES_DATA_TYPE_H_
