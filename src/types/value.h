#ifndef NODB_TYPES_VALUE_H_
#define NODB_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "types/data_type.h"

namespace nodb {

/// A scalar SQL value: NULL, INT, DOUBLE, STRING or DATE.
///
/// Values appear at the engine edges — literals in queries and cells of
/// materialized result rows. The execution hot path works on columnar
/// vectors instead (see ColumnVector).
class Value {
 public:
  /// NULL value.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Payload(std::in_place_index<1>, v)); }
  static Value Double(double v) { return Value(Payload(std::in_place_index<2>, v)); }
  static Value String(std::string v) {
    return Value(Payload(std::in_place_index<3>, std::move(v)));
  }
  /// Days since the Unix epoch.
  static Value Date(int64_t days) {
    return Value(Payload(std::in_place_index<4>, days));
  }

  bool is_null() const { return payload_.index() == 0; }
  bool is_int64() const { return payload_.index() == 1; }
  bool is_double() const { return payload_.index() == 2; }
  bool is_string() const { return payload_.index() == 3; }
  bool is_date() const { return payload_.index() == 4; }

  int64_t int64() const { return std::get<1>(payload_); }
  double dbl() const { return std::get<2>(payload_); }
  const std::string& str() const { return std::get<3>(payload_); }
  int64_t date_days() const { return std::get<4>(payload_); }

  /// Numeric view of INT/DOUBLE/DATE (asserts otherwise).
  double AsDouble() const;

  /// SQL-style rendering; NULL renders as "NULL", dates as YYYY-MM-DD.
  std::string ToString() const;

  /// Structural equality (NULL == NULL here, unlike SQL semantics —
  /// this is the test/result-comparison notion of equality).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  /// monostate=NULL, int64, double, string, date-days.
  using Payload =
      std::variant<std::monostate, int64_t, double, std::string, int64_t>;

  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
};

}  // namespace nodb

#endif  // NODB_TYPES_VALUE_H_
