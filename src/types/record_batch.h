#ifndef NODB_TYPES_RECORD_BATCH_H_
#define NODB_TYPES_RECORD_BATCH_H_

#include <memory>
#include <vector>

#include "types/column_vector.h"
#include "types/schema.h"
#include "types/value.h"

namespace nodb {

/// A horizontal slice of a table: a schema plus equal-length columns.
///
/// Operators exchange batches of kDefaultBatchRows rows (volcano-style,
/// vectorized). Columns are owned via shared_ptr so projections can
/// re-arrange them without copying payloads.
class RecordBatch {
 public:
  static constexpr size_t kDefaultBatchRows = 1024;

  explicit RecordBatch(std::shared_ptr<Schema> schema);

  RecordBatch(std::shared_ptr<Schema> schema,
              std::vector<std::shared_ptr<ColumnVector>> columns,
              size_t num_rows);

  const std::shared_ptr<Schema>& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  ColumnVector& column(size_t i) { return *columns_[i]; }
  const ColumnVector& column(size_t i) const { return *columns_[i]; }
  const std::shared_ptr<ColumnVector>& column_ptr(size_t i) const {
    return columns_[i];
  }

  /// Appends one row given as Values (engine edges / tests).
  void AppendRow(const std::vector<Value>& row);

  /// Recomputes num_rows after columns were appended to directly.
  void SetNumRows(size_t n) { num_rows_ = n; }

  /// Materializes row `i` (engine edges / tests).
  std::vector<Value> Row(size_t i) const;

 private:
  std::shared_ptr<Schema> schema_;
  std::vector<std::shared_ptr<ColumnVector>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace nodb

#endif  // NODB_TYPES_RECORD_BATCH_H_
