#include "types/data_type.h"

#include "util/string_util.h"

namespace nodb {

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kDate:
      return "DATE";
  }
  return "?";
}

Result<DataType> DataTypeFromString(std::string_view name) {
  std::string lower = ToLowerAscii(name);
  if (lower == "int" || lower == "integer" || lower == "bigint" ||
      lower == "int64" || lower == "long") {
    return DataType::kInt64;
  }
  if (lower == "double" || lower == "float" || lower == "real" ||
      lower == "decimal" || lower == "numeric") {
    return DataType::kDouble;
  }
  if (lower == "string" || lower == "varchar" || lower == "text" ||
      lower == "char") {
    return DataType::kString;
  }
  if (lower == "date") {
    return DataType::kDate;
  }
  return Status::InvalidArgument("unknown data type: " + std::string(name));
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble ||
         type == DataType::kDate;
}

}  // namespace nodb
