#include "types/schema.h"

namespace nodb {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, i);
  }
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

std::shared_ptr<Schema> Schema::Project(
    const std::vector<size_t>& indices) const {
  std::vector<Field> projected;
  projected.reserve(indices.size());
  for (size_t i : indices) projected.push_back(fields_[i]);
  return Schema::Make(std::move(projected));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace nodb
