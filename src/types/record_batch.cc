#include "types/record_batch.h"

#include <cassert>

namespace nodb {

RecordBatch::RecordBatch(std::shared_ptr<Schema> schema)
    : schema_(std::move(schema)) {
  columns_.reserve(schema_->num_fields());
  for (const Field& f : schema_->fields()) {
    columns_.push_back(std::make_shared<ColumnVector>(f.type));
  }
}

RecordBatch::RecordBatch(std::shared_ptr<Schema> schema,
                         std::vector<std::shared_ptr<ColumnVector>> columns,
                         size_t num_rows)
    : schema_(std::move(schema)),
      columns_(std::move(columns)),
      num_rows_(num_rows) {
  assert(columns_.size() == schema_->num_fields());
}

void RecordBatch::AppendRow(const std::vector<Value>& row) {
  assert(row.size() == columns_.size());
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i]->AppendValue(row[i]);
  }
  ++num_rows_;
}

std::vector<Value> RecordBatch::Row(size_t i) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col->GetValue(i));
  return out;
}

}  // namespace nodb
