#ifndef NODB_TYPES_SCHEMA_H_
#define NODB_TYPES_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "types/data_type.h"
#include "util/result.h"

namespace nodb {

/// One column: name and type.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of fields with O(1) name lookup.
///
/// Schemas are immutable after construction and shared via shared_ptr
/// between the catalog, planner and operators.
class Schema {
 public:
  explicit Schema(std::vector<Field> fields);

  static std::shared_ptr<Schema> Make(std::vector<Field> fields) {
    return std::make_shared<Schema>(std::move(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  bool HasField(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// Schema restricted to `indices`, in that order.
  std::shared_ptr<Schema> Project(const std::vector<size_t>& indices) const;

  /// "name:TYPE, name:TYPE, ...".
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace nodb

#endif  // NODB_TYPES_SCHEMA_H_
