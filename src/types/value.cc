#include "types/value.h"

#include <cassert>
#include <cstdio>

#include "types/date_util.h"

namespace nodb {

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64());
  if (is_double()) return dbl();
  if (is_date()) return static_cast<double>(date_days());
  assert(false && "AsDouble on non-numeric Value");
  return 0;
}

std::string Value::ToString() const {
  switch (payload_.index()) {
    case 0:
      return "NULL";
    case 1:
      return std::to_string(std::get<1>(payload_));
    case 2: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", std::get<2>(payload_));
      return buf;
    }
    case 3:
      return std::get<3>(payload_);
    case 4:
      return FormatDate(std::get<4>(payload_));
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  return payload_ == other.payload_;
}

}  // namespace nodb
