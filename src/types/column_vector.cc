#include "types/column_vector.h"

#include <cassert>

namespace nodb {

void ColumnVector::Reserve(size_t n) {
  validity_.reserve(n);
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      str_offsets_.reserve(n + 1);
      break;
  }
}

void ColumnVector::AppendNull() {
  validity_.push_back(0);
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0);
      break;
    case DataType::kString:
      str_offsets_.push_back(static_cast<uint32_t>(str_data_.size()));
      break;
  }
}

void ColumnVector::AppendInt64(int64_t v) {
  assert(type_ == DataType::kInt64);
  validity_.push_back(1);
  ints_.push_back(v);
}

void ColumnVector::AppendDouble(double v) {
  assert(type_ == DataType::kDouble);
  validity_.push_back(1);
  doubles_.push_back(v);
}

void ColumnVector::AppendString(Slice v) {
  assert(type_ == DataType::kString);
  validity_.push_back(1);
  str_data_.append(v.data(), v.size());
  str_offsets_.push_back(static_cast<uint32_t>(str_data_.size()));
}

void ColumnVector::AppendDate(int64_t days) {
  assert(type_ == DataType::kDate);
  validity_.push_back(1);
  ints_.push_back(days);
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(v.int64());
      return;
    case DataType::kDouble:
      AppendDouble(v.is_double() ? v.dbl() : v.AsDouble());
      return;
    case DataType::kString:
      AppendString(v.str());
      return;
    case DataType::kDate:
      AppendDate(v.is_date() ? v.date_days() : v.int64());
      return;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(ints_[i]);
    case DataType::kDouble:
      return Value::Double(doubles_[i]);
    case DataType::kString:
      return Value::String(std::string(GetString(i)));
    case DataType::kDate:
      return Value::Date(ints_[i]);
  }
  return Value::Null();
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  assert(src.type_ == type_);
  if (src.IsNull(i)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      validity_.push_back(1);
      ints_.push_back(src.ints_[i]);
      break;
    case DataType::kDouble:
      validity_.push_back(1);
      doubles_.push_back(src.doubles_[i]);
      break;
    case DataType::kString:
      AppendString(src.GetString(i));
      break;
  }
}

size_t ColumnVector::MemoryUsage() const {
  return validity_.capacity() * sizeof(uint8_t) +
         ints_.capacity() * sizeof(int64_t) +
         doubles_.capacity() * sizeof(double) +
         str_offsets_.capacity() * sizeof(uint32_t) +
         str_data_.capacity();
}

void ColumnVector::Clear() {
  validity_.clear();
  ints_.clear();
  doubles_.clear();
  str_offsets_.assign(type_ == DataType::kString ? 1 : 0, 0);
  str_data_.clear();
}

}  // namespace nodb
