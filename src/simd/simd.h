#ifndef NODB_SIMD_SIMD_H_
#define NODB_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nodb::simd {

/// Instruction-set tiers for the structural-parsing kernels.
///
/// Kernels exist per tier behind one interface; `kScalar` is the
/// always-correct portable fallback, compiled unconditionally, and the
/// reference every SIMD tier is differential-tested against
/// (tests/simd_test.cc). Building with -DNODB_DISABLE_SIMD compiles
/// *only* the scalar tier; at runtime `NoDbConfig::enable_simd = false`
/// selects it per table without rebuilding. Results are byte-identical
/// across tiers by contract.
enum class SimdLevel : int {
  kScalar = 0,  ///< portable byte-at-a-time kernels
  kSSE2 = 1,    ///< x86-64 baseline, 16-byte blocks
  kNEON = 2,    ///< aarch64 baseline, 4x16-byte blocks
  kAVX2 = 3,    ///< runtime-detected, 2x32-byte blocks
};

/// Human-readable tier name ("scalar", "sse2", "neon", "avx2").
const char* LevelName(SimdLevel level);

/// Best tier this binary + CPU supports (compile-time ISA gates plus a
/// one-time runtime CPUID probe for AVX2). Always `kScalar` under
/// NODB_DISABLE_SIMD.
SimdLevel DetectedLevel();

/// True when `level`'s kernels can run here (scalar always can; AVX2
/// only when detected; SSE2 whenever the detected tier is an x86 one).
bool LevelAvailable(SimdLevel level);

/// The tier new tokenizers/indexers pick up by default: the detected
/// tier, unless a test or bench forced another one.
SimdLevel ActiveLevel();

/// Forces `level` for subsequent ActiveLevel() calls, clamped to the
/// nearest available tier (AVX2 degrades to SSE2, anything unavailable
/// to scalar). Returns the tier actually applied. Test/bench hook.
SimdLevel ForceLevel(SimdLevel level);

/// Undoes ForceLevel: ActiveLevel() returns DetectedLevel() again.
void ClearForcedLevel();

/// Maps the per-table `NoDbConfig::enable_simd` knob to a tier.
SimdLevel LevelFor(bool enable_simd);

/// One 64-byte block's structural classification, one bit per byte
/// (bit i describes data[i]).
struct BlockMasks {
  uint64_t delim = 0;    ///< bytes equal to the dialect delimiter
  uint64_t newline = 0;  ///< '\n' bytes
  uint64_t quote = 0;    ///< bytes equal to the dialect quote
};

/// Scalar reference classifier for up to 64 bytes (`len <= 64`; bits at
/// or above `len` are zero). The SIMD kernels must agree with this
/// bit-for-bit — it is the differential-test oracle.
BlockMasks ClassifyBlockScalar(const char* data, size_t len, char delim,
                               char quote);

/// Finds up to `max_hits` occurrences of `needle` in data[from, size),
/// writing `position + bias` for each into `out` in ascending order.
/// Returns the number written; fewer than `max_hits` means the range
/// holds no further occurrence. The tokenizer's selective-scanning
/// primitive: `bias = 1` yields CSV field starts directly.
size_t FindBytePositions(SimdLevel level, const char* data, size_t size,
                         size_t from, char needle, size_t max_hits,
                         uint32_t bias, uint32_t* out);

/// Classifies data[0, size) in 64-byte blocks and appends the offset
/// (plus `base`) of every structural byte to the class's vector, each
/// in ascending order. Null vectors skip that class entirely (a
/// COUNT(*) first touch wants newlines only). `size + base` must fit
/// in 32 bits — callers index one bounded slab at a time.
void ClassifyBuffer(SimdLevel level, const char* data, size_t size,
                    uint32_t base, char delim, char quote,
                    std::vector<uint32_t>* delims,
                    std::vector<uint32_t>* newlines,
                    std::vector<uint32_t>* quotes);

}  // namespace nodb::simd

#endif  // NODB_SIMD_SIMD_H_
