#include "simd/simd.h"

#include <atomic>
#include <cstring>

// ---------------------------------------------------------------- ISA gates
// NODB_HAVE_* macros name the kernel tiers this translation unit compiles.
// They are feature-test conditionals only — every runtime decision goes
// through DetectedLevel()/ActiveLevel(). -DNODB_DISABLE_SIMD turns them
// all off, leaving the scalar kernels as the only compiled tier.
#if !defined(NODB_DISABLE_SIMD) && (defined(__x86_64__) || defined(_M_X64))
#define NODB_HAVE_SSE2 1
#if defined(__GNUC__) || defined(__clang__)
#define NODB_HAVE_AVX2 1
#endif
#include <immintrin.h>
#endif
#if !defined(NODB_DISABLE_SIMD) && defined(__aarch64__)
#define NODB_HAVE_NEON 1
#include <arm_neon.h>
#endif
#ifndef NODB_HAVE_SSE2
#define NODB_HAVE_SSE2 0
#endif
#ifndef NODB_HAVE_AVX2
#define NODB_HAVE_AVX2 0
#endif
#ifndef NODB_HAVE_NEON
#define NODB_HAVE_NEON 0
#endif

namespace nodb::simd {

namespace {

// ---------------------------------------------------------------- dispatch

/// ForceLevel state: -1 = none forced, otherwise the forced SimdLevel.
std::atomic<int> g_forced_level{-1};

/// Appends one position (plus base) per set bit of `mask`, ascending.
/// The classic ctz walk: clearing the lowest set bit each round makes
/// the loop cost proportional to the number of structural bytes, not
/// to the block size.
inline void EmitPositions(uint64_t mask, uint32_t base,
                          std::vector<uint32_t>* out) {
  while (mask != 0) {
    out->push_back(base + static_cast<uint32_t>(__builtin_ctzll(mask)));
    mask &= mask - 1;
  }
}

// ---------------------------------------------------------- scalar kernels
// The reference tier: portable, compiled unconditionally, and the oracle
// the SIMD tiers are differential-tested against.

void ClassifyBufferScalar(const char* data, size_t size, uint32_t base,
                          char delim, char quote,
                          std::vector<uint32_t>* delims,
                          std::vector<uint32_t>* newlines,
                          std::vector<uint32_t>* quotes) {
  for (size_t i = 0; i < size; ++i) {
    const char c = data[i];
    const uint32_t pos = base + static_cast<uint32_t>(i);
    if (delims != nullptr && c == delim) delims->push_back(pos);
    if (newlines != nullptr && c == '\n') newlines->push_back(pos);
    if (quotes != nullptr && c == quote) quotes->push_back(pos);
  }
}

size_t FindPositionsScalar(const char* data, size_t size, size_t from,
                           char needle, size_t max_hits, uint32_t bias,
                           uint32_t* out) {
  size_t hits = 0;
  size_t pos = from;
  while (hits < max_hits && pos < size) {
    const char* hit = static_cast<const char*>(
        std::memchr(data + pos, needle, size - pos));
    if (hit == nullptr) break;
    pos = static_cast<size_t>(hit - data);
    out[hits++] = static_cast<uint32_t>(pos) + bias;
    ++pos;
  }
  return hits;
}

// ------------------------------------------------------------ SSE2 kernels
#if NODB_HAVE_SSE2

/// One-bit-per-byte equality mask for 16 bytes.
inline uint64_t EqMask16(__m128i block, __m128i needle) {
  return static_cast<uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(block, needle)));
}

void ClassifyBufferSse2(const char* data, size_t size, uint32_t base,
                        char delim, char quote,
                        std::vector<uint32_t>* delims,
                        std::vector<uint32_t>* newlines,
                        std::vector<uint32_t>* quotes) {
  const __m128i vdelim = _mm_set1_epi8(delim);
  const __m128i vnewline = _mm_set1_epi8('\n');
  const __m128i vquote = _mm_set1_epi8(quote);
  size_t i = 0;
  for (; i + 64 <= size; i += 64) {
    uint64_t delim_mask = 0;
    uint64_t newline_mask = 0;
    uint64_t quote_mask = 0;
    for (int lane = 0; lane < 4; ++lane) {
      const __m128i block = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(data + i + lane * 16));
      const int shift = lane * 16;
      if (delims != nullptr) delim_mask |= EqMask16(block, vdelim) << shift;
      if (newlines != nullptr) {
        newline_mask |= EqMask16(block, vnewline) << shift;
      }
      if (quotes != nullptr) quote_mask |= EqMask16(block, vquote) << shift;
    }
    const uint32_t pos = base + static_cast<uint32_t>(i);
    if (delims != nullptr) EmitPositions(delim_mask, pos, delims);
    if (newlines != nullptr) EmitPositions(newline_mask, pos, newlines);
    if (quotes != nullptr) EmitPositions(quote_mask, pos, quotes);
  }
  ClassifyBufferScalar(data + i, size - i, base + static_cast<uint32_t>(i),
                       delim, quote, delims, newlines, quotes);
}

size_t FindPositionsSse2(const char* data, size_t size, size_t from,
                         char needle, size_t max_hits, uint32_t bias,
                         uint32_t* out) {
  const __m128i vneedle = _mm_set1_epi8(needle);
  size_t hits = 0;
  size_t i = from;
  for (; i + 16 <= size && hits < max_hits; i += 16) {
    uint64_t mask = EqMask16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i)), vneedle);
    while (mask != 0 && hits < max_hits) {
      out[hits++] = static_cast<uint32_t>(i) +
                    static_cast<uint32_t>(__builtin_ctzll(mask)) + bias;
      mask &= mask - 1;
    }
  }
  if (hits < max_hits) {
    hits += FindPositionsScalar(data, size, i, needle, max_hits - hits, bias,
                                out + hits);
  }
  return hits;
}

#endif  // NODB_HAVE_SSE2 (scalar siblings: the *Scalar kernels above)

// ------------------------------------------------------------ AVX2 kernels
#if NODB_HAVE_AVX2

/// One-bit-per-byte equality mask for 32 bytes.
__attribute__((target("avx2"))) inline uint64_t EqMask32(__m256i block,
                                                         __m256i needle) {
  return static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(block, needle)));
}

__attribute__((target("avx2"))) void ClassifyBufferAvx2(
    const char* data, size_t size, uint32_t base, char delim, char quote,
    std::vector<uint32_t>* delims, std::vector<uint32_t>* newlines,
    std::vector<uint32_t>* quotes) {
  const __m256i vdelim = _mm256_set1_epi8(delim);
  const __m256i vnewline = _mm256_set1_epi8('\n');
  const __m256i vquote = _mm256_set1_epi8(quote);
  size_t i = 0;
  for (; i + 64 <= size; i += 64) {
    const __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + i));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + i + 32));
    const uint32_t pos = base + static_cast<uint32_t>(i);
    if (delims != nullptr) {
      EmitPositions(EqMask32(lo, vdelim) | EqMask32(hi, vdelim) << 32, pos,
                    delims);
    }
    if (newlines != nullptr) {
      EmitPositions(EqMask32(lo, vnewline) | EqMask32(hi, vnewline) << 32,
                    pos, newlines);
    }
    if (quotes != nullptr) {
      EmitPositions(EqMask32(lo, vquote) | EqMask32(hi, vquote) << 32, pos,
                    quotes);
    }
  }
  ClassifyBufferScalar(data + i, size - i, base + static_cast<uint32_t>(i),
                       delim, quote, delims, newlines, quotes);
}

__attribute__((target("avx2"))) size_t FindPositionsAvx2(
    const char* data, size_t size, size_t from, char needle, size_t max_hits,
    uint32_t bias, uint32_t* out) {
  const __m256i vneedle = _mm256_set1_epi8(needle);
  size_t hits = 0;
  size_t i = from;
  for (; i + 32 <= size && hits < max_hits; i += 32) {
    uint64_t mask = EqMask32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i)),
        vneedle);
    while (mask != 0 && hits < max_hits) {
      out[hits++] = static_cast<uint32_t>(i) +
                    static_cast<uint32_t>(__builtin_ctzll(mask)) + bias;
      mask &= mask - 1;
    }
  }
  if (hits < max_hits) {
    hits += FindPositionsScalar(data, size, i, needle, max_hits - hits, bias,
                                out + hits);
  }
  return hits;
}

#endif  // NODB_HAVE_AVX2 (scalar siblings: the *Scalar kernels above)

// ------------------------------------------------------------ NEON kernels
#if NODB_HAVE_NEON

/// One-bit-per-byte equality mask for 64 bytes: AND the four 16-byte
/// compare results with per-lane bit weights, then pairwise-add down to
/// 8 bytes (the simdjson arm64 movemask idiom).
inline uint64_t EqMask64Neon(const char* p, uint8x16_t needle) {
  const uint8x16_t weights = {0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80,
                              0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80};
  const uint8_t* u = reinterpret_cast<const uint8_t*>(p);
  uint8x16_t m0 = vandq_u8(vceqq_u8(vld1q_u8(u), needle), weights);
  uint8x16_t m1 = vandq_u8(vceqq_u8(vld1q_u8(u + 16), needle), weights);
  uint8x16_t m2 = vandq_u8(vceqq_u8(vld1q_u8(u + 32), needle), weights);
  uint8x16_t m3 = vandq_u8(vceqq_u8(vld1q_u8(u + 48), needle), weights);
  uint8x16_t sum = vpaddq_u8(vpaddq_u8(m0, m1), vpaddq_u8(m2, m3));
  sum = vpaddq_u8(sum, sum);
  return vgetq_lane_u64(vreinterpretq_u64_u8(sum), 0);
}

void ClassifyBufferNeon(const char* data, size_t size, uint32_t base,
                        char delim, char quote,
                        std::vector<uint32_t>* delims,
                        std::vector<uint32_t>* newlines,
                        std::vector<uint32_t>* quotes) {
  const uint8x16_t vdelim = vdupq_n_u8(static_cast<uint8_t>(delim));
  const uint8x16_t vnewline = vdupq_n_u8(static_cast<uint8_t>('\n'));
  const uint8x16_t vquote = vdupq_n_u8(static_cast<uint8_t>(quote));
  size_t i = 0;
  for (; i + 64 <= size; i += 64) {
    const uint32_t pos = base + static_cast<uint32_t>(i);
    if (delims != nullptr) {
      EmitPositions(EqMask64Neon(data + i, vdelim), pos, delims);
    }
    if (newlines != nullptr) {
      EmitPositions(EqMask64Neon(data + i, vnewline), pos, newlines);
    }
    if (quotes != nullptr) {
      EmitPositions(EqMask64Neon(data + i, vquote), pos, quotes);
    }
  }
  ClassifyBufferScalar(data + i, size - i, base + static_cast<uint32_t>(i),
                       delim, quote, delims, newlines, quotes);
}

size_t FindPositionsNeon(const char* data, size_t size, size_t from,
                         char needle, size_t max_hits, uint32_t bias,
                         uint32_t* out) {
  const uint8x16_t vneedle = vdupq_n_u8(static_cast<uint8_t>(needle));
  size_t hits = 0;
  size_t i = from;
  for (; i + 64 <= size && hits < max_hits; i += 64) {
    uint64_t mask = EqMask64Neon(data + i, vneedle);
    while (mask != 0 && hits < max_hits) {
      out[hits++] = static_cast<uint32_t>(i) +
                    static_cast<uint32_t>(__builtin_ctzll(mask)) + bias;
      mask &= mask - 1;
    }
  }
  if (hits < max_hits) {
    hits += FindPositionsScalar(data, size, i, needle, max_hits - hits, bias,
                                out + hits);
  }
  return hits;
}

#endif  // NODB_HAVE_NEON (scalar siblings: the *Scalar kernels above)

}  // namespace

const char* LevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSSE2:
      return "sse2";
    case SimdLevel::kNEON:
      return "neon";
    case SimdLevel::kAVX2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel DetectedLevel() {
#if NODB_HAVE_AVX2
  // CPUID probe once; __builtin_cpu_supports caches internally but the
  // static keeps the hot path a plain load.
  static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  if (has_avx2) return SimdLevel::kAVX2;
#endif
#if NODB_HAVE_SSE2
  return SimdLevel::kSSE2;
#elif NODB_HAVE_NEON
  return SimdLevel::kNEON;
#else
  return SimdLevel::kScalar;
#endif
}

bool LevelAvailable(SimdLevel level) {
  const SimdLevel detected = DetectedLevel();
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSSE2:
      return detected == SimdLevel::kSSE2 || detected == SimdLevel::kAVX2;
    case SimdLevel::kNEON:
      return detected == SimdLevel::kNEON;
    case SimdLevel::kAVX2:
      return detected == SimdLevel::kAVX2;
  }
  return false;
}

SimdLevel ActiveLevel() {
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  return DetectedLevel();
}

SimdLevel ForceLevel(SimdLevel level) {
  SimdLevel applied = level;
  if (!LevelAvailable(applied) && applied == SimdLevel::kAVX2) {
    applied = SimdLevel::kSSE2;  // degrade within the x86 family first
  }
  if (!LevelAvailable(applied)) applied = SimdLevel::kScalar;
  g_forced_level.store(static_cast<int>(applied), std::memory_order_relaxed);
  return applied;
}

void ClearForcedLevel() {
  g_forced_level.store(-1, std::memory_order_relaxed);
}

SimdLevel LevelFor(bool enable_simd) {
  return enable_simd ? ActiveLevel() : SimdLevel::kScalar;
}

BlockMasks ClassifyBlockScalar(const char* data, size_t len, char delim,
                               char quote) {
  BlockMasks masks;
  for (size_t i = 0; i < len && i < 64; ++i) {
    const uint64_t bit = uint64_t{1} << i;
    if (data[i] == delim) masks.delim |= bit;
    if (data[i] == '\n') masks.newline |= bit;
    if (data[i] == quote) masks.quote |= bit;
  }
  return masks;
}

size_t FindBytePositions(SimdLevel level, const char* data, size_t size,
                         size_t from, char needle, size_t max_hits,
                         uint32_t bias, uint32_t* out) {
  if (max_hits == 0 || from >= size) return 0;
  switch (level) {
#if NODB_HAVE_AVX2
    case SimdLevel::kAVX2:
      return FindPositionsAvx2(data, size, from, needle, max_hits, bias, out);
#endif
#if NODB_HAVE_SSE2
    case SimdLevel::kSSE2:
      return FindPositionsSse2(data, size, from, needle, max_hits, bias, out);
#endif
#if NODB_HAVE_NEON
    case SimdLevel::kNEON:
      return FindPositionsNeon(data, size, from, needle, max_hits, bias, out);
#endif
    default:
      return FindPositionsScalar(data, size, from, needle, max_hits, bias,
                                 out);
  }
}

void ClassifyBuffer(SimdLevel level, const char* data, size_t size,
                    uint32_t base, char delim, char quote,
                    std::vector<uint32_t>* delims,
                    std::vector<uint32_t>* newlines,
                    std::vector<uint32_t>* quotes) {
  switch (level) {
#if NODB_HAVE_AVX2
    case SimdLevel::kAVX2:
      ClassifyBufferAvx2(data, size, base, delim, quote, delims, newlines,
                         quotes);
      return;
#endif
#if NODB_HAVE_SSE2
    case SimdLevel::kSSE2:
      ClassifyBufferSse2(data, size, base, delim, quote, delims, newlines,
                         quotes);
      return;
#endif
#if NODB_HAVE_NEON
    case SimdLevel::kNEON:
      ClassifyBufferNeon(data, size, base, delim, quote, delims, newlines,
                         quotes);
      return;
#endif
    default:
      ClassifyBufferScalar(data, size, base, delim, quote, delims, newlines,
                           quotes);
      return;
  }
}

}  // namespace nodb::simd
