#ifndef NODB_SIMD_STRUCTURAL_INDEX_H_
#define NODB_SIMD_STRUCTURAL_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "csv/dialect.h"
#include "simd/simd.h"

namespace nodb::simd {

/// Stage-1 output of the two-stage parse (the simdjson split applied to
/// CSV): every structural byte position in one contiguous slab of the
/// raw file, found by wide block scans with no per-byte branching. The
/// raw-scan stage 2 then walks these sorted position lists to cut rows
/// and fields without ever re-touching non-structural bytes.
///
/// Positions are slab-relative (the slab's first byte is 0); `base` is
/// the slab's absolute file offset, recorded so callers can translate.
struct StructuralIndex {
  uint64_t base = 0;
  std::vector<uint32_t> delims;    ///< dialect delimiter bytes
  std::vector<uint32_t> newlines;  ///< '\n' bytes (CR handled by stage 2)
  std::vector<uint32_t> quotes;    ///< dialect quote bytes (quoting only)

  void Clear() {
    delims.clear();
    newlines.clear();
    quotes.clear();
  }
};

/// Builds StructuralIndexes for one dialect at one SIMD tier.
///
/// `want_fields = false` drops delimiter/quote extraction (a pure
/// row-discovery scan, e.g. COUNT(*) first touch, needs newlines only).
/// Quote positions are collected only for quoting dialects: stage 2
/// routes any row containing a quote byte to the serial quote-aware
/// tokenizer, which keeps lenient RFC-4180 semantics byte-identical
/// without a speculative quote-state machine in stage 1.
class StructuralIndexer {
 public:
  StructuralIndexer(const CsvDialect& dialect, SimdLevel level,
                    bool want_fields = true)
      : delimiter_(dialect.delimiter),
        quote_(dialect.quote),
        want_delims_(want_fields),
        want_quotes_(want_fields && dialect.allow_quoting),
        level_(level) {}

  /// Replaces `out` with the index of data[0, size); `size` must fit in
  /// 32 bits (slabs are read-buffer sized). `base` is data's absolute
  /// file offset and is stored, not added to positions.
  void Index(const char* data, size_t size, uint64_t base,
             StructuralIndex* out) const;

  SimdLevel level() const { return level_; }

 private:
  char delimiter_;
  char quote_;
  bool want_delims_;
  bool want_quotes_;
  SimdLevel level_;
};

/// Stage-2 field cutter: reproduces CsvTokenizer::ScanStarts(stripped
/// row, 0, 0, until_field, starts) for an unquoted row directly from the
/// index's delimiter list, with `starts` row-relative per the virtual-
/// start convention (tokenizer.h).
///
/// `row_start` / `row_end` bound the row within the indexed slab,
/// *after* stripping a trailing '\r' (a delimiter hiding in the
/// stripped byte is ignored, exactly as ScanStarts never sees it).
/// `*delim_cursor` is the caller's monotone position in `delims`;
/// entries before `row_start` are skipped, so rows must be visited in
/// slab order. Returns ScanStarts' `high` contract: `>= until_field`
/// means satisfied, otherwise the row has exactly `high` fields.
uint32_t StructuralFieldStarts(const std::vector<uint32_t>& delims,
                               size_t* delim_cursor, uint32_t row_start,
                               uint32_t row_end, uint32_t until_field,
                               uint32_t* starts);

}  // namespace nodb::simd

#endif  // NODB_SIMD_STRUCTURAL_INDEX_H_
