#include "simd/structural_index.h"

namespace nodb::simd {

void StructuralIndexer::Index(const char* data, size_t size, uint64_t base,
                              StructuralIndex* out) const {
  out->Clear();
  out->base = base;
  ClassifyBuffer(level_, data, size, /*base=*/0, delimiter_, quote_,
                 want_delims_ ? &out->delims : nullptr, &out->newlines,
                 want_quotes_ ? &out->quotes : nullptr);
}

uint32_t StructuralFieldStarts(const std::vector<uint32_t>& delims,
                               size_t* delim_cursor, uint32_t row_start,
                               uint32_t row_end, uint32_t until_field,
                               uint32_t* starts) {
  uint32_t field = 0;
  starts[0] = 0;
  if (until_field == 0) return 0;
  size_t cursor = *delim_cursor;
  const size_t total = delims.size();
  // Skip delimiters left behind by a prior row's early exit (selective
  // tokenizing stopped before its last field) or by a stripped '\r'.
  while (cursor < total && delims[cursor] < row_start) ++cursor;
  while (cursor < total && delims[cursor] < row_end) {
    const uint32_t next_start = delims[cursor] - row_start + 1;
    ++cursor;
    ++field;
    starts[field] = next_start;
    if (field >= until_field) {
      *delim_cursor = cursor;
      return field;
    }
  }
  *delim_cursor = cursor;
  // Row exhausted at final field `field`: virtual start closes it.
  starts[field + 1] = row_end - row_start + 1;
  return field + 1;
}

}  // namespace nodb::simd
