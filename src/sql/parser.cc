#include "sql/parser.h"

#include "csv/value_parser.h"
#include "sql/lexer.h"
#include "types/date_util.h"
#include "util/string_util.h"

namespace nodb {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    SelectStatement stmt;
    NODB_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    if (AcceptKeyword("DISTINCT")) stmt.distinct = true;
    NODB_RETURN_NOT_OK(ParseSelectList(&stmt));
    NODB_RETURN_NOT_OK(ExpectKeyword("FROM"));
    NODB_RETURN_NOT_OK(ParseFrom(&stmt));
    if (AcceptKeyword("WHERE")) {
      NODB_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      NODB_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        NODB_ASSIGN_OR_RETURN(auto e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("HAVING")) {
      NODB_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (AcceptKeyword("ORDER")) {
      NODB_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        OrderItem item;
        NODB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          item.ascending = false;
        } else {
          AcceptKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      NODB_ASSIGN_OR_RETURN(uint64_t v, ExpectInteger());
      stmt.limit = v;
      if (AcceptKeyword("OFFSET")) {
        NODB_ASSIGN_OR_RETURN(stmt.offset, ExpectInteger());
      }
    }
    AcceptSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input: '" +
                                Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier &&
           EqualsIgnoreCase(t.text, kw);
  }
  bool AcceptKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError("expected " + std::string(kw) + " near '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  bool AcceptSymbol(std::string_view sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError("expected '" + std::string(sym) +
                                "' near '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Result<uint64_t> ExpectInteger() {
    if (Peek().type != TokenType::kInteger) {
      return Status::ParseError("expected integer near '" + Peek().text +
                                "'");
    }
    NODB_ASSIGN_OR_RETURN(int64_t v,
                          ValueParser::ParseInt64(Advance().text));
    if (v < 0) return Status::ParseError("expected non-negative integer");
    return static_cast<uint64_t>(v);
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected identifier near '" + Peek().text +
                                "'");
    }
    return Advance().text;
  }

  static bool IsReserved(std::string_view word) {
    static constexpr std::string_view kReserved[] = {
        "SELECT", "FROM",   "WHERE",  "GROUP",   "BY",   "ORDER",
        "LIMIT",  "OFFSET", "JOIN",   "ON",      "AND",  "OR",
        "NOT",    "AS",     "ASC",    "DESC",    "BETWEEN", "IN",
        "IS",     "NULL",   "LIKE",   "DATE",    "HAVING",
        "DISTINCT",
    };
    for (auto kw : kReserved) {
      if (EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  Status ParseSelectList(SelectStatement* stmt) {
    if (AcceptSymbol("*")) {
      stmt->select_star = true;
      return Status::OK();
    }
    do {
      SelectItem item;
      NODB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        NODB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier &&
                 !IsReserved(Peek().text)) {
        item.alias = Advance().text;  // bare alias
      }
      stmt->items.push_back(std::move(item));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseFrom(SelectStatement* stmt) {
    NODB_ASSIGN_OR_RETURN(stmt->from_table, ExpectIdentifier());
    if (Peek().type == TokenType::kIdentifier && !IsReserved(Peek().text)) {
      stmt->from_alias = Advance().text;
    } else if (AcceptKeyword("AS")) {
      NODB_ASSIGN_OR_RETURN(stmt->from_alias, ExpectIdentifier());
    }
    if (AcceptKeyword("JOIN")) {
      stmt->has_join = true;
      NODB_ASSIGN_OR_RETURN(stmt->join_table, ExpectIdentifier());
      if (Peek().type == TokenType::kIdentifier &&
          !IsReserved(Peek().text)) {
        stmt->join_alias = Advance().text;
      } else if (AcceptKeyword("AS")) {
        NODB_ASSIGN_OR_RETURN(stmt->join_alias, ExpectIdentifier());
      }
      NODB_RETURN_NOT_OK(ExpectKeyword("ON"));
      NODB_ASSIGN_OR_RETURN(stmt->join_condition, ParseExpr());
    }
    return Status::OK();
  }

  // expr := and_expr (OR and_expr)*
  Result<ParsedExprPtr> ParseExpr() {
    NODB_ASSIGN_OR_RETURN(auto left, ParseAnd());
    while (AcceptKeyword("OR")) {
      NODB_ASSIGN_OR_RETURN(auto right, ParseAnd());
      auto node = std::make_shared<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kLogical;
      node->logic = LogicalOp::kOr;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<ParsedExprPtr> ParseAnd() {
    NODB_ASSIGN_OR_RETURN(auto left, ParseNot());
    while (AcceptKeyword("AND")) {
      NODB_ASSIGN_OR_RETURN(auto right, ParseNot());
      auto node = std::make_shared<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kLogical;
      node->logic = LogicalOp::kAnd;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<ParsedExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      NODB_ASSIGN_OR_RETURN(auto inner, ParseNot());
      auto node = std::make_shared<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kLogical;
      node->logic = LogicalOp::kNot;
      node->left = std::move(inner);
      return ParsedExprPtr(std::move(node));
    }
    return ParseComparison();
  }

  Result<ParsedExprPtr> ParseComparison() {
    NODB_ASSIGN_OR_RETURN(auto left, ParseAdditive());

    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      NODB_RETURN_NOT_OK(ExpectKeyword("NULL"));
      auto node = std::make_shared<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kIsNull;
      node->left = std::move(left);
      node->negated = negated;
      return ParsedExprPtr(std::move(node));
    }

    bool negated = false;
    if (PeekKeyword("NOT") &&
        (PeekKeyword("LIKE", 1) || PeekKeyword("BETWEEN", 1) ||
         PeekKeyword("IN", 1))) {
      AcceptKeyword("NOT");
      negated = true;
    }

    if (AcceptKeyword("LIKE")) {
      if (Peek().type != TokenType::kString) {
        return Status::ParseError("LIKE requires a string literal pattern");
      }
      auto node = std::make_shared<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kLike;
      node->left = std::move(left);
      node->pattern = Advance().literal;
      node->negated = negated;
      return ParsedExprPtr(std::move(node));
    }

    if (AcceptKeyword("BETWEEN")) {
      NODB_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
      NODB_RETURN_NOT_OK(ExpectKeyword("AND"));
      NODB_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
      // x BETWEEN a AND b  =>  x >= a AND x <= b
      auto ge = std::make_shared<ParsedExpr>();
      ge->kind = ParsedExpr::Kind::kCompare;
      ge->cmp = CompareOp::kGe;
      ge->left = left;
      ge->right = std::move(lo);
      auto le = std::make_shared<ParsedExpr>();
      le->kind = ParsedExpr::Kind::kCompare;
      le->cmp = CompareOp::kLe;
      le->left = std::move(left);
      le->right = std::move(hi);
      auto both = std::make_shared<ParsedExpr>();
      both->kind = ParsedExpr::Kind::kLogical;
      both->logic = LogicalOp::kAnd;
      both->left = std::move(ge);
      both->right = std::move(le);
      if (!negated) return ParsedExprPtr(std::move(both));
      auto inv = std::make_shared<ParsedExpr>();
      inv->kind = ParsedExpr::Kind::kLogical;
      inv->logic = LogicalOp::kNot;
      inv->left = std::move(both);
      return ParsedExprPtr(std::move(inv));
    }

    if (AcceptKeyword("IN")) {
      NODB_RETURN_NOT_OK(ExpectSymbol("("));
      ParsedExprPtr any;
      do {
        NODB_ASSIGN_OR_RETURN(auto lit, ParsePrimary());
        auto eq = std::make_shared<ParsedExpr>();
        eq->kind = ParsedExpr::Kind::kCompare;
        eq->cmp = CompareOp::kEq;
        eq->left = left;
        eq->right = std::move(lit);
        if (any == nullptr) {
          any = std::move(eq);
        } else {
          auto orr = std::make_shared<ParsedExpr>();
          orr->kind = ParsedExpr::Kind::kLogical;
          orr->logic = LogicalOp::kOr;
          orr->left = std::move(any);
          orr->right = std::move(eq);
          any = std::move(orr);
        }
      } while (AcceptSymbol(","));
      NODB_RETURN_NOT_OK(ExpectSymbol(")"));
      if (!negated) return any;
      auto inv = std::make_shared<ParsedExpr>();
      inv->kind = ParsedExpr::Kind::kLogical;
      inv->logic = LogicalOp::kNot;
      inv->left = std::move(any);
      return ParsedExprPtr(std::move(inv));
    }

    if (negated) {
      return Status::ParseError("dangling NOT before '" + Peek().text + "'");
    }

    CompareOp op;
    if (AcceptSymbol("=")) {
      op = CompareOp::kEq;
    } else if (AcceptSymbol("<>") || AcceptSymbol("!=")) {
      op = CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (AcceptSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (AcceptSymbol("<")) {
      op = CompareOp::kLt;
    } else if (AcceptSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return left;  // bare additive expression
    }
    NODB_ASSIGN_OR_RETURN(auto right, ParseAdditive());
    auto node = std::make_shared<ParsedExpr>();
    node->kind = ParsedExpr::Kind::kCompare;
    node->cmp = op;
    node->left = std::move(left);
    node->right = std::move(right);
    return ParsedExprPtr(std::move(node));
  }

  Result<ParsedExprPtr> ParseAdditive() {
    NODB_ASSIGN_OR_RETURN(auto left, ParseMultiplicative());
    while (true) {
      ArithOp op;
      if (AcceptSymbol("+")) {
        op = ArithOp::kAdd;
      } else if (AcceptSymbol("-")) {
        op = ArithOp::kSub;
      } else {
        return left;
      }
      NODB_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
      auto node = std::make_shared<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kArith;
      node->arith = op;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
  }

  Result<ParsedExprPtr> ParseMultiplicative() {
    NODB_ASSIGN_OR_RETURN(auto left, ParsePrimary());
    while (true) {
      ArithOp op;
      if (AcceptSymbol("*")) {
        op = ArithOp::kMul;
      } else if (AcceptSymbol("/")) {
        op = ArithOp::kDiv;
      } else {
        return left;
      }
      NODB_ASSIGN_OR_RETURN(auto right, ParsePrimary());
      auto node = std::make_shared<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kArith;
      node->arith = op;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
  }

  Result<ParsedExprPtr> ParsePrimary() {
    const Token& tok = Peek();

    if (AcceptSymbol("(")) {
      NODB_ASSIGN_OR_RETURN(auto inner, ParseExpr());
      NODB_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }

    if (tok.type == TokenType::kInteger) {
      Advance();
      NODB_ASSIGN_OR_RETURN(int64_t v, ValueParser::ParseInt64(tok.text));
      auto node = std::make_shared<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kLiteral;
      node->value = Value::Int64(v);
      node->literal_type = DataType::kInt64;
      return ParsedExprPtr(std::move(node));
    }
    if (tok.type == TokenType::kFloat) {
      Advance();
      NODB_ASSIGN_OR_RETURN(double v, ValueParser::ParseDouble(tok.text));
      auto node = std::make_shared<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kLiteral;
      node->value = Value::Double(v);
      node->literal_type = DataType::kDouble;
      return ParsedExprPtr(std::move(node));
    }
    if (tok.type == TokenType::kString) {
      Advance();
      auto node = std::make_shared<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kLiteral;
      node->value = Value::String(tok.literal);
      node->literal_type = DataType::kString;
      return ParsedExprPtr(std::move(node));
    }

    // Unary minus on a numeric literal.
    if (AcceptSymbol("-")) {
      NODB_ASSIGN_OR_RETURN(auto inner, ParsePrimary());
      if (inner->kind != ParsedExpr::Kind::kLiteral) {
        // Desugar to 0 - expr.
        auto zero = std::make_shared<ParsedExpr>();
        zero->kind = ParsedExpr::Kind::kLiteral;
        zero->value = Value::Int64(0);
        zero->literal_type = DataType::kInt64;
        auto node = std::make_shared<ParsedExpr>();
        node->kind = ParsedExpr::Kind::kArith;
        node->arith = ArithOp::kSub;
        node->left = std::move(zero);
        node->right = std::move(inner);
        return ParsedExprPtr(std::move(node));
      }
      if (inner->literal_type == DataType::kInt64) {
        inner->value = Value::Int64(-inner->value.int64());
      } else if (inner->literal_type == DataType::kDouble) {
        inner->value = Value::Double(-inner->value.dbl());
      } else {
        return Status::ParseError("cannot negate a non-numeric literal");
      }
      return inner;
    }

    if (tok.type == TokenType::kIdentifier) {
      // DATE 'yyyy-mm-dd' literal.
      if (EqualsIgnoreCase(tok.text, "DATE") &&
          Peek(1).type == TokenType::kString) {
        Advance();
        const Token& lit = Advance();
        NODB_ASSIGN_OR_RETURN(int64_t days, ParseDate(lit.literal));
        auto node = std::make_shared<ParsedExpr>();
        node->kind = ParsedExpr::Kind::kLiteral;
        node->value = Value::Date(days);
        node->literal_type = DataType::kDate;
        return ParsedExprPtr(std::move(node));
      }
      if (EqualsIgnoreCase(tok.text, "NULL")) {
        Advance();
        auto node = std::make_shared<ParsedExpr>();
        node->kind = ParsedExpr::Kind::kLiteral;
        node->value = Value::Null();
        node->literal_type = DataType::kInt64;
        return ParsedExprPtr(std::move(node));
      }

      // Aggregate function?
      AggFunc agg;
      bool is_agg = false;
      if (EqualsIgnoreCase(tok.text, "COUNT")) {
        agg = AggFunc::kCount;
        is_agg = true;
      } else if (EqualsIgnoreCase(tok.text, "SUM")) {
        agg = AggFunc::kSum;
        is_agg = true;
      } else if (EqualsIgnoreCase(tok.text, "AVG")) {
        agg = AggFunc::kAvg;
        is_agg = true;
      } else if (EqualsIgnoreCase(tok.text, "MIN")) {
        agg = AggFunc::kMin;
        is_agg = true;
      } else if (EqualsIgnoreCase(tok.text, "MAX")) {
        agg = AggFunc::kMax;
        is_agg = true;
      }
      if (is_agg && Peek(1).type == TokenType::kSymbol &&
          Peek(1).text == "(") {
        Advance();  // function name
        Advance();  // '('
        auto node = std::make_shared<ParsedExpr>();
        node->kind = ParsedExpr::Kind::kAggregate;
        if (agg == AggFunc::kCount && AcceptSymbol("*")) {
          node->agg = AggFunc::kCountStar;
        } else {
          node->agg = agg;
          NODB_ASSIGN_OR_RETURN(node->left, ParseExpr());
        }
        NODB_RETURN_NOT_OK(ExpectSymbol(")"));
        return ParsedExprPtr(std::move(node));
      }

      // Plain or qualified column reference.
      Advance();
      auto node = std::make_shared<ParsedExpr>();
      node->kind = ParsedExpr::Kind::kColumn;
      if (AcceptSymbol(".")) {
        node->table = tok.text;
        NODB_ASSIGN_OR_RETURN(node->column, ExpectIdentifier());
      } else {
        node->column = tok.text;
      }
      return ParsedExprPtr(std::move(node));
    }

    return Status::ParseError("unexpected token '" + tok.text +
                              "' at offset " + std::to_string(tok.position));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(std::string_view sql) {
  NODB_ASSIGN_OR_RETURN(auto tokens, LexSql(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

bool StripExplainPrefix(std::string_view* sql, bool* analyze) {
  auto skip_space = [](std::string_view s) {
    size_t i = 0;
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
    }
    return s.substr(i);
  };
  auto take_word = [&](std::string_view s, std::string_view word,
                       std::string_view* rest) {
    if (s.size() < word.size() ||
        !EqualsIgnoreCase(s.substr(0, word.size()), word)) {
      return false;
    }
    // Word boundary: end of input or whitespace ("EXPLAINX" is a
    // table reference, not the keyword).
    if (s.size() > word.size() &&
        std::isspace(static_cast<unsigned char>(s[word.size()])) == 0) {
      return false;
    }
    *rest = skip_space(s.substr(word.size()));
    return true;
  };
  std::string_view rest;
  if (!take_word(skip_space(*sql), "EXPLAIN", &rest)) return false;
  *analyze = false;
  std::string_view after_analyze;
  if (take_word(rest, "ANALYZE", &after_analyze)) {
    *analyze = true;
    rest = after_analyze;
  }
  *sql = rest;
  return true;
}

}  // namespace nodb
