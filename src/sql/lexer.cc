#include "sql/lexer.h"

#include <cctype>

namespace nodb {

Result<std::vector<Token>> LexSql(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;

    if (is_ident_start(c)) {
      size_t start = i;
      while (i < n && is_ident(sql[i])) ++i;
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(sql.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
          ++i;
        }
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
          ++i;
        }
      }
      tok.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      tok.text = std::string(sql.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          value.push_back(sql[i]);
          ++i;
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.position));
      }
      tok.type = TokenType::kString;
      tok.literal = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Multi-char operators first.
    auto two = sql.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(two);
      tokens.push_back(std::move(tok));
      i += 2;
      continue;
    }
    static constexpr std::string_view kSingles = "=<>+-*/(),.;";
    if (kSingles.find(c) != std::string_view::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      tokens.push_back(std::move(tok));
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace nodb
