#ifndef NODB_SQL_AST_H_
#define NODB_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/expr.h"
#include "types/value.h"

namespace nodb {

struct ParsedExpr;
using ParsedExprPtr = std::shared_ptr<ParsedExpr>;

/// An *unbound* expression as written in the query: column references
/// are still names, types are unknown. The binder resolves it into an
/// executable Expr.
struct ParsedExpr {
  enum class Kind {
    kColumn,
    kLiteral,
    kCompare,
    kLogical,
    kArith,
    kIsNull,
    kLike,
    kAggregate,
  };

  Kind kind;

  // kColumn: optional qualifier ("t.col") and column name.
  std::string table;
  std::string column;

  // kLiteral.
  Value value;
  DataType literal_type = DataType::kInt64;

  // Operators.
  CompareOp cmp = CompareOp::kEq;
  LogicalOp logic = LogicalOp::kAnd;
  ArithOp arith = ArithOp::kAdd;
  ParsedExprPtr left;
  ParsedExprPtr right;

  // kIsNull / kLike.
  bool negated = false;
  std::string pattern;

  // kAggregate: function over `left` (null for COUNT(*)).
  AggFunc agg = AggFunc::kCountStar;

  /// Display form for error messages and plan dumps.
  std::string ToString() const;
};

/// One SELECT-list entry.
struct SelectItem {
  ParsedExprPtr expr;  // null when the item is '*'
  std::string alias;   // empty = derive from the expression
};

/// One ORDER BY key.
struct OrderItem {
  ParsedExprPtr expr;
  bool ascending = true;
};

/// A parsed SELECT statement over one table, optionally inner-joined
/// with a second.
struct SelectStatement {
  std::vector<SelectItem> items;
  bool select_star = false;
  bool distinct = false;

  std::string from_table;
  std::string from_alias;

  bool has_join = false;
  std::string join_table;
  std::string join_alias;
  ParsedExprPtr join_condition;

  ParsedExprPtr where;  // null = no predicate
  std::vector<ParsedExprPtr> group_by;
  ParsedExprPtr having;  // null = no HAVING clause
  std::vector<OrderItem> order_by;
  std::optional<uint64_t> limit;
  uint64_t offset = 0;
};

}  // namespace nodb

#endif  // NODB_SQL_AST_H_
