#ifndef NODB_SQL_LEXER_H_
#define NODB_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace nodb {

/// Token categories produced by the SQL lexer.
enum class TokenType {
  kIdentifier,  // table / column names (also keywords; parser decides)
  kInteger,     // 123
  kFloat,       // 1.5, 1e-3
  kString,      // 'text' with '' escaping
  kSymbol,      // operators and punctuation, in `text`
  kEnd,
};

/// One lexed token. `text` views into the original query string for
/// identifiers/symbols; string literals are unescaped into `literal`.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // raw text (uppercased for identifiers? no — as-is)
  std::string literal;  // unescaped string literal payload
  size_t position = 0;  // byte offset in the query, for error messages
};

/// Splits a SQL string into tokens. Comments are not supported; SQL
/// string literals use single quotes with '' escaping.
Result<std::vector<Token>> LexSql(std::string_view sql);

}  // namespace nodb

#endif  // NODB_SQL_LEXER_H_
