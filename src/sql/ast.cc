#include "sql/ast.h"

namespace nodb {

std::string ParsedExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return table.empty() ? column : table + "." + column;
    case Kind::kLiteral:
      return value.ToString();
    case Kind::kCompare:
      return "(" + left->ToString() + " " +
             std::string(CompareOpToString(cmp)) + " " + right->ToString() +
             ")";
    case Kind::kLogical:
      if (logic == LogicalOp::kNot) return "(NOT " + left->ToString() + ")";
      return "(" + left->ToString() +
             (logic == LogicalOp::kAnd ? " AND " : " OR ") +
             right->ToString() + ")";
    case Kind::kArith:
      return "(" + left->ToString() + " " +
             std::string(ArithOpToString(arith)) + " " + right->ToString() +
             ")";
    case Kind::kIsNull:
      return "(" + left->ToString() +
             (negated ? " IS NOT NULL)" : " IS NULL)");
    case Kind::kLike:
      return "(" + left->ToString() + (negated ? " NOT LIKE '" : " LIKE '") +
             pattern + "')";
    case Kind::kAggregate:
      if (agg == AggFunc::kCountStar) return "COUNT(*)";
      return std::string(AggFuncToString(agg)) + "(" + left->ToString() +
             ")";
  }
  return "?";
}

}  // namespace nodb
