#ifndef NODB_SQL_PLANNER_H_
#define NODB_SQL_PLANNER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"
#include "sql/ast.h"
#include "util/result.h"

namespace nodb {

namespace obs {
class PlanProfiler;
}  // namespace obs

/// Predicate-pushdown offer handed to ScanFactory::CreatePushdownScan.
/// `conjuncts` are boolean expressions bound over the scan's *output*
/// schema (the projected columns, in projection order) — every column
/// they reference is in the projection by construction. The factory
/// marks the conjuncts it consumed in `pushed` (parallel to
/// `conjuncts`, pre-sized to false); the planner keeps a FilterOperator
/// above the scan for every conjunct left unpushed, so a factory that
/// ignores the offer still yields a correct plan.
struct ScanPushdown {
  std::vector<ExprPtr> conjuncts;
  std::vector<bool> pushed;
};

/// Supplies leaf scans to the planner.
///
/// This is the seam the NoDB philosophy turns on: the identical plan
/// (filter/project/aggregate/join/sort/limit) runs over an in-situ raw
/// scan, the external-files re-scan, or a loaded binary table — only
/// this factory differs between engines. `projection` lists the table
/// columns the plan needs, ascending; an empty list requests
/// zero-column row-count batches (COUNT(*)).
class ScanFactory {
 public:
  virtual ~ScanFactory() = default;

  virtual Result<std::shared_ptr<Schema>> TableSchema(
      const std::string& table) = 0;

  virtual Result<OperatorPtr> CreateScan(
      const std::string& table, const std::vector<size_t>& projection) = 0;

  /// CreateScan plus a predicate-pushdown offer (see ScanPushdown).
  /// The default implementation ignores the offer and forwards to
  /// CreateScan — engines whose leaves cannot evaluate predicates need
  /// not change; the NoDB factory overrides this to push eligible
  /// conjuncts into the two-phase raw scan.
  virtual Result<OperatorPtr> CreatePushdownScan(
      const std::string& table, const std::vector<size_t>& projection,
      ScanPushdown* pushdown) {
    (void)pushdown;
    return CreateScan(table, projection);
  }
};

/// Selectivity oracle for predicate ordering, implemented by the NoDB
/// on-the-fly statistics store (paper §3.3). Estimates are fractions in
/// [0,1]; nullopt = no information (planner keeps source order).
class SelectivityEstimator {
 public:
  virtual ~SelectivityEstimator() = default;

  virtual std::optional<double> EstimateSelectivity(
      const std::string& table, const Expr& predicate) const = 0;
};

struct PlannerOptions {
  /// When set, AND-conjuncts are reordered most-selective-first.
  const SelectivityEstimator* stats = nullptr;

  /// When set, receives a bottom-up textual description of the built
  /// plan (EXPLAIN). Filter lines appear in execution order, so the
  /// effect of statistics-driven predicate reordering is visible.
  std::string* explain = nullptr;

  /// When set, every operator is wrapped in a timing shim and the
  /// operator tree is recorded (EXPLAIN ANALYZE, per-operator trace
  /// spans). The profiler must outlive the returned plan.
  obs::PlanProfiler* profile = nullptr;
};

/// Binds and plans `stmt` into an executable operator tree.
///
/// Column pruning is computed here and pushed into ScanFactory —
/// for the NoDB engine this is exactly the "requested attributes" set
/// that drives selective tokenizing/parsing.
Result<OperatorPtr> PlanSelect(const SelectStatement& stmt,
                               ScanFactory* factory,
                               const PlannerOptions& options = {});

/// Parses and plans in one step.
Result<OperatorPtr> PlanSql(std::string_view sql, ScanFactory* factory,
                            const PlannerOptions& options = {});

}  // namespace nodb

#endif  // NODB_SQL_PLANNER_H_
