#include "sql/planner.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/limit.h"
#include "exec/project.h"
#include "exec/sort.h"
#include "obs/plan_profile.h"
#include "sql/parser.h"
#include "types/date_util.h"
#include "util/string_util.h"

namespace nodb {

namespace {

/// Does this parsed expression (sub)tree contain an aggregate call?
bool ContainsAggregate(const ParsedExpr& e) {
  if (e.kind == ParsedExpr::Kind::kAggregate) return true;
  if (e.left && ContainsAggregate(*e.left)) return true;
  if (e.right && ContainsAggregate(*e.right)) return true;
  return false;
}

/// Default output-column name for an expression without an alias.
std::string DeriveName(const ParsedExpr& e) {
  switch (e.kind) {
    case ParsedExpr::Kind::kColumn:
      return e.column;
    case ParsedExpr::Kind::kAggregate: {
      std::string base = e.agg == AggFunc::kCountStar
                             ? "count"
                             : ToLowerAscii(AggFuncToString(e.agg));
      if (e.left && e.left->kind == ParsedExpr::Kind::kColumn) {
        return base + "_" + e.left->column;
      }
      return base;
    }
    default:
      return e.ToString();
  }
}

/// Name resolution and expression binding over one or two tables.
class Binder {
 public:
  struct TableSlot {
    std::string name;   // catalog name
    std::string alias;  // effective alias (alias or name)
    std::shared_ptr<Schema> schema;
    std::set<size_t> used;
    std::vector<size_t> projection;
    std::unordered_map<size_t, size_t> remap;  // full idx -> projected idx
    size_t base = 0;  // offset in the combined projected schema
  };

  Status AddTable(const std::string& name, const std::string& alias,
                  std::shared_ptr<Schema> schema) {
    TableSlot slot;
    slot.name = name;
    slot.alias = alias.empty() ? name : alias;
    slot.schema = std::move(schema);
    for (const auto& other : slots_) {
      if (EqualsIgnoreCase(other.alias, slot.alias)) {
        return Status::InvalidArgument("duplicate table alias '" +
                                       slot.alias + "'");
      }
    }
    slots_.push_back(std::move(slot));
    return Status::OK();
  }

  size_t num_tables() const { return slots_.size(); }
  const TableSlot& slot(size_t i) const { return slots_[i]; }

  /// Resolves (qualifier, column) to a table slot + full-schema index.
  Result<std::pair<size_t, size_t>> Resolve(const std::string& qualifier,
                                            const std::string& column) const {
    if (!qualifier.empty()) {
      for (size_t s = 0; s < slots_.size(); ++s) {
        if (EqualsIgnoreCase(slots_[s].alias, qualifier) ||
            EqualsIgnoreCase(slots_[s].name, qualifier)) {
          NODB_ASSIGN_OR_RETURN(size_t idx,
                                slots_[s].schema->FieldIndex(column));
          return std::make_pair(s, idx);
        }
      }
      return Status::NotFound("unknown table qualifier '" + qualifier + "'");
    }
    std::optional<std::pair<size_t, size_t>> found;
    for (size_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].schema->HasField(column)) {
        if (found.has_value()) {
          return Status::InvalidArgument("ambiguous column '" + column +
                                         "'");
        }
        auto idx = slots_[s].schema->FieldIndex(column);
        found = std::make_pair(s, *idx);
      }
    }
    if (!found.has_value()) {
      return Status::NotFound("no column named '" + column + "'");
    }
    return *found;
  }

  /// Pass 1: records every column a parsed expression touches.
  Status Collect(const ParsedExpr& e) {
    if (e.kind == ParsedExpr::Kind::kColumn) {
      NODB_ASSIGN_OR_RETURN(auto loc, Resolve(e.table, e.column));
      slots_[loc.first].used.insert(loc.second);
      return Status::OK();
    }
    if (e.left) NODB_RETURN_NOT_OK(Collect(*e.left));
    if (e.right) NODB_RETURN_NOT_OK(Collect(*e.right));
    return Status::OK();
  }

  /// Pass 1 for SELECT *: every column of every table is required.
  void CollectAll() {
    for (auto& slot : slots_) {
      for (size_t i = 0; i < slot.schema->num_fields(); ++i) {
        slot.used.insert(i);
      }
    }
  }

  /// Freezes per-table projections and the combined output schema.
  void FinalizeProjections() {
    std::vector<Field> combined;
    size_t base = 0;
    for (auto& slot : slots_) {
      slot.projection.assign(slot.used.begin(), slot.used.end());
      std::sort(slot.projection.begin(), slot.projection.end());
      slot.base = base;
      for (size_t i = 0; i < slot.projection.size(); ++i) {
        slot.remap[slot.projection[i]] = i;
        const Field& f = slot.schema->field(slot.projection[i]);
        // Qualified display names avoid collisions across joined tables.
        std::string display =
            slots_.size() > 1 ? slot.alias + "." + f.name : f.name;
        combined.push_back(Field{display, f.type});
      }
      base += slot.projection.size();
    }
    combined_ = Schema::Make(std::move(combined));
  }

  const std::shared_ptr<Schema>& combined_schema() const {
    return combined_;
  }

  /// Pass 2: binds to an executable expression over the combined
  /// projected schema. Aggregate nodes are rejected (they are handled
  /// by the aggregate planner, not inside scalar expressions).
  Result<ExprPtr> Bind(const ParsedExpr& e) const {
    switch (e.kind) {
      case ParsedExpr::Kind::kColumn: {
        NODB_ASSIGN_OR_RETURN(auto loc, Resolve(e.table, e.column));
        const TableSlot& slot = slots_[loc.first];
        auto it = slot.remap.find(loc.second);
        if (it == slot.remap.end()) {
          return Status::Internal("column not collected before binding: " +
                                  e.column);
        }
        size_t index = slot.base + it->second;
        return ExprPtr(std::make_shared<ColumnRefExpr>(
            index, combined_->field(index).name,
            slot.schema->field(loc.second).type));
      }
      case ParsedExpr::Kind::kLiteral:
        return ExprPtr(
            std::make_shared<LiteralExpr>(e.value, e.literal_type));
      case ParsedExpr::Kind::kCompare: {
        NODB_ASSIGN_OR_RETURN(auto left, Bind(*e.left));
        NODB_ASSIGN_OR_RETURN(auto right, Bind(*e.right));
        NODB_RETURN_NOT_OK(CoerceDateComparison(&left, &right));
        return ExprPtr(
            std::make_shared<CompareExpr>(e.cmp, std::move(left),
                                          std::move(right)));
      }
      case ParsedExpr::Kind::kLogical: {
        NODB_ASSIGN_OR_RETURN(auto left, Bind(*e.left));
        ExprPtr right;
        if (e.logic != LogicalOp::kNot) {
          NODB_ASSIGN_OR_RETURN(right, Bind(*e.right));
        }
        return ExprPtr(std::make_shared<LogicalExpr>(e.logic, std::move(left),
                                                     std::move(right)));
      }
      case ParsedExpr::Kind::kArith: {
        NODB_ASSIGN_OR_RETURN(auto left, Bind(*e.left));
        NODB_ASSIGN_OR_RETURN(auto right, Bind(*e.right));
        return ExprPtr(std::make_shared<ArithExpr>(e.arith, std::move(left),
                                                   std::move(right)));
      }
      case ParsedExpr::Kind::kIsNull: {
        NODB_ASSIGN_OR_RETURN(auto input, Bind(*e.left));
        return ExprPtr(
            std::make_shared<IsNullExpr>(std::move(input), e.negated));
      }
      case ParsedExpr::Kind::kLike: {
        NODB_ASSIGN_OR_RETURN(auto input, Bind(*e.left));
        return ExprPtr(std::make_shared<LikeExpr>(std::move(input),
                                                  e.pattern, e.negated));
      }
      case ParsedExpr::Kind::kAggregate:
        return Status::InvalidArgument(
            "aggregate used where a scalar expression is required: " +
            e.ToString());
    }
    return Status::Internal("unhandled parsed expression kind");
  }

 private:
  /// 'yyyy-mm-dd' string literals compared against DATE columns are
  /// re-typed as DATE so the comparison runs on day numbers.
  Status CoerceDateComparison(ExprPtr* left, ExprPtr* right) const {
    auto coerce = [&](ExprPtr& side, const ExprPtr& other) -> Status {
      auto* lit = dynamic_cast<LiteralExpr*>(side.get());
      if (lit == nullptr || lit->type() != DataType::kString) {
        return Status::OK();
      }
      auto other_type = other->OutputType(*combined_);
      if (!other_type.ok() || *other_type != DataType::kDate) {
        return Status::OK();
      }
      NODB_ASSIGN_OR_RETURN(int64_t days, ParseDate(lit->value().str()));
      side = std::make_shared<LiteralExpr>(Value::Date(days),
                                           DataType::kDate);
      return Status::OK();
    };
    NODB_RETURN_NOT_OK(coerce(*left, *right));
    return coerce(*right, *left);
  }

  std::vector<TableSlot> slots_;
  std::shared_ptr<Schema> combined_;
};

/// Binds a HAVING (or post-aggregate) expression against the output
/// schema of the aggregate projection. Sub-expressions that textually
/// match a SELECT item resolve to that output column (this is how
/// `HAVING COUNT(*) > 5` works when COUNT(*) is selected); bare column
/// names resolve against output names/aliases; aggregates not present
/// in the SELECT list are rejected.
Result<ExprPtr> BindOverOutput(const ParsedExpr& e, const Schema& out,
                               const std::vector<SelectItem>& items) {
  std::string key = e.ToString();
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].expr->ToString() == key) {
      return ExprPtr(std::make_shared<ColumnRefExpr>(
          i, out.field(i).name, out.field(i).type));
    }
  }
  switch (e.kind) {
    case ParsedExpr::Kind::kColumn: {
      if (e.table.empty()) {
        auto idx = out.FieldIndex(e.column);
        if (idx.ok()) {
          return ExprPtr(std::make_shared<ColumnRefExpr>(
              *idx, out.field(*idx).name, out.field(*idx).type));
        }
      }
      return Status::InvalidArgument(
          "HAVING references '" + key +
          "', which is not an output column of the aggregation");
    }
    case ParsedExpr::Kind::kLiteral:
      return ExprPtr(std::make_shared<LiteralExpr>(e.value, e.literal_type));
    case ParsedExpr::Kind::kCompare: {
      NODB_ASSIGN_OR_RETURN(auto l, BindOverOutput(*e.left, out, items));
      NODB_ASSIGN_OR_RETURN(auto r, BindOverOutput(*e.right, out, items));
      return ExprPtr(std::make_shared<CompareExpr>(e.cmp, std::move(l),
                                                   std::move(r)));
    }
    case ParsedExpr::Kind::kLogical: {
      NODB_ASSIGN_OR_RETURN(auto l, BindOverOutput(*e.left, out, items));
      ExprPtr r;
      if (e.logic != LogicalOp::kNot) {
        NODB_ASSIGN_OR_RETURN(r, BindOverOutput(*e.right, out, items));
      }
      return ExprPtr(std::make_shared<LogicalExpr>(e.logic, std::move(l),
                                                   std::move(r)));
    }
    case ParsedExpr::Kind::kArith: {
      NODB_ASSIGN_OR_RETURN(auto l, BindOverOutput(*e.left, out, items));
      NODB_ASSIGN_OR_RETURN(auto r, BindOverOutput(*e.right, out, items));
      return ExprPtr(std::make_shared<ArithExpr>(e.arith, std::move(l),
                                                 std::move(r)));
    }
    case ParsedExpr::Kind::kIsNull: {
      NODB_ASSIGN_OR_RETURN(auto in, BindOverOutput(*e.left, out, items));
      return ExprPtr(std::make_shared<IsNullExpr>(std::move(in), e.negated));
    }
    case ParsedExpr::Kind::kLike: {
      NODB_ASSIGN_OR_RETURN(auto in, BindOverOutput(*e.left, out, items));
      return ExprPtr(
          std::make_shared<LikeExpr>(std::move(in), e.pattern, e.negated));
    }
    case ParsedExpr::Kind::kAggregate:
      return Status::InvalidArgument(
          "HAVING aggregate '" + key +
          "' must also appear in the SELECT list");
  }
  return Status::Internal("unhandled expression kind in BindOverOutput");
}

/// Flattens an AND tree into conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  auto* logical = dynamic_cast<LogicalExpr*>(e.get());
  if (logical != nullptr && logical->op() == LogicalOp::kAnd) {
    SplitConjuncts(logical->left(), out);
    SplitConjuncts(logical->right(), out);
    return;
  }
  out->push_back(e);
}

/// Orders conjuncts most-selective-first using the stats oracle
/// (paper §3.3: on-the-fly statistics feed plan choices). Unknown
/// selectivities sort last, keeping their source order (stable sort).
void ReorderConjuncts(std::vector<ExprPtr>* conjuncts,
                      const std::string& table,
                      const SelectivityEstimator* stats) {
  if (conjuncts->size() < 2 || stats == nullptr) return;
  std::vector<std::pair<double, ExprPtr>> ranked;
  ranked.reserve(conjuncts->size());
  for (const auto& c : *conjuncts) {
    double sel = stats->EstimateSelectivity(table, *c).value_or(1.0);
    ranked.emplace_back(sel, c);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  conjuncts->clear();
  for (auto& [sel, expr] : ranked) conjuncts->push_back(std::move(expr));
}

/// Extracts equi-join key pairs from a bound ON condition over the
/// combined schema. Every conjunct must be `left_col = right_col` with
/// the two sides on different tables (`split` = first right-table
/// column index in the combined schema).
Status ExtractJoinKeys(const ExprPtr& condition, size_t split,
                       std::vector<ExprPtr>* probe_keys,
                       std::vector<ExprPtr>* build_keys) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition, &conjuncts);
  for (const auto& c : conjuncts) {
    auto* cmp = dynamic_cast<CompareExpr*>(c.get());
    if (cmp == nullptr || cmp->op() != CompareOp::kEq) {
      return Status::NotImplemented(
          "JOIN ON must be a conjunction of equalities; got " +
          c->ToString());
    }
    auto* l = dynamic_cast<ColumnRefExpr*>(cmp->left().get());
    auto* r = dynamic_cast<ColumnRefExpr*>(cmp->right().get());
    if (l == nullptr || r == nullptr) {
      return Status::NotImplemented(
          "JOIN ON must compare plain columns; got " + c->ToString());
    }
    const ColumnRefExpr* probe_side = l->index() < split ? l : r;
    const ColumnRefExpr* build_side = l->index() < split ? r : l;
    if (probe_side->index() >= split || build_side->index() < split) {
      return Status::NotImplemented(
          "JOIN ON must relate the two joined tables; got " + c->ToString());
    }
    probe_keys->push_back(std::make_shared<ColumnRefExpr>(
        probe_side->index(), probe_side->name(), probe_side->type()));
    // Build-side scan emits only the right table's columns, so rebase.
    build_keys->push_back(std::make_shared<ColumnRefExpr>(
        build_side->index() - split, build_side->name(),
        build_side->type()));
  }
  return Status::OK();
}

}  // namespace

Result<OperatorPtr> PlanSelect(const SelectStatement& stmt,
                               ScanFactory* factory,
                               const PlannerOptions& options) {
  // EXPLAIN sink: lines are appended bottom-up as the plan is built.
  auto note = [&](const std::string& line) {
    if (options.explain != nullptr) {
      *options.explain += line;
      *options.explain += '\n';
    }
  };
  // EXPLAIN ANALYZE / trace shim: wraps each operator as it is built,
  // consuming `arity` subtree roots (see obs::PlanProfiler).
  auto wrap = [&](OperatorPtr op, const char* kind, std::string label,
                  size_t arity) -> OperatorPtr {
    if (options.profile == nullptr) return op;
    return options.profile->Wrap(std::move(op), kind, std::move(label),
                                 arity);
  };

  Binder binder;
  NODB_ASSIGN_OR_RETURN(auto from_schema,
                        factory->TableSchema(stmt.from_table));
  NODB_RETURN_NOT_OK(
      binder.AddTable(stmt.from_table, stmt.from_alias, from_schema));
  if (stmt.has_join) {
    NODB_ASSIGN_OR_RETURN(auto join_schema,
                          factory->TableSchema(stmt.join_table));
    NODB_RETURN_NOT_OK(
        binder.AddTable(stmt.join_table, stmt.join_alias, join_schema));
  }

  // ---- Pass 1: required-column analysis (drives selective parsing).
  const bool has_aggregate =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& item) {
                    return item.expr && ContainsAggregate(*item.expr);
                  });
  if (stmt.select_star) {
    if (has_aggregate) {
      return Status::InvalidArgument("SELECT * cannot mix with aggregates");
    }
    binder.CollectAll();
  }
  for (const auto& item : stmt.items) {
    NODB_RETURN_NOT_OK(binder.Collect(*item.expr));
  }
  if (stmt.where) NODB_RETURN_NOT_OK(binder.Collect(*stmt.where));
  if (stmt.join_condition) {
    NODB_RETURN_NOT_OK(binder.Collect(*stmt.join_condition));
  }
  for (const auto& g : stmt.group_by) NODB_RETURN_NOT_OK(binder.Collect(*g));
  if (!has_aggregate) {
    // In aggregate queries ORDER BY references output columns instead.
    for (const auto& o : stmt.order_by) {
      NODB_RETURN_NOT_OK(binder.Collect(*o.expr));
    }
  }
  binder.FinalizeProjections();

  // ---- WHERE analysis. Conjuncts are classified *before* the leaf
  // scans exist so that single-table conjuncts can be offered to their
  // scan as pushdown predicates — and, on joins, evaluated on the
  // correct side below the join (reordered by that table's statistics)
  // instead of over every joined row. Only conjuncts that genuinely
  // reference both tables remain above the HashJoin.
  const size_t split = binder.slot(0).projection.size();
  std::vector<ExprPtr> side_conjuncts[2];
  std::vector<ExprPtr> cross_conjuncts;
  if (stmt.where) {
    NODB_ASSIGN_OR_RETURN(auto predicate, binder.Bind(*stmt.where));
    NODB_ASSIGN_OR_RETURN(DataType t,
                          predicate->OutputType(*binder.combined_schema()));
    if (t != DataType::kInt64) {
      return Status::InvalidArgument("WHERE predicate is not boolean");
    }
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(predicate, &conjuncts);
    if (!stmt.has_join) {
      side_conjuncts[0] = std::move(conjuncts);
    } else {
      for (auto& c : conjuncts) {
        std::vector<size_t> cols;
        c->CollectColumns(&cols);
        bool left_only = true;
        bool right_only = true;
        for (size_t col : cols) {
          (col < split ? right_only : left_only) = false;
        }
        if (left_only) {  // includes column-free conjuncts
          side_conjuncts[0].push_back(std::move(c));
        } else if (right_only) {
          // The build-side scan emits only the right table's columns;
          // re-target the conjunct onto that schema. A node kind the
          // rebase does not know stays above the join (still correct).
          ExprPtr rebased = RebaseColumnRefs(c, split);
          if (rebased != nullptr) {
            side_conjuncts[1].push_back(std::move(rebased));
          } else {
            cross_conjuncts.push_back(std::move(c));
          }
        } else {
          cross_conjuncts.push_back(std::move(c));
        }
      }
    }
    // Most-selective-first per side, so the cheap rejections run first
    // whether the conjuncts execute inside the scan or as a cascade of
    // filters above it.
    ReorderConjuncts(&side_conjuncts[0], stmt.from_table, options.stats);
    if (stmt.has_join) {
      ReorderConjuncts(&side_conjuncts[1], stmt.join_table, options.stats);
    }
  }

  // ---- Leaf scans (the only engine-specific part of the plan). Each
  // side's conjuncts are offered to its scan; whatever the factory does
  // not consume becomes a cascade of filters directly above that scan.
  auto annotate = [&](const std::string& table, const Expr& c) {
    std::string suffix;
    // Estimates are display-only here (ordering already happened in
    // ReorderConjuncts) — skip the stats traffic unless EXPLAINing.
    if (options.explain != nullptr && options.stats != nullptr) {
      auto sel = options.stats->EstimateSelectivity(table, c);
      if (sel.has_value()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "  (selectivity ~%.4f)", *sel);
        suffix = buf;
      }
    }
    return suffix;
  };
  auto plan_scan = [&](size_t which, const std::string& table,
                       std::vector<ExprPtr>& conjuncts)
      -> Result<OperatorPtr> {
    const Binder::TableSlot& slot = binder.slot(which);
    std::string cols;
    for (size_t i : slot.projection) {
      if (!cols.empty()) cols += ", ";
      cols += slot.schema->field(i).name;
    }
    note("SCAN " + slot.name + " [" + cols + "]");
    ScanPushdown pushdown;
    pushdown.conjuncts = conjuncts;
    pushdown.pushed.assign(conjuncts.size(), false);
    NODB_ASSIGN_OR_RETURN(
        OperatorPtr scan,
        factory->CreatePushdownScan(table, slot.projection, &pushdown));
    pushdown.pushed.resize(conjuncts.size(), false);
    size_t num_pushed = 0;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (!pushdown.pushed[i]) continue;
      ++num_pushed;
      note("PUSHDOWN " + conjuncts[i]->ToString() +
           annotate(table, *conjuncts[i]));
    }
    std::string scan_label = "SCAN " + slot.name + " [" + cols + "]";
    if (num_pushed > 0) {
      scan_label += " (+" + std::to_string(num_pushed) + " pushed)";
    }
    scan = wrap(std::move(scan), "scan", std::move(scan_label), 0);
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (pushdown.pushed[i]) continue;
      note("FILTER " + conjuncts[i]->ToString() +
           annotate(table, *conjuncts[i]));
      std::string label = "FILTER " + conjuncts[i]->ToString();
      scan = wrap(std::make_unique<FilterOperator>(std::move(scan),
                                                   conjuncts[i]),
                  "filter", std::move(label), 1);
    }
    return scan;
  };

  NODB_ASSIGN_OR_RETURN(
      OperatorPtr plan,
      plan_scan(0, stmt.from_table, side_conjuncts[0]));
  if (stmt.has_join) {
    NODB_ASSIGN_OR_RETURN(
        OperatorPtr build,
        plan_scan(1, stmt.join_table, side_conjuncts[1]));
    if (stmt.join_condition == nullptr) {
      return Status::InvalidArgument("JOIN requires an ON condition");
    }
    NODB_ASSIGN_OR_RETURN(auto condition, binder.Bind(*stmt.join_condition));
    std::vector<ExprPtr> probe_keys, build_keys;
    NODB_RETURN_NOT_OK(
        ExtractJoinKeys(condition, split, &probe_keys, &build_keys));
    std::string keys;
    for (size_t i = 0; i < probe_keys.size(); ++i) {
      if (i > 0) keys += ", ";
      keys += probe_keys[i]->ToString() + " = " +
              build_keys[i]->ToString();
    }
    note("HASH JOIN on " + keys);
    NODB_ASSIGN_OR_RETURN(
        plan, HashJoinOperator::Create(std::move(plan), std::move(build),
                                       std::move(probe_keys),
                                       std::move(build_keys)));
    plan = wrap(std::move(plan), "join", "HASH JOIN on " + keys, 2);
    // Cross-table residue: only these conjuncts see joined rows.
    for (auto& conjunct : cross_conjuncts) {
      note("FILTER " + conjunct->ToString());
      std::string label = "FILTER " + conjunct->ToString();
      plan = wrap(std::make_unique<FilterOperator>(std::move(plan),
                                                   std::move(conjunct)),
                  "filter", std::move(label), 1);
    }
  }

  // The combined schema must match what the scans emit; rename to the
  // binder's display names so later OutputType calls line up.
  // (Scans emit per-table projected schemas; for joins the HashJoin
  // concatenates them in the same order the binder used.)

  if (has_aggregate) {
    // ---- Aggregate path: Agg -> Project(reorder) -> Sort -> Limit.
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    std::vector<std::string> group_keys;  // parsed text, for matching
    for (const auto& g : stmt.group_by) {
      NODB_ASSIGN_OR_RETURN(auto bound, binder.Bind(*g));
      group_exprs.push_back(std::move(bound));
      group_names.push_back(DeriveName(*g));
      group_keys.push_back(g->ToString());
    }

    struct ItemPlan {
      bool is_group = false;
      size_t index = 0;  // group index or aggregate ordinal
      std::string name;
    };
    std::vector<ItemPlan> item_plans;
    std::vector<AggregateSpec> aggs;
    for (const auto& item : stmt.items) {
      ItemPlan ip;
      ip.name = item.alias.empty() ? DeriveName(*item.expr) : item.alias;
      if (item.expr->kind == ParsedExpr::Kind::kAggregate) {
        AggregateSpec spec;
        spec.func = item.expr->agg;
        if (spec.func != AggFunc::kCountStar) {
          NODB_ASSIGN_OR_RETURN(spec.input, binder.Bind(*item.expr->left));
        }
        spec.name = ip.name;
        ip.index = aggs.size();
        aggs.push_back(std::move(spec));
      } else {
        std::string key = item.expr->ToString();
        auto it = std::find(group_keys.begin(), group_keys.end(), key);
        if (it == group_keys.end()) {
          return Status::InvalidArgument(
              "SELECT item must be an aggregate or appear in GROUP BY: " +
              key);
        }
        ip.is_group = true;
        ip.index = static_cast<size_t>(it - group_keys.begin());
      }
      item_plans.push_back(std::move(ip));
    }

    std::string agg_label;
    {
      std::string groups;
      for (size_t i = 0; i < group_keys.size(); ++i) {
        if (i > 0) groups += ", ";
        groups += group_keys[i];
      }
      std::string agg_list;
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i > 0) agg_list += ", ";
        agg_list += aggs[i].name;
      }
      note("AGGREGATE groups=[" + groups + "] aggs=[" + agg_list + "]");
      agg_label = "AGGREGATE groups=[" + groups + "] aggs=[" + agg_list +
                  "]";
    }
    NODB_ASSIGN_OR_RETURN(
        plan, HashAggregateOperator::Create(std::move(plan),
                                            std::move(group_exprs),
                                            group_names, std::move(aggs)));
    plan = wrap(std::move(plan), "aggregate", std::move(agg_label), 1);

    // Reorder aggregate output into SELECT order.
    const Schema& agg_schema = *plan->output_schema();
    size_t num_groups = group_keys.size();
    std::vector<ExprPtr> out_exprs;
    std::vector<std::string> out_names;
    for (const auto& ip : item_plans) {
      size_t idx = ip.is_group ? ip.index : num_groups + ip.index;
      out_exprs.push_back(std::make_shared<ColumnRefExpr>(
          idx, agg_schema.field(idx).name, agg_schema.field(idx).type));
      out_names.push_back(ip.name);
    }
    NODB_ASSIGN_OR_RETURN(
        plan, ProjectOperator::Create(std::move(plan), std::move(out_exprs),
                                      std::move(out_names)));
    plan = wrap(std::move(plan), "project", "PROJECT (select order)", 1);

    // HAVING filters groups, evaluated over the projected output.
    if (stmt.having) {
      NODB_ASSIGN_OR_RETURN(
          auto having, BindOverOutput(*stmt.having, *plan->output_schema(),
                                      stmt.items));
      NODB_ASSIGN_OR_RETURN(DataType t,
                            having->OutputType(*plan->output_schema()));
      if (t != DataType::kInt64) {
        return Status::InvalidArgument("HAVING predicate is not boolean");
      }
      note("HAVING " + having->ToString());
      std::string label = "HAVING " + having->ToString();
      plan = wrap(std::make_unique<FilterOperator>(std::move(plan),
                                                   std::move(having)),
                  "filter", std::move(label), 1);
    }
    if (stmt.distinct) {
      note("DISTINCT");
      plan = wrap(std::make_unique<DistinctOperator>(std::move(plan)),
                  "distinct", "DISTINCT", 1);
    }

    // ORDER BY over the projected output: match an output column by
    // name/alias, or a select item by its textual expression (e.g.
    // "ORDER BY b.g" matching the select item "b.g").
    if (!stmt.order_by.empty()) {
      const Schema& out_schema = *plan->output_schema();
      std::vector<SortKey> keys;
      for (const auto& o : stmt.order_by) {
        std::optional<size_t> idx;
        if (o.expr->kind == ParsedExpr::Kind::kColumn &&
            o.expr->table.empty()) {
          auto found = out_schema.FieldIndex(o.expr->column);
          if (found.ok()) idx = *found;
        }
        if (!idx.has_value()) {
          std::string key = o.expr->ToString();
          for (size_t i = 0; i < stmt.items.size(); ++i) {
            if (stmt.items[i].expr->ToString() == key) {
              idx = i;
              break;
            }
          }
        }
        if (!idx.has_value()) {
          return Status::NotImplemented(
              "ORDER BY in aggregate queries must name an output "
              "column or select item: " +
              o.expr->ToString());
        }
        keys.push_back(SortKey{
            std::make_shared<ColumnRefExpr>(*idx,
                                            out_schema.field(*idx).name,
                                            out_schema.field(*idx).type),
            o.ascending});
        note(std::string("SORT by ") + out_schema.field(*idx).name +
             (o.ascending ? " ASC" : " DESC"));
      }
      plan = wrap(std::make_unique<SortOperator>(std::move(plan),
                                                 std::move(keys)),
                  "sort", "SORT", 1);
    }
  } else {
    // ---- Scalar path: Sort (pre-projection) -> Project -> Limit.
    if (!stmt.order_by.empty()) {
      std::vector<SortKey> keys;
      for (const auto& o : stmt.order_by) {
        NODB_ASSIGN_OR_RETURN(auto bound, binder.Bind(*o.expr));
        note("SORT by " + bound->ToString() +
             (o.ascending ? " ASC" : " DESC"));
        keys.push_back(SortKey{std::move(bound), o.ascending});
      }
      plan = wrap(std::make_unique<SortOperator>(std::move(plan),
                                                 std::move(keys)),
                  "sort", "SORT", 1);
    }

    std::vector<ExprPtr> out_exprs;
    std::vector<std::string> out_names;
    if (stmt.select_star) {
      const Schema& combined = *binder.combined_schema();
      for (size_t i = 0; i < combined.num_fields(); ++i) {
        out_exprs.push_back(std::make_shared<ColumnRefExpr>(
            i, combined.field(i).name, combined.field(i).type));
        out_names.push_back(combined.field(i).name);
      }
    }
    for (const auto& item : stmt.items) {
      NODB_ASSIGN_OR_RETURN(auto bound, binder.Bind(*item.expr));
      out_exprs.push_back(std::move(bound));
      out_names.push_back(item.alias.empty() ? DeriveName(*item.expr)
                                             : item.alias);
    }
    NODB_ASSIGN_OR_RETURN(
        plan, ProjectOperator::Create(std::move(plan), std::move(out_exprs),
                                      std::move(out_names)));
    plan = wrap(std::move(plan), "project", "PROJECT", 1);
    if (stmt.having) {
      return Status::InvalidArgument(
          "HAVING requires GROUP BY or aggregates");
    }
    if (stmt.distinct) {
      note("DISTINCT");
      plan = wrap(std::make_unique<DistinctOperator>(std::move(plan)),
                  "distinct", "DISTINCT", 1);
    }
  }

  {
    std::string names;
    const Schema& out = *plan->output_schema();
    for (size_t i = 0; i < out.num_fields(); ++i) {
      if (i > 0) names += ", ";
      names += out.field(i).name;
    }
    note("PROJECT [" + names + "]");
  }
  if (stmt.limit.has_value()) {
    std::string label =
        "LIMIT " + std::to_string(*stmt.limit) +
        (stmt.offset > 0 ? " OFFSET " + std::to_string(stmt.offset) : "");
    note(label);
    plan = wrap(std::make_unique<LimitOperator>(std::move(plan),
                                                *stmt.limit, stmt.offset),
                "limit", std::move(label), 1);
  }
  return plan;
}

Result<OperatorPtr> PlanSql(std::string_view sql, ScanFactory* factory,
                            const PlannerOptions& options) {
  NODB_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  return PlanSelect(stmt, factory, options);
}

}  // namespace nodb
