#ifndef NODB_SQL_PARSER_H_
#define NODB_SQL_PARSER_H_

#include <string_view>

#include "sql/ast.h"
#include "util/result.h"

namespace nodb {

/// Parses the supported SQL subset:
///
///   SELECT { * | expr [AS name], ... }
///   FROM table [alias] [JOIN table [alias] ON expr]
///   [WHERE expr] [GROUP BY expr, ...]
///   [ORDER BY expr [ASC|DESC], ...] [LIMIT n [OFFSET m]]
///
/// Expressions support comparisons, AND/OR/NOT, arithmetic, BETWEEN
/// (desugared), IN over literals (desugared to ORs), IS [NOT] NULL,
/// [NOT] LIKE, DATE 'yyyy-mm-dd' literals and the aggregates
/// COUNT/SUM/AVG/MIN/MAX. Keywords are case-insensitive.
Result<SelectStatement> ParseSelect(std::string_view sql);

}  // namespace nodb

#endif  // NODB_SQL_PARSER_H_
