#ifndef NODB_SQL_PARSER_H_
#define NODB_SQL_PARSER_H_

#include <string_view>

#include "sql/ast.h"
#include "util/result.h"

namespace nodb {

/// Parses the supported SQL subset:
///
///   SELECT { * | expr [AS name], ... }
///   FROM table [alias] [JOIN table [alias] ON expr]
///   [WHERE expr] [GROUP BY expr, ...]
///   [ORDER BY expr [ASC|DESC], ...] [LIMIT n [OFFSET m]]
///
/// Expressions support comparisons, AND/OR/NOT, arithmetic, BETWEEN
/// (desugared), IN over literals (desugared to ORs), IS [NOT] NULL,
/// [NOT] LIKE, DATE 'yyyy-mm-dd' literals and the aggregates
/// COUNT/SUM/AVG/MIN/MAX. Keywords are case-insensitive.
Result<SelectStatement> ParseSelect(std::string_view sql);

/// Recognizes a leading `EXPLAIN [ANALYZE]` (case-insensitive, word-
/// delimited). Returns true and rewrites `*sql` to the statement after
/// the prefix; `*analyze` reports whether ANALYZE was present. Engines
/// route the stripped statement to their plan-only / instrumented
/// paths, so EXPLAIN works through the ordinary Execute entry point.
bool StripExplainPrefix(std::string_view* sql, bool* analyze);

}  // namespace nodb

#endif  // NODB_SQL_PARSER_H_
