#include "engines/load_first_engine.h"

#include "engines/csv_loader.h"
#include "sql/planner.h"
#include "util/stopwatch.h"

namespace nodb {

std::string_view LoadProfileToString(LoadProfile profile) {
  switch (profile) {
    case LoadProfile::kPostgres:
      return "PostgreSQL";
    case LoadProfile::kMySql:
      return "MySQL";
    case LoadProfile::kDbmsX:
      return "DBMS X";
  }
  return "?";
}

class LoadFirstEngine::Factory final : public ScanFactory {
 public:
  explicit Factory(LoadFirstEngine* engine) : engine_(engine) {}

  Result<std::shared_ptr<Schema>> TableSchema(
      const std::string& table) override {
    NODB_ASSIGN_OR_RETURN(RawTableInfo info,
                          engine_->catalog_.GetTable(table));
    return info.schema;
  }

  Result<OperatorPtr> CreateScan(
      const std::string& table,
      const std::vector<size_t>& projection) override {
    auto it = engine_->tables_.find(table);
    if (it == engine_->tables_.end()) {
      return Status::Internal("table '" + table + "' not loaded");
    }
    return OperatorPtr(
        std::make_unique<ColumnStoreScan>(it->second, projection));
  }

 private:
  LoadFirstEngine* engine_;
};

LoadFirstEngine::LoadFirstEngine(Catalog catalog, LoadProfile profile,
                                 std::string name)
    : name_(name.empty() ? std::string(LoadProfileToString(profile))
                         : std::move(name)),
      catalog_(std::move(catalog)),
      profile_(profile) {}

Status LoadFirstEngine::LoadTable(const RawTableInfo& info) {
  LoadStats stats;
  NODB_ASSIGN_OR_RETURN(
      auto table, LoadCsv(info.path, info.schema, info.dialect, &stats));

  if (profile_ == LoadProfile::kMySql) {
    // Row-store conversion: materialize a row-major image. This is the
    // real extra pass a row-oriented storage engine performs at COPY.
    std::string& rows = row_copies_[info.name];
    rows.reserve(table->MemoryUsage());
    for (size_t r = 0; r < table->num_rows(); ++r) {
      for (size_t c = 0; c < table->schema()->num_fields(); ++c) {
        const ColumnVector& col = table->column(c);
        if (col.IsNull(r)) {
          rows.push_back('\0');
          continue;
        }
        rows.push_back('\1');
        switch (col.type()) {
          case DataType::kInt64:
          case DataType::kDate: {
            int64_t v = col.GetInt64(r);
            rows.append(reinterpret_cast<const char*>(&v), sizeof(v));
            break;
          }
          case DataType::kDouble: {
            double v = col.GetDouble(r);
            rows.append(reinterpret_cast<const char*>(&v), sizeof(v));
            break;
          }
          case DataType::kString: {
            std::string_view s = col.GetString(r);
            uint32_t len = static_cast<uint32_t>(s.size());
            rows.append(reinterpret_cast<const char*>(&len), sizeof(len));
            rows.append(s.data(), s.size());
            break;
          }
        }
      }
    }
  }

  if (profile_ == LoadProfile::kDbmsX) {
    // Tuning phase: a clustered-style index on the leading column plus
    // full statistics over every column.
    auto& index = indexes_[info.name];
    if (table->schema()->num_fields() > 0 &&
        table->column(0).type() != DataType::kString) {
      const ColumnVector& key = table->column(0);
      for (size_t r = 0; r < table->num_rows(); ++r) {
        if (!key.IsNull(r)) index.emplace(key.GetInt64(r), r);
      }
    }
    for (size_t c = 0; c < table->schema()->num_fields(); ++c) {
      const ColumnVector& col = table->column(c);
      double min = 0, max = 0, sum = 0;
      bool first = true;
      for (size_t r = 0; r < table->num_rows(); ++r) {
        if (col.IsNull(r) || col.type() == DataType::kString) continue;
        double v = col.GetNumeric(r);
        if (first || v < min) min = v;
        if (first || v > max) max = v;
        sum += v;
        first = false;
      }
      // The aggregates stand in for the statistics pass; results are
      // intentionally discarded.
      (void)sum;
    }
  }

  tables_[info.name] = std::move(table);
  return Status::OK();
}

Result<int64_t> LoadFirstEngine::Initialize() {
  if (initialized_) return totals_.init_ns;
  Stopwatch watch;
  for (const std::string& name : catalog_.TableNames()) {
    NODB_ASSIGN_OR_RETURN(RawTableInfo info, catalog_.GetTable(name));
    NODB_RETURN_NOT_OK(LoadTable(info));
  }
  initialized_ = true;
  totals_.init_ns = watch.ElapsedNanos();
  return totals_.init_ns;
}

Result<QueryOutcome> LoadFirstEngine::Execute(std::string_view sql) {
  if (!initialized_) {
    NODB_RETURN_NOT_OK(Initialize().status());
  }
  Stopwatch watch;
  QueryOutcome outcome;
  outcome.metrics.sql = std::string(sql);

  Factory factory(this);
  NODB_ASSIGN_OR_RETURN(OperatorPtr plan, PlanSql(sql, &factory));
  NODB_ASSIGN_OR_RETURN(outcome.result, QueryResult::Drain(plan.get()));

  outcome.metrics.total_ns = watch.ElapsedNanos();
  totals_.AddQuery(outcome.metrics);
  return outcome;
}

Result<std::string> LoadFirstEngine::Explain(std::string_view sql) {
  if (!initialized_) {
    NODB_RETURN_NOT_OK(Initialize().status());
  }
  std::string text;
  PlannerOptions options;
  options.explain = &text;
  Factory factory(this);
  NODB_RETURN_NOT_OK(PlanSql(sql, &factory, options).status());
  return text;
}

size_t LoadFirstEngine::resident_bytes() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table->MemoryUsage();
  for (const auto& [name, rows] : row_copies_) total += rows.capacity();
  for (const auto& [name, index] : indexes_) {
    total += index.size() * (sizeof(int64_t) + sizeof(uint64_t) + 48);
  }
  return total;
}

}  // namespace nodb
