#ifndef NODB_ENGINES_ENGINE_H_
#define NODB_ENGINES_ENGINE_H_

#include <string>
#include <string_view>

#include "exec/query_result.h"
#include "monitor/query_metrics.h"
#include "util/result.h"

namespace nodb {

/// A query result together with its cost breakdown.
struct QueryOutcome {
  QueryResult result;
  QueryMetrics metrics;
};

/// Common surface of every contestant in the data-to-query-time race:
/// the in-situ engines (PostgresRaw, Baseline) and the conventional
/// load-first engines (PostgreSQL / MySQL / DBMS-X profiles).
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string_view name() const = 0;

  /// One-time preparation before the first query. Conventional engines
  /// load (and possibly index/tune) here; in-situ engines do nothing.
  /// Returns nanoseconds spent. Execute() triggers it implicitly when
  /// the caller does not.
  virtual Result<int64_t> Initialize() = 0;

  /// Parses, plans and runs one SQL query.
  virtual Result<QueryOutcome> Execute(std::string_view sql) = 0;

  /// Like Execute, but result batches are handed to `sink` as the plan
  /// produces them (server streaming); the returned outcome then
  /// carries metrics plus an empty result, and a sink error aborts the
  /// query at the next batch boundary. The default materializes via
  /// Execute and replays the finished batch — correct for every
  /// engine, incremental only where overridden (NoDbEngine). A null
  /// sink is exactly Execute.
  virtual Result<QueryOutcome> ExecuteStreaming(std::string_view sql,
                                                BatchSink* sink) {
    if (sink == nullptr) return Execute(sql);
    NODB_ASSIGN_OR_RETURN(QueryOutcome outcome, Execute(sql));
    NODB_RETURN_NOT_OK(sink->OnSchema(outcome.result.schema()));
    NODB_RETURN_NOT_OK(sink->OnBatch(outcome.result.batch()));
    return outcome;
  }

  /// Plans `sql` without executing it and returns a textual plan. For
  /// the NoDB engine the plan reflects the *current* adaptive
  /// statistics (predicate order may change as the engine learns).
  virtual Result<std::string> Explain(std::string_view sql) = 0;

  /// Cumulative init + query time (the race metric).
  virtual const EngineTotals& totals() const = 0;
};

}  // namespace nodb

#endif  // NODB_ENGINES_ENGINE_H_
