#include "engines/result_export.h"

#include "csv/csv_writer.h"
#include "io/file.h"

namespace nodb {

namespace {

/// One field with CsvWriter's exact escaping rules, so the streamed
/// HTTP body and an exported file render identically.
void AppendCsvField(std::string_view field, const CsvDialect& dialect,
                    std::string* out) {
  bool needs_quote = false;
  if (dialect.allow_quoting) {
    for (char c : field) {
      if (c == dialect.delimiter || c == dialect.quote || c == '\n' ||
          c == '\r') {
        needs_quote = true;
        break;
      }
    }
  }
  if (!needs_quote) {
    out->append(field);
    return;
  }
  out->push_back(dialect.quote);
  for (char c : field) {
    out->push_back(c);
    if (c == dialect.quote) out->push_back(dialect.quote);
  }
  out->push_back(dialect.quote);
}

}  // namespace

std::string RenderResultCsv(const QueryResult& result,
                            const CsvDialect& dialect) {
  std::string out;
  const Schema& schema = *result.schema();
  if (dialect.has_header) {
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      if (c > 0) out.push_back(dialect.delimiter);
      AppendCsvField(schema.field(c).name, dialect, &out);
    }
    out.push_back('\n');
  }
  const RecordBatch& rows = result.batch();
  for (size_t r = 0; r < result.num_rows(); ++r) {
    for (size_t c = 0; c < rows.num_columns(); ++c) {
      if (c > 0) out.push_back(dialect.delimiter);
      const ColumnVector& col = rows.column(c);
      if (col.IsNull(r)) continue;  // NULL renders as the empty field
      if (col.type() == DataType::kString) {
        AppendCsvField(col.GetString(r), dialect, &out);
      } else {
        AppendCsvField(col.GetValue(r).ToString(), dialect, &out);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteResultToCsv(const QueryResult& result, const std::string& path,
                        const CsvDialect& dialect) {
  NODB_ASSIGN_OR_RETURN(auto file, OpenWritableFile(path));
  CsvWriter writer(std::move(file), dialect);

  const Schema& schema = *result.schema();
  if (dialect.has_header) {
    writer.BeginRecord();
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      writer.AddField(schema.field(c).name);
    }
    NODB_RETURN_NOT_OK(writer.FinishRecord());
  }

  const RecordBatch& rows = result.batch();
  for (size_t r = 0; r < result.num_rows(); ++r) {
    writer.BeginRecord();
    for (size_t c = 0; c < rows.num_columns(); ++c) {
      const ColumnVector& col = rows.column(c);
      if (col.IsNull(r)) {
        writer.AddField("");
        continue;
      }
      switch (col.type()) {
        case DataType::kString:
          writer.AddField(col.GetString(r));
          break;
        default:
          writer.AddField(col.GetValue(r).ToString());
      }
    }
    NODB_RETURN_NOT_OK(writer.FinishRecord());
  }
  return writer.Close();
}

}  // namespace nodb
