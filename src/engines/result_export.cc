#include "engines/result_export.h"

#include "csv/csv_writer.h"
#include "io/file.h"

namespace nodb {

Status WriteResultToCsv(const QueryResult& result, const std::string& path,
                        const CsvDialect& dialect) {
  NODB_ASSIGN_OR_RETURN(auto file, OpenWritableFile(path));
  CsvWriter writer(std::move(file), dialect);

  const Schema& schema = *result.schema();
  if (dialect.has_header) {
    writer.BeginRecord();
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      writer.AddField(schema.field(c).name);
    }
    NODB_RETURN_NOT_OK(writer.FinishRecord());
  }

  const RecordBatch& rows = result.batch();
  for (size_t r = 0; r < result.num_rows(); ++r) {
    writer.BeginRecord();
    for (size_t c = 0; c < rows.num_columns(); ++c) {
      const ColumnVector& col = rows.column(c);
      if (col.IsNull(r)) {
        writer.AddField("");
        continue;
      }
      switch (col.type()) {
        case DataType::kString:
          writer.AddField(col.GetString(r));
          break;
        default:
          writer.AddField(col.GetValue(r).ToString());
      }
    }
    NODB_RETURN_NOT_OK(writer.FinishRecord());
  }
  return writer.Close();
}

}  // namespace nodb
