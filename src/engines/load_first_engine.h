#ifndef NODB_ENGINES_LOAD_FIRST_ENGINE_H_
#define NODB_ENGINES_LOAD_FIRST_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "catalog/catalog.h"
#include "engines/engine.h"
#include "exec/column_store.h"

namespace nodb {

/// Initialization behaviour of the conventional-DBMS contestants in
/// the friendly race (§4.3). The original demo races real MySQL, a
/// commercial "DBMS X" and PostgreSQL; we reproduce their *relative*
/// data-to-query-time behaviour with real extra work rather than faked
/// timings (see DESIGN.md §3):
enum class LoadProfile {
  /// Parse + convert the whole file into binary columns (COPY).
  kPostgres,
  /// Additionally materializes a row-major copy of every table,
  /// modelling the row-store storage engine conversion.
  kMySql,
  /// Additionally builds a B-tree index over the first column of each
  /// table and computes full per-column statistics, modelling the
  /// index/tuning phase a commercial system's advisor performs.
  kDbmsX,
};

std::string_view LoadProfileToString(LoadProfile profile);

/// A conventional DBMS: must load every registered table up-front;
/// queries then run over the in-memory binary column store through the
/// *same* planner and operators as the in-situ engines.
class LoadFirstEngine final : public Engine {
 public:
  LoadFirstEngine(Catalog catalog, LoadProfile profile,
                  std::string name = "");

  std::string_view name() const override { return name_; }

  /// Loads (and per profile indexes/tunes) every catalog table.
  Result<int64_t> Initialize() override;

  Result<QueryOutcome> Execute(std::string_view sql) override;

  Result<std::string> Explain(std::string_view sql) override;

  const EngineTotals& totals() const override { return totals_; }

  bool initialized() const { return initialized_; }

  /// Bytes of binary table data resident after loading.
  size_t resident_bytes() const;

 private:
  class Factory;

  Status LoadTable(const RawTableInfo& info);

  std::string name_;
  Catalog catalog_;
  LoadProfile profile_;
  bool initialized_ = false;
  std::unordered_map<std::string, std::shared_ptr<ColumnStoreTable>>
      tables_;
  /// DBMS-X profile: key -> row ids, per table (first column).
  std::unordered_map<std::string, std::multimap<int64_t, uint64_t>>
      indexes_;
  /// MySQL profile: row-major copies (kept resident like a row store).
  std::unordered_map<std::string, std::string> row_copies_;
  EngineTotals totals_;
};

}  // namespace nodb

#endif  // NODB_ENGINES_LOAD_FIRST_ENGINE_H_
