#ifndef NODB_ENGINES_QUERY_SESSION_H_
#define NODB_ENGINES_QUERY_SESSION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engines/engine.h"
#include "exec/cancel.h"

namespace nodb {

/// One client's handle onto a shared engine: delegates execution and
/// keeps that client's own metrics history and running totals, so a
/// many-client deployment can attribute cost per session while the
/// engine's adaptive state stays shared underneath.
///
/// A session is single-threaded by design (one per client/worker);
/// cross-session concurrency is the engine's job.
class QuerySession {
 public:
  QuerySession(Engine* engine, std::string client_id)
      : engine_(engine), client_id_(std::move(client_id)) {}

  /// Runs `sql` on the shared engine and records the outcome in this
  /// session's history.
  Result<QueryOutcome> Execute(std::string_view sql);

  /// Server-shaped execution: batches stream to `sink` (null = fully
  /// materialize, as Execute), and `cancel` (null = uncancellable) is
  /// installed on the executing thread so the drain can be abandoned
  /// at any batch boundary. Cancelled queries are not folded into this
  /// session's history — they produced no answer.
  Result<QueryOutcome> ExecuteStreaming(std::string_view sql,
                                        BatchSink* sink,
                                        const QueryCancelFlag* cancel);

  const std::string& client_id() const { return client_id_; }
  const EngineTotals& totals() const { return totals_; }
  const std::vector<QueryMetrics>& history() const { return history_; }

 private:
  Engine* engine_;
  std::string client_id_;
  EngineTotals totals_;
  std::vector<QueryMetrics> history_;
};

/// What one query of a concurrent batch did, stamped against the
/// batch's starting shot so overlap (queries in flight) is computable.
struct ConcurrentQueryReport {
  size_t index = 0;      ///< position in the submitted batch
  std::string client;    ///< session that ran it, e.g. "client-2"
  std::string sql;
  Status status = Status::OK();
  QueryResult result;    ///< empty when status is not OK
  QueryMetrics metrics;
  int64_t start_ns = 0;  ///< relative to the batch starting shot
  int64_t finish_ns = 0;
};

/// The outcome of NoDbEngine::ExecuteConcurrent: per-query reports in
/// input order plus batch-level aggregates.
struct ConcurrentBatchOutcome {
  std::vector<ConcurrentQueryReport> reports;
  uint32_t clients = 0;
  int64_t wall_ns = 0;

  uint64_t failures() const;
  double queries_per_second() const;

  /// Largest number of queries whose [start, finish) intervals
  /// overlapped — direct evidence of concurrent serving.
  uint32_t peak_in_flight() const;
};

}  // namespace nodb

#endif  // NODB_ENGINES_QUERY_SESSION_H_
