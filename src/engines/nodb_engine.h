#ifndef NODB_ENGINES_NODB_ENGINE_H_
#define NODB_ENGINES_NODB_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "catalog/catalog.h"
#include "engines/engine.h"
#include "raw/nodb_config.h"
#include "raw/table_state.h"

namespace nodb {

/// The PostgresRaw reproduction: executes SQL directly over raw CSV
/// files with zero loading, adaptively building the positional map,
/// cache and statistics as side-effects of query execution.
///
/// With `NoDbConfig::Baseline()` this same engine *is* the paper's
/// Baseline contestant (naive external-files access): identical query
/// plans, no auxiliary structures — which is exactly the comparison
/// Figure 3 makes.
class NoDbEngine final : public Engine {
 public:
  NoDbEngine(Catalog catalog, NoDbConfig config,
             std::string name = "PostgresRaw");

  std::string_view name() const override { return name_; }

  /// In-situ: nothing to do. Registers no I/O, returns ~0.
  Result<int64_t> Initialize() override;

  Result<QueryOutcome> Execute(std::string_view sql) override;

  Result<std::string> Explain(std::string_view sql) override;

  const EngineTotals& totals() const override { return totals_; }

  /// Runtime component toggles (the demo GUI's switches). Applies to
  /// future queries on all tables; existing structures are retained
  /// (disabled components are simply not consulted or populated).
  void SetPositionalMapEnabled(bool enabled);
  void SetCacheEnabled(bool enabled);
  void SetStatisticsEnabled(bool enabled);

  /// Adaptive state of `table` (for the monitoring panel and tests);
  /// nullptr before the first query touches the table.
  const RawTableState* table_state(const std::string& table) const;

  /// Re-checks the raw file behind `table` right now (demo "Updates"
  /// scenario). Queries also run this check automatically.
  Result<FileChange> RefreshTable(const std::string& table);

  /// Points `table` at a different raw file, dropping adaptive state.
  Status ReplaceTable(const RawTableInfo& info);

  const NoDbConfig& config() const { return config_; }
  Catalog& catalog() { return catalog_; }

 private:
  class Factory;

  Result<RawTableState*> GetOrCreateState(const std::string& table);

  /// Runs the parallel chunked first-touch scan (raw/parallel_scan.h)
  /// over `attrs` when the config asks for threads, the table is still
  /// cold and at least one NoDB structure is enabled. At most one
  /// attempt per file generation; a no-op at num_threads <= 1.
  Status MaybeParallelPrewarm(RawTableState* state,
                              const std::vector<uint32_t>& attrs);

  std::string name_;
  Catalog catalog_;
  NoDbConfig config_;
  std::unordered_map<std::string, std::unique_ptr<RawTableState>> states_;
  EngineTotals totals_;
};

}  // namespace nodb

#endif  // NODB_ENGINES_NODB_ENGINE_H_
