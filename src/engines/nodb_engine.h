#ifndef NODB_ENGINES_NODB_ENGINE_H_
#define NODB_ENGINES_NODB_ENGINE_H_

#include <condition_variable>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "engines/engine.h"
#include "engines/query_session.h"
#include "exec/cancel.h"
#include "obs/trace.h"
#include "persist/image.h"
#include "raw/nodb_config.h"
#include "raw/table_state.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace nodb {

namespace obs {
class PlanProfiler;
}  // namespace obs

/// The PostgresRaw reproduction: executes SQL directly over raw CSV
/// files with zero loading, adaptively building the positional map,
/// cache and statistics as side-effects of query execution.
///
/// With `NoDbConfig::Baseline()` this same engine *is* the paper's
/// Baseline contestant (naive external-files access): identical query
/// plans, no auxiliary structures — which is exactly the comparison
/// Figure 3 makes.
///
/// Execute() is safe to call from many threads at once: concurrent
/// queries share each table's adaptive state (map, cache, statistics),
/// all internally synchronized, so every query both profits from and
/// contributes to what earlier queries learned. ExecuteConcurrent()
/// packages that as a multi-client batch on a shared worker pool.
/// External file updates are detected at query start; replacing or
/// rewriting a table while queries are in flight is memory-safe but
/// those in-flight queries may observe either file generation.
class NoDbEngine final : public Engine {
 public:
  NoDbEngine(Catalog catalog, NoDbConfig config,
             std::string name = "PostgresRaw");

  /// Waits for in-flight background promotions before tearing down the
  /// table states they walk.
  ~NoDbEngine() override;

  std::string_view name() const override { return name_; }

  /// In-situ: nothing to do. Registers no I/O, returns ~0.
  Result<int64_t> Initialize() override;

  /// Recognizes a leading `EXPLAIN [ANALYZE]` and routes it to the
  /// plan-only / instrumented execution paths; the answer comes back
  /// as a one-column text result. Everything else executes normally,
  /// recording per-query trace spans when tracer() is enabled.
  Result<QueryOutcome> Execute(std::string_view sql) override
      EXCLUDES(states_mu_, totals_mu_);

  /// Incremental delivery: batches stream to `sink` straight from the
  /// Volcano drain without materializing the result (the server front
  /// end's path). EXPLAIN [ANALYZE] still materializes its text block
  /// and replays it through the sink. Null sink = Execute.
  Result<QueryOutcome> ExecuteStreaming(std::string_view sql,
                                        BatchSink* sink) override
      EXCLUDES(states_mu_, totals_mu_);

  /// Runs every query of `sqls` against the shared adaptive state from
  /// a pool of `clients` concurrent sessions (0 = one per hardware
  /// core). Clients pull queries from the batch in order, so the batch
  /// behaves like `clients` users hammering the same tables. Reports
  /// come back in input order with per-query status, result, metrics
  /// and start/finish stamps; one query failing does not abort the
  /// rest.
  /// `cancel` (may be null) is polled by every query of the batch at
  /// its batch boundaries: firing it makes the remaining queries
  /// return Status::Cancelled instead of rows — the graceful-drain
  /// deadline path.
  ConcurrentBatchOutcome ExecuteConcurrent(
      const std::vector<std::string>& sqls, uint32_t clients = 0,
      const QueryCancelFlag* cancel = nullptr);

  Result<std::string> Explain(std::string_view sql) override
      EXCLUDES(states_mu_);

  /// Cumulative race accounting. The reference is unsynchronized —
  /// read it between batches, not while queries are in flight.
  /// NO_THREAD_SAFETY_ANALYSIS: deliberately hands out an unguarded
  /// reference to a totals_mu_-guarded member; the quiescence contract
  /// above is the synchronization.
  const EngineTotals& totals() const override NO_THREAD_SAFETY_ANALYSIS {
    return totals_;
  }

  /// Runtime component toggles (the demo GUI's switches). Applies to
  /// future queries on all tables; existing structures are retained
  /// (disabled components are simply not consulted or populated).
  void SetPositionalMapEnabled(bool enabled) EXCLUDES(states_mu_);
  void SetCacheEnabled(bool enabled) EXCLUDES(states_mu_);
  void SetStatisticsEnabled(bool enabled) EXCLUDES(states_mu_);
  void SetStoreEnabled(bool enabled) EXCLUDES(states_mu_);

  /// Blocks until every scheduled background promotion pass has
  /// finished (tests and benches that want a deterministic store).
  void WaitForPromotions() EXCLUDES(promo_mu_);

  /// Adaptive state of `table` (for the monitoring panel and tests);
  /// nullptr before the first query touches the table.
  const RawTableState* table_state(const std::string& table) const
      EXCLUDES(states_mu_);

  /// Re-checks the raw file behind `table` right now (demo "Updates"
  /// scenario). Queries also run this check automatically.
  Result<FileChange> RefreshTable(const std::string& table)
      EXCLUDES(states_mu_);

  /// Points `table` at a different raw file, dropping adaptive state.
  /// Requires no queries in flight on that table.
  Status ReplaceTable(const RawTableInfo& info) EXCLUDES(states_mu_);

  /// Freezes `table`'s adaptive state (positional map, statistics,
  /// zone maps, shadow store) into its crash-safe sidecar
  /// (persist/snapshot.h; placement governed by
  /// NoDbConfig::snapshot_path). Settles in-flight background
  /// promotions first so the saved store matches what the next query
  /// would have seen. Refused when snapshot_mode is kOff, and when the
  /// table has no adaptive state yet (freezing a cold table would
  /// clobber a previous process's populated sidecar with an empty
  /// one).
  Status SaveSnapshot(const std::string& table)
      EXCLUDES(states_mu_, promo_mu_);

  /// Saves every table that has adaptive state (kAuto teardown path;
  /// also handy before a planned shutdown). Best effort: returns the
  /// first error but attempts every table.
  Status SaveAllSnapshots() EXCLUDES(states_mu_, promo_mu_);

  /// Validates `table`'s sidecar against the live raw file and thaws
  /// every intact section into the (cold) table state. Degradation is
  /// graceful: missing/stale/corrupt state is simply rebuilt by
  /// queries, reported in the returned RecoveryReport — an error
  /// Status means only that snapshots are off. A warm table recovers
  /// nothing (live structures always win).
  Result<persist::RecoveryReport> LoadSnapshot(const std::string& table)
      EXCLUDES(states_mu_);

  /// Boot-time configuration (immutable). The runtime component
  /// toggles the Set*Enabled methods flip live on the engine and the
  /// table states, not here.
  const NoDbConfig& config() const { return config_; }
  Catalog& catalog() { return catalog_; }

  /// Per-query span collector (obs/trace.h). Seeded from
  /// NoDbConfig::trace_mode / trace_path; flip at runtime with
  /// tracer().SetEnabled() (the shell's `\trace on|off`).
  obs::Tracer& tracer() { return tracer_; }

 private:
  class Factory;

  /// Execute() minus the EXPLAIN routing: runs `sql` with optional
  /// operator profiling, collects the trace and folds the query's
  /// metrics into the global registry. `sink` (may be null) receives
  /// result batches incrementally instead of materialization.
  Result<QueryOutcome> ExecuteQuery(std::string_view sql,
                                    obs::PlanProfiler* profile,
                                    BatchSink* sink)
      EXCLUDES(states_mu_, totals_mu_);

  /// The parse/plan/drain pipeline, spans recorded into `trace` (may
  /// be null = tracing off).
  Result<QueryOutcome> RunQuery(std::string_view sql,
                                obs::PlanProfiler* profile,
                                obs::TraceContext* trace, BatchSink* sink)
      EXCLUDES(states_mu_, totals_mu_);

  Result<RawTableState*> GetOrCreateState(const std::string& table)
      EXCLUDES(states_mu_);

  /// Runs the parallel chunked first-touch scan (raw/parallel_scan.h)
  /// over `attrs` when the config asks for threads, the table is still
  /// cold and at least one NoDB structure is enabled. At most one
  /// attempt per file generation; a no-op at num_threads <= 1.
  Status MaybeParallelPrewarm(RawTableState* state,
                              const std::vector<uint32_t>& attrs);

  /// The shared client pool, created on first concurrent batch and
  /// grown (replaced) when a batch asks for more workers; batches hold
  /// a shared_ptr so an in-flight batch keeps its pool alive.
  std::shared_ptr<ThreadPool> ClientPool(uint32_t threads)
      EXCLUDES(pool_mu_);

  /// After a query completes: for every table whose hot attributes are
  /// not fully materialized, claims and submits one background
  /// promotion pass (store/promoter.h) to the shared pool.
  /// `triggered_by` is the trace id of the triggering query (0 = not
  /// traced), stamped into the background pass's own trace.
  void SchedulePromotions(uint64_t triggered_by)
      EXCLUDES(states_mu_, promo_mu_, pool_mu_);

  /// Pushes the engine-level component flags down to every table
  /// state.
  void ApplyComponentFlagsLocked() REQUIRES(states_mu_);

  std::string name_;
  Catalog catalog_;

  /// Boot-time configuration, immutable after construction (the
  /// runtime component toggles live in flags_ below, so reads of
  /// config_ never need a lock).
  const NoDbConfig config_;

  /// Guards states_ (lookup/insert; values have stable addresses and
  /// are never erased) and the engine-level component toggles.
  mutable Mutex states_mu_;
  std::unordered_map<std::string, std::unique_ptr<RawTableState>> states_
      GUARDED_BY(states_mu_);
  /// Engine-level component toggles (the demo GUI's switches), pushed
  /// down to every table state whenever they change.
  ComponentFlags flags_ GUARDED_BY(states_mu_);

  Mutex totals_mu_;
  EngineTotals totals_ GUARDED_BY(totals_mu_);

  /// Internally synchronized; declared before the pool so background
  /// passes drained during pool teardown can still collect traces.
  obs::Tracer tracer_;

  /// Background-promotion accounting. Declared before the pool so a
  /// queued promotion task drained by the pool's destructor still
  /// finds these alive.
  Mutex promo_mu_;
  std::condition_variable promo_cv_;
  size_t promo_pending_ GUARDED_BY(promo_mu_) = 0;

  Mutex pool_mu_;
  std::shared_ptr<ThreadPool> client_pool_ GUARDED_BY(pool_mu_);
};

}  // namespace nodb

#endif  // NODB_ENGINES_NODB_ENGINE_H_
