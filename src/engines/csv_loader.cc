#include "engines/csv_loader.h"

#include "csv/tokenizer.h"
#include "csv/value_parser.h"
#include "io/buffered_reader.h"
#include "io/file.h"
#include "util/stopwatch.h"

namespace nodb {

Result<std::shared_ptr<ColumnStoreTable>> LoadCsv(
    const std::string& path, std::shared_ptr<Schema> schema,
    const CsvDialect& dialect, LoadStats* stats) {
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(path));
  return LoadCsv(std::shared_ptr<RandomAccessFile>(std::move(file)), path,
                 std::move(schema), dialect, stats);
}

Result<std::shared_ptr<ColumnStoreTable>> LoadCsv(
    std::shared_ptr<RandomAccessFile> file, const std::string& path,
    std::shared_ptr<Schema> schema, const CsvDialect& dialect,
    LoadStats* stats) {
  Stopwatch watch;
  BufferedReader reader(std::move(file));
  CsvTokenizer tokenizer(dialect);

  auto table = std::make_shared<ColumnStoreTable>(schema);
  const size_t num_fields = schema->num_fields();
  std::vector<uint32_t> starts(num_fields + 2);
  std::string scratch;

  uint64_t offset = 0;
  uint64_t rows = 0;
  if (dialect.has_header && reader.file_size() > 0) {
    uint64_t header_end = 0;
    Status s = reader.FindNewline(0, &header_end);
    // OutOfRange is a header-only file (zero data rows); any other
    // error leaves header_end unset and must not be swallowed — the
    // loader would otherwise treat the header line as data.
    if (!s.ok() && !s.IsOutOfRange()) return s;
    offset = header_end + 1;
  }

  while (offset < reader.file_size()) {
    uint64_t line_end = 0;
    Status s = reader.FindNewline(offset, &line_end);
    if (!s.ok() && !s.IsOutOfRange()) return s;
    Slice line;
    NODB_RETURN_NOT_OK(reader.ReadAt(
        offset, static_cast<size_t>(line_end - offset), &line));
    // CRLF tolerance lives in the tokenizer (trailing '\r' is part of
    // the terminator); exactly one layer trims.

    uint32_t high = tokenizer.ScanStarts(
        line, 0, 0, static_cast<uint32_t>(num_fields), starts.data());
    if (high < num_fields) {
      return Status::ParseError(path + ": row " + std::to_string(rows) +
                                " has " + std::to_string(high) +
                                " fields, schema expects " +
                                std::to_string(num_fields));
    }
    for (size_t c = 0; c < num_fields; ++c) {
      Slice raw =
          CsvTokenizer::RawField(line, starts[c], starts[c + 1]);
      Slice text = tokenizer.DecodeField(raw, &scratch);
      Status ps =
          ValueParser::ParseInto(text, schema->field(c).type,
                                 &table->column(c));
      if (!ps.ok()) {
        return Status::ParseError(path + ": row " + std::to_string(rows) +
                                  ", column " + schema->field(c).name +
                                  ": " + ps.message());
      }
    }
    ++rows;
    offset = line_end + 1;
  }
  table->SetNumRows(rows);
  if (stats != nullptr) {
    stats->rows = rows;
    stats->bytes = reader.bytes_read();
    stats->elapsed_ns = watch.ElapsedNanos();
  }
  return table;
}

}  // namespace nodb
