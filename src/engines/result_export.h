#ifndef NODB_ENGINES_RESULT_EXPORT_H_
#define NODB_ENGINES_RESULT_EXPORT_H_

#include <string>

#include "csv/dialect.h"
#include "exec/query_result.h"
#include "util/status.h"

namespace nodb {

/// Writes a materialized query result back out as a CSV file (the
/// `COPY (SELECT ...) TO 'file'` workflow). A header row with the
/// output column names is written when `dialect.has_header` is set;
/// NULLs become empty fields, dates their `YYYY-MM-DD` text.
///
/// Together with the in-situ engine this closes the raw-data loop:
/// raw file in, raw file out, no database in between.
Status WriteResultToCsv(const QueryResult& result, const std::string& path,
                        const CsvDialect& dialect);

/// Same rendering as WriteResultToCsv but into a string — the body of
/// the server's HTTP `POST /query` response. Identical field
/// semantics: header when `dialect.has_header`, NULLs empty, RFC-4180
/// doubled-quote escaping when the dialect allows quoting.
std::string RenderResultCsv(const QueryResult& result,
                            const CsvDialect& dialect);

}  // namespace nodb

#endif  // NODB_ENGINES_RESULT_EXPORT_H_
