#include "engines/query_session.h"

#include <algorithm>

#include "obs/trace.h"

namespace nodb {

Result<QueryOutcome> QuerySession::Execute(std::string_view sql) {
  // Tags the thread so the engine's tracer attributes the query's
  // spans to this client without widening Engine::Execute.
  obs::ScopedSessionLabel label(client_id_);
  Result<QueryOutcome> outcome = engine_->Execute(sql);
  if (outcome.ok()) {
    totals_.AddQuery(outcome->metrics);
    history_.push_back(outcome->metrics);
  }
  return outcome;
}

uint64_t ConcurrentBatchOutcome::failures() const {
  uint64_t n = 0;
  for (const ConcurrentQueryReport& r : reports) {
    if (!r.status.ok()) ++n;
  }
  return n;
}

double ConcurrentBatchOutcome::queries_per_second() const {
  if (wall_ns <= 0) return 0.0;
  return static_cast<double>(reports.size()) * 1e9 /
         static_cast<double>(wall_ns);
}

uint32_t ConcurrentBatchOutcome::peak_in_flight() const {
  // Sweep start/finish events in time order; ties resolve finishes
  // first so back-to-back queries on one client do not count as
  // overlapping.
  std::vector<std::pair<int64_t, int>> events;
  events.reserve(reports.size() * 2);
  for (const ConcurrentQueryReport& r : reports) {
    events.emplace_back(r.start_ns, +1);
    events.emplace_back(r.finish_ns, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  int in_flight = 0;
  int peak = 0;
  for (const auto& [at, delta] : events) {
    in_flight += delta;
    peak = std::max(peak, in_flight);
  }
  return static_cast<uint32_t>(peak);
}

}  // namespace nodb
