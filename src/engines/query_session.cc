#include "engines/query_session.h"

#include <algorithm>

#include "obs/trace.h"

namespace nodb {

Result<QueryOutcome> QuerySession::Execute(std::string_view sql) {
  return ExecuteStreaming(sql, nullptr, nullptr);
}

Result<QueryOutcome> QuerySession::ExecuteStreaming(
    std::string_view sql, BatchSink* sink, const QueryCancelFlag* cancel) {
  // Tags the thread so the engine's tracer attributes the query's
  // spans to this client without widening Engine::Execute, and
  // installs the cancel flag for the drain loop to poll.
  obs::ScopedSessionLabel label(client_id_);
  ScopedQueryCancel cancel_scope(cancel);
  Result<QueryOutcome> outcome = engine_->ExecuteStreaming(sql, sink);
  if (outcome.ok()) {
    totals_.AddQuery(outcome->metrics);
    history_.push_back(outcome->metrics);
  }
  return outcome;
}

uint64_t ConcurrentBatchOutcome::failures() const {
  uint64_t n = 0;
  for (const ConcurrentQueryReport& r : reports) {
    if (!r.status.ok()) ++n;
  }
  return n;
}

double ConcurrentBatchOutcome::queries_per_second() const {
  if (wall_ns <= 0) return 0.0;
  return static_cast<double>(reports.size()) * 1e9 /
         static_cast<double>(wall_ns);
}

uint32_t ConcurrentBatchOutcome::peak_in_flight() const {
  // Sweep start/finish events in time order; ties resolve finishes
  // first so back-to-back queries on one client do not count as
  // overlapping.
  std::vector<std::pair<int64_t, int>> events;
  events.reserve(reports.size() * 2);
  for (const ConcurrentQueryReport& r : reports) {
    events.emplace_back(r.start_ns, +1);
    events.emplace_back(r.finish_ns, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  int in_flight = 0;
  int peak = 0;
  for (const auto& [at, delta] : events) {
    in_flight += delta;
    peak = std::max(peak, in_flight);
  }
  return static_cast<uint32_t>(peak);
}

}  // namespace nodb
