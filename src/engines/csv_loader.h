#ifndef NODB_ENGINES_CSV_LOADER_H_
#define NODB_ENGINES_CSV_LOADER_H_

#include <memory>
#include <string>

#include "csv/dialect.h"
#include "exec/column_store.h"
#include "io/file.h"
#include "types/schema.h"
#include "util/result.h"

namespace nodb {

/// Statistics of one bulk load.
struct LoadStats {
  uint64_t rows = 0;
  uint64_t bytes = 0;
  int64_t elapsed_ns = 0;
};

/// Bulk-loads an entire raw CSV file into an in-memory binary column
/// store — the conventional DBMS "COPY" phase that NoDB eliminates.
/// Every field of every tuple is tokenized and converted, which is
/// exactly the up-front cost the data-to-query-time race charges to
/// the loading contestants.
Result<std::shared_ptr<ColumnStoreTable>> LoadCsv(
    const std::string& path, std::shared_ptr<Schema> schema,
    const CsvDialect& dialect, LoadStats* stats = nullptr);

/// Same, over an already-open file (tests inject failing files here;
/// `path` is used only in error messages).
Result<std::shared_ptr<ColumnStoreTable>> LoadCsv(
    std::shared_ptr<RandomAccessFile> file, const std::string& path,
    std::shared_ptr<Schema> schema, const CsvDialect& dialect,
    LoadStats* stats = nullptr);

}  // namespace nodb

#endif  // NODB_ENGINES_CSV_LOADER_H_
