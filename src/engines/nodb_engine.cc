#include "engines/nodb_engine.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>

#include "obs/metrics.h"
#include "obs/plan_profile.h"
#include "obs/tenant.h"
#include "persist/snapshot.h"
#include "raw/parallel_scan.h"
#include "raw/raw_scan.h"
#include "raw/stats_collector.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "store/promoter.h"
#include "util/stopwatch.h"

namespace nodb {

/// Per-query scan factory: hands the planner RawScanOperators wired to
/// this engine's table states and one shared metrics sink.
class NoDbEngine::Factory final : public ScanFactory {
 public:
  Factory(NoDbEngine* engine, ScanMetrics* metrics)
      : engine_(engine), metrics_(metrics) {}

  Result<std::shared_ptr<Schema>> TableSchema(
      const std::string& table) override {
    NODB_ASSIGN_OR_RETURN(RawTableInfo info,
                          engine_->catalog_.GetTable(table));
    return info.schema;
  }

  Result<OperatorPtr> CreateScan(
      const std::string& table,
      const std::vector<size_t>& projection) override {
    return CreatePushdownScan(table, projection, nullptr);
  }

  /// The planner offers single-table conjuncts here; the raw scan can
  /// evaluate any bound expression, so with pushdown enabled every
  /// offered conjunct is consumed and runs two-phase inside the scan.
  Result<OperatorPtr> CreatePushdownScan(
      const std::string& table, const std::vector<size_t>& projection,
      ScanPushdown* pushdown) override {
    NODB_ASSIGN_OR_RETURN(RawTableState * state,
                          engine_->GetOrCreateState(table));
    std::vector<uint32_t> attrs(projection.begin(), projection.end());
    NODB_RETURN_NOT_OK(engine_->MaybeParallelPrewarm(state, attrs));
    auto scan = std::make_unique<RawScanOperator>(state, std::move(attrs),
                                                  metrics_);
    if (pushdown != nullptr && !pushdown->conjuncts.empty() &&
        engine_->config_.enable_pushdown) {
      scan->SetPushdownPredicates(pushdown->conjuncts);
      pushdown->pushed.assign(pushdown->conjuncts.size(), true);
    }
    return OperatorPtr(std::move(scan));
  }

 private:
  NoDbEngine* engine_;
  ScanMetrics* metrics_;
};

namespace {

/// Leaf operator emitting a pre-rendered text block as a one-column
/// result, one row per line — how EXPLAIN [ANALYZE] output travels
/// through the ordinary QueryResult pipeline.
class TextResultOperator final : public ExecOperator {
 public:
  TextResultOperator(const std::string& column, const std::string& text)
      : schema_(Schema::Make({{column, DataType::kString}})) {
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) lines_.push_back(std::move(line));
  }

  Status Open() override { return Status::OK(); }

  Result<BatchPtr> Next() override {
    if (done_) return BatchPtr(nullptr);
    done_ = true;
    auto batch = std::make_shared<RecordBatch>(schema_);
    for (std::string& line : lines_) {
      batch->AppendRow({Value::String(std::move(line))});
    }
    return batch;
  }

  std::shared_ptr<Schema> output_schema() const override { return schema_; }

 private:
  std::shared_ptr<Schema> schema_;
  std::vector<std::string> lines_;
  bool done_ = false;
};

Result<QueryOutcome> TextOutcome(const std::string& column,
                                 const std::string& text,
                                 QueryMetrics metrics,
                                 BatchSink* sink = nullptr) {
  TextResultOperator op(column, text);
  QueryOutcome outcome;
  NODB_ASSIGN_OR_RETURN(outcome.result, QueryResult::Drain(&op, sink));
  outcome.metrics = std::move(metrics);
  return outcome;
}

}  // namespace

NoDbEngine::NoDbEngine(Catalog catalog, NoDbConfig config, std::string name)
    : name_(std::move(name)),
      catalog_(std::move(catalog)),
      config_(config),
      flags_{config.enable_positional_map, config.enable_cache,
             config.enable_statistics, config.enable_store} {
  tracer_.SetEnabled(config_.trace_mode == TraceMode::kOn);
  if (!config_.trace_path.empty()) tracer_.SetPath(config_.trace_path);
}

NoDbEngine::~NoDbEngine() {
  WaitForPromotions();
  if (config_.snapshot_mode == SnapshotMode::kAuto) {
    // Best effort: teardown must not fail, and a torn save is
    // impossible (WriteFileAtomic) — at worst the previous sidecar
    // survives.
    (void)SaveAllSnapshots();
  }
}

Result<int64_t> NoDbEngine::Initialize() {
  // The NoDB philosophy: there is no initialization step. A pointer to
  // the raw files (the catalog) is all the engine needs.
  return int64_t{0};
}

Result<RawTableState*> NoDbEngine::GetOrCreateState(
    const std::string& table) {
  RawTableState* state = nullptr;
  {
    MutexLock lock(states_mu_);
    auto it = states_.find(table);
    if (it != states_.end()) state = it->second.get();
  }
  if (state != nullptr) {
    // The raw file may have changed under us since the last query
    // (serialized per table by the state's own lock).
    NODB_RETURN_NOT_OK(state->CheckForUpdates().status());
    return state;
  }
  NODB_ASSIGN_OR_RETURN(RawTableInfo info, catalog_.GetTable(table));
  NoDbConfig config_snapshot = config_;
  {
    // The runtime toggles may have moved since construction; fold the
    // current ones into the snapshot the fresh state is built from.
    MutexLock lock(states_mu_);
    config_snapshot.enable_positional_map = flags_.map;
    config_snapshot.enable_cache = flags_.cache;
    config_snapshot.enable_statistics = flags_.stats;
    config_snapshot.enable_store = flags_.store;
  }
  auto fresh = std::make_unique<RawTableState>(std::move(info),
                                               config_snapshot);
  NODB_RETURN_NOT_OK(fresh->Open());
  if (config_snapshot.snapshot_mode == SnapshotMode::kAuto) {
    // Recover before publishing the state so the first query already
    // sees the thawed structures. Degradation is silent by design —
    // the report is retained on the state for the monitoring panel.
    (void)persist::LoadSnapshot(
        fresh.get(),
        persist::SnapshotPathFor(fresh->info(),
                                 config_snapshot.snapshot_path));
  }
  MutexLock lock(states_mu_);
  auto [it, inserted] = states_.emplace(table, std::move(fresh));
  // A concurrent first query may have inserted meanwhile (its state
  // wins, ours is discarded), and the component toggles may have moved
  // since the snapshot — re-apply them while we hold their lock.
  if (inserted) {
    it->second->SetComponentFlags(flags_.map, flags_.cache, flags_.stats,
                                  flags_.store);
  }
  return it->second.get();
}

Status NoDbEngine::MaybeParallelPrewarm(RawTableState* state,
                                        const std::vector<uint32_t>& attrs) {
  uint32_t threads =
      config_.num_threads == 0
          ? static_cast<uint32_t>(ThreadPool::DefaultThreadCount())
          : config_.num_threads;
  if (threads <= 1) return Status::OK();
  if (state->info().dialect.allow_quoting) {
    // Chunk boundaries split on raw '\n', which a quoted field may
    // contain: fall back to the serial first-touch path (the claim is
    // left untaken, so parallel_prewarmed() stays false).
    return Status::OK();
  }
  if (!state->component_flags().any()) {
    return Status::OK();  // Baseline mode: nothing would be retained.
  }
  // Only a genuinely cold table qualifies; once the serial scan has
  // started discovering rows, the adaptive path owns the state.
  if (state->map().known_rows() > 0 || state->map().rows_complete()) {
    return Status::OK();
  }
  if (!state->TryClaimParallelPrewarm()) {
    return Status::OK();  // one attempt per file generation
  }
  // A failure (e.g. malformed row) carries the exact message the serial
  // scan would have produced for that row, so surfacing it here keeps
  // the engine's observable behaviour identical.
  return ParallelChunkedScan(state, attrs, threads).status();
}

Result<QueryOutcome> NoDbEngine::Execute(std::string_view sql) {
  return ExecuteStreaming(sql, nullptr);
}

Result<QueryOutcome> NoDbEngine::ExecuteStreaming(std::string_view sql,
                                                  BatchSink* sink) {
  std::string_view body = sql;
  bool analyze = false;
  if (StripExplainPrefix(&body, &analyze)) {
    if (!analyze) {
      NODB_ASSIGN_OR_RETURN(std::string text, Explain(body));
      QueryMetrics metrics;
      metrics.sql = std::string(sql);
      return TextOutcome("QUERY PLAN", text, std::move(metrics), sink);
    }
    // EXPLAIN ANALYZE: really run the statement (adaptive structures
    // grow exactly as a plain execution would), then render the
    // annotated tree instead of the rows. The inner execution is never
    // streamed — the client asked for the plan, not the rows.
    obs::PlanProfiler profiler;
    NODB_ASSIGN_OR_RETURN(QueryOutcome inner,
                          ExecuteQuery(body, &profiler, nullptr));
    std::string text = obs::RenderAnalyze(profiler, inner.metrics);
    return TextOutcome("QUERY PLAN", text, std::move(inner.metrics), sink);
  }
  return ExecuteQuery(sql, nullptr, sink);
}

Result<QueryOutcome> NoDbEngine::ExecuteQuery(std::string_view sql,
                                              obs::PlanProfiler* profile,
                                              BatchSink* sink) {
  std::unique_ptr<obs::TraceContext> trace;
  std::optional<obs::PlanProfiler> trace_profiler;
  if (tracer_.enabled()) {
    trace = std::make_unique<obs::TraceContext>(
        tracer_.NextQueryId(), obs::ScopedSessionLabel::Current(),
        std::string(sql));
    // Tracing wants per-operator spans even when the caller did not
    // ask for EXPLAIN ANALYZE; the profiler must outlive the plan,
    // which RunQuery's scope guarantees.
    if (profile == nullptr) {
      trace_profiler.emplace();
      profile = &*trace_profiler;
    }
  }
  Result<QueryOutcome> outcome = RunQuery(sql, profile, trace.get(), sink);
  if (trace != nullptr) tracer_.Collect(trace->Finish());
  if (outcome.ok()) {
    obs::RecordQueryTelemetry(outcome->metrics);
  } else {
    static obs::Counter* failures =
        obs::MetricsRegistry::Global().GetCounter(
            "nodb_queries_failed_total",
            "Queries that returned an error status");
    failures->Add(1);
  }
  return outcome;
}

Result<QueryOutcome> NoDbEngine::RunQuery(std::string_view sql,
                                          obs::PlanProfiler* profile,
                                          obs::TraceContext* trace,
                                          BatchSink* sink) {
  Stopwatch watch;
  QueryOutcome outcome;
  outcome.metrics.sql = std::string(sql);
  obs::ScopedSpan root_span(trace, "query.execute");

  int64_t phase_start = watch.ElapsedNanos();
  obs::ScopedSpan parse_span(trace, "query.parse");
  NODB_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  parse_span.Close();
  outcome.metrics.parse_ns = watch.ElapsedNanos() - phase_start;

  phase_start = watch.ElapsedNanos();
  obs::ScopedSpan plan_span(trace, "query.plan");
  // On-the-fly statistics feed the planner's predicate ordering. The
  // estimator holds collector pointers, which stay valid for the
  // engine's lifetime (states are never erased, stats reset in place).
  StatsSelectivityEstimator estimator;
  bool use_stats;
  {
    MutexLock lock(states_mu_);
    use_stats = flags_.stats;
    if (use_stats) {
      for (const auto& [table, state] : states_) {
        estimator.Register(table, &state->stats(), state->info().schema);
      }
    }
  }
  PlannerOptions options;
  options.stats = use_stats ? &estimator : nullptr;
  options.profile = profile;

  Factory factory(this, &outcome.metrics.scan);
  NODB_ASSIGN_OR_RETURN(OperatorPtr plan,
                        PlanSelect(stmt, &factory, options));
  plan_span.Close();
  outcome.metrics.plan_ns = watch.ElapsedNanos() - phase_start;

  phase_start = watch.ElapsedNanos();
  obs::ScopedSpan drain_span(trace, "query.drain");
  // Anchor for the synthetic per-category and per-operator spans
  // below: taken after the drain span opened, so every start stamp in
  // the trace stays non-decreasing.
  int64_t drain_anchor_ns = obs::TraceNowNs();
  NODB_ASSIGN_OR_RETURN(outcome.result,
                        QueryResult::Drain(plan.get(), sink));
  drain_span.Close();
  outcome.metrics.drain_ns = watch.ElapsedNanos() - phase_start;

  if (trace != nullptr) {
    // The scan cost categories are accumulated per-row inside the scan
    // and only become spans here, as aggregates over the drain phase.
    const ScanMetrics& scan = outcome.metrics.scan;
    auto emit = [&](const char* name, int64_t ns) {
      if (ns > 0) trace->EmitSpan(name, drain_anchor_ns, ns);
    };
    emit("scan.io", scan.io_ns);
    emit("scan.locate", scan.parsing_ns);
    emit("scan.tokenize", scan.tokenize_ns);
    emit("scan.convert", scan.convert_ns);
    emit("scan.maintain", scan.nodb_ns);
    if (profile != nullptr) {
      profile->EmitExecSpans(trace, drain_anchor_ns);
    }
  }
  root_span.Close();

  outcome.metrics.total_ns = watch.ElapsedNanos();
  {
    MutexLock lock(totals_mu_);
    totals_.AddQuery(outcome.metrics);
  }
  {
    MutexLock lock(states_mu_);
    for (auto& [table, state] : states_) state->IncrementQueryCount();
  }
  // Paper-style adaptive loading: once the query is answered, promote
  // whatever it made hot in the background.
  SchedulePromotions(trace == nullptr ? 0 : trace->id());
  return outcome;
}

void NoDbEngine::SchedulePromotions(uint64_t triggered_by) {
  // Background passes promote on behalf of whoever made the column hot:
  // the triggering thread's tenant tag travels into the task so the
  // store attributes the promoted bytes to that tenant's budget share.
  uint32_t tenant = obs::ScopedTenantLabel::CurrentId();
  std::vector<RawTableState*> states;
  {
    MutexLock lock(states_mu_);
    if (!flags_.store) return;
    states.reserve(states_.size());
    for (auto& [table, state] : states_) states.push_back(state.get());
  }
  for (RawTableState* state : states) {
    ComponentFlags flags = state->component_flags();
    // Store serving rides on the map (hybrid plans locate the raw
    // residue through it), so promotion does too.
    if (!flags.store || !flags.map) continue;
    std::vector<uint32_t> hot = HotAttributes(*state);
    if (!PromotionPending(*state, hot)) continue;
    if (!state->TryBeginPromotion(hot, state->map().known_rows())) {
      continue;  // a pass is in flight, or this target is already done
    }
    {
      MutexLock lock(promo_mu_);
      ++promo_pending_;
    }
    // The task deliberately does not keep the pool alive: the engine
    // owns pool lifetime, and a replaced pool drains its queue in its
    // destructor, so a queued pass always runs before teardown.
    ClientPool(1)->Submit([this, state, hot = std::move(hot), triggered_by,
                           tenant] {
      obs::ScopedTenantLabel tenant_label(tenant);
      int64_t start_ns = obs::TraceNowNs();
      Status status = PromoteHotColumns(state, hot);
      // A failed pass (e.g. the file was rewritten underneath) leaves
      // the claim re-armed; the next query retries against the new
      // generation.
      state->EndPromotion(status.ok());
      if (tracer_.enabled()) {
        // Background work gets its own trace row so concurrent
        // timelines show maintenance beside the queries that caused
        // it.
        std::string label = "promote " + state->info().name;
        if (triggered_by != 0) {
          label += " (triggered by q" + std::to_string(triggered_by) + ")";
        }
        obs::TraceContext ctx(tracer_.NextQueryId(), "background",
                              std::move(label));
        ctx.EmitSpan("promoter.pass", start_ns,
                     obs::TraceNowNs() - start_ns);
        tracer_.Collect(ctx.Finish());
      }
      MutexLock lock(promo_mu_);
      --promo_pending_;
      promo_cv_.notify_all();
    });
  }
}

void NoDbEngine::WaitForPromotions() {
  MutexLock lock(promo_mu_);
  while (promo_pending_ != 0) lock.Wait(promo_cv_);
}

std::shared_ptr<ThreadPool> NoDbEngine::ClientPool(uint32_t threads) {
  MutexLock lock(pool_mu_);
  if (client_pool_ == nullptr || client_pool_->num_threads() < threads) {
    // Replace rather than grow: a batch still running on the old pool
    // keeps it alive through its own shared_ptr.
    client_pool_ = std::make_shared<ThreadPool>(threads);
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    ThreadPoolMetrics metrics;
    metrics.queue_depth = registry.GetGauge(
        "nodb_pool_queue_depth",
        "Client-pool tasks queued or running (zero when idle)");
    metrics.task_wait_ns = registry.GetHistogram(
        "nodb_pool_task_wait_ns", "Client-pool submit-to-start latency");
    metrics.task_run_ns = registry.GetHistogram(
        "nodb_pool_task_run_ns", "Client-pool task execution time");
    metrics.tasks_total = registry.GetCounter(
        "nodb_pool_tasks_total", "Tasks executed by the client pool");
    client_pool_->SetMetrics(metrics);
  }
  return client_pool_;
}

ConcurrentBatchOutcome NoDbEngine::ExecuteConcurrent(
    const std::vector<std::string>& sqls, uint32_t clients,
    const QueryCancelFlag* cancel) {
  ConcurrentBatchOutcome out;
  if (sqls.empty()) return out;
  uint32_t want =
      clients == 0 ? static_cast<uint32_t>(ThreadPool::DefaultThreadCount())
                   : clients;
  out.clients = static_cast<uint32_t>(
      std::min<size_t>(std::max<uint32_t>(1, want), sqls.size()));
  out.reports.resize(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    out.reports[i].index = i;
    out.reports[i].sql = sqls[i];
  }

  std::shared_ptr<ThreadPool> pool = ClientPool(out.clients);
  std::atomic<size_t> next{0};
  Stopwatch shot;
  {
    TaskGroup group(pool.get());
    for (uint32_t c = 0; c < out.clients; ++c) {
      group.Submit([this, c, &sqls, &next, &shot, &out, cancel] {
        // Each worker is one client session pulling queries from the
        // batch — the shape of N users sharing one engine.
        QuerySession session(this, "client-" + std::to_string(c));
        size_t i;
        while ((i = next.fetch_add(1)) < sqls.size()) {
          ConcurrentQueryReport& report = out.reports[i];
          report.client = session.client_id();
          report.start_ns = shot.ElapsedNanos();
          Result<QueryOutcome> result =
              session.ExecuteStreaming(sqls[i], nullptr, cancel);
          report.finish_ns = shot.ElapsedNanos();
          if (result.ok()) {
            report.result = std::move(result->result);
            report.metrics = std::move(result->metrics);
          } else {
            report.status = result.status();
          }
        }
      });
    }
    group.Wait();
  }
  out.wall_ns = shot.ElapsedNanos();
  return out;
}

Result<std::string> NoDbEngine::Explain(std::string_view sql) {
  StatsSelectivityEstimator estimator;
  bool use_stats;
  {
    MutexLock lock(states_mu_);
    use_stats = flags_.stats;
    if (use_stats) {
      for (const auto& [table, state] : states_) {
        estimator.Register(table, &state->stats(), state->info().schema);
      }
    }
  }
  std::string text;
  PlannerOptions options;
  options.stats = use_stats ? &estimator : nullptr;
  options.explain = &text;
  ScanMetrics scratch;
  Factory factory(this, &scratch);
  NODB_RETURN_NOT_OK(PlanSql(sql, &factory, options).status());
  return text;
}

void NoDbEngine::ApplyComponentFlagsLocked() {
  for (auto& [name, state] : states_) {
    state->SetComponentFlags(flags_.map, flags_.cache, flags_.stats,
                             flags_.store);
  }
}

void NoDbEngine::SetPositionalMapEnabled(bool enabled) {
  MutexLock lock(states_mu_);
  flags_.map = enabled;
  ApplyComponentFlagsLocked();
}

void NoDbEngine::SetCacheEnabled(bool enabled) {
  MutexLock lock(states_mu_);
  flags_.cache = enabled;
  ApplyComponentFlagsLocked();
}

void NoDbEngine::SetStatisticsEnabled(bool enabled) {
  MutexLock lock(states_mu_);
  flags_.stats = enabled;
  ApplyComponentFlagsLocked();
}

void NoDbEngine::SetStoreEnabled(bool enabled) {
  MutexLock lock(states_mu_);
  flags_.store = enabled;
  ApplyComponentFlagsLocked();
}

namespace {

/// True when `state` holds anything a snapshot could usefully persist.
/// Cold states must never be saved: freezing empty structures would
/// atomically clobber a previous process's populated sidecar — e.g.
/// under kAuto when recovery degraded for a transient reason (raw file
/// briefly unreadable, newer-version sidecar) and no queries ran
/// before teardown.
bool HasAdaptiveState(const RawTableState& state) {
  return state.map().known_rows() > 0 || state.map().rows_complete() ||
         state.store().num_segments() > 0 ||
         state.zones().num_entries() > 0 ||
         !state.stats().CoveredAttributes().empty() ||
         state.recovery().any_recovered();
}

}  // namespace

Status NoDbEngine::SaveSnapshot(const std::string& table) {
  if (config_.snapshot_mode == SnapshotMode::kOff) {
    return Status::InvalidArgument(
        "snapshots disabled (NoDbConfig::snapshot_mode = kOff)");
  }
  // Only a table with live adaptive state is saved: creating a cold
  // state here would freeze empty structures and clobber a previous,
  // fully populated sidecar from an earlier process.
  RawTableState* state = nullptr;
  {
    MutexLock lock(states_mu_);
    auto it = states_.find(table);
    if (it != states_.end()) state = it->second.get();
  }
  if (state == nullptr || !HasAdaptiveState(*state)) {
    return Status::NotFound("no adaptive state for '" + table +
                            "' to snapshot; query it first");
  }
  // Let in-flight background promotions land: the saved store should
  // be the one the next query would have seen.
  WaitForPromotions();
  int64_t start_ns = obs::TraceNowNs();
  Status status = persist::WriteSnapshot(
      *state, persist::SnapshotPathFor(state->info(),
                                       config_.snapshot_path));
  if (tracer_.enabled()) {
    obs::TraceContext ctx(tracer_.NextQueryId(), "background",
                          "snapshot save " + table);
    ctx.EmitSpan("persist.save", start_ns, obs::TraceNowNs() - start_ns);
    tracer_.Collect(ctx.Finish());
  }
  return status;
}

Status NoDbEngine::SaveAllSnapshots() {
  if (config_.snapshot_mode == SnapshotMode::kOff) {
    return Status::InvalidArgument(
        "snapshots disabled (NoDbConfig::snapshot_mode = kOff)");
  }
  WaitForPromotions();
  std::vector<RawTableState*> states;
  {
    MutexLock lock(states_mu_);
    states.reserve(states_.size());
    for (auto& [table, state] : states_) states.push_back(state.get());
  }
  Status first_error = Status::OK();
  for (RawTableState* state : states) {
    if (!HasAdaptiveState(*state)) continue;  // nothing worth saving
    Status s = persist::WriteSnapshot(
        *state, persist::SnapshotPathFor(state->info(),
                                         config_.snapshot_path));
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

Result<persist::RecoveryReport> NoDbEngine::LoadSnapshot(
    const std::string& table) {
  if (config_.snapshot_mode == SnapshotMode::kOff) {
    return Status::InvalidArgument(
        "snapshots disabled (NoDbConfig::snapshot_mode = kOff)");
  }
  NODB_ASSIGN_OR_RETURN(RawTableState * state, GetOrCreateState(table));
  persist::RecoveryReport prior = state->recovery();
  if (prior.any_recovered()) {
    // The live structures already came from a snapshot (a kAuto open,
    // or an earlier explicit load): re-reading the sidecar would only
    // be refused by them. Report the recovery that actually happened.
    return prior;
  }
  int64_t start_ns = obs::TraceNowNs();
  Result<persist::RecoveryReport> report = persist::LoadSnapshot(
      state,
      persist::SnapshotPathFor(state->info(), config_.snapshot_path));
  if (tracer_.enabled()) {
    obs::TraceContext ctx(tracer_.NextQueryId(), "background",
                          "snapshot load " + table);
    ctx.EmitSpan("persist.load", start_ns, obs::TraceNowNs() - start_ns);
    tracer_.Collect(ctx.Finish());
  }
  return report;
}

const RawTableState* NoDbEngine::table_state(
    const std::string& table) const {
  MutexLock lock(states_mu_);
  auto it = states_.find(table);
  return it == states_.end() ? nullptr : it->second.get();
}

Result<FileChange> NoDbEngine::RefreshTable(const std::string& table) {
  RawTableState* state = nullptr;
  {
    MutexLock lock(states_mu_);
    auto it = states_.find(table);
    if (it != states_.end()) state = it->second.get();
  }
  if (state == nullptr) {
    // First touch: fresh state reflects the file as it is now.
    NODB_RETURN_NOT_OK(GetOrCreateState(table).status());
    return FileChange::kUnchanged;
  }
  return state->CheckForUpdates();
}

Status NoDbEngine::ReplaceTable(const RawTableInfo& info) {
  NODB_RETURN_NOT_OK(catalog_.ReplaceTable(info));
  RawTableState* state = nullptr;
  {
    MutexLock lock(states_mu_);
    auto it = states_.find(info.name);
    if (it != states_.end()) state = it->second.get();
  }
  if (state != nullptr) {
    NODB_RETURN_NOT_OK(state->ReplaceFile(info));
  }
  return Status::OK();
}

}  // namespace nodb
