#include "engines/nodb_engine.h"

#include "raw/parallel_scan.h"
#include "raw/raw_scan.h"
#include "raw/stats_collector.h"
#include "sql/planner.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace nodb {

/// Per-query scan factory: hands the planner RawScanOperators wired to
/// this engine's table states and one shared metrics sink.
class NoDbEngine::Factory final : public ScanFactory {
 public:
  Factory(NoDbEngine* engine, ScanMetrics* metrics)
      : engine_(engine), metrics_(metrics) {}

  Result<std::shared_ptr<Schema>> TableSchema(
      const std::string& table) override {
    NODB_ASSIGN_OR_RETURN(RawTableInfo info,
                          engine_->catalog_.GetTable(table));
    return info.schema;
  }

  Result<OperatorPtr> CreateScan(
      const std::string& table,
      const std::vector<size_t>& projection) override {
    NODB_ASSIGN_OR_RETURN(RawTableState * state,
                          engine_->GetOrCreateState(table));
    std::vector<uint32_t> attrs(projection.begin(), projection.end());
    NODB_RETURN_NOT_OK(engine_->MaybeParallelPrewarm(state, attrs));
    return OperatorPtr(
        std::make_unique<RawScanOperator>(state, std::move(attrs),
                                          metrics_));
  }

 private:
  NoDbEngine* engine_;
  ScanMetrics* metrics_;
};

NoDbEngine::NoDbEngine(Catalog catalog, NoDbConfig config, std::string name)
    : name_(std::move(name)),
      catalog_(std::move(catalog)),
      config_(config) {}

Result<int64_t> NoDbEngine::Initialize() {
  // The NoDB philosophy: there is no initialization step. A pointer to
  // the raw files (the catalog) is all the engine needs.
  return int64_t{0};
}

Result<RawTableState*> NoDbEngine::GetOrCreateState(
    const std::string& table) {
  auto it = states_.find(table);
  if (it != states_.end()) {
    // The raw file may have changed under us since the last query.
    NODB_RETURN_NOT_OK(it->second->CheckForUpdates().status());
    return it->second.get();
  }
  NODB_ASSIGN_OR_RETURN(RawTableInfo info, catalog_.GetTable(table));
  auto state = std::make_unique<RawTableState>(std::move(info), config_);
  NODB_RETURN_NOT_OK(state->Open());
  RawTableState* ptr = state.get();
  states_.emplace(table, std::move(state));
  return ptr;
}

Status NoDbEngine::MaybeParallelPrewarm(RawTableState* state,
                                        const std::vector<uint32_t>& attrs) {
  uint32_t threads =
      config_.num_threads == 0
          ? static_cast<uint32_t>(ThreadPool::DefaultThreadCount())
          : config_.num_threads;
  if (threads <= 1 || state->parallel_prewarmed()) return Status::OK();
  const NoDbConfig& config = state->config();
  if (!config.enable_positional_map && !config.enable_cache &&
      !config.enable_statistics) {
    return Status::OK();  // Baseline mode: nothing would be retained.
  }
  // Only a genuinely cold table qualifies; once the serial scan has
  // started discovering rows, the adaptive path owns the state.
  if (state->map().known_rows() > 0 || state->map().rows_complete()) {
    return Status::OK();
  }
  state->set_parallel_prewarmed(true);  // one attempt per file generation
  // A failure (e.g. malformed row) carries the exact message the serial
  // scan would have produced for that row, so surfacing it here keeps
  // the engine's observable behaviour identical.
  return ParallelChunkedScan(state, attrs, threads).status();
}

Result<QueryOutcome> NoDbEngine::Execute(std::string_view sql) {
  Stopwatch watch;
  QueryOutcome outcome;
  outcome.metrics.sql = std::string(sql);

  // On-the-fly statistics feed the planner's predicate ordering.
  StatsSelectivityEstimator estimator;
  if (config_.enable_statistics) {
    for (const auto& [table, state] : states_) {
      estimator.Register(table, &state->stats(), state->info().schema);
    }
  }
  PlannerOptions options;
  options.stats = config_.enable_statistics ? &estimator : nullptr;

  Factory factory(this, &outcome.metrics.scan);
  NODB_ASSIGN_OR_RETURN(OperatorPtr plan, PlanSql(sql, &factory, options));
  NODB_ASSIGN_OR_RETURN(outcome.result, QueryResult::Drain(plan.get()));

  outcome.metrics.total_ns = watch.ElapsedNanos();
  totals_.AddQuery(outcome.metrics);
  for (auto& [table, state] : states_) state->IncrementQueryCount();
  return outcome;
}

Result<std::string> NoDbEngine::Explain(std::string_view sql) {
  StatsSelectivityEstimator estimator;
  if (config_.enable_statistics) {
    for (const auto& [table, state] : states_) {
      estimator.Register(table, &state->stats(), state->info().schema);
    }
  }
  std::string text;
  PlannerOptions options;
  options.stats = config_.enable_statistics ? &estimator : nullptr;
  options.explain = &text;
  ScanMetrics scratch;
  Factory factory(this, &scratch);
  NODB_RETURN_NOT_OK(PlanSql(sql, &factory, options).status());
  return text;
}

void NoDbEngine::SetPositionalMapEnabled(bool enabled) {
  config_.enable_positional_map = enabled;
  for (auto& [name, state] : states_) {
    state->SetComponentFlags(config_.enable_positional_map,
                             config_.enable_cache,
                             config_.enable_statistics);
  }
}

void NoDbEngine::SetCacheEnabled(bool enabled) {
  config_.enable_cache = enabled;
  for (auto& [name, state] : states_) {
    state->SetComponentFlags(config_.enable_positional_map,
                             config_.enable_cache,
                             config_.enable_statistics);
  }
}

void NoDbEngine::SetStatisticsEnabled(bool enabled) {
  config_.enable_statistics = enabled;
  for (auto& [name, state] : states_) {
    state->SetComponentFlags(config_.enable_positional_map,
                             config_.enable_cache,
                             config_.enable_statistics);
  }
}

const RawTableState* NoDbEngine::table_state(
    const std::string& table) const {
  auto it = states_.find(table);
  return it == states_.end() ? nullptr : it->second.get();
}

Result<FileChange> NoDbEngine::RefreshTable(const std::string& table) {
  auto it = states_.find(table);
  if (it == states_.end()) {
    // First touch: fresh state reflects the file as it is now.
    NODB_RETURN_NOT_OK(GetOrCreateState(table).status());
    return FileChange::kUnchanged;
  }
  return it->second->CheckForUpdates();
}

Status NoDbEngine::ReplaceTable(const RawTableInfo& info) {
  NODB_RETURN_NOT_OK(catalog_.ReplaceTable(info));
  auto it = states_.find(info.name);
  if (it != states_.end()) {
    NODB_RETURN_NOT_OK(it->second->ReplaceFile(info));
  }
  return Status::OK();
}

}  // namespace nodb
