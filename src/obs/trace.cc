#include "obs/trace.h"

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <utility>

namespace nodb {
namespace obs {

namespace {

/// Innermost session label of this thread (see ScopedSessionLabel).
thread_local const std::string* tls_session_label = nullptr;

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// JSON string escaping (quotes, backslashes, control characters).
void AppendJsonEscaped(std::string_view in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - ProcessEpoch())
      .count();
}

TraceContext::TraceContext(uint64_t id, std::string client,
                           std::string sql) {
  trace_.id = id;
  trace_.client = std::move(client);
  trace_.sql = std::move(sql);
  trace_.events.reserve(16);
}

size_t TraceContext::OpenSpan(std::string_view name) {
  size_t handle = trace_.events.size();
  TraceEvent event;
  event.name = std::string(name);
  event.start_ns = TraceNowNs();
  event.dur_ns = -1;  // open; filled by CloseSpan
  event.depth = static_cast<int>(stack_.size());
  trace_.events.push_back(std::move(event));
  stack_.push_back(handle);
  return handle;
}

void TraceContext::CloseSpan(size_t handle) {
  if (handle >= trace_.events.size()) return;
  TraceEvent& event = trace_.events[handle];
  if (event.dur_ns >= 0) return;  // already closed
  event.dur_ns = TraceNowNs() - event.start_ns;
  // Usually top-of-stack (RAII close order), but the API permits
  // out-of-order closes; remove the handle wherever it sits so no
  // closed span lingers on the open stack.
  for (size_t i = stack_.size(); i > 0; --i) {
    if (stack_[i - 1] == handle) {
      stack_.erase(stack_.begin() + static_cast<ptrdiff_t>(i - 1));
      break;
    }
  }
}

void TraceContext::EmitSpan(std::string_view name, int64_t start_ns,
                            int64_t dur_ns) {
  TraceEvent event;
  event.name = std::string(name);
  event.start_ns = start_ns;
  event.dur_ns = dur_ns < 0 ? 0 : dur_ns;
  event.depth = static_cast<int>(stack_.size());
  trace_.events.push_back(std::move(event));
}

QueryTrace TraceContext::Finish() {
  // A still-open span at finish is a bug upstream; close it here so
  // the exported trace stays well-formed (the integrity tests assert
  // open_spans() == 0 before finishing).
  while (!stack_.empty()) {
    size_t handle = stack_.back();
    stack_.pop_back();  // unconditionally: guarantees progress
    CloseSpan(handle);
  }
  return std::move(trace_);
}

void Tracer::SetPath(std::string path) {
  MutexLock lock(mu_);
  path_ = std::move(path);
}

std::string Tracer::path() const {
  MutexLock lock(mu_);
  return path_;
}

std::string Tracer::ToJsonLines(const QueryTrace& trace) {
  std::string out;
  char buf[160];
  for (const TraceEvent& event : trace.events) {
    out += "{\"name\":\"";
    AppendJsonEscaped(event.name, &out);
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"nodb\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%llu,",
                  static_cast<double>(event.start_ns) / 1e3,
                  static_cast<double>(event.dur_ns) / 1e3,
                  static_cast<unsigned long long>(trace.id));
    out += buf;
    out += "\"args\":{\"client\":\"";
    AppendJsonEscaped(trace.client, &out);
    out += "\",\"sql\":\"";
    AppendJsonEscaped(trace.sql, &out);
    std::snprintf(buf, sizeof(buf), "\",\"depth\":%d}},\n", event.depth);
    out += buf;
  }
  return out;
}

void Tracer::Collect(QueryTrace trace) {
  std::string lines = ToJsonLines(trace);
  MutexLock lock(mu_);
  recent_.push_back(std::move(trace));
  while (recent_.size() > kMaxRecent) recent_.pop_front();
  if (path_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) return;  // tracing must never fail a query
  // The initial position of an append-mode stream is implementation-
  // defined; seek to the end so ftell reliably reports emptiness.
  std::fseek(f, 0, SEEK_END);
  if (std::ftell(f) == 0) {
    // Chrome trace array format: the opening bracket; the viewer
    // accepts a trailing comma and no closing bracket.
    std::fputs("[\n", f);
  }
  std::fputs(lines.c_str(), f);
  // Best effort by design — a full disk loses trace lines, not queries.
  (void)std::fclose(f);
}

std::vector<QueryTrace> Tracer::Snapshot() const {
  MutexLock lock(mu_);
  return std::vector<QueryTrace>(recent_.begin(), recent_.end());
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::string out = "[\n";
  {
    MutexLock lock(mu_);
    for (const QueryTrace& trace : recent_) {
      out += ToJsonLines(trace);
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file '" + path + "'");
  }
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  if (std::fclose(f) != 0 || written != out.size()) {
    return Status::IOError("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

ScopedSessionLabel::ScopedSessionLabel(const std::string& label)
    : previous_(tls_session_label) {
  tls_session_label = &label;
}

ScopedSessionLabel::~ScopedSessionLabel() {
  tls_session_label = previous_;
}

std::string ScopedSessionLabel::Current() {
  return tls_session_label == nullptr ? std::string()
                                      : *tls_session_label;
}

}  // namespace obs
}  // namespace nodb
