#include "obs/tenant.h"

#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nodb {
namespace obs {

namespace {

/// Append-only intern table. Function-local static so tests that never
/// touch tenants pay nothing and there is no initialization-order
/// hazard with other globals.
class TenantTable {
 public:
  static TenantTable& Global() {
    static TenantTable* table = new TenantTable();  // never destroyed
    return *table;
  }

  uint32_t IdFor(const std::string& name) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    names_.push_back(name);
    uint32_t id = static_cast<uint32_t>(names_.size());  // ids start at 1
    ids_.emplace(name, id);
    return id;
  }

  std::string NameOf(uint32_t id) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (id == 0 || id > names_.size()) return std::string();
    return names_[id - 1];
  }

 private:
  TenantTable() = default;

  Mutex mu_;
  std::vector<std::string> names_ GUARDED_BY(mu_);
  std::unordered_map<std::string, uint32_t> ids_ GUARDED_BY(mu_);
};

thread_local uint32_t tls_tenant_id = 0;

}  // namespace

uint32_t TenantIdFor(const std::string& name) {
  return TenantTable::Global().IdFor(name);
}

std::string TenantName(uint32_t id) {
  return TenantTable::Global().NameOf(id);
}

ScopedTenantLabel::ScopedTenantLabel(uint32_t tenant_id)
    : previous_(tls_tenant_id) {
  tls_tenant_id = tenant_id;
}

ScopedTenantLabel::~ScopedTenantLabel() { tls_tenant_id = previous_; }

uint32_t ScopedTenantLabel::CurrentId() { return tls_tenant_id; }

}  // namespace obs
}  // namespace nodb
