#include "obs/plan_profile.h"

#include <algorithm>
#include <cstdio>

#include "monitor/query_metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace nodb {
namespace obs {

namespace {

/// The timing shim around every profiled operator: inclusive wall
/// time of Open()/Next() plus batch/row counts, with plain integer
/// accumulation (one query = one thread).
class AnalyzeOperator final : public ExecOperator {
 public:
  AnalyzeOperator(OperatorPtr child, PlanProfiler::Node* node)
      : child_(std::move(child)), node_(node) {}

  Status Open() override {
    Stopwatch watch;
    Status status = child_->Open();
    node_->open_ns += watch.ElapsedNanos();
    return status;
  }

  Result<BatchPtr> Next() override {
    Stopwatch watch;
    Result<BatchPtr> batch = child_->Next();
    node_->next_ns += watch.ElapsedNanos();
    if (batch.ok() && *batch != nullptr) {
      ++node_->batches;
      node_->rows += (*batch)->num_rows();
    }
    return batch;
  }

  std::shared_ptr<Schema> output_schema() const override {
    return child_->output_schema();
  }

 private:
  OperatorPtr child_;
  PlanProfiler::Node* node_;
};

}  // namespace

int64_t PlanProfiler::Node::SelfNs() const {
  int64_t self = TotalNs();
  for (const Node* child : children) self -= child->TotalNs();
  return std::max<int64_t>(0, self);
}

OperatorPtr PlanProfiler::Wrap(OperatorPtr op, std::string kind,
                               std::string label, size_t arity) {
  storage_.emplace_back();
  Node* node = &storage_.back();
  node->kind = std::move(kind);
  node->label = std::move(label);
  size_t take = std::min(arity, roots_.size());
  for (size_t i = 0; i < take; ++i) {
    // Pop the most recent subtree roots; reverse so children read in
    // build order (probe before build side for joins).
    node->children.insert(node->children.begin(), roots_.back());
    roots_.pop_back();
  }
  roots_.push_back(node);
  order_.push_back(node);
  return std::make_unique<AnalyzeOperator>(std::move(op), node);
}

void PlanProfiler::EmitExecSpans(TraceContext* ctx,
                                 int64_t start_ns) const {
  if (ctx == nullptr) return;
  for (const Node* node : order_) {
    ctx->EmitSpan("exec." + node->kind, start_ns, node->TotalNs());
  }
}

std::string RenderAnalyze(const PlanProfiler& profiler,
                          const QueryMetrics& metrics) {
  std::string out;
  char line[320];
  for (const PlanProfiler::Node* node : profiler.nodes()) {
    std::snprintf(line, sizeof(line),
                  "%-52s time %10s  self %10s  rows %10llu  batches %llu\n",
                  node->label.c_str(),
                  FormatNanos(node->TotalNs()).c_str(),
                  FormatNanos(node->SelfNs()).c_str(),
                  static_cast<unsigned long long>(node->rows),
                  static_cast<unsigned long long>(node->batches));
    out += line;
  }

  const PlanProfiler::Node* root = profiler.root();
  int64_t operators_ns = root == nullptr ? 0 : root->TotalNs();
  // Output = materializing the drained batches into the result,
  // outside the root operator.
  int64_t output_ns =
      std::max<int64_t>(0, metrics.drain_ns - operators_ns);
  int64_t accounted =
      metrics.parse_ns + metrics.plan_ns + metrics.drain_ns;
  double coverage =
      metrics.total_ns <= 0
          ? 0.0
          : 100.0 * static_cast<double>(accounted) /
                static_cast<double>(metrics.total_ns);
  std::snprintf(line, sizeof(line),
                "parse %s | plan %s | execute %s (operators %s + "
                "output %s) | total %s\n",
                FormatNanos(metrics.parse_ns).c_str(),
                FormatNanos(metrics.plan_ns).c_str(),
                FormatNanos(metrics.drain_ns).c_str(),
                FormatNanos(operators_ns).c_str(),
                FormatNanos(output_ns).c_str(),
                FormatNanos(metrics.total_ns).c_str());
  out += line;
  const ScanMetrics& s = metrics.scan;
  std::snprintf(line, sizeof(line),
                "accounted %.1f%% of wall time | rows store/cache/raw "
                "%llu/%llu/%llu | zone-skipped blocks %llu\n",
                coverage,
                static_cast<unsigned long long>(s.rows_from_store),
                static_cast<unsigned long long>(s.rows_from_cache),
                static_cast<unsigned long long>(s.rows_from_raw),
                static_cast<unsigned long long>(s.zone_skipped_blocks));
  out += line;
  std::snprintf(line, sizeof(line),
                "scan io %s | locate %s | tokenize %s | convert %s | "
                "maintain %s\n",
                FormatNanos(s.io_ns).c_str(),
                FormatNanos(s.parsing_ns).c_str(),
                FormatNanos(s.tokenize_ns).c_str(),
                FormatNanos(s.convert_ns).c_str(),
                FormatNanos(s.nodb_ns).c_str());
  out += line;
  return out;
}

}  // namespace obs
}  // namespace nodb
