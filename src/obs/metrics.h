#ifndef NODB_OBS_METRICS_H_
#define NODB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nodb {

struct QueryMetrics;

namespace obs {

/// Index of the calling thread into a fixed set of metric shards.
/// Stable for the thread's lifetime; different threads spread across
/// shards so hot-path increments never contend on one cache line.
size_t ThisThreadShard();

/// A monotonically increasing counter. Add() is wait-free and
/// TSan-clean: each thread lands on its own cache-line-padded shard
/// and bumps it with a relaxed atomic add. Value() sums the shards
/// (racy reads see a value that was true at some instant — exactly
/// what monitoring wants).
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
    shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// An instantaneous level (queue depth, in-flight queries). Updates
/// must stay coherent across threads (Add/Sub pairs), so this is one
/// atomic rather than shards — gauges move orders of magnitude less
/// often than counters.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time view of a LatencyHistogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

/// Log-bucketed latency distribution in nanoseconds: ~4 sub-buckets
/// per power of two (quantile error < 25%), sharded like Counter so
/// Record() is wait-free on the hot path. Max is tracked exactly via
/// a lock-free CAS loop.
class LatencyHistogram {
 public:
  static constexpr size_t kShards = 8;
  static constexpr size_t kBuckets = 64 * 4;

  void Record(int64_t ns);

  /// Quantiles resolve to the upper bound of the containing bucket
  /// (conservative: reported p99 >= true p99 within one bucket).
  HistogramSnapshot Snapshot() const;

  static size_t BucketIndex(uint64_t v);
  static uint64_t BucketUpperBound(size_t index);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kBuckets];
    std::atomic<uint64_t> sum{0};
  };
  Shard shards_[kShards] = {};
  std::atomic<uint64_t> max_{0};
};

/// Process-wide named metrics. Handles are created on first use and
/// live for the registry's lifetime (pointer-stable), so callers cache
/// the pointer once and increment lock-free forever after. Tests build
/// private registries; the engine and its components register on
/// Global().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Names follow Prometheus convention: [a-zA-Z_][a-zA-Z0-9_]*,
  /// suffixed _total (counters) / _ns (durations). A name is one kind
  /// forever; the help string of the first registration wins.
  Counter* GetCounter(const std::string& name,
                      const std::string& help = "") EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help = "")
      EXCLUDES(mu_);
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& help = "")
      EXCLUDES(mu_);

  /// Prometheus text exposition format (# HELP / # TYPE + samples;
  /// histograms as summaries with quantile labels).
  std::string RenderPrometheus() const EXCLUDES(mu_);

  /// Compact human-readable dump (the shell's \metrics panel).
  std::string RenderText() const EXCLUDES(mu_);

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    std::string help;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, Entry<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, Entry<LatencyHistogram>> histograms_
      GUARDED_BY(mu_);
};

/// Folds one finished query's metrics into the global registry: the
/// query/scan counters, the tier attribution and the end-to-end
/// latency distribution.
void RecordQueryTelemetry(const QueryMetrics& metrics);

}  // namespace obs
}  // namespace nodb

#endif  // NODB_OBS_METRICS_H_
