#ifndef NODB_OBS_PLAN_PROFILE_H_
#define NODB_OBS_PLAN_PROFILE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace nodb {

struct QueryMetrics;

namespace obs {

class TraceContext;

/// Wraps every operator of a plan with a timing shim and reconstructs
/// the operator tree, for EXPLAIN ANALYZE and per-operator trace
/// spans.
///
/// The planner builds plans bottom-up, so the profiler maintains a
/// stack of subtree roots: wrapping an operator with arity N pops its
/// N children (the N most recent roots) and pushes itself. A profiler
/// is single-query, single-threaded — the wrapper counts with plain
/// integers, which is what keeps the instrumented path within the
/// overhead gate.
class PlanProfiler {
 public:
  struct Node {
    std::string kind;   ///< scan, filter, join, aggregate, ...
    std::string label;  ///< the EXPLAIN note line, e.g. "SCAN t [a, b]"
    int64_t open_ns = 0;
    int64_t next_ns = 0;  ///< all Next() calls, inclusive of children
    uint64_t rows = 0;
    uint64_t batches = 0;
    std::vector<const Node*> children;

    int64_t TotalNs() const { return open_ns + next_ns; }
    /// Time attributable to this operator alone.
    int64_t SelfNs() const;
  };

  /// Takes ownership of `op`, returns the timing wrapper. `arity` is
  /// the number of direct children `op` consumed (0 for leaf scans,
  /// 2 for joins).
  OperatorPtr Wrap(OperatorPtr op, std::string kind, std::string label,
                   size_t arity);

  /// Nodes in creation (bottom-up) order; addresses are stable.
  const std::vector<const Node*>& nodes() const { return order_; }

  /// The plan root (last node wrapped); nullptr when nothing was.
  const Node* root() const {
    return roots_.empty() ? nullptr : roots_.back();
  }

  /// Emits one pre-measured "exec.<kind>" span per node (inclusive
  /// operator time), anchored at `start_ns`.
  void EmitExecSpans(TraceContext* ctx, int64_t start_ns) const;

 private:
  std::deque<Node> storage_;  // stable addresses for Node pointers
  std::vector<Node*> roots_;  // subtree roots during construction
  std::vector<const Node*> order_;
};

/// Renders the annotated plan: one line per operator (bottom-up, the
/// same order as EXPLAIN) with inclusive/self times, row and batch
/// counts, then footer lines accounting the full wall time
/// (parse/plan/execute/output), the tier attribution and the span
/// coverage percentage the acceptance gate checks.
std::string RenderAnalyze(const PlanProfiler& profiler,
                          const QueryMetrics& metrics);

}  // namespace obs
}  // namespace nodb

#endif  // NODB_OBS_PLAN_PROFILE_H_
