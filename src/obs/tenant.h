#ifndef NODB_OBS_TENANT_H_
#define NODB_OBS_TENANT_H_

#include <cstdint>
#include <string>

namespace nodb {
namespace obs {

/// Process-wide tenant identity for multi-tenant serving.
///
/// The server front end authenticates each connection with a tenant
/// name (HELLO frame); the storage tiers only need a cheap tag to
/// partition budget accounting, so names are interned once into small
/// dense ids. Id 0 is reserved for untagged work — in-process callers,
/// tests and benches that never touch the server keep their existing
/// single-tenant behaviour unchanged.
///
/// Interning is append-only for the process lifetime (a serving
/// deployment has a handful of tenants, not millions), which keeps the
/// ids safe to store inside cache/store entries without invalidation.

/// Interns `name` and returns its stable id (>= 1). Thread-safe.
uint32_t TenantIdFor(const std::string& name);

/// The name interned for `id`; "" for 0 or an unknown id.
std::string TenantName(uint32_t id);

/// Tags the calling thread with a tenant for the scope's lifetime, the
/// same shape as ScopedSessionLabel (obs/trace.h): the shadow store,
/// raw cache and statistics heat read CurrentId() to attribute bytes
/// and accesses. Nests; the previous tag is restored on destruction.
class ScopedTenantLabel {
 public:
  explicit ScopedTenantLabel(uint32_t tenant_id);
  ~ScopedTenantLabel();

  ScopedTenantLabel(const ScopedTenantLabel&) = delete;
  ScopedTenantLabel& operator=(const ScopedTenantLabel&) = delete;

  /// The innermost live tenant id on this thread (0 = untagged).
  static uint32_t CurrentId();

 private:
  uint32_t previous_;
};

}  // namespace obs
}  // namespace nodb

#endif  // NODB_OBS_TENANT_H_
