#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "monitor/query_metrics.h"

namespace nodb {
namespace obs {

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard % Counter::kShards;
}

void LatencyHistogram::Record(int64_t ns) {
  uint64_t v = ns < 0 ? 0 : static_cast<uint64_t>(ns);
  Shard& shard = shards_[ThisThreadShard() % kShards];
  shard.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

size_t LatencyHistogram::BucketIndex(uint64_t v) {
  if (v < 4) return static_cast<size_t>(v);  // exact tiny buckets
  int hi = 63 - __builtin_clzll(v);
  size_t sub = static_cast<size_t>((v >> (hi - 2)) & 3);
  size_t index = static_cast<size_t>(hi) * 4 + sub;
  return index < kBuckets ? index : kBuckets - 1;
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  // Values below 4 get exact buckets, and BucketIndex jumps straight
  // from index 3 to index 8 (hi >= 2), so indices 4-7 are unreachable
  // placeholders: answer 3 for them, which keeps the shift below
  // well-defined (hi - 2 would underflow for hi == 1).
  if (index < 8) return index < 4 ? static_cast<uint64_t>(index) : 3;
  size_t hi = index / 4;
  size_t sub = index % 4;
  if (hi >= 63) return UINT64_MAX;
  // Largest value whose (hi, sub) decomposition lands in this bucket.
  return (uint64_t{1} << hi) +
         (static_cast<uint64_t>(sub + 1) << (hi - 2)) - 1;
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  uint64_t buckets[kBuckets] = {};
  HistogramSnapshot snap;
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      uint64_t n = shard.buckets[b].load(std::memory_order_relaxed);
      buckets[b] += n;
      snap.count += n;
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  snap.max = max_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  auto quantile = [&](double q) {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(
                                                  snap.count));
    if (rank >= snap.count) rank = snap.count - 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += buckets[b];
      if (seen > rank) {
        uint64_t upper = BucketUpperBound(b);
        return upper < snap.max ? upper : snap.max;
      }
    }
    return snap.max;
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, Entry<Counter>{std::make_unique<Counter>(),
                                           help})
             .first;
  }
  return it->second.metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(name,
                      Entry<Gauge>{std::make_unique<Gauge>(), help})
             .first;
  }
  return it->second.metric.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& help) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, Entry<LatencyHistogram>{
                                std::make_unique<LatencyHistogram>(),
                                help})
             .first;
  }
  return it->second.metric.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, entry] : counters_) {
    if (!entry.help.empty()) {
      out += "# HELP " + name + " " + entry.help + "\n";
    }
    out += "# TYPE " + name + " counter\n";
    std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n", name.c_str(),
                  entry.metric->Value());
    out += line;
  }
  for (const auto& [name, entry] : gauges_) {
    if (!entry.help.empty()) {
      out += "# HELP " + name + " " + entry.help + "\n";
    }
    out += "# TYPE " + name + " gauge\n";
    std::snprintf(line, sizeof(line), "%s %" PRId64 "\n", name.c_str(),
                  entry.metric->Value());
    out += line;
  }
  for (const auto& [name, entry] : histograms_) {
    if (!entry.help.empty()) {
      out += "# HELP " + name + " " + entry.help + "\n";
    }
    out += "# TYPE " + name + " summary\n";
    HistogramSnapshot snap = entry.metric->Snapshot();
    std::snprintf(line, sizeof(line),
                  "%s{quantile=\"0.5\"} %" PRIu64 "\n", name.c_str(),
                  snap.p50);
    out += line;
    std::snprintf(line, sizeof(line),
                  "%s{quantile=\"0.95\"} %" PRIu64 "\n", name.c_str(),
                  snap.p95);
    out += line;
    std::snprintf(line, sizeof(line),
                  "%s{quantile=\"0.99\"} %" PRIu64 "\n", name.c_str(),
                  snap.p99);
    out += line;
    std::snprintf(line, sizeof(line), "%s_sum %" PRIu64 "\n",
                  name.c_str(), snap.sum);
    out += line;
    std::snprintf(line, sizeof(line), "%s_count %" PRIu64 "\n",
                  name.c_str(), snap.count);
    out += line;
    std::snprintf(line, sizeof(line), "%s_max %" PRIu64 "\n",
                  name.c_str(), snap.max);
    out += line;
  }
  return out;
}

std::string MetricsRegistry::RenderText() const {
  MutexLock lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, entry] : counters_) {
    std::snprintf(line, sizeof(line), "%-44s %20" PRIu64 "\n",
                  name.c_str(), entry.metric->Value());
    out += line;
  }
  for (const auto& [name, entry] : gauges_) {
    std::snprintf(line, sizeof(line), "%-44s %20" PRId64 "\n",
                  name.c_str(), entry.metric->Value());
    out += line;
  }
  for (const auto& [name, entry] : histograms_) {
    HistogramSnapshot snap = entry.metric->Snapshot();
    std::snprintf(line, sizeof(line),
                  "%-44s count %" PRIu64 " p50 %" PRIu64 " p95 %" PRIu64
                  " p99 %" PRIu64 " max %" PRIu64 "\n",
                  name.c_str(), snap.count, snap.p50, snap.p95, snap.p99,
                  snap.max);
    out += line;
  }
  return out;
}

void RecordQueryTelemetry(const QueryMetrics& metrics) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  // Handles resolve once; every later query is pure atomic adds.
  static Counter* queries =
      reg.GetCounter("nodb_queries_total", "queries executed");
  static LatencyHistogram* latency = reg.GetHistogram(
      "nodb_query_latency_ns", "end-to-end query latency");
  static Counter* rows =
      reg.GetCounter("nodb_scan_rows_total", "rows scanned");
  static Counter* bytes =
      reg.GetCounter("nodb_scan_bytes_read_total", "raw bytes read");
  static Counter* rows_store = reg.GetCounter(
      "nodb_scan_rows_from_store_total", "rows served by the store");
  static Counter* rows_cache = reg.GetCounter(
      "nodb_scan_rows_from_cache_total", "rows served by the cache");
  static Counter* rows_raw = reg.GetCounter(
      "nodb_scan_rows_from_raw_total", "rows parsed from raw bytes");
  static Counter* zone_rows = reg.GetCounter(
      "nodb_scan_zone_skipped_rows_total", "rows skipped by zone maps");
  static Counter* pruned = reg.GetCounter(
      "nodb_scan_pushdown_pruned_rows_total",
      "rows dropped by pushed predicates before phase-2 parsing");
  static Counter* cache_hits = reg.GetCounter(
      "nodb_cache_block_hits_total", "cache block hits during scans");
  static Counter* cache_misses = reg.GetCounter(
      "nodb_cache_block_misses_total", "cache block misses during scans");
  static Counter* io_ns =
      reg.GetCounter("nodb_scan_io_ns_total", "scan I/O time");
  static Counter* locate_ns = reg.GetCounter(
      "nodb_scan_locate_ns_total", "tuple-boundary location time");
  static Counter* tokenize_ns =
      reg.GetCounter("nodb_scan_tokenize_ns_total", "tokenizing time");
  static Counter* convert_ns = reg.GetCounter(
      "nodb_scan_convert_ns_total", "text-to-binary conversion time");
  static Counter* maintain_ns = reg.GetCounter(
      "nodb_scan_maintain_ns_total",
      "positional map / cache / statistics maintenance time");

  const ScanMetrics& s = metrics.scan;
  queries->Add(1);
  latency->Record(metrics.total_ns);
  rows->Add(s.rows_scanned);
  bytes->Add(s.bytes_read);
  rows_store->Add(s.rows_from_store);
  rows_cache->Add(s.rows_from_cache);
  rows_raw->Add(s.rows_from_raw);
  zone_rows->Add(s.zone_skipped_rows);
  pruned->Add(s.pushdown_rows_pruned);
  cache_hits->Add(s.cache_block_hits);
  cache_misses->Add(s.cache_block_misses);
  io_ns->Add(static_cast<uint64_t>(s.io_ns < 0 ? 0 : s.io_ns));
  locate_ns->Add(
      static_cast<uint64_t>(s.parsing_ns < 0 ? 0 : s.parsing_ns));
  tokenize_ns->Add(
      static_cast<uint64_t>(s.tokenize_ns < 0 ? 0 : s.tokenize_ns));
  convert_ns->Add(
      static_cast<uint64_t>(s.convert_ns < 0 ? 0 : s.convert_ns));
  maintain_ns->Add(
      static_cast<uint64_t>(s.nodb_ns < 0 ? 0 : s.nodb_ns));
}

}  // namespace obs
}  // namespace nodb
