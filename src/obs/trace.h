#ifndef NODB_OBS_TRACE_H_
#define NODB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nodb {
namespace obs {

/// Steady-clock nanoseconds since process start: the shared timebase
/// of every span, so traces from concurrent queries line up on one
/// timeline.
int64_t TraceNowNs();

/// One completed span. Events of a query are recorded in open order,
/// so start timestamps are non-decreasing within a trace.
struct TraceEvent {
  std::string name;  ///< component.verb, see docs/observability.md
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int depth = 0;  ///< nesting depth at open (root = 0)
};

/// Everything traced for one query (or one background pass).
struct QueryTrace {
  uint64_t id = 0;      ///< engine-assigned ordinal (Chrome tid)
  std::string client;   ///< session attribution; "" for direct calls
  std::string sql;      ///< query text, or a background-pass label
  std::vector<TraceEvent> events;
};

/// Per-query span recorder. Single-threaded by design — one context
/// per query, owned by the executing thread; the Tracer is the
/// cross-thread collection point. Spans nest via an open stack;
/// EmitSpan() records a pre-measured aggregate span (e.g. the scan
/// phase totals, which are accumulated per-row and only become a span
/// at query end) without touching the stack.
class TraceContext {
 public:
  TraceContext(uint64_t id, std::string client, std::string sql);

  /// Opens a nested span; returns a handle for CloseSpan.
  size_t OpenSpan(std::string_view name);
  void CloseSpan(size_t handle);

  /// Records a span measured elsewhere. `start_ns` must not precede
  /// the last opened/emitted span's start (keeps events monotone).
  void EmitSpan(std::string_view name, int64_t start_ns, int64_t dur_ns);

  uint64_t id() const { return trace_.id; }
  size_t open_spans() const { return stack_.size(); }
  size_t num_events() const { return trace_.events.size(); }

  /// Consumes the context; every opened span must be closed.
  QueryTrace Finish();

 private:
  QueryTrace trace_;
  std::vector<size_t> stack_;  // indices of open events
};

/// RAII span over a possibly-null context (null = tracing off: every
/// operation is a no-op, so call sites need no branches).
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, const char* name)
      : ctx_(ctx), handle_(ctx == nullptr ? 0 : ctx->OpenSpan(name)) {}
  ~ScopedSpan() { Close(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Closes early (the span's natural end precedes scope exit).
  void Close() {
    if (ctx_ != nullptr) ctx_->CloseSpan(handle_);
    ctx_ = nullptr;
  }

 private:
  TraceContext* ctx_;
  size_t handle_;
};

/// Engine-owned trace collector: hands out query ids, keeps a bounded
/// ring of recent traces for inspection, and optionally streams each
/// finished trace to a Chrome-trace-viewer-compatible JSONL file.
/// Collect() is the only cross-thread rendezvous and is mutex-guarded;
/// enabled() is a relaxed atomic so the query hot path pays one load
/// when tracing is off.
class Tracer {
 public:
  static constexpr size_t kMaxRecent = 1024;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends finished traces to `path` as they are collected
  /// ("" disables streaming). The file is Chrome trace format: a "["
  /// line then one JSON event object per line.
  void SetPath(std::string path) EXCLUDES(mu_);
  std::string path() const EXCLUDES(mu_);

  uint64_t NextQueryId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void Collect(QueryTrace trace) EXCLUDES(mu_);

  /// Copies the retained ring (most recent last).
  std::vector<QueryTrace> Snapshot() const EXCLUDES(mu_);

  /// Writes the retained ring as a complete Chrome trace file.
  Status WriteChromeTrace(const std::string& path) const EXCLUDES(mu_);

  /// One Chrome trace event object per line (ph:"X", ts/dur in
  /// microseconds, tid = query id), no surrounding array tokens.
  static std::string ToJsonLines(const QueryTrace& trace);

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  mutable Mutex mu_;
  std::string path_ GUARDED_BY(mu_);
  std::deque<QueryTrace> recent_ GUARDED_BY(mu_);
};

/// Thread-local session attribution: QuerySession tags the thread
/// while a query runs so the engine can stamp the client id into the
/// query's trace without widening the Engine::Execute signature.
class ScopedSessionLabel {
 public:
  explicit ScopedSessionLabel(const std::string& label);
  ~ScopedSessionLabel();

  ScopedSessionLabel(const ScopedSessionLabel&) = delete;
  ScopedSessionLabel& operator=(const ScopedSessionLabel&) = delete;

  /// The innermost live label on this thread ("" when none).
  static std::string Current();

 private:
  const std::string* previous_;
};

}  // namespace obs
}  // namespace nodb

#endif  // NODB_OBS_TRACE_H_
