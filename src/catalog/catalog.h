#ifndef NODB_CATALOG_CATALOG_H_
#define NODB_CATALOG_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "csv/dialect.h"
#include "types/schema.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nodb {

/// Registration record of a raw table: where the file lives and how to
/// interpret it. Registering a table performs **no data access** — that
/// is the point of NoDB; the engine touches the file only when a query
/// references the table.
struct RawTableInfo {
  std::string name;
  std::string path;
  std::shared_ptr<Schema> schema;
  CsvDialect dialect;
};

/// Name → raw-file registry shared by all engines. Internally
/// synchronized: concurrent queries resolve tables while a
/// ReplaceTable (the demo's "new data file" scenario) swaps a
/// registration. Copying a catalog snapshots its registrations.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog& other);
  Catalog& operator=(const Catalog& other);

  /// Registers a raw CSV file as queryable table `name`.
  Status RegisterTable(RawTableInfo info) EXCLUDES(mu_);

  /// Replaces an existing registration (e.g. to point a table at a new
  /// file — the demo's second update scenario).
  Status ReplaceTable(RawTableInfo info) EXCLUDES(mu_);

  Result<RawTableInfo> GetTable(const std::string& name) const
      EXCLUDES(mu_);

  bool HasTable(const std::string& name) const {
    MutexLock lock(mu_);
    return tables_.count(name) > 0;
  }

  std::vector<std::string> TableNames() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, RawTableInfo> tables_ GUARDED_BY(mu_);
};

}  // namespace nodb

#endif  // NODB_CATALOG_CATALOG_H_
