#include "catalog/catalog.h"

#include <algorithm>

namespace nodb {

Status Catalog::RegisterTable(RawTableInfo info) {
  if (info.schema == nullptr) {
    return Status::InvalidArgument("table '" + info.name +
                                   "' registered without a schema");
  }
  auto [it, inserted] = tables_.emplace(info.name, info);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("table '" + info.name +
                                 "' is already registered");
  }
  return Status::OK();
}

Status Catalog::ReplaceTable(RawTableInfo info) {
  if (info.schema == nullptr) {
    return Status::InvalidArgument("table '" + info.name +
                                   "' registered without a schema");
  }
  tables_[info.name] = std::move(info);
  return Status::OK();
}

Result<RawTableInfo> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, info] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace nodb
