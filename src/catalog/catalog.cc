#include "catalog/catalog.h"

#include <algorithm>

namespace nodb {

Catalog::Catalog(const Catalog& other) {
  MutexLock lock(other.mu_);
  tables_ = other.tables_;
}

Catalog& Catalog::operator=(const Catalog& other) {
  if (this == &other) return *this;
  std::unordered_map<std::string, RawTableInfo> copy;
  {
    MutexLock lock(other.mu_);
    copy = other.tables_;
  }
  MutexLock lock(mu_);
  tables_ = std::move(copy);
  return *this;
}

Status Catalog::RegisterTable(RawTableInfo info) {
  if (info.schema == nullptr) {
    return Status::InvalidArgument("table '" + info.name +
                                   "' registered without a schema");
  }
  MutexLock lock(mu_);
  auto [it, inserted] = tables_.emplace(info.name, info);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("table '" + info.name +
                                 "' is already registered");
  }
  return Status::OK();
}

Status Catalog::ReplaceTable(RawTableInfo info) {
  if (info.schema == nullptr) {
    return Status::InvalidArgument("table '" + info.name +
                                   "' registered without a schema");
  }
  MutexLock lock(mu_);
  tables_[info.name] = std::move(info);
  return Status::OK();
}

Result<RawTableInfo> Catalog::GetTable(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, info] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace nodb
