#ifndef NODB_MONITOR_QUERY_METRICS_H_
#define NODB_MONITOR_QUERY_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "raw/scan_metrics.h"

namespace nodb {

/// End-to-end cost of one query in the Figure-3 categories.
struct QueryMetrics {
  std::string sql;
  int64_t total_ns = 0;
  ScanMetrics scan;

  /// Phase wall times (filled by NoDbEngine; zero on engines that do
  /// not split phases): SQL text -> AST, AST -> operator tree, and
  /// draining the tree into the materialized result. Disjoint
  /// sub-intervals of total_ns, so parse + plan + drain <= total and
  /// the gap is engine glue — EXPLAIN ANALYZE's accounting check.
  int64_t parse_ns = 0;
  int64_t plan_ns = 0;
  int64_t drain_ns = 0;

  /// Plan work above the scan (filters, aggregation, joins,
  /// materialization): everything the scan categories do not explain.
  int64_t processing_ns() const {
    return std::max<int64_t>(0, total_ns - scan.TotalScanNs());
  }
};

/// Cumulative engine-level accounting for the data-to-query-time race
/// (§4.3): initialization (loading/tuning) plus every query so far.
struct EngineTotals {
  int64_t init_ns = 0;
  int64_t query_ns = 0;
  uint64_t queries = 0;

  int64_t data_to_query_ns() const { return init_ns + query_ns; }

  void AddQuery(const QueryMetrics& metrics) {
    query_ns += metrics.total_ns;
    ++queries;
  }
};

}  // namespace nodb

#endif  // NODB_MONITOR_QUERY_METRICS_H_
