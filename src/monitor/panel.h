#ifndef NODB_MONITOR_PANEL_H_
#define NODB_MONITOR_PANEL_H_

#include <string>
#include <vector>

#include "engines/query_session.h"
#include "monitor/query_metrics.h"
#include "raw/table_state.h"
#include "server/server_stats.h"

namespace nodb {

/// Text renderings of the demo's GUI panels.
///
/// The original demonstration visualizes internal PostgresRaw state in
/// a graphical interface (Figure 2); this library exposes the same
/// counters as ASCII panels and CSV series so benches, examples and
/// logs can show the identical information.
class MonitorPanel {
 public:
  /// The System Monitoring Panel (Figure 2): map/cache/store
  /// utilization bars, structure sizes, per-attribute access counts
  /// and known-file coverage shading for the touched attributes.
  static std::string RenderTableState(const RawTableState& state);

  /// The storage-tier report (the shell's \tiers command): raw file →
  /// RawCache → shadow store, with per-tier bytes vs budgets, hit
  /// counters and the promoted columns' heat and coverage.
  static std::string RenderStorageTiers(const RawTableState& state);

  /// The Query Execution Breakdown panel (Figure 3): one stacked row
  /// of Processing / IO / Convert / Parsing / Tokenizing / NoDB.
  static std::string RenderBreakdown(const std::string& label,
                                     const QueryMetrics& metrics);

  /// The concurrent-serving panel: per-query rows (client, timing,
  /// Figure-3 breakdown) for a multi-client batch plus the aggregate
  /// line — wall time, queries/sec, peak queries in flight, failures.
  static std::string RenderConcurrentBatch(
      const ConcurrentBatchOutcome& batch);

  /// The server front-end panel (shell \metrics server section):
  /// connections, in-flight vs capacity, queue depth, admission
  /// totals, and one row per tenant with rows served and reserved
  /// memory.
  static std::string RenderServer(const server::ServerStats& stats);

  /// CSV header + row emitters for machine-readable series (the
  /// benches print these so experiments can be re-plotted).
  static std::string BreakdownCsvHeader();
  static std::string BreakdownCsvRow(const std::string& label,
                                     const QueryMetrics& metrics);

  /// A horizontal percentage bar, e.g. "[#####.....] 50.0%".
  static std::string Bar(double fraction, size_t width = 30);
};

}  // namespace nodb

#endif  // NODB_MONITOR_PANEL_H_
