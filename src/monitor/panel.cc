#include "monitor/panel.h"

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"

namespace nodb {

std::string MonitorPanel::Bar(double fraction, size_t width) {
  if (fraction < 0) fraction = 0;
  double shown = std::min(fraction, 1.0);
  size_t filled = static_cast<size_t>(shown * width + 0.5);
  std::string bar = "[";
  bar.append(filled, '#');
  bar.append(width - filled, '.');
  bar += "]";
  char pct[16];
  std::snprintf(pct, sizeof(pct), " %5.1f%%", fraction * 100.0);
  bar += pct;
  return bar;
}

std::string MonitorPanel::RenderTableState(const RawTableState& state) {
  std::string out;
  out += "=== PostgresRaw monitoring: table '" + state.info().name +
         "' ===\n";
  const PositionalMap& map = state.map();
  const RawCache& cache = state.cache();

  out += "positional map  " + Bar(map.utilization()) + "  " +
         FormatBytes(map.bytes_used()) + " / " +
         FormatBytes(map.budget_bytes()) + ", " +
         std::to_string(map.num_chunks()) + " chunks, " +
         std::to_string(map.evictions()) + " evictions\n";
  out += "cache           " + Bar(cache.utilization()) + "  " +
         FormatBytes(cache.bytes_used()) + " / " +
         FormatBytes(cache.budget_bytes()) + ", " +
         std::to_string(cache.num_segments()) + " segments, hits " +
         std::to_string(cache.hits()) + " / misses " +
         std::to_string(cache.misses()) + "\n";
  const ShadowStore& store = state.store();
  out += "shadow store    " + Bar(store.utilization()) + "  " +
         FormatBytes(store.bytes_used()) + " / " +
         FormatBytes(store.budget_bytes()) + ", " +
         std::to_string(store.num_segments()) + " segments, " +
         std::to_string(store.promotions()) + " promotions, hits " +
         std::to_string(store.hits()) + " / evictions " +
         std::to_string(store.evictions()) + "\n";
  out += "tuple index     " + std::to_string(map.known_rows()) +
         " rows known" +
         std::string(map.rows_complete() ? " (complete)" : " (partial)") +
         "\n";

  const auto& counts = state.attribute_access_counts();
  out += "attribute usage / positional-map coverage:\n";
  for (size_t a = 0; a < counts.size(); ++a) {
    if (counts[a] == 0 && map.CoverageFraction(static_cast<uint32_t>(a)) ==
                              0.0) {
      continue;
    }
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-16s accesses %6llu   map %s\n",
                  state.info().schema->field(a).name.c_str(),
                  static_cast<unsigned long long>(counts[a]),
                  Bar(map.CoverageFraction(static_cast<uint32_t>(a)), 20)
                      .c_str());
    out += line;
  }
  const auto covered = state.stats().CoveredAttributes();
  out += "statistics on " + std::to_string(covered.size()) +
         " attribute(s)\n";
  return out;
}

std::string MonitorPanel::RenderBreakdown(const std::string& label,
                                          const QueryMetrics& metrics) {
  // The derived "Processing" category is total − scan categories, which
  // goes negative when per-category timers overlap a tiny query's wall
  // time (each category is measured independently, so their sum can
  // exceed the wall clock by a few timer quanta). Clamp at zero here —
  // never render a negative duration or bar — independent of whatever
  // the metrics source did.
  int64_t processing =
      std::max<int64_t>(0, metrics.total_ns - metrics.scan.TotalScanNs());
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "%-24s total %10s | proc %10s | io %10s | convert %10s | "
      "parse %10s | tokenize %10s | nodb %10s | rows store/cache/raw "
      "%llu/%llu/%llu | skipped blocks %llu | parse p1/p2 %llu/%llu\n",
      label.c_str(), FormatNanos(metrics.total_ns).c_str(),
      FormatNanos(processing).c_str(),
      FormatNanos(metrics.scan.io_ns).c_str(),
      FormatNanos(metrics.scan.convert_ns).c_str(),
      FormatNanos(metrics.scan.parsing_ns).c_str(),
      FormatNanos(metrics.scan.tokenize_ns).c_str(),
      FormatNanos(metrics.scan.nodb_ns).c_str(),
      static_cast<unsigned long long>(metrics.scan.rows_from_store),
      static_cast<unsigned long long>(metrics.scan.rows_from_cache),
      static_cast<unsigned long long>(metrics.scan.rows_from_raw),
      static_cast<unsigned long long>(metrics.scan.zone_skipped_blocks),
      static_cast<unsigned long long>(
          metrics.scan.pushdown_phase1_fields),
      static_cast<unsigned long long>(
          metrics.scan.pushdown_phase2_fields));
  return line;
}

std::string MonitorPanel::RenderStorageTiers(const RawTableState& state) {
  const PositionalMap& map = state.map();
  const RawCache& cache = state.cache();
  const ShadowStore& store = state.store();
  const uint64_t known = map.known_rows();

  std::string out;
  out += "=== storage tiers: table '" + state.info().name + "' ===\n";
  out += "raw file        " + state.info().path + "\n";
  out += "positional map  " + FormatBytes(map.bytes_used()) + " / " +
         FormatBytes(map.budget_bytes()) + ", " +
         std::to_string(map.num_chunks()) + " chunks, " +
         std::to_string(known) + " rows known" +
         (map.rows_complete() ? " (complete)" : " (partial)") + "\n";
  out += "raw cache       " + FormatBytes(cache.bytes_used()) + " / " +
         FormatBytes(cache.budget_bytes()) + ", " +
         std::to_string(cache.num_segments()) + " segments, hits " +
         std::to_string(cache.hits()) + " / misses " +
         std::to_string(cache.misses()) + "\n";
  out += "shadow store    " + FormatBytes(store.bytes_used()) + " / " +
         FormatBytes(store.budget_bytes()) + ", " +
         std::to_string(store.num_segments()) + " segments, " +
         std::to_string(store.promotions()) + " promotions, " +
         std::to_string(store.evictions()) + " evictions, block hits " +
         std::to_string(store.hits()) + "\n";
  out += "zone maps       " + std::to_string(state.zones().num_entries()) +
         " (attribute, block) summaries\n";

  // Recovered-vs-rebuilt: what a persisted snapshot restored at open
  // vs what queries in this process built from the raw file.
  const persist::RecoveryReport recovery = state.recovery();
  if (recovery.attempted && recovery.any_recovered()) {
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "recovered       %llu rows, %llu map chunks, %llu zone entries, "
        "%llu store segments%s [%s]\n",
        static_cast<unsigned long long>(recovery.rows_recovered),
        static_cast<unsigned long long>(recovery.chunks_recovered),
        static_cast<unsigned long long>(recovery.zone_entries_recovered),
        static_cast<unsigned long long>(
            recovery.store_segments_recovered),
        recovery.stats_recovered ? ", stats" : "",
        recovery.detail.c_str());
    out += line;
  } else if (!recovery.detail.empty()) {
    out += "recovered       nothing (" + recovery.detail + ")\n";
  } else {
    out += "recovered       nothing (built by queries this process)\n";
  }

  const std::vector<uint32_t> promoted = store.MaterializedAttributes();
  const std::vector<uint64_t> heat = state.stats().access_heat_counts();
  out += "promoted columns (" + std::to_string(promoted.size()) + "):\n";
  for (uint32_t a : promoted) {
    double coverage =
        known == 0 ? 0.0
                   : static_cast<double>(store.rows_materialized(a)) /
                         static_cast<double>(known);
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-16s heat %6llu   store %s\n",
                  state.info().schema->field(a).name.c_str(),
                  static_cast<unsigned long long>(
                      a < heat.size() ? heat[a] : 0),
                  Bar(coverage, 20).c_str());
    out += line;
  }
  return out;
}

std::string MonitorPanel::RenderConcurrentBatch(
    const ConcurrentBatchOutcome& batch) {
  std::string out;
  out += "=== concurrent batch: " + std::to_string(batch.reports.size()) +
         " queries on " + std::to_string(batch.clients) + " client(s) ===\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "wall %s | %.1f queries/s | peak in flight %u | "
                "failures %llu\n",
                FormatNanos(batch.wall_ns).c_str(),
                batch.queries_per_second(), batch.peak_in_flight(),
                static_cast<unsigned long long>(batch.failures()));
  out += line;
  for (const ConcurrentQueryReport& report : batch.reports) {
    std::snprintf(line, sizeof(line), "q%-3zu %-10s [%s .. %s]  ",
                  report.index, report.client.c_str(),
                  FormatNanos(report.start_ns).c_str(),
                  FormatNanos(report.finish_ns).c_str());
    out += line;
    if (!report.status.ok()) {
      out += "FAILED: " + report.status.ToString() + "\n";
      continue;
    }
    out += RenderBreakdown(report.sql.substr(0, 24), report.metrics);
  }
  return out;
}

std::string MonitorPanel::BreakdownCsvHeader() {
  return "label,total_ns,processing_ns,io_ns,convert_ns,parsing_ns,"
         "tokenize_ns,nodb_ns,rows,bytes_read,cache_hits,cache_misses,"
         "map_exact,map_anchor,map_blind,store_hits,rows_store,"
         "rows_cache,rows_raw,zone_skipped_blocks,zone_skipped_rows,"
         "pushdown_pruned,pushdown_p1_fields,pushdown_p2_fields,"
         "scans_recovered_map,scans_recovered_store";
}

std::string MonitorPanel::BreakdownCsvRow(const std::string& label,
                                          const QueryMetrics& metrics) {
  char line[512];
  const ScanMetrics& s = metrics.scan;
  std::snprintf(line, sizeof(line),
                "%s,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%llu,%llu,%llu,"
                "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
                "%llu,%llu,%llu,%llu",
                label.c_str(), static_cast<long long>(metrics.total_ns),
                static_cast<long long>(metrics.processing_ns()),
                static_cast<long long>(s.io_ns),
                static_cast<long long>(s.convert_ns),
                static_cast<long long>(s.parsing_ns),
                static_cast<long long>(s.tokenize_ns),
                static_cast<long long>(s.nodb_ns),
                static_cast<unsigned long long>(s.rows_scanned),
                static_cast<unsigned long long>(s.bytes_read),
                static_cast<unsigned long long>(s.cache_block_hits),
                static_cast<unsigned long long>(s.cache_block_misses),
                static_cast<unsigned long long>(s.map_exact_probes),
                static_cast<unsigned long long>(s.map_anchor_probes),
                static_cast<unsigned long long>(s.map_blind_rows),
                static_cast<unsigned long long>(s.store_block_hits),
                static_cast<unsigned long long>(s.rows_from_store),
                static_cast<unsigned long long>(s.rows_from_cache),
                static_cast<unsigned long long>(s.rows_from_raw),
                static_cast<unsigned long long>(s.zone_skipped_blocks),
                static_cast<unsigned long long>(s.zone_skipped_rows),
                static_cast<unsigned long long>(s.pushdown_rows_pruned),
                static_cast<unsigned long long>(s.pushdown_phase1_fields),
                static_cast<unsigned long long>(s.pushdown_phase2_fields),
                static_cast<unsigned long long>(
                    s.scans_using_recovered_map),
                static_cast<unsigned long long>(
                    s.scans_using_recovered_store));
  return line;
}

std::string MonitorPanel::RenderServer(const server::ServerStats& stats) {
  std::string out = "=== server front end ===\n";
  if (stats.draining) out += "state           DRAINING\n";
  out += "connections     " + std::to_string(stats.connections) + "\n";
  double load = stats.max_in_flight == 0
                    ? 0.0
                    : static_cast<double>(stats.in_flight) /
                          static_cast<double>(stats.max_in_flight);
  out += "in flight       " + Bar(load) + "  " +
         std::to_string(stats.in_flight) + " / " +
         std::to_string(stats.max_in_flight) + ", " +
         std::to_string(stats.queued) + " queued\n";
  out += "admission       admitted " + std::to_string(stats.admitted_total) +
         " / rejected " + std::to_string(stats.rejected_total) +
         " (queue timeouts " + std::to_string(stats.queue_timeouts_total) +
         ")\n";
  if (!stats.tenants.empty()) out += "tenants:\n";
  for (const server::TenantAdmissionStats& t : stats.tenants) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-16s in flight %2u   rows served %10llu   "
                  "reserved %s   rejected %llu\n",
                  t.name.c_str(), t.in_flight,
                  static_cast<unsigned long long>(t.rows_served),
                  FormatBytes(t.reserved_bytes).c_str(),
                  static_cast<unsigned long long>(t.rejected_total));
    out += line;
  }
  return out;
}

}  // namespace nodb
