#include "persist/snapshot.h"

#include <cstdio>
#include <cstring>

#include "io/file.h"
#include "obs/metrics.h"
#include "util/checksum.h"
#include "util/hash.h"
#include "util/stopwatch.h"

namespace nodb::persist {

namespace {

// ------------------------------------------------- binary primitives
// Little-endian fixed-width encoding; std::string is the buffer.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(v));
  PutU64(out, bits);
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked sequential reader over a section payload. Any
/// overrun flips `ok` and every subsequent read returns zero — the
/// caller checks `ok` once at the end and drops the section.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size)
      : p_(data), end_(data + size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  uint8_t U8() {
    if (!Has(1)) return 0;
    return static_cast<uint8_t>(*p_++);
  }

  uint32_t U32() {
    if (!Has(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(p_[i]))
           << (8 * i);
    }
    p_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Has(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(p_[i]))
           << (8 * i);
    }
    p_ += 8;
    return v;
  }

  int64_t I64() { return static_cast<int64_t>(U64()); }

  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string Str() {
    uint32_t len = U32();
    if (!Has(len)) return {};
    std::string s(p_, len);
    p_ += len;
    return s;
  }

  /// Guards a count field against absurd values: each element needs at
  /// least `elem_bytes` more payload, so a corrupt count that slipped
  /// past the CRC cannot drive a huge allocation.
  bool FitsCount(uint64_t count, size_t elem_bytes) {
    if (count > remaining() / (elem_bytes == 0 ? 1 : elem_bytes)) {
      ok_ = false;
      return false;
    }
    return true;
  }

 private:
  bool Has(size_t n) {
    if (static_cast<size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

// ---------------------------------------------------- section codecs

void EncodeMap(const PositionalMap::Image& image, std::string* buf) {
  std::string& out = *buf;
  PutU64(&out, image.row_starts.size());
  for (uint64_t start : image.row_starts) PutU64(&out, start);
  PutU8(&out, image.rows_complete ? 1 : 0);
  PutU64(&out, image.indexed_file_size);
  PutU64(&out, image.next_discovery_offset);
  PutU64(&out, image.chunks.size());
  for (const auto& chunk : image.chunks) {
    PutU64(&out, chunk.first_row);
    PutU32(&out, static_cast<uint32_t>(chunk.attrs.size()));
    for (uint32_t a : chunk.attrs) PutU32(&out, a);
    PutU64(&out, chunk.data.size());
    for (uint32_t d : chunk.data) PutU32(&out, d);
  }
}

bool DecodeMap(const char* data, size_t size, PositionalMap::Image* out) {
  ByteReader r(data, size);
  uint64_t rows = r.U64();
  if (!r.FitsCount(rows, 8)) return false;
  out->row_starts.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) out->row_starts.push_back(r.U64());
  out->rows_complete = r.U8() != 0;
  out->indexed_file_size = r.U64();
  out->next_discovery_offset = r.U64();
  uint64_t chunks = r.U64();
  if (!r.FitsCount(chunks, 20)) return false;
  out->chunks.reserve(chunks);
  for (uint64_t c = 0; c < chunks; ++c) {
    PositionalMap::Image::ChunkImage chunk;
    chunk.first_row = r.U64();
    uint32_t nattrs = r.U32();
    if (!r.FitsCount(nattrs, 4)) return false;
    chunk.attrs.reserve(nattrs);
    for (uint32_t i = 0; i < nattrs; ++i) chunk.attrs.push_back(r.U32());
    uint64_t ndata = r.U64();
    if (!r.FitsCount(ndata, 4)) return false;
    chunk.data.reserve(ndata);
    for (uint64_t i = 0; i < ndata; ++i) chunk.data.push_back(r.U32());
    out->chunks.push_back(std::move(chunk));
  }
  return r.ok();
}

void EncodeStats(const StatsCollector::Image& image, std::string* buf) {
  std::string& out = *buf;
  PutU32(&out, static_cast<uint32_t>(image.attrs.size()));
  for (const auto& attr : image.attrs) {
    PutU8(&out, attr.has_value() ? 1 : 0);
    if (!attr.has_value()) continue;
    PutU64(&out, attr->count);
    PutU64(&out, attr->nulls);
    PutU8(&out, attr->has_min ? 1 : 0);
    PutF64(&out, attr->min);
    PutU8(&out, attr->has_max ? 1 : 0);
    PutF64(&out, attr->max);
    PutU64(&out, attr->kmv.size());
    for (uint64_t h : attr->kmv) PutU64(&out, h);
    PutU64(&out, attr->numeric_sample.size());
    for (double v : attr->numeric_sample) PutF64(&out, v);
    PutU64(&out, attr->string_sample.size());
    for (const std::string& s : attr->string_sample) PutStr(&out, s);
    PutU64(&out, attr->sampled_stream);
  }
  PutU64(&out, image.heat.size());
  for (uint64_t h : image.heat) PutU64(&out, h);
  PutU64(&out, image.observed.size());
  for (uint64_t k : image.observed) PutU64(&out, k);
}

bool DecodeStats(const char* data, size_t size,
                 StatsCollector::Image* out) {
  ByteReader r(data, size);
  uint32_t nattrs = r.U32();
  if (!r.FitsCount(nattrs, 1)) return false;
  out->attrs.resize(nattrs);
  for (uint32_t a = 0; a < nattrs; ++a) {
    if (r.U8() == 0) continue;
    AttributeStats::Image attr;
    attr.count = r.U64();
    attr.nulls = r.U64();
    attr.has_min = r.U8() != 0;
    attr.min = r.F64();
    attr.has_max = r.U8() != 0;
    attr.max = r.F64();
    uint64_t nkmv = r.U64();
    if (!r.FitsCount(nkmv, 8)) return false;
    attr.kmv.reserve(nkmv);
    for (uint64_t i = 0; i < nkmv; ++i) attr.kmv.push_back(r.U64());
    uint64_t nnum = r.U64();
    if (!r.FitsCount(nnum, 8)) return false;
    attr.numeric_sample.reserve(nnum);
    for (uint64_t i = 0; i < nnum; ++i) {
      attr.numeric_sample.push_back(r.F64());
    }
    uint64_t nstr = r.U64();
    if (!r.FitsCount(nstr, 4)) return false;
    attr.string_sample.reserve(nstr);
    for (uint64_t i = 0; i < nstr; ++i) {
      attr.string_sample.push_back(r.Str());
    }
    attr.sampled_stream = r.U64();
    out->attrs[a] = std::move(attr);
  }
  uint64_t nheat = r.U64();
  if (!r.FitsCount(nheat, 8)) return false;
  out->heat.reserve(nheat);
  for (uint64_t i = 0; i < nheat; ++i) out->heat.push_back(r.U64());
  uint64_t nobs = r.U64();
  if (!r.FitsCount(nobs, 8)) return false;
  out->observed.reserve(nobs);
  for (uint64_t i = 0; i < nobs; ++i) out->observed.push_back(r.U64());
  return r.ok();
}

void EncodeZones(const ZoneMaps::Image& image, std::string* buf) {
  std::string& out = *buf;
  PutU64(&out, image.entries.size());
  for (const auto& ei : image.entries) {
    PutU32(&out, ei.attr);
    PutU64(&out, ei.block);
    uint8_t flags = 0;
    if (ei.entry.is_int) flags |= 1;
    if (ei.entry.has_null) flags |= 2;
    if (ei.entry.non_null) flags |= 4;
    if (ei.entry.unsafe) flags |= 8;
    PutU8(&out, flags);
    PutI64(&out, ei.entry.min_i);
    PutI64(&out, ei.entry.max_i);
    PutF64(&out, ei.entry.min_d);
    PutF64(&out, ei.entry.max_d);
    PutU64(&out, ei.entry.rows);
  }
}

bool DecodeZones(const char* data, size_t size, ZoneMaps::Image* out) {
  ByteReader r(data, size);
  uint64_t n = r.U64();
  if (!r.FitsCount(n, 4 + 8 + 1 + 8 * 5)) return false;
  out->entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ZoneMaps::Image::EntryImage ei;
    ei.attr = r.U32();
    ei.block = r.U64();
    uint8_t flags = r.U8();
    ei.entry.is_int = (flags & 1) != 0;
    ei.entry.has_null = (flags & 2) != 0;
    ei.entry.non_null = (flags & 4) != 0;
    ei.entry.unsafe = (flags & 8) != 0;
    ei.entry.min_i = r.I64();
    ei.entry.max_i = r.I64();
    ei.entry.min_d = r.F64();
    ei.entry.max_d = r.F64();
    ei.entry.rows = r.U64();
    out->entries.push_back(ei);
  }
  return r.ok();
}

void EncodeStore(const ShadowStore::Image& image, std::string* buf) {
  std::string& out = *buf;
  PutU64(&out, image.segments.size());
  for (const auto& seg : image.segments) {
    const ColumnVector& col = *seg.segment;
    PutU32(&out, seg.attr);
    PutU64(&out, seg.block);
    PutU8(&out, static_cast<uint8_t>(col.type()));
    PutU64(&out, col.size());
    for (size_t i = 0; i < col.size(); ++i) {
      if (col.IsNull(i)) {
        PutU8(&out, 0);
        continue;
      }
      PutU8(&out, 1);
      switch (col.type()) {
        case DataType::kInt64:
        case DataType::kDate:
          PutI64(&out, col.GetInt64(i));
          break;
        case DataType::kDouble:
          PutF64(&out, col.GetDouble(i));
          break;
        case DataType::kString: {
          std::string_view s = col.GetString(i);
          PutU32(&out, static_cast<uint32_t>(s.size()));
          out.append(s.data(), s.size());
          break;
        }
      }
    }
  }
}

bool DecodeStore(const char* data, size_t size, const Schema& schema,
                 ShadowStore::Image* out) {
  ByteReader r(data, size);
  uint64_t n = r.U64();
  if (!r.FitsCount(n, 4 + 8 + 1 + 8)) return false;
  out->segments.reserve(n);
  for (uint64_t s = 0; s < n; ++s) {
    uint32_t attr = r.U32();
    uint64_t block = r.U64();
    uint8_t type_byte = r.U8();
    uint64_t rows = r.U64();
    if (type_byte > static_cast<uint8_t>(DataType::kDate)) return false;
    DataType type = static_cast<DataType>(type_byte);
    if (!r.FitsCount(rows, 1)) return false;
    auto col = std::make_shared<ColumnVector>(type);
    col->Reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      if (r.U8() == 0) {
        col->AppendNull();
        continue;
      }
      switch (type) {
        case DataType::kInt64:
          col->AppendInt64(r.I64());
          break;
        case DataType::kDate:
          col->AppendDate(r.I64());
          break;
        case DataType::kDouble:
          col->AppendDouble(r.F64());
          break;
        case DataType::kString: {
          std::string v = r.Str();
          col->AppendString(Slice(v.data(), v.size()));
          break;
        }
      }
    }
    if (!r.ok()) return false;
    // A segment whose attribute or type does not match the live schema
    // is dropped (the schema fingerprint makes this unreachable short
    // of a crafted file; stay defensive anyway).
    if (attr >= schema.num_fields() ||
        schema.field(attr).type != type) {
      continue;
    }
    out->segments.push_back(
        ShadowStore::Image::SegmentImage{attr, block, std::move(col)});
  }
  return r.ok();
}

// ------------------------------------------------------------ header

constexpr size_t kMagicLen = 8;
constexpr size_t kDirEntryLen = 4 + 8 + 8 + 4;
// magic + version + rows_per_block + signature(5×8) + schema hash
// + section count.
constexpr size_t kFixedHeaderLen = kMagicLen + 4 + 4 + 40 + 8 + 4;

size_t HeaderLen(size_t sections) {
  return kFixedHeaderLen + sections * kDirEntryLen + 4 /* header crc */;
}

bool ParseLayout(const std::string& bytes, SnapshotLayout* layout,
                 std::string* error) {
  if (bytes.size() < HeaderLen(0) ||
      std::memcmp(bytes.data(), Snapshot::kMagic, kMagicLen) != 0) {
    *error = "not a NoDB snapshot (bad magic)";
    return false;
  }
  ByteReader r(bytes.data() + kMagicLen, bytes.size() - kMagicLen);
  layout->version = r.U32();
  if (layout->version != Snapshot::kVersion) {
    *error = "unsupported snapshot version " +
             std::to_string(layout->version);
    return false;
  }
  layout->rows_per_block = r.U32();
  layout->raw_size = r.U64();
  layout->raw_mtime_nanos = r.I64();
  layout->head_hash = r.U64();
  layout->tail_hash = r.U64();
  layout->probe_bytes = r.U64();
  layout->schema_hash = r.U64();
  uint32_t nsections = r.U32();
  if (!r.ok() || nsections > 64) {
    *error = "corrupt snapshot header";
    return false;
  }
  size_t header_len = HeaderLen(nsections);
  if (bytes.size() < header_len) {
    *error = "truncated snapshot header";
    return false;
  }
  for (uint32_t i = 0; i < nsections; ++i) {
    SectionInfo info;
    info.id = r.U32();
    info.offset = r.U64();
    info.length = r.U64();
    info.crc = r.U32();
    layout->sections.push_back(info);
  }
  uint32_t stored_crc = r.U32();
  if (!r.ok()) {
    *error = "corrupt snapshot header";
    return false;
  }
  uint32_t actual_crc = Crc32c(bytes.data(), header_len - 4);
  if (stored_crc != actual_crc) {
    // A bad header means the directory itself cannot be trusted —
    // the whole snapshot is discarded, every structure starts cold.
    *error = "snapshot header checksum mismatch";
    return false;
  }
  return true;
}

}  // namespace

const char* SectionName(uint32_t id) {
  switch (id) {
    case Snapshot::kSectionMap:
      return "map";
    case Snapshot::kSectionStats:
      return "stats";
    case Snapshot::kSectionZones:
      return "zones";
    case Snapshot::kSectionStore:
      return "store";
  }
  return "?";
}

std::string DefaultSnapshotPath(const std::string& data_path) {
  return data_path + ".nodbmeta";
}

std::string SnapshotPathFor(const RawTableInfo& info,
                            const std::string& snapshot_path) {
  if (snapshot_path.empty()) return DefaultSnapshotPath(info.path);
  size_t slash = info.path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? info.path : info.path.substr(slash + 1);
  // A full-path fingerprint keeps tables whose data files share a
  // basename in different directories from clobbering each other's
  // sidecars inside the one snapshot directory.
  char fp[17];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(
                    Fnv1a64(info.path.data(), info.path.size())));
  return snapshot_path + "/" + base + "." + fp + ".nodbmeta";
}

uint64_t SchemaFingerprint(const RawTableInfo& info) {
  uint64_t h = 0xA0B1C2D3E4F50617ULL;
  for (size_t i = 0; i < info.schema->num_fields(); ++i) {
    const Field& field = info.schema->field(i);
    h = CombineHash64(h, Fnv1a64(field.name.data(), field.name.size()));
    h = CombineHash64(h, MixHash64(static_cast<uint64_t>(field.type)));
  }
  char dialect[4] = {info.dialect.delimiter, info.dialect.quote,
                     static_cast<char>(info.dialect.allow_quoting),
                     static_cast<char>(info.dialect.has_header)};
  return CombineHash64(h, Fnv1a64(dialect, sizeof(dialect)));
}

Status WriteSnapshot(const RawTableState& state, const std::string& path) {
  static obs::LatencyHistogram* save_ns =
      obs::MetricsRegistry::Global().GetHistogram(
          "nodb_snapshot_save_ns",
          "Snapshot save duration (freeze + encode + atomic write)");
  static obs::Counter* saves = obs::MetricsRegistry::Global().GetCounter(
      "nodb_snapshot_saves_total", "Snapshots written");
  static obs::Counter* saved_bytes =
      obs::MetricsRegistry::Global().GetCounter(
          "nodb_snapshot_saved_bytes_total", "Snapshot bytes written");
  Stopwatch watch;
  // Signature strictly before the freeze: if a concurrent update check
  // invalidates + re-signs between the two, the snapshot pairs the
  // *old* signature with newer structures and the loader rejects it
  // (cold start — safe). The reverse order could pair a fresh
  // signature with stale structures, which would validate wrong data.
  FileSignature sig = state.signature();
  AdaptiveImage image = state.Freeze();

  // Sections are encoded straight into the output buffer (after a
  // placeholder header, patched in below), so the store's re-encoded
  // column segments are never held in a second snapshot-sized copy.
  constexpr size_t kNumSections = 4;
  const size_t header_len = HeaderLen(kNumSections);
  std::string out(header_len, '\0');
  SectionInfo dir[kNumSections];
  for (size_t i = 0; i < kNumSections; ++i) {
    SectionInfo& section = dir[i];
    section.offset = out.size();
    switch (i) {
      case 0:
        section.id = Snapshot::kSectionMap;
        EncodeMap(*image.map, &out);
        break;
      case 1:
        section.id = Snapshot::kSectionStats;
        EncodeStats(*image.stats, &out);
        break;
      case 2:
        section.id = Snapshot::kSectionZones;
        EncodeZones(*image.zones, &out);
        break;
      case 3:
        section.id = Snapshot::kSectionStore;
        EncodeStore(*image.store, &out);
        break;
    }
    section.length = out.size() - section.offset;
    section.crc = Crc32c(out.data() + section.offset, section.length);
  }

  std::string header;
  header.reserve(header_len);
  header.append(Snapshot::kMagic, kMagicLen);
  PutU32(&header, Snapshot::kVersion);
  PutU32(&header, state.config().rows_per_block);
  PutU64(&header, sig.size());
  PutI64(&header, sig.mtime_nanos());
  PutU64(&header, sig.head_hash());
  PutU64(&header, sig.tail_hash());
  PutU64(&header, FileSignature::kProbeBytes);
  PutU64(&header, SchemaFingerprint(state.info()));
  PutU32(&header, kNumSections);
  for (const SectionInfo& section : dir) {
    PutU32(&header, section.id);
    PutU64(&header, section.offset);
    PutU64(&header, section.length);
    PutU32(&header, section.crc);
  }
  PutU32(&header, Crc32c(header.data(), header.size()));
  NODB_CHECK(header.size() == header_len);
  out.replace(0, header_len, header);
  Status status = WriteFileAtomic(path, Slice(out.data(), out.size()));
  if (status.ok()) {
    saves->Add(1);
    saved_bytes->Add(out.size());
    save_ns->Record(watch.ElapsedNanos());
  }
  return status;
}

Result<SnapshotLayout> InspectSnapshot(const std::string& path) {
  NODB_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  SnapshotLayout layout;
  std::string error;
  if (!ParseLayout(bytes, &layout, &error)) {
    return Status::ParseError(error);
  }
  return layout;
}

namespace {

Result<RecoveryReport> LoadSnapshotImpl(RawTableState* state,
                                        const std::string& path) {
  if (state == nullptr) {
    return Status::InvalidArgument("LoadSnapshot: null table state");
  }
  // Every degradation lands here: record why the engine cold-starts
  // and return gracefully — a snapshot is an accelerator, never a
  // dependency.
  auto cold = [&](std::string reason) {
    RecoveryReport report;
    report.detail = std::move(reason);
    state->RecordRecovery(report);
    return report;
  };

  if (!FileExists(path)) return cold("no snapshot at " + path);
  auto bytes_or = ReadFileToString(path);
  if (!bytes_or.ok()) {
    return cold("unreadable snapshot: " + bytes_or.status().ToString());
  }
  const std::string& bytes = *bytes_or;

  SnapshotLayout layout;
  std::string error;
  if (!ParseLayout(bytes, &layout, &error)) return cold(error);

  // The snapshot must describe this table as currently configured:
  // block granularity keys every chunk/segment/zone entry, and the
  // schema/dialect fingerprint guards against reinterpreting spans
  // parsed under different rules.
  if (layout.rows_per_block != state->config().rows_per_block) {
    return cold("rows_per_block changed since snapshot");
  }
  if (layout.probe_bytes != FileSignature::kProbeBytes) {
    return cold("signature probe size changed since snapshot");
  }
  if (layout.schema_hash != SchemaFingerprint(state->info())) {
    return cold("schema or dialect changed since snapshot");
  }

  // Bind to the raw file's *content*, not just size+mtime: an in-place
  // rewrite with a restored timestamp must still invalidate, because a
  // recovered positional map over different bytes would return wrong
  // answers, not just slow ones.
  FileSignature sig = FileSignature::FromParts(
      state->info().path, layout.raw_size, layout.raw_mtime_nanos,
      layout.head_hash, layout.tail_hash);
  auto change_or = sig.Compare(/*verify_content=*/true);
  if (!change_or.ok()) {
    return cold("raw file unreadable: " + change_or.status().ToString());
  }
  FileChange change = *change_or;
  if (change == FileChange::kRewritten) {
    return cold("raw file rewritten since snapshot");
  }
  if (change == FileChange::kAppended && layout.raw_size > 0) {
    // Recover the prefix only if the old content was newline-terminated
    // (otherwise the final old tuple was extended in place and every
    // recovered position after it would be wrong).
    auto file_or = OpenRandomAccessFile(state->info().path);
    if (!file_or.ok()) {
      return cold("raw file unreadable: " + file_or.status().ToString());
    }
    char last;
    Slice got;
    Status s = (*file_or)->Read(layout.raw_size - 1, 1, &last, &got);
    if (!s.ok() || got.size() != 1 || got[0] != '\n') {
      return cold("append extended the final snapshot row");
    }
  }

  // Sections decode independently; a bad one leaves its structure
  // absent (cold) and is noted, the rest recover.
  AdaptiveImage image;
  std::string notes;
  auto note = [&](uint32_t id, const char* what) {
    if (!notes.empty()) notes += "; ";
    notes += std::string(SectionName(id)) + ": " + what;
  };
  for (const SectionInfo& section : layout.sections) {
    if (section.offset > bytes.size() ||
        section.length > bytes.size() - section.offset) {
      note(section.id, "truncated");
      continue;
    }
    const char* payload = bytes.data() + section.offset;
    if (Crc32c(payload, section.length) != section.crc) {
      note(section.id, "checksum mismatch");
      continue;
    }
    bool decoded = true;
    switch (section.id) {
      case Snapshot::kSectionMap: {
        PositionalMap::Image map_image;
        decoded = DecodeMap(payload, section.length, &map_image);
        if (decoded) image.map = std::move(map_image);
        break;
      }
      case Snapshot::kSectionStats: {
        StatsCollector::Image stats_image;
        decoded = DecodeStats(payload, section.length, &stats_image);
        if (decoded) image.stats = std::move(stats_image);
        break;
      }
      case Snapshot::kSectionZones: {
        ZoneMaps::Image zones_image;
        decoded = DecodeZones(payload, section.length, &zones_image);
        if (decoded) image.zones = std::move(zones_image);
        break;
      }
      case Snapshot::kSectionStore: {
        ShadowStore::Image store_image;
        decoded = DecodeStore(payload, section.length,
                              *state->info().schema, &store_image);
        if (decoded) image.store = std::move(store_image);
        break;
      }
      default:
        note(section.id, "unknown section (skipped)");
        continue;
    }
    if (!decoded) note(section.id, "malformed payload");
  }

  if (notes.empty()) {
    notes = change == FileChange::kAppended
                ? "recovered prefix (raw file appended)"
                : "recovered";
  }
  return state->Thaw(std::move(image), change, std::move(notes));
}

}  // namespace

Result<RecoveryReport> LoadSnapshot(RawTableState* state,
                                    const std::string& path) {
  static obs::LatencyHistogram* load_ns =
      obs::MetricsRegistry::Global().GetHistogram(
          "nodb_snapshot_load_ns",
          "Snapshot recovery duration (including validation)");
  static obs::Counter* loads = obs::MetricsRegistry::Global().GetCounter(
      "nodb_snapshot_loads_total", "Snapshot recovery attempts");
  Stopwatch watch;
  Result<RecoveryReport> report = LoadSnapshotImpl(state, path);
  loads->Add(1);
  load_ns->Record(watch.ElapsedNanos());
  return report;
}

}  // namespace nodb::persist
