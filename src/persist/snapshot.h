#ifndef NODB_PERSIST_SNAPSHOT_H_
#define NODB_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "persist/image.h"
#include "raw/table_state.h"
#include "util/result.h"
#include "util/status.h"

namespace nodb::persist {

/// Persistent adaptive-state snapshots.
///
/// NoDB's auxiliary structures are built as a side effect of queries;
/// the paper notes the positional map "can also be written to disk"
/// so its benefit survives restarts. This subsystem does exactly that
/// for all four structures — positional map (row index + chunks),
/// on-the-fly statistics (sketches, heat), zone maps, and the shadow
/// column store — in a versioned sidecar next to the raw file
/// (`<data>.nodbmeta` by default).
///
/// Format (little-endian, version 1):
///
///   magic "NODBMET1" | u32 version | u32 rows_per_block
///   | raw-file signature: u64 size, i64 mtime_ns, u64 head_hash,
///     u64 tail_hash, u64 probe_bytes
///   | u64 schema+dialect fingerprint | u32 section_count
///   | directory: {u32 id, u64 offset, u64 length, u32 crc32c} ×
///     section_count
///   | u32 header_crc32c
///   | section payloads
///
/// Durability and trust model:
///  - Written crash-safely (WriteFileAtomic: temp + fsync + rename) —
///    a torn write leaves the previous snapshot, not a broken one.
///  - The header binds the snapshot to the raw file's *content*
///    (bounded prefix/suffix hashes, verified on load even when
///    size+mtime match — detection is as strong as the live
///    update check's O(1) probes, no stronger) and to the schema,
///    dialect and row-block granularity it was built under.
///  - Every section carries its own CRC32C; a stale, truncated or
///    corrupt section makes exactly that structure start cold. A bad
///    header discards the whole snapshot. Recovery can therefore
///    never error out and never change query results — the sidecar is
///    a pure accelerator.
///  - A cleanly appended raw file (old content newline-terminated and
///    byte-identical) recovers the whole prefix; discovery reopens
///    and only the appended tail pays first-touch costs, mirroring
///    RawTableState::CheckForUpdates.
class Snapshot {
 public:
  static constexpr char kMagic[8] = {'N', 'O', 'D', 'B',
                                     'M', 'E', 'T', '1'};
  static constexpr uint32_t kVersion = 1;

  // Section ids (directory entries appear in this order).
  static constexpr uint32_t kSectionMap = 1;    ///< row index + chunks
  static constexpr uint32_t kSectionStats = 2;  ///< sketches + heat
  static constexpr uint32_t kSectionZones = 3;
  static constexpr uint32_t kSectionStore = 4;  ///< manifest + segments
};

/// "table.csv" -> "table.csv.nodbmeta" (sidecar next to the data).
std::string DefaultSnapshotPath(const std::string& data_path);

/// Resolves where `info`'s snapshot lives under the configured
/// `snapshot_path`: the default sidecar when empty, otherwise
/// `<snapshot_path>/<basename>.nodbmeta`.
std::string SnapshotPathFor(const RawTableInfo& info,
                            const std::string& snapshot_path);

/// Freezes `state`'s adaptive structures and writes them crash-safely
/// to `path`. The recorded raw-file signature is the one the state
/// holds (captured when the structures were last validated), so the
/// snapshot is self-consistent even if the raw file changed since the
/// last query — the loader will then classify it stale and cold-start.
Status WriteSnapshot(const RawTableState& state, const std::string& path);

/// Validates the sidecar at `path` against the live raw file and thaws
/// every intact section into `state`. Degradations (missing sidecar,
/// stale signature, corrupt/truncated sections, already-warm
/// structures) are never errors: the returned report says what was
/// recovered and why the rest was not, and the same report is stored
/// on the state for MonitorPanel. Only pathological conditions (null
/// state) report a Status error.
Result<RecoveryReport> LoadSnapshot(RawTableState* state,
                                    const std::string& path);

/// Parsed snapshot layout (tests, fuzzing, shell inspection).
struct SectionInfo {
  uint32_t id = 0;
  uint64_t offset = 0;  ///< absolute byte offset of the payload
  uint64_t length = 0;
  uint32_t crc = 0;
};
struct SnapshotLayout {
  uint32_t version = 0;
  uint32_t rows_per_block = 0;
  uint64_t raw_size = 0;
  int64_t raw_mtime_nanos = 0;
  uint64_t head_hash = 0;
  uint64_t tail_hash = 0;
  uint64_t probe_bytes = 0;
  uint64_t schema_hash = 0;
  std::vector<SectionInfo> sections;
};

/// Reads and verifies just the header/directory of the sidecar at
/// `path` (payload CRCs are not checked).
Result<SnapshotLayout> InspectSnapshot(const std::string& path);

/// Fingerprint binding a snapshot to the table definition it was
/// built under: schema field names/types plus the CSV dialect.
uint64_t SchemaFingerprint(const RawTableInfo& info);

const char* SectionName(uint32_t id);

}  // namespace nodb::persist

#endif  // NODB_PERSIST_SNAPSHOT_H_
