#ifndef NODB_PERSIST_IMAGE_H_
#define NODB_PERSIST_IMAGE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "io/file_signature.h"
#include "raw/positional_map.h"
#include "raw/stats_collector.h"
#include "store/shadow_store.h"

namespace nodb::persist {

/// One table's frozen adaptive state: the in-memory images of the four
/// structures the snapshot subsystem persists. Each member is optional
/// on the thaw side — a stale, truncated or corrupt sidecar section
/// simply leaves its structure absent, and the engine rebuilds that
/// structure cold while the rest recover (graceful per-section
/// degradation, never an error and never a wrong answer).
struct AdaptiveImage {
  std::optional<PositionalMap::Image> map;
  std::optional<StatsCollector::Image> stats;
  std::optional<ZoneMaps::Image> zones;
  std::optional<ShadowStore::Image> store;
};

/// What a recovery attempt actually restored vs left to be rebuilt —
/// the recovered-vs-rebuilt accounting surfaced by MonitorPanel and
/// asserted by the restart bench.
struct RecoveryReport {
  /// A sidecar existed and validated against the live raw file (an
  /// unchanged file, or a clean append of new rows). False means cold
  /// start: no sidecar, stale signature, bad header, or warm state.
  bool attempted = false;

  /// How the raw file relates to the snapshot: kUnchanged (full
  /// recovery) or kAppended (prefix recovered, tail first-touched).
  FileChange change = FileChange::kUnchanged;

  bool map_recovered = false;    ///< row index + chunks restored
  bool stats_recovered = false;  ///< sketches + heat restored
  bool zones_recovered = false;  ///< zone-map summaries restored
  bool store_recovered = false;  ///< shadow-store segments restored

  uint64_t rows_recovered = 0;      ///< row-index entries restored
  uint64_t chunks_recovered = 0;    ///< positional-map chunks admitted
  uint64_t zone_entries_recovered = 0;
  uint64_t store_segments_recovered = 0;

  /// Human-readable reason when nothing (or less than everything) was
  /// recovered — "no snapshot", "raw file rewritten", "section
  /// 'store' checksum mismatch", ...
  std::string detail;

  bool any_recovered() const {
    return map_recovered || stats_recovered || zones_recovered ||
           store_recovered;
  }
};

}  // namespace nodb::persist

#endif  // NODB_PERSIST_IMAGE_H_
