#include "raw/raw_cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/tenant.h"

namespace nodb {

namespace {

/// Process-wide cache accounting across every table's RawCache; the
/// per-instance counters below stay the per-table view.
obs::Counter* InsertionsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "nodb_cache_insertions_total", "Segments inserted into a RawCache");
  return counter;
}

obs::Counter* EvictionsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "nodb_cache_evictions_total",
      "Segments evicted from a RawCache by the LRU budget");
  return counter;
}

}  // namespace

std::shared_ptr<const ColumnVector> RawCache::Get(uint32_t attr,
                                                  uint64_t block) {
  MutexLock lock(mu_);
  auto it = entries_.find(Key{attr, block});
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(it->first);
  it->second.lru_pos = lru_.begin();
  return it->second.segment;
}

bool RawCache::Contains(uint32_t attr, uint64_t block) const {
  MutexLock lock(mu_);
  return entries_.count(Key{attr, block}) > 0;
}

size_t RawCache::bytes_used_by(uint32_t owner) const {
  MutexLock lock(mu_);
  auto it = owner_bytes_.find(owner);
  return it == owner_bytes_.end() ? 0 : it->second;
}

void RawCache::Put(uint32_t attr, uint64_t block,
                   std::shared_ptr<const ColumnVector> segment) {
  MutexLock lock(mu_);
  Key key{attr, block};
  size_t bytes = segment->MemoryUsage() + sizeof(Entry) + sizeof(Key);

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Replace (e.g. a partial tail block re-parsed after an append).
    // The old entry goes away even when the new segment is rejected
    // below: serving it again would be serving stale data.
    RemoveLocked(key);
  }
  if (bytes > budget_bytes_) return;
  lru_.push_front(key);
  Entry entry;
  entry.segment = std::move(segment);
  entry.bytes = bytes;
  entry.owner = obs::ScopedTenantLabel::CurrentId();
  entry.lru_pos = lru_.begin();
  owner_bytes_[entry.owner] += bytes;
  entries_.emplace(key, std::move(entry));
  bytes_used_ += bytes;
  InsertionsCounter()->Add(1);
  EvictOverBudget();
}

void RawCache::RemoveLocked(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_used_ -= it->second.bytes;
  auto ob = owner_bytes_.find(it->second.owner);
  if (ob != owner_bytes_.end()) {
    ob->second -= std::min(ob->second, it->second.bytes);
    if (ob->second == 0) owner_bytes_.erase(ob);
  }
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void RawCache::EvictOverBudget() {
  while (bytes_used_ > budget_bytes_ && lru_.size() > 1) {
    // An over-budget cache always has an over-share owner
    // (pigeonhole); the global tail stays as the fallback, and the
    // front (just inserted) is never the victim.
    size_t share =
        budget_bytes_ / std::max<size_t>(size_t{1}, owner_bytes_.size());
    Key victim = lru_.back();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (&*it == &lru_.front()) break;
      auto entry = entries_.find(*it);
      if (entry == entries_.end()) continue;
      auto ob = owner_bytes_.find(entry->second.owner);
      if (ob != owner_bytes_.end() && ob->second > share) {
        victim = *it;
        break;
      }
    }
    RemoveLocked(victim);
    ++evictions_;
    EvictionsCounter()->Add(1);
  }
}

void RawCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
  owner_bytes_.clear();
  bytes_used_ = 0;
}

}  // namespace nodb
