#include "raw/raw_cache.h"

#include "obs/metrics.h"

namespace nodb {

namespace {

/// Process-wide cache accounting across every table's RawCache; the
/// per-instance counters below stay the per-table view.
obs::Counter* InsertionsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "nodb_cache_insertions_total", "Segments inserted into a RawCache");
  return counter;
}

obs::Counter* EvictionsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "nodb_cache_evictions_total",
      "Segments evicted from a RawCache by the LRU budget");
  return counter;
}

}  // namespace

std::shared_ptr<const ColumnVector> RawCache::Get(uint32_t attr,
                                                  uint64_t block) {
  MutexLock lock(mu_);
  auto it = entries_.find(Key{attr, block});
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(it->first);
  it->second.lru_pos = lru_.begin();
  return it->second.segment;
}

bool RawCache::Contains(uint32_t attr, uint64_t block) const {
  MutexLock lock(mu_);
  return entries_.count(Key{attr, block}) > 0;
}

void RawCache::Put(uint32_t attr, uint64_t block,
                   std::shared_ptr<const ColumnVector> segment) {
  MutexLock lock(mu_);
  Key key{attr, block};
  size_t bytes = segment->MemoryUsage() + sizeof(Entry) + sizeof(Key);

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Replace (e.g. a partial tail block re-parsed after an append).
    // The old entry goes away even when the new segment is rejected
    // below: serving it again would be serving stale data.
    bytes_used_ -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  if (bytes > budget_bytes_) return;
  lru_.push_front(key);
  Entry entry;
  entry.segment = std::move(segment);
  entry.bytes = bytes;
  entry.lru_pos = lru_.begin();
  entries_.emplace(key, std::move(entry));
  bytes_used_ += bytes;
  InsertionsCounter()->Add(1);
  EvictOverBudget();
}

void RawCache::EvictOverBudget() {
  while (bytes_used_ > budget_bytes_ && lru_.size() > 1) {
    Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    bytes_used_ -= it->second.bytes;
    entries_.erase(it);
    ++evictions_;
    EvictionsCounter()->Add(1);
  }
}

void RawCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_used_ = 0;
}

}  // namespace nodb
