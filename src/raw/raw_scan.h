#ifndef NODB_RAW_RAW_SCAN_H_
#define NODB_RAW_RAW_SCAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "csv/tokenizer.h"
#include "exec/expr.h"
#include "exec/operator.h"
#include "io/buffered_reader.h"
#include "raw/scan_metrics.h"
#include "raw/table_state.h"

namespace nodb {

/// The in-situ scan operator — PostgresRaw's replacement for the leaf
/// of a conventional query plan (paper §3).
///
/// For every tuple it:
///   1. locates the tuple's byte range (from the positional map's row
///      index when known, otherwise by scanning for the newline and
///      teaching the map);
///   2. serves each requested attribute from the binary cache when the
///      block segment is resident;
///   3. otherwise finds the attribute's span: exactly from a positional
///      map chunk, or by tokenizing from the nearest map anchor — never
///      past the last requested attribute (*selective tokenizing*);
///   4. converts only those spans to binary (*selective parsing*) and
///      emits batches containing only the requested columns
///      (*selective tuple formation* together with the columnar
///      filter);
///   5. as side effects populates the map (per the distance policy),
///      the cache and the statistics for the touched blocks — and,
///      for attributes whose access heat crossed the promotion
///      threshold, hands the fully parsed (or cache-resident) block
///      segments to the shadow column store (piggybacked promotion:
///      the scan that parsed a hot column pays for it exactly once).
///
/// The scan builds a **hybrid block plan**: blocks all of whose needed
/// columns are already materialized in the shadow store are emitted
/// straight from the store — no row location, no positional-map
/// lookup, no tokenizing, no value parsing — while the remaining
/// blocks take the raw/cache path above, and the two interleave
/// freely. Results are byte-identical either way. Store serving
/// requires the positional-map component (the raw residue relies on
/// it to locate rows after a served block).
///
/// All NoDB structures honor the per-table NoDbConfig; with everything
/// disabled this operator *is* the paper's "Baseline" external-files
/// scan.
///
/// Many operators may scan the same RawTableState concurrently. Each
/// operator keeps all parsing state private and interacts with the
/// shared structures only through their synchronized interfaces:
/// per block it snapshots the published row bounds (SnapshotRows) and
/// pins a chunk plan (PrepareBlock), then locates, tokenizes and
/// parses rows without any locking; finished segments and chunks are
/// published in short exclusive sections at block commit. Only the
/// undiscovered tail serializes (the map's discovery baton) — queries
/// never wait on each other's parsing, only on publication of rows
/// nobody has walked yet.
class RawScanOperator final : public ExecOperator {
 public:
  /// `projection`: table attribute indices to emit, ascending. May be
  /// empty (COUNT(*) plans): rows are located but nothing is parsed.
  /// `metrics` (optional) receives the scan's cost breakdown.
  /// `internal`: an engine-internal pass (the store promoter) — it
  /// does not record attribute accesses, so usage counts and promotion
  /// heat keep meaning "scans the workload requested".
  RawScanOperator(RawTableState* state, std::vector<uint32_t> projection,
                  ScanMetrics* metrics, bool internal = false);

  /// Arms predicate pushdown: `predicates` are boolean conjuncts bound
  /// over this scan's *output* schema (every referenced column is in
  /// the projection). The scan then evaluates them two-phase per block
  /// — tokenize/parse only the predicate columns for every row,
  /// vectorize the conjuncts over that partial batch, and parse the
  /// remaining projection columns only for qualifying rows — and,
  /// when zone maps are enabled, skips blocks provably disjoint from a
  /// pushed range/equality predicate without locating a single row.
  /// Emitted rows are exactly the rows a FilterOperator cascade over
  /// the unfiltered scan would keep (NULL predicates drop the row,
  /// like SQL WHERE). Call before Open.
  void SetPushdownPredicates(std::vector<ExprPtr> predicates);

  Status Open() override;
  Result<BatchPtr> Next() override;
  std::shared_ptr<Schema> output_schema() const override { return schema_; }

 private:
  /// Per-needed-attribute working state for the current block.
  struct AttrState {
    uint32_t attr = 0;
    DataType type = DataType::kInt64;
    std::shared_ptr<const ColumnVector> cached;  // resident segment
    std::unique_ptr<ColumnVector> building;      // cache/stats segment
  };

  Status EnterBlock(uint64_t row);
  Status CommitBlock();
  Result<bool> LocateRow(uint64_t row, uint64_t* start, uint64_t* end);

  /// A pushed `col op literal` conjunct in zone-checkable form.
  struct ZonePredicate {
    uint32_t attr = 0;  // table attribute index
    CompareOp op = CompareOp::kEq;
    bool lit_is_int = false;
    int64_t lit_i = 0;
    double lit_d = 0;
  };

  /// ---- pushdown path (predicates_ non-empty). One call processes
  /// exactly one row-block: zone-skips it, serves it from the store,
  /// or runs the two-phase raw/cache parse — and returns the block's
  /// qualifying rows (possibly an empty batch; nullptr only for a
  /// skipped block).
  Result<BatchPtr> NextPushdown();
  Result<BatchPtr> ProcessPushdownBlock();
  bool ZoneSkipsBlock(uint64_t block, uint64_t* rows_in_block) const;
  Result<bool> TryPushdownStoreBlock(uint64_t block, BatchPtr* staged);
  Result<BatchPtr> PushdownRawBlock(uint64_t block);

  /// Evaluates every pushed conjunct over `batch`, folding SQL
  /// three-valued logic to keep/drop (NULL drops). Fills `pass`
  /// (size = batch rows) and returns the number of qualifying rows.
  Result<size_t> EvaluatePushdown(const RecordBatch& batch,
                                  std::vector<char>* pass) const;

  /// Tokenizes the spans of `subset` (indices into `probe_attrs`,
  /// which the block plan was prepared with) for one row, writing into
  /// `starts`/`ends` parallel to `subset`. `count_blind` attributes a
  /// from-byte-0 walk to map_blind_rows — pass it on the first pass
  /// over a row only, so two-phase rows count once like any other.
  Status TokenizeSpans(Slice line, uint64_t row,
                       const std::optional<PositionalMap::BlockPlan>& plan,
                       const std::vector<uint32_t>& probe_attrs,
                       const std::vector<size_t>& subset, uint32_t* starts,
                       uint32_t* ends, bool count_blind);

  /// True when `segment_rows` provably covers the whole of `block`
  /// (full block, or the known tail of a completed row index) — the
  /// admission rule shared by cache residency and store promotion.
  bool SegmentCoversBlock(size_t segment_rows, uint64_t block) const;

  /// The one zone-map admission path for this scan: installs a summary
  /// for (attr, block) iff collection is on, the attribute's payload
  /// is summarizable, `segment` provably covers the block, and no
  /// entry exists yet. Safe to call with any parsed segment — cache,
  /// store or freshly built.
  void MaybeObserveZone(uint32_t attr, uint64_t block,
                        const ColumnVector& segment);

  /// Fetches `block`'s promoted segments into store_segments_ and runs
  /// the serve-time validation shared by both store paths: all
  /// attributes must agree on the row count, and a short segment must
  /// match the completed row index *right now* (a stale pre-append
  /// tail fails, is evicted, and the block re-parses raw). False when
  /// the block is absent or stale; `*rows` is its row count on success.
  bool FetchStoreBlock(uint64_t block, size_t* rows);

  /// Tries to serve the block containing `row` (a block boundary)
  /// entirely from the shadow store. On success commits the previous
  /// block and arms the store fast path.
  Result<bool> TryEnterStoreBlock(uint64_t row);

  RawTableState* state_;
  std::vector<uint32_t> projection_;
  ScanMetrics* metrics_;
  ScanMetrics local_metrics_;  // used when metrics == nullptr
  bool internal_ = false;      // engine-internal pass: no access records

  std::shared_ptr<Schema> schema_;
  std::string table_name_;  // snapshotted for error messages
  std::string table_path_;
  CsvTokenizer tokenizer_;
  std::unique_ptr<BufferedReader> reader_;

  bool use_map_ = false;
  bool use_cache_ = false;
  bool use_stats_ = false;
  bool use_store_ = false;    // promotion side effects enabled
  bool serve_store_ = false;  // store fast path enabled (needs the map)
  bool collect_zones_ = false;  // summarize full blocks into zone maps
  bool skip_zones_ = false;     // prune blocks via zone maps (needs map)
  uint64_t store_generation_ = 0;  // file generation this scan parses
  uint64_t zone_generation_ = 0;   // ditto, for zone-map observation

  // Predicate pushdown (empty = legacy row-at-a-time path).
  std::vector<ExprPtr> predicates_;
  std::vector<bool> pred_slot_;          // projection slot is phase-1
  std::vector<ZonePredicate> zone_preds_;  // zone-checkable conjuncts

  uint64_t row_ = 0;
  uint64_t local_offset_ = 0;  // discovery cursor when the map is off
  bool exhausted_ = false;
  uint64_t header_skip_ = 0;   // bytes of header line (has_header files)

  // Lock-free row location: published bounds of rows
  // [window_first_, window_first_ + window_rows_), snapshotted from the
  // map; window_bounds_ has window_rows_ + 1 entries (see SnapshotRows).
  uint64_t window_first_ = 0;
  uint32_t window_rows_ = 0;
  std::vector<uint64_t> window_bounds_;

  // Store fast path: rows [block_first_row_, store_until_row_) are
  // emitted straight from store_segments_ (parallel to projection_).
  bool store_block_ = false;
  bool store_tail_ = false;  // served block is the file's last
  uint64_t store_until_row_ = 0;
  std::vector<std::shared_ptr<const ColumnVector>> store_segments_;
  std::vector<bool> promote_attr_;  // projection slot is promotion-hot

  // Current block state.
  uint64_t current_block_ = UINT64_MAX;
  uint64_t block_first_row_ = 0;
  bool block_has_building_ = false;  // some attr accumulates a segment
  std::vector<AttrState> attr_states_;
  std::optional<PositionalMap::BlockPlan> block_plan_;
  std::optional<PositionalMap::ChunkBuilder> chunk_builder_;
  std::vector<uint32_t> probe_attrs_;  // attrs not served by the cache
  std::vector<size_t> probe_slot_;     // probe j -> attr_states_ index
  std::vector<size_t> probe_identity_;  // 0..n-1, TokenizeSpans subset
  std::vector<uint32_t> chunk_attrs_;  // attrs recorded in the builder

  // Reused per-row scratch.
  std::vector<uint32_t> starts_;
  std::vector<uint32_t> span_start_;  // per projection slot
  std::vector<uint32_t> span_end_;
  std::string decode_scratch_;

  // Reused per-block pushdown scratch.
  std::vector<std::pair<uint64_t, uint64_t>> pd_bounds_;  // row byte spans
  std::vector<char> pd_pass_;
};

}  // namespace nodb

#endif  // NODB_RAW_RAW_SCAN_H_
