#include "raw/parallel_scan.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "csv/tokenizer.h"
#include "csv/value_parser.h"
#include "io/buffered_reader.h"
#include "simd/simd.h"
#include "simd/structural_index.h"
#include "util/thread_pool.h"

namespace nodb {

namespace {

/// Everything one worker learns about its byte chunk. Spans and values
/// are kept in file order so the merge can replay them as if a single
/// sequential scan had produced them.
struct Fragment {
  std::vector<uint64_t> row_starts;  // absolute offsets of owned rows
  // Row-relative field spans, rows * attrs entries, attr-major per row
  // (the layout ChunkBuilder::AddRow consumes).
  std::vector<uint32_t> span_starts;
  std::vector<uint32_t> span_ends;
  // Parsed values per requested attribute, parallel to `attrs`.
  std::vector<std::unique_ptr<ColumnVector>> columns;
  uint64_t end_cursor = 0;  // discovery cursor after the last owned row

  // First failure, if any. `error_suffix` is the serial scan's message
  // minus its "<table>: row <N>" prefix — the global row number is only
  // known at merge time.
  Status io_status;
  bool parse_failed = false;
  uint64_t error_row = 0;  // chunk-local
  std::string error_suffix;
};

/// Scans one newline-aligned chunk [begin, end): every row *starting*
/// in the range is discovered, tokenized and (optionally) parsed.
///
/// Two-stage structural parse: the chunk is consumed in slabs of up to
/// `read_buffer_bytes`; stage 1 classifies each slab's bytes into
/// sorted delimiter/newline/quote position lists with the configured
/// SIMD tier (simd/structural_index.h), stage 2 walks those lists to
/// cut rows and fields. A row containing a quote byte falls back to the
/// serial quote-aware tokenizer, so quoting semantics stay identical.
/// With `enable_simd = false` the same walk runs over scalar-built
/// lists — one code path, byte-identical output at every tier.
void ScanChunk(const RawTableState& state,
               const std::vector<uint32_t>& attrs, bool parse_values,
               uint64_t begin, uint64_t end, Fragment* frag) {
  BufferedReader reader(state.file(), state.config().read_buffer_bytes);
  const simd::SimdLevel level =
      simd::LevelFor(state.config().enable_simd);
  const CsvTokenizer tokenizer(state.info().dialect, level);
  const simd::StructuralIndexer indexer(state.info().dialect, level,
                                        /*want_fields=*/!attrs.empty());
  const bool quoting = state.info().dialect.allow_quoting;
  const Schema& schema = *state.info().schema;

  if (parse_values) {
    frag->columns.reserve(attrs.size());
    for (uint32_t attr : attrs) {
      frag->columns.push_back(
          std::make_unique<ColumnVector>(schema.field(attr).type));
    }
  }

  const uint32_t max_attr = attrs.empty() ? 0 : attrs.back();
  std::vector<uint32_t> starts(max_attr + 2, 0);
  std::string scratch;
  simd::StructuralIndex index;

  uint64_t offset = begin;
  frag->end_cursor = begin;
  while (offset < end) {
    // Stage 1: read the next slab and index its structural bytes. A
    // slab that ends mid-row is re-read from that row's start next
    // iteration; one holding no complete row grows until it reaches a
    // newline or the chunk end (ReadAt extends its buffer as needed).
    size_t want = static_cast<size_t>(std::min<uint64_t>(
        end - offset, state.config().read_buffer_bytes));
    Slice slab;
    while (true) {
      Status rs = reader.ReadAt(offset, want, &slab);
      if (!rs.ok()) {
        frag->io_status = rs;
        return;
      }
      indexer.Index(slab.data(), slab.size(), offset, &index);
      if (!index.newlines.empty() || offset + slab.size() >= end) break;
      want = static_cast<size_t>(std::min<uint64_t>(end - offset, want * 2));
    }

    // Stage 2: walk the newline list, cutting one row per entry. All
    // cursors advance monotonically; the slab's bytes stay valid until
    // the next ReadAt.
    const uint32_t slab_size = static_cast<uint32_t>(slab.size());
    size_t newline_cursor = 0;
    size_t delim_cursor = 0;
    size_t quote_cursor = 0;
    uint32_t row_rel = 0;  // slab-relative start of the current row
    while (true) {
      uint32_t line_end_rel;
      if (newline_cursor < index.newlines.size()) {
        line_end_rel = index.newlines[newline_cursor++];
      } else if (offset + slab_size >= end && row_rel < slab_size) {
        line_end_rel = slab_size;  // final row of the file, unterminated
      } else {
        break;  // no full row left in the slab
      }

      frag->row_starts.push_back(offset + row_rel);
      frag->end_cursor = offset + line_end_rel + 1;

      if (!attrs.empty()) {
        const Slice line(slab.data() + row_rel, line_end_rel - row_rel);
        uint32_t high;
        bool row_has_quote = false;
        if (quoting) {
          while (quote_cursor < index.quotes.size() &&
                 index.quotes[quote_cursor] < row_rel) {
            ++quote_cursor;
          }
          row_has_quote = quote_cursor < index.quotes.size() &&
                          index.quotes[quote_cursor] < line_end_rel;
        }
        if (row_has_quote) {
          high = tokenizer.ScanStarts(line, 0, 0, max_attr + 1,
                                      starts.data());
        } else {
          // CRLF tolerance at the record level, as in ScanStarts: a
          // trailing '\r' belongs to the terminator, so the field
          // cutter must never see a delimiter hiding inside it.
          uint32_t stripped = static_cast<uint32_t>(line.size());
          if (stripped > 0 && line[stripped - 1] == '\r') --stripped;
          high = simd::StructuralFieldStarts(index.delims, &delim_cursor,
                                             row_rel, row_rel + stripped,
                                             max_attr + 1, starts.data());
        }
        if (high < max_attr + 1) {
          // The serial scan reports the first requested attribute the
          // row cannot satisfy.
          uint32_t missing = max_attr;
          for (uint32_t attr : attrs) {
            if (attr >= high) {
              missing = attr;
              break;
            }
          }
          frag->parse_failed = true;
          frag->error_row = frag->row_starts.size() - 1;
          frag->error_suffix =
              " has " + std::to_string(high) + " fields, attribute " +
              std::to_string(missing) + " requested (file " +
              state.info().path + ")";
          return;
        }

        for (size_t j = 0; j < attrs.size(); ++j) {
          const uint32_t attr = attrs[j];
          frag->span_starts.push_back(starts[attr]);
          frag->span_ends.push_back(starts[attr + 1] - 1);
          if (!parse_values) continue;
          Slice raw =
              CsvTokenizer::RawField(line, starts[attr], starts[attr + 1]);
          Slice text = tokenizer.DecodeField(raw, &scratch);
          Status ps = ValueParser::ParseInto(text, schema.field(attr).type,
                                             frag->columns[j].get());
          if (!ps.ok()) {
            frag->parse_failed = true;
            frag->error_row = frag->row_starts.size() - 1;
            frag->error_suffix =
                ", attribute " + std::to_string(attr) + ": " + ps.message();
            return;
          }
        }
      }

      row_rel = line_end_rel + 1;
      if (row_rel >= slab_size) break;
    }
    offset += row_rel;
  }
}

}  // namespace

Result<ParallelScanStats> ParallelChunkedScan(RawTableState* state,
                                              std::vector<uint32_t> attrs,
                                              uint32_t num_threads) {
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  for (uint32_t attr : attrs) {
    if (attr >= state->info().schema->num_fields()) {
      return Status::InvalidArgument(
          "parallel scan: attribute " + std::to_string(attr) +
          " out of range for table " + state->info().name);
    }
  }

  if (state->file() == nullptr) {
    NODB_RETURN_NOT_OK(state->Open());
  }
  const NoDbConfig& config = state->config();
  const ComponentFlags flags = state->component_flags();
  const bool use_map = flags.map;
  const bool use_cache = flags.cache;
  const bool use_stats = flags.stats;
  const bool use_zones = config.enable_zone_maps;
  const bool parse_values =
      (use_cache || use_stats || use_zones) && !attrs.empty();
  const uint64_t zone_generation = state->zones().generation();

  BufferedReader reader(state->file(), config.read_buffer_bytes);
  NODB_RETURN_NOT_OK(reader.Refresh());
  const uint64_t file_size = reader.file_size();

  // Data rows start after the header line, if any.
  uint64_t data_begin = 0;
  if (state->info().dialect.has_header && file_size > 0) {
    uint64_t header_end = 0;
    Status s = reader.FindNewline(0, &header_end);
    (void)s;  // a header-only file simply has zero data rows
    data_begin = std::min<uint64_t>(header_end + 1, file_size);
  }

  ParallelScanStats out;
  out.threads = std::max<uint32_t>(1, num_threads);

  if (data_begin >= file_size) {
    if (use_map && state->map().known_rows() == 0) {
      state->map().PublishRowIndex({}, data_begin, file_size);
    }
    return out;
  }

  // Newline-aligned chunk boundaries: chunk i owns every row whose
  // start offset falls in [bounds[i], bounds[i+1]). With quoting
  // enabled a raw '\n' may sit inside a field, so boundary alignment
  // could split a record mid-quote: collapse to one chunk — a serial
  // walk that still builds every structure through the same merge.
  const uint64_t data_size = file_size - data_begin;
  const uint64_t num_chunks =
      state->info().dialect.allow_quoting
          ? 1
          : std::max<uint64_t>(1, std::min<uint64_t>(out.threads, data_size));
  std::vector<uint64_t> bounds;
  bounds.push_back(data_begin);
  for (uint64_t i = 1; i < num_chunks; ++i) {
    uint64_t target = data_begin + data_size * i / num_chunks;
    // A target inside the previous boundary's row yields an empty
    // chunk at that boundary; later targets still split normally.
    uint64_t aligned = bounds.back();
    if (target > bounds.back()) {
      // First row start at or after `target`: one past the first
      // newline at offset >= target - 1.
      uint64_t nl = 0;
      Status s = reader.FindNewline(target - 1, &nl);
      if (!s.ok() && !s.IsOutOfRange()) return s;
      aligned = std::min<uint64_t>(nl + 1, file_size);
    }
    bounds.push_back(std::max<uint64_t>(aligned, bounds.back()));
  }
  bounds.push_back(file_size);
  out.byte_chunks = bounds.size() - 1;

  // Fork: one fragment per chunk, scanned by the pool.
  std::vector<Fragment> frags(bounds.size() - 1);
  {
    ThreadPool pool(out.threads);
    const RawTableState& cstate = *state;
    ParallelFor(&pool, frags.size(), [&](size_t i) {
      ScanChunk(cstate, attrs, parse_values, bounds[i], bounds[i + 1],
                &frags[i]);
    });
  }

  // Join, part 1: surface the earliest failure exactly as the serial
  // scan would, leaving the state untouched.
  uint64_t total_rows = 0;
  for (const Fragment& frag : frags) {
    if (!frag.io_status.ok()) return frag.io_status;
    if (frag.parse_failed) {
      return Status::ParseError(
          state->info().name + ": row " +
          std::to_string(total_rows + frag.error_row) + frag.error_suffix);
    }
    total_rows += frag.row_starts.size();
  }
  out.rows = total_rows;

  // Join, part 2: replay the fragments in file order, committing one
  // row-block at a time — the same order and granularity the serial
  // scan uses, so map chunks, cache segments, statistics and their LRU
  // recency come out identical.
  //
  // The merge holds the map's discovery baton so a concurrent serial
  // query cannot extend the row index underneath it: such queries wait
  // at their first undiscovered row and then find the whole file
  // published at once. Readers of already-published state never block.
  PositionalMap& map = state->map();
  PositionalMap::Discovery merge_baton(&map);
  if (use_map && map.known_rows() == 0 && !map.rows_complete()) {
    // The discovery cursor must be one past the last row's end — taken
    // from the last fragment that actually owns rows (trailing chunks
    // can be empty when boundary targets land inside one row).
    uint64_t cursor = data_begin;
    std::vector<uint64_t> row_starts;
    row_starts.reserve(total_rows);
    for (const Fragment& frag : frags) {
      row_starts.insert(row_starts.end(), frag.row_starts.begin(),
                        frag.row_starts.end());
      if (!frag.row_starts.empty()) cursor = frag.end_cursor;
    }
    map.PublishRowIndex(std::move(row_starts), cursor, file_size);
  }

  const uint32_t rows_per_block = config.rows_per_block;
  const size_t num_attrs = attrs.size();
  std::vector<std::unique_ptr<ColumnVector>> building(num_attrs);
  std::optional<PositionalMap::ChunkBuilder> builder;

  auto commit_block = [&](uint64_t block) {
    if (builder.has_value()) {
      if (builder->rows() > 0) map.CommitChunk(std::move(*builder));
      builder.reset();
    }
    for (size_t j = 0; j < num_attrs; ++j) {
      if (building[j] == nullptr || building[j]->size() == 0) {
        building[j].reset();
        continue;
      }
      std::shared_ptr<ColumnVector> segment(building[j].release());
      if (use_zones) {
        // First-touch pass over the whole file: every block's segment
        // provably covers it (the final partial block is the tail of
        // the just-published complete row index).
        bool covers =
            segment->size() >= rows_per_block ||
            (map.rows_complete() &&
             block * uint64_t{rows_per_block} + segment->size() ==
                 map.known_rows());
        if (covers) {
          state->zones().Observe(attrs[j], block, *segment,
                                 zone_generation);
        }
      }
      if (use_stats) {
        state->stats().ObserveBlock(attrs[j], block, *segment);
      }
      if (use_cache) {
        state->cache().Put(attrs[j], block, segment);
      }
    }
  };

  uint64_t row = 0;
  for (const Fragment& frag : frags) {
    for (size_t r = 0; r < frag.row_starts.size(); ++r, ++row) {
      if (row % rows_per_block == 0) {
        if (row > 0) commit_block(row / rows_per_block - 1);
        if (use_map && !attrs.empty()) {
          PositionalMap::BlockPlan plan = map.PrepareBlock(row, attrs);
          if (map.ShouldIndexCombination(plan)) {
            builder = map.StartChunk(row, attrs);
          }
        }
        if (parse_values) {
          for (size_t j = 0; j < num_attrs; ++j) {
            building[j] = std::make_unique<ColumnVector>(
                state->info().schema->field(attrs[j]).type);
            building[j]->Reserve(rows_per_block);
          }
        }
      }
      if (builder.has_value()) {
        builder->AddRow(&frag.span_starts[r * num_attrs],
                        &frag.span_ends[r * num_attrs]);
      }
      if (parse_values) {
        for (size_t j = 0; j < num_attrs; ++j) {
          building[j]->AppendFrom(*frag.columns[j], r);
        }
      }
    }
  }
  if (row > 0) commit_block((row - 1) / rows_per_block);

  return out;
}

}  // namespace nodb
