#ifndef NODB_RAW_POSITIONAL_MAP_H_
#define NODB_RAW_POSITIONAL_MAP_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nodb {

/// The adaptive positional map (paper §3.1).
///
/// Low-level metadata about the structure of a raw CSV file, collected
/// exclusively as a side-effect of query-driven tokenizing and used by
/// later queries to jump (nearly) directly to the attributes they need.
///
/// Two layers of state:
///
///  1. **Tuple boundaries** (the row index): the absolute byte offset
///     where every known row starts, discovered sequentially the first
///     time the scan walks the file. Boundaries are the backbone that
///     makes all relative positions interpretable; they live outside
///     the eviction budget (8 bytes per row) and are dropped only when
///     the file is rewritten.
///
///  2. **Attribute chunks**: for a *block* of `rows_per_block`
///     consecutive rows and one attribute *combination* (the set a
///     query requested, stored together exactly as the paper
///     describes), the start/end byte span of each of those attributes
///     in each row, relative to the row start. Chunks are the LRU
///     eviction unit.
///
/// Lookup returns either the exact span of the requested attribute or
/// the best *anchor* — the known start of the greatest attribute not
/// exceeding the request — from which the tokenizer resumes scanning
/// mid-row instead of from byte 0.
///
/// **Concurrency.** The map is shared, incrementally-built state that
/// every query both reads and improves, so it is internally
/// synchronized:
///
///  - All published state (row index, chunks, LRU, counters) lives
///    under one reader/writer lock. Mutations (chunk commits, row
///    publication, eviction, LRU touches) are short exclusive critical
///    sections; no I/O or parsing ever happens under the lock.
///  - Chunks are immutable once committed and shared-owned: a
///    BlockPlan pins the chunks it draws from, so probing stays
///    lock-free for the whole block even if the chunks are evicted
///    concurrently. Scans snapshot a block's row bounds the same way
///    (SnapshotRows) and then locate rows without touching the lock.
///  - Frontier *discovery* — extending the row index, which requires
///    sequential newline I/O — is serialized by a separate baton
///    (Discovery): one thread walks the tail while every other query
///    keeps reading published rows; threads block only when they need
///    a row nobody has published yet.
class PositionalMap {
 private:
  struct Chunk;  // defined below; named early so BlockPlan can refer to it

 public:
  PositionalMap(size_t budget_bytes, uint32_t rows_per_block,
                uint32_t max_covering_chunks);

  // ------------------------------------------------------ tuple index
  /// Rows whose start offsets are known (contiguous from row 0).
  uint64_t known_rows() const EXCLUDES(mu_);

  /// Byte offset where row `row` starts. Requires row < known_rows().
  uint64_t row_start(uint64_t row) const EXCLUDES(mu_);

  /// Records the start of row known_rows() (sequential discovery).
  /// Prefer Discovery::PublishRow, which also publishes the row's end;
  /// this remains for single-threaded index construction in tests.
  void AddRowStart(uint64_t offset) EXCLUDES(mu_);

  /// Marks that the discovery scan reached end of file: exactly
  /// known_rows() rows exist in `file_size` bytes.
  void MarkRowsComplete(uint64_t file_size) EXCLUDES(mu_);
  bool rows_complete() const EXCLUDES(mu_);
  uint64_t indexed_file_size() const EXCLUDES(mu_);

  /// Offset where the next undiscovered row starts (the resume point
  /// of an interrupted or append-extended discovery scan).
  uint64_t next_discovery_offset() const EXCLUDES(mu_);

  /// Moves the discovery cursor forward to `offset` on a still-empty
  /// index (skipping a header line). No-op once rows are published.
  void EnsureDiscoveryStartsAt(uint64_t offset) EXCLUDES(mu_);

  /// Replaces an *empty* row index in one publication: `starts` holds
  /// every row start in file order, `cursor` is one past the last
  /// row's end, and the index is marked complete for `file_size`
  /// bytes. The parallel first-touch scan merges through this so
  /// concurrent readers never observe a half-built index. No-op when
  /// rows were already published.
  void PublishRowIndex(std::vector<uint64_t> starts, uint64_t cursor,
                       uint64_t file_size) EXCLUDES(mu_);

  /// Reopens discovery after an append: the file grew but existing
  /// boundaries remain valid.
  void ReopenForAppend() EXCLUDES(mu_);

  /// Published-row snapshot of [first_row, first_row + count).
  struct RowSnapshot {
    uint32_t rows = 0;        ///< rows from first_row with known bounds
    uint64_t known_rows = 0;  ///< total published rows at snapshot time
    bool complete = false;    ///< discovery has reached end of file
  };

  /// Copies the bounds of up to `count` rows starting at `first_row`
  /// into `bounds`: entry i is the start of row first_row + i, and one
  /// sentinel entry past the last row is the offset one past that
  /// row's terminator — so row first_row + i spans
  /// [bounds[i], bounds[i+1] - 1). The caller then locates rows with
  /// plain array indexing, without further locking.
  RowSnapshot SnapshotRows(uint64_t first_row, uint32_t count,
                           std::vector<uint64_t>* bounds) const
      EXCLUDES(mu_);

  /// The discovery baton: serializes frontier extension. Constructing
  /// one blocks until the calling thread holds the baton; destruction
  /// releases it. Holders alternate NeedsRow (re-check under the data
  /// lock — another holder may have published the row meanwhile) with
  /// their own newline I/O and PublishRow.
  class SCOPED_CAPABILITY Discovery {
   public:
    /// Blocks until this thread holds the baton.
    explicit Discovery(PositionalMap* map) ACQUIRE(map->discovery_mu_);
    ~Discovery() RELEASE();
    Discovery(const Discovery&) = delete;
    Discovery& operator=(const Discovery&) = delete;

    /// True when `row` still lacks published bounds and the file may
    /// hold it; `*resume` is the offset discovery must continue from
    /// and `*frontier_row` the index of the row starting there — when
    /// it equals `row`, the holder can serve the bounds it is about to
    /// publish directly, without re-reading the map.
    bool NeedsRow(uint64_t row, uint64_t* resume,
                  uint64_t* frontier_row) const EXCLUDES(map_->mu_);

    /// Publishes the next row: content [start, end), terminator at
    /// `end`, discovery cursor moves to end + 1.
    void PublishRow(uint64_t start, uint64_t end) EXCLUDES(map_->mu_);

    /// The resume offset reached end of file: the index is complete.
    void MarkComplete(uint64_t file_size) EXCLUDES(map_->mu_);

   private:
    PositionalMap* map_;
  };

  // ------------------------------------------------------------ probe
  /// Result of probing the map for (row, attribute).
  struct Probe {
    bool exact = false;     ///< start/end of the attribute are known
    uint32_t start = 0;     ///< field start, relative to row start
    uint32_t end = 0;       ///< field end (delimiter offset), when exact
    uint32_t anchor_attr = 0;  ///< else: tokenize from this attribute...
    uint32_t anchor_rel = 0;   ///< ...which starts here (rel offset)
  };

  /// Prepared per-block lookup for a fixed attribute set: resolves
  /// which chunk serves each requested attribute once, then answers
  /// row-level probes with array indexing. The plan shares ownership
  /// of the chunks it draws from, so it stays valid — and lock-free —
  /// even when those chunks are evicted concurrently.
  class BlockPlan {
   public:
    /// Probes (row, attrs[i]); `row` is absolute.
    Probe Lookup(uint64_t row, size_t i) const;

    /// True when attrs[i] is exactly covered for the whole block.
    bool IsExact(size_t i) const { return sources_[i].exact; }

    /// Number of distinct chunks this plan draws from.
    uint32_t chunks_used() const { return chunks_used_; }

    /// True when every requested attribute has an exact source.
    bool fully_covered() const { return fully_covered_; }

   private:
    friend class PositionalMap;
    struct Source {
      std::shared_ptr<const Chunk> chunk;  // null = no information
      uint32_t column = 0;                 // index into chunk attrs
      bool exact = false;  // chunk column == requested attr
      uint32_t anchor_attr = 0;
    };
    uint64_t block_first_row_ = 0;
    std::vector<Source> sources_;  // parallel to requested attrs
    uint32_t chunks_used_ = 0;
    bool fully_covered_ = false;
  };

  /// Builds the lookup plan for `attrs` (sorted ascending) over the
  /// block containing `first_row` and touches used chunks' LRU state.
  BlockPlan PrepareBlock(uint64_t first_row,
                         const std::vector<uint32_t>& attrs) EXCLUDES(mu_);

  /// Distance policy: should the scan collect a new chunk for this
  /// combination in this block? True when the plan leaves attributes
  /// uncovered or scattered over more than `max_covering_chunks`.
  bool ShouldIndexCombination(const BlockPlan& plan) const;

  // ------------------------------------------------- chunk population
  /// Accumulates one block-chunk worth of spans during a scan. Thread
  /// confined: builders are filled privately and published atomically
  /// by CommitChunk.
  class ChunkBuilder {
   public:
    /// `spans` holds (start, end) per attribute, parallel to `attrs`.
    void AddRow(const uint32_t* starts, const uint32_t* ends);
    size_t rows() const { return rows_; }

   private:
    friend class PositionalMap;
    uint64_t first_row_ = 0;
    std::vector<uint32_t> attrs_;
    std::vector<uint32_t> data_;  // interleaved start,end per attr
    size_t rows_ = 0;
  };

  /// Starts collecting a chunk for `attrs` (sorted) at `first_row`
  /// (a block boundary).
  ChunkBuilder StartChunk(uint64_t first_row,
                          const std::vector<uint32_t>& attrs);

  /// Installs a finished chunk and evicts LRU chunks over budget. When
  /// a concurrent query already committed an equal-or-better chunk for
  /// the same (block, combination) — the two parsed identical bytes —
  /// the duplicate is dropped and the survivor's recency refreshed.
  void CommitChunk(ChunkBuilder builder) EXCLUDES(mu_);

  // ------------------------------------------------------------ stats
  size_t bytes_used() const EXCLUDES(mu_);
  size_t budget_bytes() const { return budget_bytes_; }
  double utilization() const EXCLUDES(mu_);
  size_t num_chunks() const EXCLUDES(mu_);
  uint64_t evictions() const EXCLUDES(mu_);
  uint32_t rows_per_block() const { return rows_per_block_; }

  /// Fraction of known rows whose positions for `attr` are indexed.
  double CoverageFraction(uint32_t attr) const EXCLUDES(mu_);

  /// Drops every chunk and the row index (file rewritten).
  void Clear() EXCLUDES(mu_);

  // ---------------------------------------------------- freeze / thaw
  /// A serializable copy of the map's published state (persist/):
  /// the row index plus every committed chunk. Chunk data is spans
  /// relative to row starts, so an image stays valid for exactly the
  /// file generation it was exported from — validity is the snapshot
  /// subsystem's job (signature check), not the image's.
  struct Image {
    struct ChunkImage {
      uint64_t first_row = 0;
      std::vector<uint32_t> attrs;  // sorted combination
      std::vector<uint32_t> data;   // rows × attrs × {start,end}
    };
    std::vector<uint64_t> row_starts;
    bool rows_complete = false;
    uint64_t indexed_file_size = 0;
    uint64_t next_discovery_offset = 0;
    std::vector<ChunkImage> chunks;
  };

  /// Copies the published state into an Image (one shared lock; no
  /// I/O). Safe to call while scans are in flight — the image is a
  /// consistent cut of the row index and chunk set.
  Image ExportImage() const EXCLUDES(mu_);

  /// Restores an exported image into a *cold* map: returns false (and
  /// imports nothing) when rows or chunks already exist, when the
  /// image's row index is not strictly ascending, or when a chunk is
  /// malformed for this map's rows_per_block. Chunks are admitted
  /// newest-first under the normal byte budget.
  bool ImportImage(Image image) EXCLUDES(mu_);

 private:
  /// One (block × attribute-combination) unit; the LRU element.
  /// Immutable once committed (only LRU position mutates, under mu_).
  struct Chunk {
    uint64_t first_row = 0;
    std::vector<uint32_t> attrs;  // sorted combination
    std::vector<uint32_t> data;   // rows × attrs × {start,end}
    size_t rows = 0;
    size_t bytes = 0;
    std::list<Chunk*>::iterator lru_pos;
  };

  uint64_t BlockIndex(uint64_t row) const { return row / rows_per_block_; }
  void Touch(Chunk* chunk) REQUIRES(mu_);
  void EvictOverBudget() REQUIRES(mu_);

  const size_t budget_bytes_;
  const uint32_t rows_per_block_;
  const uint32_t max_covering_chunks_;

  /// Guards all published state below. Exclusive for mutation, shared
  /// for reads; never held across I/O or parsing.
  mutable SharedMutex mu_;

  /// Serializes frontier discovery (see Discovery). Lock order: the
  /// baton is always acquired before mu_, never the other way around
  /// (encoded in ACQUIRED_BEFORE; see table_state.h for the full
  /// table-wide hierarchy).
  Mutex discovery_mu_ ACQUIRED_BEFORE(mu_);

  std::vector<uint64_t> row_starts_ GUARDED_BY(mu_);
  bool rows_complete_ GUARDED_BY(mu_) = false;
  uint64_t indexed_file_size_ GUARDED_BY(mu_) = 0;
  uint64_t next_discovery_offset_ GUARDED_BY(mu_) = 0;

  /// block index -> chunks covering that block.
  std::map<uint64_t, std::vector<std::shared_ptr<Chunk>>> blocks_
      GUARDED_BY(mu_);
  std::list<Chunk*> lru_ GUARDED_BY(mu_);  // front = most recent
  size_t bytes_used_ GUARDED_BY(mu_) = 0;
  size_t num_chunks_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace nodb

#endif  // NODB_RAW_POSITIONAL_MAP_H_
