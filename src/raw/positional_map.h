#ifndef NODB_RAW_POSITIONAL_MAP_H_
#define NODB_RAW_POSITIONAL_MAP_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "util/logging.h"

namespace nodb {

/// The adaptive positional map (paper §3.1).
///
/// Low-level metadata about the structure of a raw CSV file, collected
/// exclusively as a side-effect of query-driven tokenizing and used by
/// later queries to jump (nearly) directly to the attributes they need.
///
/// Two layers of state:
///
///  1. **Tuple boundaries** (the row index): the absolute byte offset
///     where every known row starts, discovered sequentially the first
///     time the scan walks the file. Boundaries are the backbone that
///     makes all relative positions interpretable; they live outside
///     the eviction budget (8 bytes per row) and are dropped only when
///     the file is rewritten.
///
///  2. **Attribute chunks**: for a *block* of `rows_per_block`
///     consecutive rows and one attribute *combination* (the set a
///     query requested, stored together exactly as the paper
///     describes), the start/end byte span of each of those attributes
///     in each row, relative to the row start. Chunks are the LRU
///     eviction unit.
///
/// Lookup returns either the exact span of the requested attribute or
/// the best *anchor* — the known start of the greatest attribute not
/// exceeding the request — from which the tokenizer resumes scanning
/// mid-row instead of from byte 0.
class PositionalMap {
 private:
  struct Chunk;  // defined below; named early so BlockPlan can refer to it

 public:
  PositionalMap(size_t budget_bytes, uint32_t rows_per_block,
                uint32_t max_covering_chunks);

  // ------------------------------------------------------ tuple index
  /// Rows whose start offsets are known (contiguous from row 0).
  uint64_t known_rows() const { return row_starts_.size(); }

  /// Byte offset where row `row` starts. Requires row < known_rows().
  uint64_t row_start(uint64_t row) const { return row_starts_[row]; }

  /// Records the start of row known_rows() (sequential discovery).
  void AddRowStart(uint64_t offset) { row_starts_.push_back(offset); }

  /// Marks that the discovery scan reached end of file: exactly
  /// known_rows() rows exist in `file_size` bytes.
  void MarkRowsComplete(uint64_t file_size) {
    rows_complete_ = true;
    indexed_file_size_ = file_size;
  }
  bool rows_complete() const { return rows_complete_; }
  uint64_t indexed_file_size() const { return indexed_file_size_; }

  /// Offset where the next undiscovered row starts (the resume point
  /// of an interrupted or append-extended discovery scan).
  uint64_t next_discovery_offset() const { return next_discovery_offset_; }
  void set_next_discovery_offset(uint64_t offset) {
    next_discovery_offset_ = offset;
  }

  /// Reopens discovery after an append: the file grew but existing
  /// boundaries remain valid.
  void ReopenForAppend() { rows_complete_ = false; }

  // ------------------------------------------------------------ probe
  /// Result of probing the map for (row, attribute).
  struct Probe {
    bool exact = false;     ///< start/end of the attribute are known
    uint32_t start = 0;     ///< field start, relative to row start
    uint32_t end = 0;       ///< field end (delimiter offset), when exact
    uint32_t anchor_attr = 0;  ///< else: tokenize from this attribute...
    uint32_t anchor_rel = 0;   ///< ...which starts here (rel offset)
  };

  /// Prepared per-block lookup for a fixed attribute set: resolves
  /// which chunk serves each requested attribute once, then answers
  /// row-level probes with array indexing. Valid until the map mutates.
  class BlockPlan {
   public:
    /// Probes (row, attrs[i]); `row` is absolute.
    Probe Lookup(uint64_t row, size_t i) const;

    /// True when attrs[i] is exactly covered for the whole block.
    bool IsExact(size_t i) const { return sources_[i].exact; }

    /// Number of distinct chunks this plan draws from.
    uint32_t chunks_used() const { return chunks_used_; }

    /// True when every requested attribute has an exact source.
    bool fully_covered() const { return fully_covered_; }

   private:
    friend class PositionalMap;
    struct Source {
      const Chunk* chunk = nullptr;  // null = no information
      uint32_t column = 0;                 // index into chunk attrs
      bool exact = false;  // chunk column == requested attr
      uint32_t anchor_attr = 0;
    };
    uint64_t block_first_row_ = 0;
    std::vector<Source> sources_;  // parallel to requested attrs
    uint32_t chunks_used_ = 0;
    bool fully_covered_ = false;
  };

  /// Builds the lookup plan for `attrs` (sorted ascending) over the
  /// block containing `first_row` and touches used chunks' LRU state.
  BlockPlan PrepareBlock(uint64_t first_row,
                         const std::vector<uint32_t>& attrs);

  /// Distance policy: should the scan collect a new chunk for this
  /// combination in this block? True when the plan leaves attributes
  /// uncovered or scattered over more than `max_covering_chunks`.
  bool ShouldIndexCombination(const BlockPlan& plan) const;

  // ------------------------------------------------- chunk population
  /// Accumulates one block-chunk worth of spans during a scan.
  class ChunkBuilder {
   public:
    /// `spans` holds (start, end) per attribute, parallel to `attrs`.
    void AddRow(const uint32_t* starts, const uint32_t* ends);
    size_t rows() const { return rows_; }

   private:
    friend class PositionalMap;
    uint64_t first_row_ = 0;
    std::vector<uint32_t> attrs_;
    std::vector<uint32_t> data_;  // interleaved start,end per attr
    size_t rows_ = 0;
  };

  /// Starts collecting a chunk for `attrs` (sorted) at `first_row`
  /// (a block boundary).
  ChunkBuilder StartChunk(uint64_t first_row,
                          const std::vector<uint32_t>& attrs);

  /// Installs a finished chunk and evicts LRU chunks over budget.
  void CommitChunk(ChunkBuilder builder);

  // ------------------------------------------------------------ stats
  size_t bytes_used() const { return bytes_used_; }
  size_t budget_bytes() const { return budget_bytes_; }
  double utilization() const {
    return budget_bytes_ == 0
               ? 0.0
               : static_cast<double>(bytes_used_) / budget_bytes_;
  }
  size_t num_chunks() const { return num_chunks_; }
  uint64_t evictions() const { return evictions_; }
  uint32_t rows_per_block() const { return rows_per_block_; }

  /// Fraction of known rows whose positions for `attr` are indexed.
  double CoverageFraction(uint32_t attr) const;

  /// Drops every chunk and the row index (file rewritten).
  void Clear();

 private:
  /// One (block × attribute-combination) unit; the LRU element.
  struct Chunk {
    uint64_t first_row = 0;
    std::vector<uint32_t> attrs;  // sorted combination
    std::vector<uint32_t> data;   // rows × attrs × {start,end}
    size_t rows = 0;
    size_t bytes = 0;
    std::list<Chunk*>::iterator lru_pos;
  };

  uint64_t BlockIndex(uint64_t row) const { return row / rows_per_block_; }
  void Touch(Chunk* chunk);
  void EvictOverBudget();

  size_t budget_bytes_;
  uint32_t rows_per_block_;
  uint32_t max_covering_chunks_;

  std::vector<uint64_t> row_starts_;
  bool rows_complete_ = false;
  uint64_t indexed_file_size_ = 0;
  uint64_t next_discovery_offset_ = 0;

  /// block index -> chunks covering that block.
  std::map<uint64_t, std::vector<std::unique_ptr<Chunk>>> blocks_;
  std::list<Chunk*> lru_;  // front = most recent
  size_t bytes_used_ = 0;
  size_t num_chunks_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace nodb

#endif  // NODB_RAW_POSITIONAL_MAP_H_
