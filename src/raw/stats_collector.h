#ifndef NODB_RAW_STATS_COLLECTOR_H_
#define NODB_RAW_STATS_COLLECTOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/expr.h"
#include "sql/planner.h"
#include "types/column_vector.h"
#include "types/schema.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace nodb {

/// Per-attribute statistics built on-the-fly during raw scans
/// (paper §3.3): only for *requested* attributes, from values that were
/// parsed anyway, incrementally covering more of the file as queries
/// touch more of it.
///
/// Thread-safe: one internal mutex serializes observation against the
/// planner-side estimator reads, so concurrent queries can fold blocks
/// in while another query's planner consults the same attribute. The
/// sketches themselves are order-dependent (reservoir, KMV), so
/// concurrent workloads may produce different — equally valid —
/// estimates than a serial replay; query *results* never depend on
/// them.
class AttributeStats {
 public:
  static constexpr size_t kReservoirSize = 512;
  static constexpr size_t kKmvSize = 256;

  explicit AttributeStats(DataType type);

  /// Folds a parsed column segment into the stats.
  void Observe(const ColumnVector& column) EXCLUDES(mu_);

  /// Forgets everything observed (file rewritten) without destroying
  /// the object, so pointers handed to planners stay valid.
  void Reset() EXCLUDES(mu_);

  uint64_t row_count() const {
    MutexLock lock(mu_);
    return count_;
  }
  uint64_t null_count() const {
    MutexLock lock(mu_);
    return nulls_;
  }
  double null_fraction() const {
    MutexLock lock(mu_);
    return count_ == 0 ? 0.0
                       : static_cast<double>(nulls_) /
                             static_cast<double>(count_);
  }
  std::optional<double> numeric_min() const {
    MutexLock lock(mu_);
    return min_;
  }
  std::optional<double> numeric_max() const {
    MutexLock lock(mu_);
    return max_;
  }

  /// KMV (k minimum values) distinct-count estimate.
  double EstimateDistinct() const EXCLUDES(mu_);

  /// Fraction of non-null values satisfying `op` against `literal`,
  /// estimated from the reservoir sample. nullopt when the sample is
  /// empty or types are incompatible.
  std::optional<double> EstimateCompareSelectivity(CompareOp op,
                                                   const Value& literal) const
      EXCLUDES(mu_);

  /// Fraction of sampled strings matching a LIKE pattern.
  std::optional<double> EstimateLikeSelectivity(std::string_view pattern,
                                                bool negated) const
      EXCLUDES(mu_);

  /// Equi-width histogram over the sample (numeric attributes).
  std::vector<uint64_t> SampleHistogram(size_t buckets) const
      EXCLUDES(mu_);

  /// Serializable copy of the sketch state (persist/). The reservoir
  /// RNG is not part of the image: a thawed reservoir resumes with a
  /// fresh stream, which is just another valid sample order (the
  /// sketches are order-dependent by design; estimates, never results,
  /// depend on them).
  struct Image {
    uint64_t count = 0;
    uint64_t nulls = 0;
    bool has_min = false;
    double min = 0;
    bool has_max = false;
    double max = 0;
    std::vector<uint64_t> kmv;
    std::vector<double> numeric_sample;
    std::vector<std::string> string_sample;
    uint64_t sampled_stream = 0;
  };

  Image ExportImage() const;

  /// Restores an image into untouched stats; false (no-op) once any
  /// value has been observed.
  bool ImportImage(Image image);

  DataType type() const { return type_; }

 private:
  void Sample(double numeric, const std::string* text) REQUIRES(mu_);
  double EstimateDistinctLocked() const REQUIRES(mu_);

  const DataType type_;
  mutable Mutex mu_;
  uint64_t count_ GUARDED_BY(mu_) = 0;
  uint64_t nulls_ GUARDED_BY(mu_) = 0;
  std::optional<double> min_ GUARDED_BY(mu_);
  std::optional<double> max_ GUARDED_BY(mu_);
  std::set<uint64_t> kmv_ GUARDED_BY(mu_);  // k smallest value hashes
  std::vector<double> numeric_sample_ GUARDED_BY(mu_);
  std::vector<std::string> string_sample_ GUARDED_BY(mu_);
  uint64_t sampled_stream_ GUARDED_BY(mu_) = 0;  // reservoir index
  Random rng_ GUARDED_BY(mu_){0x5747u};
};

/// All attributes of one raw table. Blocks already folded in are
/// remembered so repeated scans do not double-count.
///
/// Thread-safe: a collector-level mutex guards the observed-block set
/// and the lazily-created per-attribute slots. Slots are created once
/// and reset in place on Clear(), so AttributeStats pointers handed
/// out by GetStats stay valid for the collector's lifetime.
class StatsCollector {
 public:
  explicit StatsCollector(std::shared_ptr<Schema> schema);

  /// Folds `column` (the parsed values of `attr` for row-block `block`)
  /// into the table stats, once per (attr, block).
  void ObserveBlock(uint32_t attr, uint64_t block,
                    const ColumnVector& column) EXCLUDES(mu_);

  bool HasStats(uint32_t attr) const EXCLUDES(mu_);

  const AttributeStats* GetStats(uint32_t attr) const {
    MutexLock lock(mu_);
    return attrs_[attr].get();
  }

  /// Attributes with any statistics (for the monitoring panel).
  std::vector<uint32_t> CoveredAttributes() const EXCLUDES(mu_);

  /// Access heat: how many scans requested each attribute. Recorded
  /// unconditionally (cheap counters, independent of the statistics
  /// toggle) — this is what drives shadow-store promotion. Heat is
  /// dropped together with the statistics on Clear(): a rewritten file
  /// restarts the adaptive-loading cycle from scratch.
  void RecordAccessHeat(const std::vector<uint32_t>& attrs) EXCLUDES(mu_);
  uint64_t access_heat(uint32_t attr) const EXCLUDES(mu_);
  std::vector<uint64_t> access_heat_counts() const EXCLUDES(mu_);

  /// Per-tenant slice of the heat above: RecordAccessHeat additionally
  /// buckets each access under the calling thread's tenant
  /// (obs::ScopedTenantLabel::CurrentId(); 0 = untagged), so the
  /// server can show which tenant made an attribute hot. Promotion
  /// thresholds deliberately stay global-sum — a column hot across
  /// tenants is promoted once and serves everyone. Process-local only:
  /// not persisted in snapshots.
  uint64_t access_heat_for_tenant(uint32_t tenant, uint32_t attr) const
      EXCLUDES(mu_);
  /// Tenant ids with any recorded heat, ascending.
  std::vector<uint32_t> HeatTenants() const EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

  /// Serializable copy of the whole collector (persist/): per-attribute
  /// sketches (absent for never-observed attributes), access heat and
  /// the observed-(attr, block) dedup set.
  struct Image {
    std::vector<std::optional<AttributeStats::Image>> attrs;
    std::vector<uint64_t> heat;
    std::vector<uint64_t> observed;  // (attr<<40)|block keys
  };

  Image ExportImage() const;

  /// Restores an image into a cold collector (nothing observed, no
  /// heat); false and no-op otherwise, or when the image's attribute
  /// count does not match this table's schema.
  bool ImportImage(Image image);

 private:
  std::shared_ptr<Schema> schema_;
  mutable Mutex mu_;
  std::vector<std::unique_ptr<AttributeStats>> attrs_ GUARDED_BY(mu_);
  std::vector<uint64_t> heat_ GUARDED_BY(mu_);  // per-attr scan requests
  /// tenant id -> per-attr scan requests (the per-tenant partition of
  /// heat_; only tenants that actually queried the table appear).
  std::unordered_map<uint32_t, std::vector<uint64_t>> tenant_heat_
      GUARDED_BY(mu_);
  std::unordered_set<uint64_t> observed_
      GUARDED_BY(mu_);  // (attr<<40)|block keys
};

/// Per-(attribute, row-block) min/max summaries — zone maps — collected
/// alongside the on-the-fly statistics whenever a scan, first-touch
/// pass or store promotion has a fully parsed block segment in hand
/// (the values were parsed anyway; summarizing them is one extra pass,
/// paid once per block). A pushed range/equality predicate provably
/// disjoint from a block's [min, max] lets the scan skip the block
/// without locating a single row.
///
/// Admission mirrors the shadow store: an entry is installed only for
/// a segment that provably covers its whole block, and entries are
/// generation-tagged — a scan that opened against a since-rewritten
/// file cannot repopulate the cleared maps with old-file summaries, so
/// a stale map can never skip live rows. Invalidation also mirrors the
/// store: Clear() on rewrite (advances the generation),
/// DropBlocksFrom() on append (the block containing the old frontier
/// gains rows). Entries are immutable once installed (any two
/// observers parsed identical bytes).
///
/// NULL-bearing and NaN-bearing blocks are marked non-skippable;
/// string attributes are not summarized.
///
/// Zone maps are deliberately unbudgeted, like the positional map's
/// row index (and unlike the chunk/segment LRUs): one ~56-byte entry
/// summarizes a whole (attribute, row-block) — about 0.02 bytes per
/// row per attribute, two orders of magnitude below the row index's
/// 8 bytes per row that any mapped table already carries. Evicting
/// them would trade away exactly the summaries that make skips
/// possible while saving memory that rounds to nothing next to the
/// structures that are budgeted.
///
/// Thread-safe: one internal mutex, no I/O under it.
class ZoneMaps {
 public:
  struct Entry {
    bool is_int = false;  ///< int64/date payload: exact integer bounds
    int64_t min_i = 0;
    int64_t max_i = 0;
    double min_d = 0;  ///< bounds under GetNumeric's double view
    double max_d = 0;
    uint64_t rows = 0;       ///< rows the observed segment held
    bool has_null = false;   ///< block contains NULLs: never skip
    bool non_null = false;   ///< at least one non-null value observed
    bool unsafe = false;     ///< NaN observed: bounds unusable
  };

  /// Summarizes `column` (the parsed values of `attr` for `block`) into
  /// an entry; first install wins. Rejected when `generation` is stale
  /// or the attribute is a string. The caller guarantees the column
  /// covers the entire block.
  void Observe(uint32_t attr, uint64_t block, const ColumnVector& column,
               uint64_t generation) EXCLUDES(mu_);

  std::optional<Entry> Get(uint32_t attr, uint64_t block) const
      EXCLUDES(mu_);
  bool Contains(uint32_t attr, uint64_t block) const EXCLUDES(mu_);

  /// The current file generation; snapshot before opening the file a
  /// scan will parse from, pass back to Observe.
  uint64_t generation() const EXCLUDES(mu_);

  /// Drops every entry of block >= `first_block` (append: the block
  /// containing the old frontier is about to gain rows).
  void DropBlocksFrom(uint64_t first_block) EXCLUDES(mu_);

  /// Drops everything and advances the generation (file rewritten).
  void Clear() EXCLUDES(mu_);

  size_t num_entries() const EXCLUDES(mu_);

  /// Serializable copy of the summaries (persist/). The generation is
  /// deliberately not part of the image — it is a process-local
  /// in-flight-scan fence, meaningless across restarts.
  struct Image {
    struct EntryImage {
      uint32_t attr = 0;
      uint64_t block = 0;
      Entry entry;
    };
    std::vector<EntryImage> entries;
  };

  Image ExportImage() const;

  /// Restores an image into empty zone maps; false and no-op once any
  /// entry exists.
  bool ImportImage(Image image);

 private:
  static uint64_t KeyOf(uint32_t attr, uint64_t block) {
    return (static_cast<uint64_t>(attr) << 40) | block;
  }

  mutable Mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_ GUARDED_BY(mu_);
  uint64_t generation_ GUARDED_BY(mu_) = 0;
};

/// Bridges table statistics into the planner's SelectivityEstimator
/// seam. Bound predicates reference projected column positions, so
/// resolution goes through the column *name* back to the table schema.
class StatsSelectivityEstimator final : public SelectivityEstimator {
 public:
  /// Registers `stats` for `table`. Pointers must outlive the planner.
  void Register(const std::string& table, const StatsCollector* stats,
                std::shared_ptr<Schema> schema);

  std::optional<double> EstimateSelectivity(
      const std::string& table, const Expr& predicate) const override;

 private:
  struct TableEntry {
    const StatsCollector* stats;
    std::shared_ptr<Schema> schema;
  };
  std::unordered_map<std::string, TableEntry> tables_;
};

}  // namespace nodb

#endif  // NODB_RAW_STATS_COLLECTOR_H_
