#ifndef NODB_RAW_TABLE_STATE_H_
#define NODB_RAW_TABLE_STATE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "io/file.h"
#include "io/file_signature.h"
#include "persist/image.h"
#include "raw/nodb_config.h"
#include "raw/positional_map.h"
#include "raw/raw_cache.h"
#include "raw/stats_collector.h"
#include "store/shadow_store.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace nodb {

/// Runtime component switches (the demo GUI's toggles), snapshotted by
/// each scan when it opens.
struct ComponentFlags {
  bool map = true;
  bool cache = true;
  bool stats = true;
  bool store = true;

  bool any() const { return map || cache || stats || store; }
};

/// All adaptive state a NoDB engine accumulates for one raw table:
/// the positional map, the binary cache, the on-the-fly statistics,
/// the open file handle and the change-detection signature. Everything
/// here is *disposable* — it is rebuilt from the raw file on demand —
/// which is what makes in-situ querying safe under external updates.
///
/// Shared by every concurrent query over the table. The component
/// structures are internally synchronized (see their headers); this
/// class's own mutex guards the file handle, signature, runtime flags
/// and access counters. File metadata (info(), config()) is immutable
/// while queries are in flight — CheckForUpdates/ReplaceFile must not
/// race with scans of the *new* generation, though scans of the old
/// generation keep their shared file handle and finish safely.
class RawTableState {
 public:
  RawTableState(RawTableInfo info, const NoDbConfig& config);

  /// Opens the raw file and captures the initial signature.
  Status Open() EXCLUDES(mu_);

  /// Re-checks the raw file (demo §4.2 "Updates"):
  ///  - unchanged: no-op;
  ///  - appended (and the old content ended with a newline): keep all
  ///    structures, reopen row discovery for the tail;
  ///  - rewritten: drop map, cache and statistics.
  Result<FileChange> CheckForUpdates() EXCLUDES(mu_);

  /// Points the state at a different file (the demo's "new data file"
  /// scenario); drops all structures.
  Status ReplaceFile(const RawTableInfo& info) EXCLUDES(mu_);

  const RawTableInfo& info() const { return info_; }
  const NoDbConfig& config() const { return config_; }

  /// Flips the component enable flags at runtime (demo GUI switches).
  /// Budgets and block granularity stay fixed; retained structures are
  /// simply ignored while their component is off. Scans snapshot the
  /// flags at Open, so a flip applies to subsequent queries.
  void SetComponentFlags(bool map, bool cache, bool stats, bool store)
      EXCLUDES(mu_);
  ComponentFlags component_flags() const EXCLUDES(mu_);

  /// The shared raw-file handle (positional reads are thread-safe);
  /// nullptr before Open. Callers keep the returned handle for the
  /// whole scan so a concurrent reopen cannot pull it out from under
  /// them.
  std::shared_ptr<RandomAccessFile> file() const EXCLUDES(mu_);

  PositionalMap& map() { return map_; }
  const PositionalMap& map() const { return map_; }
  RawCache& cache() { return cache_; }
  const RawCache& cache() const { return cache_; }
  StatsCollector& stats() { return stats_; }
  const StatsCollector& stats() const { return stats_; }
  ShadowStore& store() { return store_; }
  const ShadowStore& store() const { return store_; }
  ZoneMaps& zones() { return zones_; }
  const ZoneMaps& zones() const { return zones_; }

  /// Per-attribute access counts (monitoring panel usage statistics).
  void RecordAttributeAccess(const std::vector<uint32_t>& attrs)
      EXCLUDES(mu_);
  std::vector<uint64_t> attribute_access_counts() const EXCLUDES(mu_);

  uint64_t queries_executed() const {
    return queries_executed_.load(std::memory_order_relaxed);
  }
  void IncrementQueryCount() {
    queries_executed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Claims the one parallel first-touch scan allowed per file
  /// generation: true exactly once until the file is rewritten or
  /// replaced. Concurrent first queries race here; the loser proceeds
  /// with the serial adaptive path.
  bool TryClaimParallelPrewarm() EXCLUDES(mu_);
  bool parallel_prewarmed() const EXCLUDES(mu_);

  /// Claims a background shadow-store promotion pass for the given
  /// (hot-attribute set, known-row count) target. Returns false while
  /// another pass is in flight, or when the last *completed* pass
  /// already covered the same target — a budget-bound store is not
  /// re-promoted in a loop; only new heat or new rows re-arm it.
  bool TryBeginPromotion(std::vector<uint32_t> hot_attrs,
                         uint64_t known_rows) EXCLUDES(mu_);

  /// Releases the promotion claim. `completed` records the staged
  /// target as done; a failed pass leaves it re-armed.
  void EndPromotion(bool completed) EXCLUDES(mu_);
  bool promotion_in_flight() const EXCLUDES(mu_);

  // -------------------------------------------- persistence (persist/)
  /// The signature the adaptive structures are valid for — captured at
  /// Open / last CheckForUpdates, i.e. exactly the file generation the
  /// structures describe. The snapshot writer records this (never a
  /// fresh capture): if the raw file changed after the structures were
  /// last validated, the stale signature makes the loader cold-start
  /// rather than trust mismatched state.
  FileSignature signature() const EXCLUDES(mu_);

  /// Freezes the four persistent structures into serializable images.
  /// Safe while queries are in flight: each structure exports a
  /// consistent cut under its own lock (the RawCache is deliberately
  /// not persisted — it is a recency cache, cheaply re-earned, and its
  /// hottest contents are promoted into the store anyway).
  persist::AdaptiveImage Freeze() const;

  /// Thaws images into the (cold) structures and records the recovery
  /// report. Each structure imports independently and refuses if it
  /// already has live state, composing with the generation-tagging
  /// rules: imports target the current generation, so a concurrent
  /// rewrite still invalidates recovered state like any other. With
  /// `change == kAppended` the prefix is recovered and the structures
  /// are re-opened exactly like CheckForUpdates' clean-append path —
  /// discovery resumes at the old frontier and only the tail is
  /// first-touched. `detail` annotates the stored report.
  persist::RecoveryReport Thaw(persist::AdaptiveImage image,
                               FileChange change, std::string detail = "");

  /// The last recovery attempt's report (default-constructed before
  /// any attempt): MonitorPanel's recovered-vs-rebuilt line and the
  /// scan-metrics provenance counters read this.
  persist::RecoveryReport recovery() const EXCLUDES(mu_);
  void RecordRecovery(persist::RecoveryReport report) EXCLUDES(mu_);

 private:
  Status OpenLocked() REQUIRES(mu_);
  void InvalidateAllLocked() REQUIRES(mu_);

  /// Mutated only by ReplaceFile, which the API contract requires to
  /// run with no queries in flight; scans read it lock-free through
  /// info(). Deliberately not GUARDED_BY(mu_) for that reason.
  RawTableInfo info_;
  const NoDbConfig config_;

  // ------------------------------------------------- lock discipline
  /// Canonical acquisition order for everything reachable from one
  /// table (outermost first); every path through the engine acquires
  /// along this order, never against it:
  ///
  ///   1. RawTableState::mu_        (this lock: handle/flags/claims)
  ///   2. PositionalMap::discovery_mu_  then  PositionalMap::mu_
  ///   3. ShadowStore::mu_
  ///   4. RawCache::mu_
  ///   5. StatsCollector / AttributeStats / ZoneMaps mu_
  ///
  /// The component structures never call back up the stack (a map
  /// operation cannot touch the store, a store operation cannot touch
  /// the cache, ...), so holding an outer lock while entering an inner
  /// structure is safe and the reverse never happens. ACQUIRED_BEFORE
  /// on PositionalMap::discovery_mu_ encodes the one intra-structure
  /// edge; NoDbEngine's locks (states_mu_, promo_mu_, pool_mu_,
  /// totals_mu_) sit above level 1 and are leaf-only among themselves.
  mutable Mutex mu_;
  ComponentFlags flags_ GUARDED_BY(mu_);
  std::shared_ptr<RandomAccessFile> file_ GUARDED_BY(mu_);
  FileSignature signature_ GUARDED_BY(mu_);
  std::vector<uint64_t> access_counts_ GUARDED_BY(mu_);
  bool parallel_prewarmed_ GUARDED_BY(mu_) = false;

  bool promotion_in_flight_ GUARDED_BY(mu_) = false;
  std::vector<uint32_t> staged_hot_ GUARDED_BY(mu_);  // in-flight target
  uint64_t staged_rows_ GUARDED_BY(mu_) = 0;
  std::vector<uint32_t> promoted_hot_
      GUARDED_BY(mu_);  // last completed pass target
  uint64_t promoted_rows_ GUARDED_BY(mu_) = UINT64_MAX;

  persist::RecoveryReport recovery_
      GUARDED_BY(mu_);  // last snapshot-recovery attempt

  std::atomic<uint64_t> queries_executed_{0};

  PositionalMap map_;
  RawCache cache_;
  StatsCollector stats_;
  ShadowStore store_;
  ZoneMaps zones_;
};

}  // namespace nodb

#endif  // NODB_RAW_TABLE_STATE_H_
