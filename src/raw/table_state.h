#ifndef NODB_RAW_TABLE_STATE_H_
#define NODB_RAW_TABLE_STATE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "io/file.h"
#include "io/file_signature.h"
#include "raw/nodb_config.h"
#include "raw/positional_map.h"
#include "raw/raw_cache.h"
#include "raw/stats_collector.h"
#include "util/result.h"

namespace nodb {

/// All adaptive state a NoDB engine accumulates for one raw table:
/// the positional map, the binary cache, the on-the-fly statistics,
/// the open file handle and the change-detection signature. Everything
/// here is *disposable* — it is rebuilt from the raw file on demand —
/// which is what makes in-situ querying safe under external updates.
class RawTableState {
 public:
  RawTableState(RawTableInfo info, const NoDbConfig& config);

  /// Opens the raw file and captures the initial signature.
  Status Open();

  /// Re-checks the raw file (demo §4.2 "Updates"):
  ///  - unchanged: no-op;
  ///  - appended (and the old content ended with a newline): keep all
  ///    structures, reopen row discovery for the tail;
  ///  - rewritten: drop map, cache and statistics.
  Result<FileChange> CheckForUpdates();

  /// Points the state at a different file (the demo's "new data file"
  /// scenario); drops all structures.
  Status ReplaceFile(const RawTableInfo& info);

  const RawTableInfo& info() const { return info_; }
  const NoDbConfig& config() const { return config_; }

  /// Flips the component enable flags at runtime (demo GUI switches).
  /// Budgets and block granularity stay fixed; retained structures are
  /// simply ignored while their component is off.
  void SetComponentFlags(bool map, bool cache, bool stats) {
    config_.enable_positional_map = map;
    config_.enable_cache = cache;
    config_.enable_statistics = stats;
  }
  const std::shared_ptr<RandomAccessFile>& file() const { return file_; }

  PositionalMap& map() { return map_; }
  const PositionalMap& map() const { return map_; }
  RawCache& cache() { return cache_; }
  const RawCache& cache() const { return cache_; }
  StatsCollector& stats() { return stats_; }
  const StatsCollector& stats() const { return stats_; }

  /// Per-attribute access counts (monitoring panel usage statistics).
  void RecordAttributeAccess(const std::vector<uint32_t>& attrs);
  const std::vector<uint64_t>& attribute_access_counts() const {
    return access_counts_;
  }

  uint64_t queries_executed() const { return queries_executed_; }
  void IncrementQueryCount() { ++queries_executed_; }

  /// Whether the parallel first-touch scan already ran for the current
  /// file generation (cleared when the file is rewritten/replaced), so
  /// the engine attempts it at most once per generation.
  bool parallel_prewarmed() const { return parallel_prewarmed_; }
  void set_parallel_prewarmed(bool value) { parallel_prewarmed_ = value; }

 private:
  void InvalidateAll();

  RawTableInfo info_;
  NoDbConfig config_;
  std::shared_ptr<RandomAccessFile> file_;
  FileSignature signature_;
  PositionalMap map_;
  RawCache cache_;
  StatsCollector stats_;
  std::vector<uint64_t> access_counts_;
  uint64_t queries_executed_ = 0;
  bool parallel_prewarmed_ = false;
};

}  // namespace nodb

#endif  // NODB_RAW_TABLE_STATE_H_
