#include "raw/table_state.h"

namespace nodb {

RawTableState::RawTableState(RawTableInfo info, const NoDbConfig& config)
    : info_(std::move(info)),
      config_(config),
      flags_{config.enable_positional_map, config.enable_cache,
             config.enable_statistics, config.enable_store},
      access_counts_(info_.schema->num_fields(), 0),
      map_(config.positional_map_budget, config.rows_per_block,
           config.max_covering_chunks),
      cache_(config.cache_budget),
      stats_(info_.schema),
      store_(config.store_budget) {}

Status RawTableState::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  return OpenLocked();
}

Status RawTableState::OpenLocked() {
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(info_.path));
  file_ = std::shared_ptr<RandomAccessFile>(std::move(file));
  NODB_ASSIGN_OR_RETURN(signature_, FileSignature::Capture(info_.path));
  return Status::OK();
}

Result<FileChange> RawTableState::CheckForUpdates() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    NODB_RETURN_NOT_OK(OpenLocked());
    return FileChange::kUnchanged;
  }
  NODB_ASSIGN_OR_RETURN(FileChange change, signature_.Compare());
  if (change == FileChange::kUnchanged) return change;

  if (change == FileChange::kAppended) {
    // Appends keep every structure valid for the old byte range *if*
    // the old content was newline-terminated (otherwise the final old
    // tuple was extended in place and positions after it shifted).
    bool clean_append = false;
    if (signature_.size() > 0) {
      char last;
      Slice got;
      Status s =
          file_->Read(signature_.size() - 1, 1, &last, &got);
      clean_append = s.ok() && got.size() == 1 && got[0] == '\n';
    }
    if (clean_append) {
      // The block containing the old frontier is about to gain rows:
      // its promoted store segments no longer cover the whole block.
      // Earlier full blocks keep their promotion (the tail is
      // re-promoted by heat once re-scanned). Reopen discovery first —
      // tail admission requires a complete row index, so a concurrent
      // scan cannot re-promote the stale tail after the drop.
      map_.ReopenForAppend();
      store_.DropBlocksFrom(map_.known_rows() / config_.rows_per_block);
      // The zone maps truncate exactly like the store: the frontier
      // block's summary no longer covers it, earlier full blocks stay.
      zones_.DropBlocksFrom(map_.known_rows() / config_.rows_per_block);
      promoted_rows_ = UINT64_MAX;  // re-arm the background promoter
    } else {
      change = FileChange::kRewritten;
    }
  }
  if (change == FileChange::kRewritten) {
    InvalidateAllLocked();
  }
  // Reopen: the inode may have been replaced (editors rewrite files).
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(info_.path));
  file_ = std::shared_ptr<RandomAccessFile>(std::move(file));
  NODB_ASSIGN_OR_RETURN(signature_, FileSignature::Capture(info_.path));
  return change;
}

Status RawTableState::ReplaceFile(const RawTableInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  info_ = info;
  InvalidateAllLocked();
  access_counts_.assign(info_.schema->num_fields(), 0);
  return OpenLocked();
}

void RawTableState::SetComponentFlags(bool map, bool cache, bool stats,
                                      bool store) {
  std::lock_guard<std::mutex> lock(mu_);
  flags_ = ComponentFlags{map, cache, stats, store};
}

ComponentFlags RawTableState::component_flags() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flags_;
}

std::shared_ptr<RandomAccessFile> RawTableState::file() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_;
}

void RawTableState::RecordAttributeAccess(
    const std::vector<uint32_t>& attrs) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint32_t a : attrs) {
      if (a < access_counts_.size()) ++access_counts_[a];
    }
  }
  // Promotion heat rides on the same signal (store/promoter.h).
  stats_.RecordAccessHeat(attrs);
}

std::vector<uint64_t> RawTableState::attribute_access_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return access_counts_;
}

bool RawTableState::TryClaimParallelPrewarm() {
  std::lock_guard<std::mutex> lock(mu_);
  if (parallel_prewarmed_) return false;
  parallel_prewarmed_ = true;
  return true;
}

bool RawTableState::parallel_prewarmed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parallel_prewarmed_;
}

bool RawTableState::TryBeginPromotion(std::vector<uint32_t> hot_attrs,
                                      uint64_t known_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  if (promotion_in_flight_) return false;
  if (promoted_rows_ == known_rows && promoted_hot_ == hot_attrs) {
    return false;  // the last completed pass already covered this
  }
  promotion_in_flight_ = true;
  staged_hot_ = std::move(hot_attrs);
  staged_rows_ = known_rows;
  return true;
}

void RawTableState::EndPromotion(bool completed) {
  std::lock_guard<std::mutex> lock(mu_);
  promotion_in_flight_ = false;
  if (completed) {
    promoted_hot_ = std::move(staged_hot_);
    promoted_rows_ = staged_rows_;
  }
  staged_hot_.clear();
}

bool RawTableState::promotion_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return promotion_in_flight_;
}

void RawTableState::InvalidateAllLocked() {
  map_.Clear();
  cache_.Clear();
  stats_.Clear();
  store_.Clear();
  zones_.Clear();
  parallel_prewarmed_ = false;
  promoted_hot_.clear();
  promoted_rows_ = UINT64_MAX;
}

}  // namespace nodb
