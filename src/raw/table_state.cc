#include "raw/table_state.h"

namespace nodb {

RawTableState::RawTableState(RawTableInfo info, const NoDbConfig& config)
    : info_(std::move(info)),
      config_(config),
      flags_{config.enable_positional_map, config.enable_cache,
             config.enable_statistics},
      access_counts_(info_.schema->num_fields(), 0),
      map_(config.positional_map_budget, config.rows_per_block,
           config.max_covering_chunks),
      cache_(config.cache_budget),
      stats_(info_.schema) {}

Status RawTableState::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  return OpenLocked();
}

Status RawTableState::OpenLocked() {
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(info_.path));
  file_ = std::shared_ptr<RandomAccessFile>(std::move(file));
  NODB_ASSIGN_OR_RETURN(signature_, FileSignature::Capture(info_.path));
  return Status::OK();
}

Result<FileChange> RawTableState::CheckForUpdates() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    NODB_RETURN_NOT_OK(OpenLocked());
    return FileChange::kUnchanged;
  }
  NODB_ASSIGN_OR_RETURN(FileChange change, signature_.Compare());
  if (change == FileChange::kUnchanged) return change;

  if (change == FileChange::kAppended) {
    // Appends keep every structure valid for the old byte range *if*
    // the old content was newline-terminated (otherwise the final old
    // tuple was extended in place and positions after it shifted).
    bool clean_append = false;
    if (signature_.size() > 0) {
      char last;
      Slice got;
      Status s =
          file_->Read(signature_.size() - 1, 1, &last, &got);
      clean_append = s.ok() && got.size() == 1 && got[0] == '\n';
    }
    if (clean_append) {
      map_.ReopenForAppend();
    } else {
      change = FileChange::kRewritten;
    }
  }
  if (change == FileChange::kRewritten) {
    InvalidateAllLocked();
  }
  // Reopen: the inode may have been replaced (editors rewrite files).
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(info_.path));
  file_ = std::shared_ptr<RandomAccessFile>(std::move(file));
  NODB_ASSIGN_OR_RETURN(signature_, FileSignature::Capture(info_.path));
  return change;
}

Status RawTableState::ReplaceFile(const RawTableInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  info_ = info;
  InvalidateAllLocked();
  access_counts_.assign(info_.schema->num_fields(), 0);
  return OpenLocked();
}

void RawTableState::SetComponentFlags(bool map, bool cache, bool stats) {
  std::lock_guard<std::mutex> lock(mu_);
  flags_ = ComponentFlags{map, cache, stats};
}

ComponentFlags RawTableState::component_flags() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flags_;
}

std::shared_ptr<RandomAccessFile> RawTableState::file() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_;
}

void RawTableState::RecordAttributeAccess(
    const std::vector<uint32_t>& attrs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t a : attrs) {
    if (a < access_counts_.size()) ++access_counts_[a];
  }
}

std::vector<uint64_t> RawTableState::attribute_access_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return access_counts_;
}

bool RawTableState::TryClaimParallelPrewarm() {
  std::lock_guard<std::mutex> lock(mu_);
  if (parallel_prewarmed_) return false;
  parallel_prewarmed_ = true;
  return true;
}

bool RawTableState::parallel_prewarmed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parallel_prewarmed_;
}

void RawTableState::InvalidateAllLocked() {
  map_.Clear();
  cache_.Clear();
  stats_.Clear();
  parallel_prewarmed_ = false;
}

}  // namespace nodb
