#include "raw/table_state.h"

namespace nodb {

RawTableState::RawTableState(RawTableInfo info, const NoDbConfig& config)
    : info_(std::move(info)),
      config_(config),
      flags_{config.enable_positional_map, config.enable_cache,
             config.enable_statistics, config.enable_store},
      access_counts_(info_.schema->num_fields(), 0),
      map_(config.positional_map_budget, config.rows_per_block,
           config.max_covering_chunks),
      cache_(config.cache_budget),
      stats_(info_.schema),
      store_(config.store_budget) {}

Status RawTableState::Open() {
  MutexLock lock(mu_);
  return OpenLocked();
}

Status RawTableState::OpenLocked() {
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(info_.path));
  file_ = std::shared_ptr<RandomAccessFile>(std::move(file));
  NODB_ASSIGN_OR_RETURN(signature_, FileSignature::Capture(info_.path));
  return Status::OK();
}

Result<FileChange> RawTableState::CheckForUpdates() {
  MutexLock lock(mu_);
  if (file_ == nullptr) {
    NODB_RETURN_NOT_OK(OpenLocked());
    return FileChange::kUnchanged;
  }
  NODB_ASSIGN_OR_RETURN(FileChange change, signature_.Compare());
  if (change == FileChange::kUnchanged) return change;

  if (change == FileChange::kAppended) {
    // Appends keep every structure valid for the old byte range *if*
    // the old content was newline-terminated (otherwise the final old
    // tuple was extended in place and positions after it shifted).
    bool clean_append = false;
    if (signature_.size() > 0) {
      char last;
      Slice got;
      Status s =
          file_->Read(signature_.size() - 1, 1, &last, &got);
      clean_append = s.ok() && got.size() == 1 && got[0] == '\n';
    }
    if (clean_append) {
      // The block containing the old frontier is about to gain rows:
      // its promoted store segments no longer cover the whole block.
      // Earlier full blocks keep their promotion (the tail is
      // re-promoted by heat once re-scanned). Reopen discovery first —
      // tail admission requires a complete row index, so a concurrent
      // scan cannot re-promote the stale tail after the drop.
      map_.ReopenForAppend();
      // No generation bump: surviving blocks stay valid, and stale
      // producers racing the drop are fenced by serve-time tail
      // re-validation against the live row index.
      store_.DropBlocksFrom(map_.known_rows() / config_.rows_per_block);
      // The zone maps truncate exactly like the store: the frontier
      // block's summary no longer covers it, earlier full blocks stay
      // (fenced the same way — tail re-validation, not generations).
      zones_.DropBlocksFrom(map_.known_rows() / config_.rows_per_block);
      promoted_rows_ = UINT64_MAX;  // re-arm the background promoter
    } else {
      change = FileChange::kRewritten;
    }
  }
  if (change == FileChange::kRewritten) {
    InvalidateAllLocked();
  }
  // Reopen: the inode may have been replaced (editors rewrite files).
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(info_.path));
  file_ = std::shared_ptr<RandomAccessFile>(std::move(file));
  NODB_ASSIGN_OR_RETURN(signature_, FileSignature::Capture(info_.path));
  return change;
}

Status RawTableState::ReplaceFile(const RawTableInfo& info) {
  MutexLock lock(mu_);
  info_ = info;
  InvalidateAllLocked();
  access_counts_.assign(info_.schema->num_fields(), 0);
  return OpenLocked();
}

void RawTableState::SetComponentFlags(bool map, bool cache, bool stats,
                                      bool store) {
  MutexLock lock(mu_);
  flags_ = ComponentFlags{map, cache, stats, store};
}

ComponentFlags RawTableState::component_flags() const {
  MutexLock lock(mu_);
  return flags_;
}

std::shared_ptr<RandomAccessFile> RawTableState::file() const {
  MutexLock lock(mu_);
  return file_;
}

void RawTableState::RecordAttributeAccess(
    const std::vector<uint32_t>& attrs) {
  {
    MutexLock lock(mu_);
    for (uint32_t a : attrs) {
      if (a < access_counts_.size()) ++access_counts_[a];
    }
  }
  // Promotion heat rides on the same signal (store/promoter.h).
  stats_.RecordAccessHeat(attrs);
}

std::vector<uint64_t> RawTableState::attribute_access_counts() const {
  MutexLock lock(mu_);
  return access_counts_;
}

bool RawTableState::TryClaimParallelPrewarm() {
  MutexLock lock(mu_);
  if (parallel_prewarmed_) return false;
  parallel_prewarmed_ = true;
  return true;
}

bool RawTableState::parallel_prewarmed() const {
  MutexLock lock(mu_);
  return parallel_prewarmed_;
}

bool RawTableState::TryBeginPromotion(std::vector<uint32_t> hot_attrs,
                                      uint64_t known_rows) {
  MutexLock lock(mu_);
  if (promotion_in_flight_) return false;
  if (promoted_rows_ == known_rows && promoted_hot_ == hot_attrs) {
    return false;  // the last completed pass already covered this
  }
  promotion_in_flight_ = true;
  staged_hot_ = std::move(hot_attrs);
  staged_rows_ = known_rows;
  return true;
}

void RawTableState::EndPromotion(bool completed) {
  MutexLock lock(mu_);
  promotion_in_flight_ = false;
  if (completed) {
    promoted_hot_ = std::move(staged_hot_);
    promoted_rows_ = staged_rows_;
  }
  staged_hot_.clear();
}

bool RawTableState::promotion_in_flight() const {
  MutexLock lock(mu_);
  return promotion_in_flight_;
}

FileSignature RawTableState::signature() const {
  MutexLock lock(mu_);
  return signature_;
}

persist::AdaptiveImage RawTableState::Freeze() const {
  persist::AdaptiveImage image;
  image.map = map_.ExportImage();
  image.stats = stats_.ExportImage();
  image.zones = zones_.ExportImage();
  image.store = store_.ExportImage();
  return image;
}

persist::RecoveryReport RawTableState::Thaw(persist::AdaptiveImage image,
                                            FileChange change,
                                            std::string detail) {
  persist::RecoveryReport report;
  report.attempted = true;
  report.change = change;
  report.detail = std::move(detail);
  const bool offered = image.map.has_value() || image.stats.has_value() ||
                       image.zones.has_value() || image.store.has_value();

  if (change == FileChange::kAppended && image.map.has_value()) {
    // Import the prefix index already reopened for discovery: even a
    // brief window where a complete-looking prefix-only index is
    // published would let a concurrent scan terminate at the old
    // frontier and silently miss every appended row.
    image.map->rows_complete = false;
  }
  if (image.map.has_value() && map_.ImportImage(std::move(*image.map))) {
    report.map_recovered = true;
    report.rows_recovered = map_.known_rows();
    report.chunks_recovered = map_.num_chunks();
  }
  if (image.stats.has_value() &&
      stats_.ImportImage(std::move(*image.stats))) {
    report.stats_recovered = true;
  }
  if (image.zones.has_value() &&
      zones_.ImportImage(std::move(*image.zones))) {
    report.zones_recovered = true;
    report.zone_entries_recovered = zones_.num_entries();
  }
  if (image.store.has_value() && store_.ImportImage(*image.store)) {
    report.store_recovered = true;
    report.store_segments_recovered = store_.num_segments();
  }

  if (change == FileChange::kAppended && report.map_recovered) {
    // Mirror CheckForUpdates' clean-append path: the index was already
    // imported reopened (above), so only the frontier block — whose
    // segments/summaries no longer cover it — is dropped. Earlier full
    // blocks keep their recovered state.
    //
    // Gated on the map actually having been recovered: when the import
    // was refused the live map already reflects the appended file, and
    // running the drop against it would discard valid live tail state;
    // when the map *section* was lost but store/zones recovered, the
    // old frontier is unknowable — the serve-time tail re-validation
    // (FetchStoreBlock / zone tail checks against the live row index)
    // already rejects the one possibly-stale frontier-block entry.
    uint64_t frontier = map_.known_rows() / config_.rows_per_block;
    // No generation bump here either: the thawed blocks below the
    // frontier are valid, and the serve-time tail re-validation fences
    // the one possibly-stale frontier block (see comment above).
    store_.DropBlocksFrom(frontier);
    zones_.DropBlocksFrom(frontier);
    if (report.store_recovered) {
      report.store_segments_recovered = store_.num_segments();
    }
    if (report.zones_recovered) {
      report.zone_entries_recovered = zones_.num_entries();
    }
  }

  if (offered && !report.any_recovered()) {
    // Every import refused: the structures are already live (queries
    // beat the thaw to them) — live state always wins.
    report.detail = "live adaptive state retained; snapshot ignored";
  }

  RecordRecovery(report);
  return report;
}

persist::RecoveryReport RawTableState::recovery() const {
  MutexLock lock(mu_);
  return recovery_;
}

void RawTableState::RecordRecovery(persist::RecoveryReport report) {
  MutexLock lock(mu_);
  if (!report.any_recovered() && recovery_.any_recovered()) {
    // A later attempt that recovered nothing (typically a re-load onto
    // the now-warm structures) must not erase the truthful provenance
    // of the recovery those structures actually came from — the panel
    // line and the scans' recovered counters keep reporting it until
    // the structures themselves are invalidated.
    return;
  }
  recovery_ = std::move(report);
}

void RawTableState::InvalidateAllLocked() {
  // Each Clear() bumps the component's generation tag, so an in-flight
  // scan that parsed the *old* file cannot inject stale blocks into the
  // rebuilt structures (Promote/Observe compare tags and drop).
  map_.Clear();
  cache_.Clear();
  stats_.Clear();
  store_.Clear();
  zones_.Clear();
  parallel_prewarmed_ = false;
  promoted_hot_.clear();
  promoted_rows_ = UINT64_MAX;
  // Recovered state just got dropped with everything else; stop
  // reporting it (scans over the new generation rebuild from cold).
  recovery_ = persist::RecoveryReport{};
}

}  // namespace nodb
