#include "raw/table_state.h"

namespace nodb {

RawTableState::RawTableState(RawTableInfo info, const NoDbConfig& config)
    : info_(std::move(info)),
      config_(config),
      map_(config.positional_map_budget, config.rows_per_block,
           config.max_covering_chunks),
      cache_(config.cache_budget),
      stats_(info_.schema),
      access_counts_(info_.schema->num_fields(), 0) {}

Status RawTableState::Open() {
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(info_.path));
  file_ = std::shared_ptr<RandomAccessFile>(std::move(file));
  NODB_ASSIGN_OR_RETURN(signature_, FileSignature::Capture(info_.path));
  return Status::OK();
}

Result<FileChange> RawTableState::CheckForUpdates() {
  if (file_ == nullptr) {
    NODB_RETURN_NOT_OK(Open());
    return FileChange::kUnchanged;
  }
  NODB_ASSIGN_OR_RETURN(FileChange change, signature_.Compare());
  if (change == FileChange::kUnchanged) return change;

  if (change == FileChange::kAppended) {
    // Appends keep every structure valid for the old byte range *if*
    // the old content was newline-terminated (otherwise the final old
    // tuple was extended in place and positions after it shifted).
    bool clean_append = false;
    if (signature_.size() > 0) {
      char last;
      Slice got;
      Status s =
          file_->Read(signature_.size() - 1, 1, &last, &got);
      clean_append = s.ok() && got.size() == 1 && got[0] == '\n';
    }
    if (clean_append) {
      map_.ReopenForAppend();
    } else {
      change = FileChange::kRewritten;
    }
  }
  if (change == FileChange::kRewritten) {
    InvalidateAll();
  }
  // Reopen: the inode may have been replaced (editors rewrite files).
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(info_.path));
  file_ = std::shared_ptr<RandomAccessFile>(std::move(file));
  NODB_ASSIGN_OR_RETURN(signature_, FileSignature::Capture(info_.path));
  return change;
}

Status RawTableState::ReplaceFile(const RawTableInfo& info) {
  info_ = info;
  InvalidateAll();
  access_counts_.assign(info_.schema->num_fields(), 0);
  return Open();
}

void RawTableState::RecordAttributeAccess(
    const std::vector<uint32_t>& attrs) {
  for (uint32_t a : attrs) {
    if (a < access_counts_.size()) ++access_counts_[a];
  }
}

void RawTableState::InvalidateAll() {
  map_.Clear();
  cache_.Clear();
  stats_.Clear();
  parallel_prewarmed_ = false;
}

}  // namespace nodb
