#ifndef NODB_RAW_SCAN_METRICS_H_
#define NODB_RAW_SCAN_METRICS_H_

#include <cstdint>

namespace nodb {

/// Cost breakdown of one raw scan, in the categories of the demo's
/// Query Execution Breakdown panel (Figure 3).
///
/// Category mapping:
///  - io_ns:       physical pread() time (BufferedReader accounting)
///  - parsing_ns:  locating tuple boundaries (newline scans, row
///                 bookkeeping), excluding I/O inside
///  - tokenize_ns: delimiter scanning inside tuples (CsvTokenizer),
///                 excluding I/O inside
///  - convert_ns:  text -> binary conversion (ValueParser)
///  - nodb_ns:     positional map / cache / statistics maintenance —
///                 the overhead *added* by the NoDB auxiliary
///                 structures
///
/// "Processing" (the rest of the plan: filters, aggregates, joins,
/// materialization) is derived at the engine level as
/// total − (io + parsing + tokenize + convert + nodb).
struct ScanMetrics {
  int64_t io_ns = 0;
  int64_t parsing_ns = 0;
  int64_t tokenize_ns = 0;
  int64_t convert_ns = 0;
  int64_t nodb_ns = 0;

  uint64_t rows_scanned = 0;
  uint64_t bytes_read = 0;
  uint64_t fields_tokenized = 0;
  uint64_t fields_converted = 0;

  uint64_t cache_block_hits = 0;
  uint64_t cache_block_misses = 0;
  uint64_t map_exact_probes = 0;   ///< field span served by the map
  uint64_t map_anchor_probes = 0;  ///< partial help: jumped mid-tuple
  uint64_t map_blind_rows = 0;     ///< tokenized from byte 0 of the row

  /// Storage-tier attribution: every scanned row lands in exactly one
  /// bucket. `rows_from_store`: all needed columns came from a shadow-
  /// store block (no row location, tokenizing or parsing at all).
  /// `rows_from_cache`: every needed column was a RawCache segment hit
  /// (rows located, nothing tokenized; includes empty projections).
  /// `rows_from_raw`: at least one column was tokenized/parsed from
  /// the raw bytes.
  uint64_t store_block_hits = 0;   ///< whole blocks served by the store
  uint64_t rows_from_store = 0;
  uint64_t rows_from_cache = 0;
  uint64_t rows_from_raw = 0;

  /// Predicate pushdown + zone maps. Zone-skipped rows were never
  /// located, tokenized or parsed (they are *not* in rows_scanned);
  /// pruned rows were examined in phase 1 and dropped by a pushed
  /// predicate before any phase-2 parsing. Field counters split the
  /// two-phase parse: phase 1 converts predicate columns for every
  /// examined row, phase 2 converts the remaining projection columns
  /// for qualifying rows only.
  uint64_t zone_skipped_blocks = 0;
  uint64_t zone_skipped_rows = 0;
  uint64_t pushdown_rows_pruned = 0;
  uint64_t pushdown_phase1_fields = 0;
  uint64_t pushdown_phase2_fields = 0;

  /// Recovered-vs-rebuilt provenance (persist/): scans that opened
  /// over a positional map / shadow store restored from a persisted
  /// snapshot rather than built by queries in this process. Lets
  /// benches prove a warm restart served from recovered state (e.g.
  /// recovered store + zero tokenized fields = no phase-1 parsing).
  uint64_t scans_using_recovered_map = 0;
  uint64_t scans_using_recovered_store = 0;

  void Add(const ScanMetrics& other) {
    io_ns += other.io_ns;
    parsing_ns += other.parsing_ns;
    tokenize_ns += other.tokenize_ns;
    convert_ns += other.convert_ns;
    nodb_ns += other.nodb_ns;
    rows_scanned += other.rows_scanned;
    bytes_read += other.bytes_read;
    fields_tokenized += other.fields_tokenized;
    fields_converted += other.fields_converted;
    cache_block_hits += other.cache_block_hits;
    cache_block_misses += other.cache_block_misses;
    map_exact_probes += other.map_exact_probes;
    map_anchor_probes += other.map_anchor_probes;
    map_blind_rows += other.map_blind_rows;
    store_block_hits += other.store_block_hits;
    rows_from_store += other.rows_from_store;
    rows_from_cache += other.rows_from_cache;
    rows_from_raw += other.rows_from_raw;
    zone_skipped_blocks += other.zone_skipped_blocks;
    zone_skipped_rows += other.zone_skipped_rows;
    pushdown_rows_pruned += other.pushdown_rows_pruned;
    pushdown_phase1_fields += other.pushdown_phase1_fields;
    pushdown_phase2_fields += other.pushdown_phase2_fields;
    scans_using_recovered_map += other.scans_using_recovered_map;
    scans_using_recovered_store += other.scans_using_recovered_store;
  }

  int64_t TotalScanNs() const {
    return io_ns + parsing_ns + tokenize_ns + convert_ns + nodb_ns;
  }
};

}  // namespace nodb

#endif  // NODB_RAW_SCAN_METRICS_H_
