#ifndef NODB_RAW_PARALLEL_SCAN_H_
#define NODB_RAW_PARALLEL_SCAN_H_

#include <cstdint>
#include <vector>

#include "raw/table_state.h"
#include "util/result.h"

namespace nodb {

/// Outcome of a parallel chunked scan (for benches and tests).
struct ParallelScanStats {
  uint64_t rows = 0;          ///< data rows discovered
  uint64_t byte_chunks = 0;   ///< newline-aligned file chunks scanned
  uint64_t threads = 0;       ///< pool size used
};

/// Parallel first-touch scan: builds the table's NoDB structures — row
/// index, positional-map chunks, cache segments and statistics for
/// `attrs` — in one multi-threaded pass over the raw file.
///
/// The file's data region is partitioned into `num_threads`
/// newline-aligned byte chunks; a worker per chunk discovers tuple
/// boundaries, tokenizes and parses exactly the requested attributes
/// (selective tokenizing/parsing, as the serial scan would), and
/// accumulates a local fragment. Fragments are then merged on the
/// calling thread *in file order*, so the resulting PositionalMap,
/// RawCache and StatsCollector contents — and therefore all query
/// results — are byte-identical to what the serial RawScanOperator
/// produces, for any thread count.
///
/// Honors the per-component enable flags of the state's NoDbConfig:
/// disabled structures are not populated. `attrs` must be table
/// attribute indices (they are sorted and deduplicated internally) and
/// may be empty, in which case only tuple boundaries are discovered.
///
/// Mutates nothing on failure: a malformed row surfaces the same
/// ParseError the serial scan would raise, with the state untouched.
/// Intended for a *cold* table (no known rows, empty cache); the
/// engine's adaptive serial path remains the one that refines warm
/// state.
Result<ParallelScanStats> ParallelChunkedScan(RawTableState* state,
                                              std::vector<uint32_t> attrs,
                                              uint32_t num_threads);

}  // namespace nodb

#endif  // NODB_RAW_PARALLEL_SCAN_H_
