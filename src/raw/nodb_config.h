#ifndef NODB_RAW_NODB_CONFIG_H_
#define NODB_RAW_NODB_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace nodb {

/// Runtime knobs of the NoDB layer — the parameters the demo GUI
/// exposes ("the user can enable or disable the NoDB components of
/// PostgresRaw and specify the amount of storage space which is devoted
/// to internal indexes and caches").
struct NoDbConfig {
  /// Adaptive positional map (paper §3.1).
  bool enable_positional_map = true;
  size_t positional_map_budget = 64u << 20;  // bytes

  /// Binary raw-data cache (paper §3.2).
  bool enable_cache = true;
  size_t cache_budget = 256u << 20;  // bytes

  /// On-the-fly statistics (paper §3.3).
  bool enable_statistics = true;

  /// Row-block granularity shared by the map and cache. One chunk /
  /// cached column segment covers this many consecutive tuples.
  uint32_t rows_per_block = 4096;

  /// Distance policy (paper §3.1 "Adaptive Behavior"): a query's
  /// attribute combination is indexed as a new chunk when covering it
  /// would need more than this many existing chunks.
  uint32_t max_covering_chunks = 1;

  /// I/O buffer for the raw-file reader.
  size_t read_buffer_bytes = 1u << 20;

  /// Worker threads for the parallel chunked first-touch scan
  /// (raw/parallel_scan.h): a cold table's first query pre-builds the
  /// enabled NoDB structures with this many threads, attacking the
  /// first-query penalty. 1 = the paper's fully serial adaptive
  /// behaviour (default); 0 = one thread per hardware core. Results
  /// are byte-identical to the serial path at any setting.
  uint32_t num_threads = 1;

  /// Returns the paper's "Baseline" configuration: plain external-files
  /// behaviour with every NoDB structure disabled.
  static NoDbConfig Baseline() {
    NoDbConfig config;
    config.enable_positional_map = false;
    config.enable_cache = false;
    config.enable_statistics = false;
    return config;
  }
};

}  // namespace nodb

#endif  // NODB_RAW_NODB_CONFIG_H_
