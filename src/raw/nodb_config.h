#ifndef NODB_RAW_NODB_CONFIG_H_
#define NODB_RAW_NODB_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace nodb {

/// Snapshot persistence policy (persist/snapshot.h).
enum class SnapshotMode {
  kOff,     ///< no persistence; Save/LoadSnapshot refuse
  kManual,  ///< explicit NoDbEngine::SaveSnapshot / LoadSnapshot only
  kAuto,    ///< also recover on table open and save on engine teardown
};

/// Per-query trace-span collection policy (obs/trace.h).
enum class TraceMode {
  kOff,  ///< no spans recorded; the hot path pays one relaxed load
  kOn,   ///< every query records spans into the engine's Tracer
};

/// Runtime knobs of the NoDB layer — the parameters the demo GUI
/// exposes ("the user can enable or disable the NoDB components of
/// PostgresRaw and specify the amount of storage space which is devoted
/// to internal indexes and caches").
struct NoDbConfig {
  /// Adaptive positional map (paper §3.1).
  bool enable_positional_map = true;
  size_t positional_map_budget = 64u << 20;  // bytes

  /// Binary raw-data cache (paper §3.2).
  bool enable_cache = true;
  size_t cache_budget = 256u << 20;  // bytes

  /// On-the-fly statistics (paper §3.3).
  bool enable_statistics = true;

  /// Predicate pushdown: eligible single-table WHERE conjuncts are
  /// evaluated inside RawScanOperator in two phases — per block, only
  /// the predicate columns are tokenized and parsed first, the
  /// predicate is vectorized over that partial batch, and the
  /// remaining projection columns are parsed only for qualifying rows
  /// (selective parsing and selective tuple formation taken all the
  /// way into the scan).
  bool enable_pushdown = true;

  /// Per-block zone maps: min/max per (attribute, row-block), collected
  /// whenever a scan or first-touch pass parses a full block. A block
  /// provably disjoint from a pushed range/equality predicate is
  /// skipped without locating a single row. Skipping requires the
  /// positional map (the scan must be able to resume at the next
  /// block); NULL-bearing blocks are never skipped.
  bool enable_zone_maps = true;

  /// Shadow column store (store/shadow_store.h): heat-driven background
  /// materialization of hot columns — the paper's adaptive-loading end
  /// state where frequently accessed raw data gradually becomes loaded
  /// data. Serving from the store requires the positional map (the
  /// hybrid plan's raw residue needs it to locate rows).
  bool enable_store = true;
  size_t store_budget = 256u << 20;  // bytes

  /// Heat threshold: an attribute is promotable once this many scans
  /// have requested it. The scan that crosses the threshold hands its
  /// parsed (or cache-resident) segments to the store as it goes
  /// (piggybacked promotion); a background pass on the engine's shared
  /// pool fills whatever that scan did not cover.
  uint32_t promote_after_accesses = 2;

  /// Row-block granularity shared by the map and cache. One chunk /
  /// cached column segment covers this many consecutive tuples.
  uint32_t rows_per_block = 4096;

  /// Distance policy (paper §3.1 "Adaptive Behavior"): a query's
  /// attribute combination is indexed as a new chunk when covering it
  /// would need more than this many existing chunks.
  uint32_t max_covering_chunks = 1;

  /// Persistent adaptive-state snapshots (persist/snapshot.h): the
  /// positional map, statistics, zone maps and shadow store of a table
  /// can be frozen into a crash-safe sidecar (`<data>.nodbmeta`) and
  /// recovered on a later process start, so a restart skips the
  /// first-touch tokenize/parse cost instead of re-paying it. kManual
  /// enables the explicit engine entry points; kAuto additionally
  /// recovers at table open and saves at engine teardown. Recovery
  /// validates the sidecar against the raw file's content signature
  /// and degrades per section — stale or corrupt state is rebuilt
  /// cold, never trusted.
  SnapshotMode snapshot_mode = SnapshotMode::kManual;

  /// Where sidecars live: empty = next to each raw file; otherwise a
  /// directory receiving `<basename>.nodbmeta` files (raw data on
  /// read-only media).
  std::string snapshot_path;

  /// Per-query trace spans (obs/trace.h): parse/plan/drain phases,
  /// scan phase aggregates and per-operator times, collected into the
  /// engine's Tracer and optionally streamed to trace_path as Chrome
  /// trace-viewer-compatible JSON lines. Runtime-togglable via
  /// NoDbEngine::tracer().SetEnabled.
  TraceMode trace_mode = TraceMode::kOff;

  /// When non-empty, every finished trace is appended here as JSONL
  /// ("" = retain in memory only; see Tracer::WriteChromeTrace).
  std::string trace_path;

  /// I/O buffer for the raw-file reader.
  size_t read_buffer_bytes = 1u << 20;

  /// SIMD structural parsing (simd/): scan the raw bytes for
  /// delimiters/newlines/quotes in 64-byte blocks with the best
  /// instruction set the CPU offers (SSE2/AVX2/NEON), instead of byte
  /// at a time. false selects the always-correct scalar fallback
  /// kernels; results are byte-identical either way, so this is a
  /// performance knob, never a semantics knob. Parsing machinery rather
  /// than a NoDB auxiliary structure, hence untouched by Baseline().
  bool enable_simd = true;

  /// Worker threads for the parallel chunked first-touch scan
  /// (raw/parallel_scan.h): a cold table's first query pre-builds the
  /// enabled NoDB structures with this many threads, attacking the
  /// first-query penalty. 1 = the paper's fully serial adaptive
  /// behaviour (default); 0 = one thread per hardware core. Results
  /// are byte-identical to the serial path at any setting.
  uint32_t num_threads = 1;

  /// ---- Server front end (server/server.h) ----------------------------
  /// Knobs below only matter when a Server is constructed around the
  /// engine; a purely in-process engine never reads them.

  /// TCP port the listener binds on 127.0.0.1 (0 = kernel-assigned
  /// ephemeral port, reported by Server::port() — tests and benches).
  uint16_t server_port = 0;

  /// Accepted connections beyond this are closed immediately.
  uint32_t server_max_connections = 64;

  /// Global ceiling on queries executing at once across every
  /// connection (0 = one per hardware core).
  uint32_t server_max_in_flight = 0;

  /// Per-tenant ceiling on concurrently executing queries.
  uint32_t server_tenant_max_concurrent = 4;

  /// Per-tenant scan-memory budget: each executing query reserves
  /// server_query_memory_reserve bytes against its tenant's budget for
  /// its lifetime, bounding how much cache/store churn one tenant can
  /// drive at a time.
  size_t server_tenant_memory_budget = 256u << 20;
  size_t server_query_memory_reserve = 16u << 20;

  /// How long an admission-blocked query waits for a slot before the
  /// server answers REJECTED.
  uint32_t server_queue_timeout_ms = 1000;

  /// Graceful drain: in-flight queries get this long to finish after
  /// shutdown is requested; stragglers are then cancelled at their
  /// next batch boundary.
  uint32_t server_drain_timeout_ms = 5000;

  /// Frames longer than this are a protocol error (caps allocation
  /// from a hostile or corrupt length prefix).
  size_t server_max_frame_bytes = 16u << 20;

  /// Row granularity of RESULT_BATCH frames streamed to clients.
  uint32_t server_result_batch_rows = 4096;

  /// Whether a remote SHUTDOWN frame (shell `\shutdown`) may drain the
  /// server; SIGTERM always works regardless.
  bool server_allow_remote_shutdown = true;

  /// Returns the paper's "Baseline" configuration: plain external-files
  /// behaviour with every NoDB structure disabled.
  static NoDbConfig Baseline() {
    NoDbConfig config;
    config.enable_positional_map = false;
    config.enable_cache = false;
    config.enable_statistics = false;
    config.enable_store = false;
    config.enable_pushdown = false;
    config.enable_zone_maps = false;
    config.snapshot_mode = SnapshotMode::kOff;
    return config;
  }

  /// Approximates a load-first system without a load phase: every
  /// column is promoted to the shadow store on first touch under an
  /// effectively unlimited budget, so repeated queries run against
  /// fully materialized binary columns.
  static NoDbConfig FullyMaterialized() {
    NoDbConfig config;
    config.promote_after_accesses = 1;
    config.store_budget = size_t{8} << 30;
    config.cache_budget = size_t{1} << 30;
    return config;
  }
};

}  // namespace nodb

#endif  // NODB_RAW_NODB_CONFIG_H_
