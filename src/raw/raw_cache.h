#ifndef NODB_RAW_RAW_CACHE_H_
#define NODB_RAW_RAW_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "types/column_vector.h"
#include "util/hash.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nodb {

/// The PostgresRaw cache (paper §3.2): previously accessed attributes,
/// already parsed into binary, keyed by (attribute, row-block).
///
/// "The cache follows the format of the positional map" — segments use
/// the same rows_per_block granularity, so a scan can serve one
/// attribute of a block from cache while tokenizing another from the
/// raw file in the same plan. Population happens during scans and only
/// for attributes the current query requested ("caching does not force
/// additional data to be parsed"); eviction is LRU under a byte budget.
///
/// Thread-safe: one internal mutex guards the index, the LRU list and
/// the counters, so a concurrent Get's recency touch and a concurrent
/// Put's eviction cannot corrupt each other. Segments are immutable
/// and shared-owned — a hit stays valid after the entry is evicted.
class RawCache {
 public:
  explicit RawCache(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

  RawCache(const RawCache&) = delete;
  RawCache& operator=(const RawCache&) = delete;

  /// Returns the cached segment for (attr, block) or nullptr. Hits
  /// refresh LRU recency and are counted.
  std::shared_ptr<const ColumnVector> Get(uint32_t attr, uint64_t block)
      EXCLUDES(mu_);

  /// Peeks without touching LRU or counters (planning-time check).
  bool Contains(uint32_t attr, uint64_t block) const EXCLUDES(mu_);

  /// Inserts a segment, attributed to the calling thread's tenant
  /// (obs::ScopedTenantLabel::CurrentId(); 0 = untagged); evicts
  /// entries over budget fair-share by owner (see EvictOverBudget).
  /// Segments larger than the whole budget are rejected silently.
  void Put(uint32_t attr, uint64_t block,
           std::shared_ptr<const ColumnVector> segment) EXCLUDES(mu_);

  /// Drops everything (file rewritten / table replaced).
  void Clear() EXCLUDES(mu_);

  size_t bytes_used() const {
    MutexLock lock(mu_);
    return bytes_used_;
  }
  size_t budget_bytes() const { return budget_bytes_; }
  double utilization() const {
    MutexLock lock(mu_);
    return budget_bytes_ == 0
               ? 0.0
               : static_cast<double>(bytes_used_) / budget_bytes_;
  }
  size_t num_segments() const {
    MutexLock lock(mu_);
    return entries_.size();
  }
  uint64_t hits() const {
    MutexLock lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    MutexLock lock(mu_);
    return misses_;
  }
  uint64_t evictions() const {
    MutexLock lock(mu_);
    return evictions_;
  }

  /// Bytes currently resident on behalf of `owner` (tenant id; 0 =
  /// untagged). Multi-tenant budget observability and tests.
  size_t bytes_used_by(uint32_t owner) const EXCLUDES(mu_);

 private:
  struct Key {
    uint32_t attr;
    uint64_t block;
    bool operator==(const Key& o) const {
      return attr == o.attr && block == o.block;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(
          CombineHash64(MixHash64(k.attr), MixHash64(k.block)));
    }
  };
  struct Entry {
    std::shared_ptr<const ColumnVector> segment;
    size_t bytes = 0;
    uint32_t owner = 0;  ///< tenant id that inserted it (0 = untagged)
    std::list<Key>::iterator lru_pos;
  };

  /// Unlinks one entry, keeping byte and per-owner accounting exact.
  void RemoveLocked(const Key& key) REQUIRES(mu_);

  /// Fair-share eviction: while over budget, the victim is the
  /// least-recent segment of an owner holding more than budget /
  /// active-owners bytes, so a hot tenant's churn evicts its own
  /// segments before another tenant's. The just-inserted front entry
  /// always survives (the existing "newest stays" invariant); with one
  /// owner this is exactly the old global LRU.
  void EvictOverBudget() REQUIRES(mu_);

  const size_t budget_bytes_;
  mutable Mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_ GUARDED_BY(mu_);
  std::list<Key> lru_ GUARDED_BY(mu_);  // front = most recent
  /// Resident bytes per owner (erased at zero, so size() is the
  /// active-owner count the fair share divides by).
  std::unordered_map<uint32_t, size_t> owner_bytes_ GUARDED_BY(mu_);
  size_t bytes_used_ GUARDED_BY(mu_) = 0;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace nodb

#endif  // NODB_RAW_RAW_CACHE_H_
