#include "raw/positional_map.h"

#include <algorithm>

namespace nodb {

PositionalMap::PositionalMap(size_t budget_bytes, uint32_t rows_per_block,
                             uint32_t max_covering_chunks)
    : budget_bytes_(budget_bytes),
      rows_per_block_(rows_per_block == 0 ? 1 : rows_per_block),
      max_covering_chunks_(max_covering_chunks) {}

// -------------------------------------------------------- tuple index

uint64_t PositionalMap::known_rows() const {
  ReaderLock lock(mu_);
  return row_starts_.size();
}

uint64_t PositionalMap::row_start(uint64_t row) const {
  ReaderLock lock(mu_);
  return row_starts_[row];
}

void PositionalMap::AddRowStart(uint64_t offset) {
  WriterLock lock(mu_);
  row_starts_.push_back(offset);
}

void PositionalMap::MarkRowsComplete(uint64_t file_size) {
  WriterLock lock(mu_);
  rows_complete_ = true;
  indexed_file_size_ = file_size;
}

bool PositionalMap::rows_complete() const {
  ReaderLock lock(mu_);
  return rows_complete_;
}

uint64_t PositionalMap::indexed_file_size() const {
  ReaderLock lock(mu_);
  return indexed_file_size_;
}

uint64_t PositionalMap::next_discovery_offset() const {
  ReaderLock lock(mu_);
  return next_discovery_offset_;
}

void PositionalMap::EnsureDiscoveryStartsAt(uint64_t offset) {
  WriterLock lock(mu_);
  if (row_starts_.empty() && !rows_complete_ &&
      next_discovery_offset_ < offset) {
    next_discovery_offset_ = offset;
  }
}

void PositionalMap::PublishRowIndex(std::vector<uint64_t> starts,
                                    uint64_t cursor, uint64_t file_size) {
  WriterLock lock(mu_);
  if (!row_starts_.empty() || rows_complete_) return;  // no longer cold
  row_starts_ = std::move(starts);
  next_discovery_offset_ = std::max(next_discovery_offset_, cursor);
  rows_complete_ = true;
  indexed_file_size_ = file_size;
}

void PositionalMap::ReopenForAppend() {
  WriterLock lock(mu_);
  rows_complete_ = false;
}

PositionalMap::RowSnapshot PositionalMap::SnapshotRows(
    uint64_t first_row, uint32_t count,
    std::vector<uint64_t>* bounds) const {
  ReaderLock lock(mu_);
  RowSnapshot snap;
  snap.known_rows = row_starts_.size();
  snap.complete = rows_complete_;
  bounds->clear();
  if (first_row >= snap.known_rows || count == 0) return snap;

  uint64_t avail =
      std::min<uint64_t>(count, snap.known_rows - first_row);
  // The last published row's end is derivable only once the discovery
  // cursor moved past its start (it always has, unless the index was
  // hand-built row-starts-only).
  if (first_row + avail == snap.known_rows &&
      next_discovery_offset_ <= row_starts_.back()) {
    if (--avail == 0) return snap;
  }
  bounds->reserve(avail + 1);
  for (uint64_t i = 0; i < avail; ++i) {
    bounds->push_back(row_starts_[first_row + i]);
  }
  bounds->push_back(first_row + avail < snap.known_rows
                        ? row_starts_[first_row + avail]
                        : next_discovery_offset_);
  snap.rows = static_cast<uint32_t>(avail);
  return snap;
}

// ---------------------------------------------------------- discovery

PositionalMap::Discovery::Discovery(PositionalMap* map) : map_(map) {
  map_->discovery_mu_.Lock();
}

PositionalMap::Discovery::~Discovery() { map_->discovery_mu_.Unlock(); }

bool PositionalMap::Discovery::NeedsRow(uint64_t row, uint64_t* resume,
                                        uint64_t* frontier_row) const {
  ReaderLock lock(map_->mu_);
  const uint64_t known = map_->row_starts_.size();
  if (row < known) {
    if (row + 1 < known) return false;
    if (map_->next_discovery_offset_ > map_->row_starts_[row]) return false;
    *resume = map_->row_starts_[row];  // start known, end still missing
    *frontier_row = row;
    return true;
  }
  if (map_->rows_complete_) return false;
  *resume = map_->next_discovery_offset_;
  *frontier_row = known;
  return true;
}

void PositionalMap::Discovery::PublishRow(uint64_t start, uint64_t end) {
  WriterLock lock(map_->mu_);
  if (map_->row_starts_.empty() || start > map_->row_starts_.back()) {
    map_->row_starts_.push_back(start);
  }
  map_->next_discovery_offset_ =
      std::max(map_->next_discovery_offset_, end + 1);
}

void PositionalMap::Discovery::MarkComplete(uint64_t file_size) {
  WriterLock lock(map_->mu_);
  map_->rows_complete_ = true;
  map_->indexed_file_size_ = file_size;
}

// -------------------------------------------------------------- probe

PositionalMap::Probe PositionalMap::BlockPlan::Lookup(uint64_t row,
                                                      size_t i) const {
  Probe probe;
  const Source& src = sources_[i];
  if (src.chunk == nullptr) return probe;  // anchor = attr 0 at offset 0
  uint64_t rel = row - block_first_row_;
  if (rel >= src.chunk->rows) return probe;  // row beyond chunk coverage
  const uint32_t* cell =
      src.chunk->data.data() +
      (rel * src.chunk->attrs.size() + src.column) * 2;
  if (src.exact) {
    probe.exact = true;
    probe.start = cell[0];
    probe.end = cell[1];
    return probe;
  }
  // The chunk knows (start, end) of an attribute *before* the request;
  // the byte after its end delimiter is the start of the next
  // attribute, which is the tightest anchor we can offer.
  probe.anchor_attr = src.anchor_attr + 1;
  probe.anchor_rel = cell[1] + 1;
  return probe;
}

PositionalMap::BlockPlan PositionalMap::PrepareBlock(
    uint64_t first_row, const std::vector<uint32_t>& attrs) {
  WriterLock lock(mu_);
  BlockPlan plan;
  plan.block_first_row_ = BlockIndex(first_row) * rows_per_block_;
  plan.sources_.resize(attrs.size());

  auto it = blocks_.find(BlockIndex(first_row));
  if (it != blocks_.end()) {
    // Prefer a single chunk that covers the whole combination: this is
    // what a previous query with the same attribute set left behind,
    // and using it keeps chunks_used() == 1 so the distance policy
    // does not re-index a combination that already exists.
    for (const auto& chunk_ptr : it->second) {
      Chunk* chunk = chunk_ptr.get();
      bool covers_all = true;
      for (uint32_t want : attrs) {
        if (!std::binary_search(chunk->attrs.begin(), chunk->attrs.end(),
                                want)) {
          covers_all = false;
          break;
        }
      }
      if (!covers_all) continue;
      for (size_t i = 0; i < attrs.size(); ++i) {
        auto pos = std::lower_bound(chunk->attrs.begin(),
                                    chunk->attrs.end(), attrs[i]);
        BlockPlan::Source& src = plan.sources_[i];
        src.chunk = chunk_ptr;
        src.column = static_cast<uint32_t>(pos - chunk->attrs.begin());
        src.exact = true;
        src.anchor_attr = attrs[i];
      }
      Touch(chunk);
      plan.fully_covered_ = true;
      plan.chunks_used_ = 1;
      return plan;
    }
    for (const auto& chunk_ptr : it->second) {
      Chunk* chunk = chunk_ptr.get();
      bool used = false;
      for (size_t i = 0; i < attrs.size(); ++i) {
        uint32_t want = attrs[i];
        // Greatest chunk attribute <= want.
        auto pos = std::upper_bound(chunk->attrs.begin(),
                                    chunk->attrs.end(), want);
        if (pos == chunk->attrs.begin()) continue;
        --pos;
        uint32_t have = *pos;
        BlockPlan::Source& src = plan.sources_[i];
        bool better;
        if (src.chunk == nullptr) {
          better = true;
        } else if (src.exact) {
          better = false;
        } else {
          better = (have == want) || have > src.anchor_attr;
        }
        if (better) {
          src.chunk = chunk_ptr;
          src.column = static_cast<uint32_t>(pos - chunk->attrs.begin());
          src.exact = (have == want);
          src.anchor_attr = have;
          used = true;
        }
      }
      if (used) Touch(chunk);
    }
  }

  // Summaries for the distance policy.
  std::vector<const Chunk*> distinct;
  plan.fully_covered_ = true;
  for (const auto& src : plan.sources_) {
    if (!src.exact) plan.fully_covered_ = false;
    if (src.chunk != nullptr &&
        std::find(distinct.begin(), distinct.end(), src.chunk.get()) ==
            distinct.end()) {
      distinct.push_back(src.chunk.get());
    }
  }
  plan.chunks_used_ = static_cast<uint32_t>(distinct.size());
  return plan;
}

bool PositionalMap::ShouldIndexCombination(const BlockPlan& plan) const {
  if (!plan.fully_covered()) return true;
  return plan.chunks_used() > max_covering_chunks_;
}

// --------------------------------------------------- chunk population

void PositionalMap::ChunkBuilder::AddRow(const uint32_t* starts,
                                         const uint32_t* ends) {
  for (size_t j = 0; j < attrs_.size(); ++j) {
    data_.push_back(starts[j]);
    data_.push_back(ends[j]);
  }
  ++rows_;
}

PositionalMap::ChunkBuilder PositionalMap::StartChunk(
    uint64_t first_row, const std::vector<uint32_t>& attrs) {
  ChunkBuilder builder;
  builder.first_row_ = first_row;
  builder.attrs_ = attrs;
  builder.data_.reserve(static_cast<size_t>(rows_per_block_) *
                        attrs.size() * 2);
  return builder;
}

void PositionalMap::CommitChunk(ChunkBuilder builder) {
  if (builder.rows_ == 0) return;
  WriterLock lock(mu_);
  // Concurrent queries over the same cold block race to index the same
  // combination; both parsed identical bytes, so the first equal (or
  // wider) chunk wins and the duplicate is dropped.
  auto block_it = blocks_.find(BlockIndex(builder.first_row_));
  if (block_it != blocks_.end()) {
    for (const auto& existing : block_it->second) {
      if (existing->first_row == builder.first_row_ &&
          existing->attrs == builder.attrs_ &&
          existing->rows >= builder.rows_) {
        Touch(existing.get());
        return;
      }
    }
  }
  auto chunk = std::make_shared<Chunk>();
  chunk->first_row = builder.first_row_;
  chunk->attrs = std::move(builder.attrs_);
  chunk->data = std::move(builder.data_);
  chunk->rows = builder.rows_;
  chunk->bytes = chunk->data.capacity() * sizeof(uint32_t) +
                 chunk->attrs.capacity() * sizeof(uint32_t) +
                 sizeof(Chunk);
  bytes_used_ += chunk->bytes;
  ++num_chunks_;

  lru_.push_front(chunk.get());
  chunk->lru_pos = lru_.begin();
  blocks_[BlockIndex(chunk->first_row)].push_back(std::move(chunk));
  EvictOverBudget();
}

void PositionalMap::Touch(Chunk* chunk) {
  lru_.erase(chunk->lru_pos);
  lru_.push_front(chunk);
  chunk->lru_pos = lru_.begin();
}

void PositionalMap::EvictOverBudget() {
  while (bytes_used_ > budget_bytes_ && !lru_.empty()) {
    Chunk* victim = lru_.back();
    lru_.pop_back();
    bytes_used_ -= victim->bytes;
    --num_chunks_;
    ++evictions_;
    auto it = blocks_.find(BlockIndex(victim->first_row));
    NODB_CHECK(it != blocks_.end());
    auto& vec = it->second;
    for (auto cit = vec.begin(); cit != vec.end(); ++cit) {
      if (cit->get() == victim) {
        vec.erase(cit);  // in-flight BlockPlans still pin the chunk
        break;
      }
    }
    if (vec.empty()) blocks_.erase(it);
  }
}

// -------------------------------------------------------------- stats

size_t PositionalMap::bytes_used() const {
  ReaderLock lock(mu_);
  return bytes_used_;
}

double PositionalMap::utilization() const {
  ReaderLock lock(mu_);
  return budget_bytes_ == 0
             ? 0.0
             : static_cast<double>(bytes_used_) / budget_bytes_;
}

size_t PositionalMap::num_chunks() const {
  ReaderLock lock(mu_);
  return num_chunks_;
}

uint64_t PositionalMap::evictions() const {
  ReaderLock lock(mu_);
  return evictions_;
}

double PositionalMap::CoverageFraction(uint32_t attr) const {
  ReaderLock lock(mu_);
  if (row_starts_.empty()) return 0.0;
  uint64_t covered = 0;
  for (const auto& [block, chunks] : blocks_) {
    size_t best = 0;
    for (const auto& chunk : chunks) {
      if (std::binary_search(chunk->attrs.begin(), chunk->attrs.end(),
                             attr)) {
        best = std::max(best, chunk->rows);
      }
    }
    covered += best;
  }
  return static_cast<double>(covered) /
         static_cast<double>(row_starts_.size());
}

PositionalMap::Image PositionalMap::ExportImage() const {
  ReaderLock lock(mu_);
  Image image;
  image.row_starts = row_starts_;
  image.rows_complete = rows_complete_;
  image.indexed_file_size = indexed_file_size_;
  image.next_discovery_offset = next_discovery_offset_;
  image.chunks.reserve(num_chunks_);
  // LRU order, most recent first: if the importing map's budget is
  // smaller, the hottest chunks survive admission.
  for (const Chunk* chunk : lru_) {
    Image::ChunkImage ci;
    ci.first_row = chunk->first_row;
    ci.attrs = chunk->attrs;
    ci.data = chunk->data;
    image.chunks.push_back(std::move(ci));
  }
  return image;
}

bool PositionalMap::ImportImage(Image image) {
  WriterLock lock(mu_);
  if (!row_starts_.empty() || rows_complete_ || !blocks_.empty()) {
    return false;  // no longer cold: live state wins
  }
  // Sanity: the row index must be strictly ascending and the discovery
  // cursor past the last known row, or lookups would misbehave. A
  // checksummed section should never fail this; reject defensively.
  for (size_t i = 1; i < image.row_starts.size(); ++i) {
    if (image.row_starts[i] <= image.row_starts[i - 1]) return false;
  }
  if (!image.row_starts.empty() &&
      image.next_discovery_offset <= image.row_starts.back()) {
    return false;
  }
  row_starts_ = std::move(image.row_starts);
  rows_complete_ = image.rows_complete;
  indexed_file_size_ = image.indexed_file_size;
  next_discovery_offset_ = image.next_discovery_offset;

  // Oldest first so LRU push_front reproduces the exported recency.
  for (auto it = image.chunks.rbegin(); it != image.chunks.rend(); ++it) {
    Image::ChunkImage& ci = *it;
    if (ci.attrs.empty() || ci.first_row % rows_per_block_ != 0) continue;
    size_t stride = ci.attrs.size() * 2;
    if (ci.data.empty() || ci.data.size() % stride != 0) continue;
    size_t rows = ci.data.size() / stride;
    if (rows > rows_per_block_) continue;
    if (!std::is_sorted(ci.attrs.begin(), ci.attrs.end())) continue;
    auto chunk = std::make_shared<Chunk>();
    chunk->first_row = ci.first_row;
    chunk->attrs = std::move(ci.attrs);
    chunk->data = std::move(ci.data);
    chunk->rows = rows;
    chunk->bytes = chunk->data.capacity() * sizeof(uint32_t) +
                   chunk->attrs.capacity() * sizeof(uint32_t) +
                   sizeof(Chunk);
    bytes_used_ += chunk->bytes;
    ++num_chunks_;
    lru_.push_front(chunk.get());
    chunk->lru_pos = lru_.begin();
    blocks_[BlockIndex(chunk->first_row)].push_back(std::move(chunk));
  }
  EvictOverBudget();
  return true;
}

void PositionalMap::Clear() {
  WriterLock lock(mu_);
  row_starts_.clear();
  rows_complete_ = false;
  indexed_file_size_ = 0;
  next_discovery_offset_ = 0;
  blocks_.clear();
  lru_.clear();
  bytes_used_ = 0;
  num_chunks_ = 0;
}

}  // namespace nodb
