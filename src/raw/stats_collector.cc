#include "raw/stats_collector.h"

#include <algorithm>
#include <cmath>

#include "obs/tenant.h"
#include "util/hash.h"

namespace nodb {

AttributeStats::AttributeStats(DataType type) : type_(type) {
  numeric_sample_.reserve(kReservoirSize);
  if (type == DataType::kString) string_sample_.reserve(kReservoirSize);
}

void AttributeStats::Sample(double numeric, const std::string* text) {
  ++sampled_stream_;
  size_t capacity = kReservoirSize;
  if (type_ == DataType::kString) {
    if (string_sample_.size() < capacity) {
      string_sample_.push_back(*text);
    } else {
      uint64_t j = rng_.Uniform(sampled_stream_);
      if (j < capacity) string_sample_[j] = *text;
    }
    return;
  }
  if (numeric_sample_.size() < capacity) {
    numeric_sample_.push_back(numeric);
  } else {
    uint64_t j = rng_.Uniform(sampled_stream_);
    if (j < capacity) numeric_sample_[j] = numeric;
  }
}

void AttributeStats::Reset() {
  MutexLock lock(mu_);
  count_ = 0;
  nulls_ = 0;
  min_.reset();
  max_.reset();
  kmv_.clear();
  numeric_sample_.clear();
  string_sample_.clear();
  sampled_stream_ = 0;
}

void AttributeStats::Observe(const ColumnVector& column) {
  MutexLock lock(mu_);
  for (size_t i = 0; i < column.size(); ++i) {
    ++count_;
    if (column.IsNull(i)) {
      ++nulls_;
      continue;
    }
    uint64_t hash;
    if (type_ == DataType::kString) {
      std::string_view s = column.GetString(i);
      hash = Fnv1a64(s.data(), s.size());
      std::string text(s);
      Sample(0, &text);
    } else {
      double v = column.GetNumeric(i);
      if (!min_ || v < *min_) min_ = v;
      if (!max_ || v > *max_) max_ = v;
      int64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(v));
      hash = MixHash64(static_cast<uint64_t>(bits));
      Sample(v, nullptr);
    }
    // KMV sketch: keep the k smallest hashes.
    if (kmv_.size() < kKmvSize) {
      kmv_.insert(hash);
    } else if (hash < *kmv_.rbegin()) {
      kmv_.insert(hash);
      if (kmv_.size() > kKmvSize) kmv_.erase(std::prev(kmv_.end()));
    }
  }
}

double AttributeStats::EstimateDistinct() const {
  MutexLock lock(mu_);
  return EstimateDistinctLocked();
}

double AttributeStats::EstimateDistinctLocked() const {
  if (kmv_.empty()) return 0;
  if (kmv_.size() < kKmvSize) return static_cast<double>(kmv_.size());
  // Standard KMV estimator: (k-1) / normalized kth-minimum. Degenerate
  // sketches (kth-minimum of 0 or denormal) would divide by zero or
  // blow up to inf; fall back on the sketch size, which is a valid
  // lower bound.
  double kth = static_cast<double>(*kmv_.rbegin()) /
               static_cast<double>(UINT64_MAX);
  if (kth <= 0) return static_cast<double>(kmv_.size());
  double estimate = (static_cast<double>(kKmvSize) - 1.0) / kth;
  if (!std::isfinite(estimate)) return static_cast<double>(kmv_.size());
  return estimate;
}

AttributeStats::Image AttributeStats::ExportImage() const {
  MutexLock lock(mu_);
  Image image;
  image.count = count_;
  image.nulls = nulls_;
  image.has_min = min_.has_value();
  image.min = min_.value_or(0);
  image.has_max = max_.has_value();
  image.max = max_.value_or(0);
  image.kmv.assign(kmv_.begin(), kmv_.end());
  image.numeric_sample = numeric_sample_;
  image.string_sample = string_sample_;
  image.sampled_stream = sampled_stream_;
  return image;
}

bool AttributeStats::ImportImage(Image image) {
  MutexLock lock(mu_);
  if (count_ != 0) return false;  // observed since: live wins
  count_ = image.count;
  nulls_ = image.nulls;
  if (image.has_min) min_ = image.min;
  if (image.has_max) max_ = image.max;
  kmv_.clear();
  kmv_.insert(image.kmv.begin(), image.kmv.end());
  while (kmv_.size() > kKmvSize) kmv_.erase(std::prev(kmv_.end()));
  numeric_sample_ = std::move(image.numeric_sample);
  if (numeric_sample_.size() > kReservoirSize) {
    numeric_sample_.resize(kReservoirSize);
  }
  string_sample_ = std::move(image.string_sample);
  if (string_sample_.size() > kReservoirSize) {
    string_sample_.resize(kReservoirSize);
  }
  sampled_stream_ = image.sampled_stream;
  return true;
}

std::optional<double> AttributeStats::EstimateCompareSelectivity(
    CompareOp op, const Value& literal) const {
  MutexLock lock(mu_);
  if (type_ == DataType::kString) {
    if (!literal.is_string() || string_sample_.empty()) return std::nullopt;
    const std::string& lit = literal.str();
    size_t pass = 0;
    for (const auto& s : string_sample_) {
      int cmp = s.compare(lit);
      bool ok = false;
      switch (op) {
        case CompareOp::kEq:
          ok = cmp == 0;
          break;
        case CompareOp::kNe:
          ok = cmp != 0;
          break;
        case CompareOp::kLt:
          ok = cmp < 0;
          break;
        case CompareOp::kLe:
          ok = cmp <= 0;
          break;
        case CompareOp::kGt:
          ok = cmp > 0;
          break;
        case CompareOp::kGe:
          ok = cmp >= 0;
          break;
      }
      if (ok) ++pass;
    }
    return static_cast<double>(pass) / string_sample_.size();
  }
  if (literal.is_null() || literal.is_string() || numeric_sample_.empty()) {
    return std::nullopt;
  }
  double lit = literal.AsDouble();
  size_t pass = 0;
  for (double v : numeric_sample_) {
    bool ok = false;
    switch (op) {
      case CompareOp::kEq:
        ok = v == lit;
        break;
      case CompareOp::kNe:
        ok = v != lit;
        break;
      case CompareOp::kLt:
        ok = v < lit;
        break;
      case CompareOp::kLe:
        ok = v <= lit;
        break;
      case CompareOp::kGt:
        ok = v > lit;
        break;
      case CompareOp::kGe:
        ok = v >= lit;
        break;
    }
    if (ok) ++pass;
  }
  double frac = static_cast<double>(pass) / numeric_sample_.size();
  if (op == CompareOp::kEq && pass == 0) {
    // Equality that misses the sample: fall back on 1/NDV. A
    // degenerate sketch (no distinct values observed, e.g. an all-NULL
    // column whose sample is somehow non-empty) must not divide by
    // zero or return inf — keep the sample fraction instead.
    double ndv = EstimateDistinctLocked();
    if (ndv > 0 && std::isfinite(1.0 / ndv)) return 1.0 / ndv;
    return frac;
  }
  return frac;
}

std::optional<double> AttributeStats::EstimateLikeSelectivity(
    std::string_view pattern, bool negated) const {
  MutexLock lock(mu_);
  if (string_sample_.empty()) return std::nullopt;
  size_t pass = 0;
  for (const auto& s : string_sample_) {
    if (LikeExpr::Match(s, pattern) != negated) ++pass;
  }
  return static_cast<double>(pass) / string_sample_.size();
}

std::vector<uint64_t> AttributeStats::SampleHistogram(size_t buckets) const {
  MutexLock lock(mu_);
  std::vector<uint64_t> hist(buckets, 0);
  if (numeric_sample_.empty() || !min_ || !max_ || buckets == 0) {
    return hist;
  }
  double lo = *min_;
  double width = (*max_ - lo) / static_cast<double>(buckets);
  if (width <= 0) {
    hist[0] = numeric_sample_.size();
    return hist;
  }
  for (double v : numeric_sample_) {
    size_t b = static_cast<size_t>((v - lo) / width);
    if (b >= buckets) b = buckets - 1;
    ++hist[b];
  }
  return hist;
}

StatsCollector::StatsCollector(std::shared_ptr<Schema> schema)
    : schema_(std::move(schema)) {
  attrs_.resize(schema_->num_fields());
  heat_.assign(schema_->num_fields(), 0);
}

void StatsCollector::RecordAccessHeat(const std::vector<uint32_t>& attrs) {
  uint32_t tenant = obs::ScopedTenantLabel::CurrentId();
  MutexLock lock(mu_);
  std::vector<uint64_t>* slice = nullptr;
  for (uint32_t a : attrs) {
    if (a >= heat_.size()) continue;
    ++heat_[a];
    if (slice == nullptr) {
      slice = &tenant_heat_[tenant];
      if (slice->size() < heat_.size()) slice->resize(heat_.size(), 0);
    }
    ++(*slice)[a];
  }
}

uint64_t StatsCollector::access_heat(uint32_t attr) const {
  MutexLock lock(mu_);
  return attr < heat_.size() ? heat_[attr] : 0;
}

std::vector<uint64_t> StatsCollector::access_heat_counts() const {
  MutexLock lock(mu_);
  return heat_;
}

uint64_t StatsCollector::access_heat_for_tenant(uint32_t tenant,
                                                uint32_t attr) const {
  MutexLock lock(mu_);
  auto it = tenant_heat_.find(tenant);
  if (it == tenant_heat_.end() || attr >= it->second.size()) return 0;
  return it->second[attr];
}

std::vector<uint32_t> StatsCollector::HeatTenants() const {
  MutexLock lock(mu_);
  std::vector<uint32_t> out;
  out.reserve(tenant_heat_.size());
  for (const auto& [tenant, slice] : tenant_heat_) out.push_back(tenant);
  std::sort(out.begin(), out.end());
  return out;
}

void StatsCollector::ObserveBlock(uint32_t attr, uint64_t block,
                                  const ColumnVector& column) {
  uint64_t key = (static_cast<uint64_t>(attr) << 40) | block;
  AttributeStats* stats;
  {
    MutexLock lock(mu_);
    if (!observed_.insert(key).second) return;  // already folded in
    if (attrs_[attr] == nullptr) {
      attrs_[attr] =
          std::make_unique<AttributeStats>(schema_->field(attr).type);
    }
    stats = attrs_[attr].get();
  }
  // Fold outside the collector lock; the attribute's own mutex
  // serializes concurrent observers of the same attribute.
  stats->Observe(column);
}

bool StatsCollector::HasStats(uint32_t attr) const {
  AttributeStats* stats;
  {
    MutexLock lock(mu_);
    stats = attrs_[attr].get();
  }
  return stats != nullptr && stats->row_count() > 0;
}

std::vector<uint32_t> StatsCollector::CoveredAttributes() const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < attrs_.size(); ++i) {
    if (HasStats(i)) out.push_back(i);
  }
  return out;
}

void StatsCollector::Clear() {
  MutexLock lock(mu_);
  // Reset in place: estimators may still hold GetStats() pointers.
  for (auto& a : attrs_) {
    if (a != nullptr) a->Reset();
  }
  heat_.assign(heat_.size(), 0);
  tenant_heat_.clear();
  observed_.clear();
}

StatsCollector::Image StatsCollector::ExportImage() const {
  // Collect the slot pointers under the collector lock, then export
  // each sketch under its own lock (the ObserveBlock discipline).
  std::vector<AttributeStats*> slots;
  Image image;
  {
    MutexLock lock(mu_);
    slots.reserve(attrs_.size());
    for (const auto& a : attrs_) slots.push_back(a.get());
    image.heat = heat_;
    image.observed.assign(observed_.begin(), observed_.end());
  }
  image.attrs.resize(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] != nullptr && slots[i]->row_count() > 0) {
      image.attrs[i] = slots[i]->ExportImage();
    }
  }
  return image;
}

bool StatsCollector::ImportImage(Image image) {
  MutexLock lock(mu_);
  if (image.attrs.size() != attrs_.size()) return false;  // wrong schema
  if (!observed_.empty()) return false;  // already learning: live wins
  for (uint64_t h : heat_) {
    if (h != 0) return false;
  }
  for (size_t i = 0; i < image.attrs.size(); ++i) {
    if (!image.attrs[i].has_value()) continue;
    if (attrs_[i] == nullptr) {
      attrs_[i] =
          std::make_unique<AttributeStats>(schema_->field(i).type);
    }
    attrs_[i]->ImportImage(std::move(*image.attrs[i]));
  }
  if (image.heat.size() == heat_.size()) heat_ = std::move(image.heat);
  observed_.insert(image.observed.begin(), image.observed.end());
  return true;
}

void ZoneMaps::Observe(uint32_t attr, uint64_t block,
                       const ColumnVector& column, uint64_t generation) {
  if (column.type() == DataType::kString) return;
  Entry entry;
  entry.is_int = column.type() != DataType::kDouble;
  entry.rows = column.size();
  bool first = true;
  for (size_t i = 0; i < column.size(); ++i) {
    if (column.IsNull(i)) {
      entry.has_null = true;
      continue;
    }
    entry.non_null = true;
    double d = column.GetNumeric(i);
    if (std::isnan(d)) {
      entry.unsafe = true;
      continue;
    }
    if (entry.is_int) {
      int64_t v = column.GetInt64(i);
      if (first || v < entry.min_i) entry.min_i = v;
      if (first || v > entry.max_i) entry.max_i = v;
    }
    if (first || d < entry.min_d) entry.min_d = d;
    if (first || d > entry.max_d) entry.max_d = d;
    first = false;
  }
  MutexLock lock(mu_);
  if (generation != generation_) return;  // parsed a rewritten file
  entries_.emplace(KeyOf(attr, block), entry);  // first install wins
}

std::optional<ZoneMaps::Entry> ZoneMaps::Get(uint32_t attr,
                                             uint64_t block) const {
  MutexLock lock(mu_);
  auto it = entries_.find(KeyOf(attr, block));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool ZoneMaps::Contains(uint32_t attr, uint64_t block) const {
  MutexLock lock(mu_);
  return entries_.find(KeyOf(attr, block)) != entries_.end();
}

uint64_t ZoneMaps::generation() const {
  MutexLock lock(mu_);
  return generation_;
}

void ZoneMaps::DropBlocksFrom(uint64_t first_block) {
  MutexLock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if ((it->first & ((uint64_t{1} << 40) - 1)) >= first_block) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void ZoneMaps::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  ++generation_;
}

size_t ZoneMaps::num_entries() const {
  MutexLock lock(mu_);
  return entries_.size();
}

ZoneMaps::Image ZoneMaps::ExportImage() const {
  MutexLock lock(mu_);
  Image image;
  image.entries.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    Image::EntryImage ei;
    ei.attr = static_cast<uint32_t>(key >> 40);
    ei.block = key & ((uint64_t{1} << 40) - 1);
    ei.entry = entry;
    image.entries.push_back(ei);
  }
  return image;
}

bool ZoneMaps::ImportImage(Image image) {
  MutexLock lock(mu_);
  if (!entries_.empty()) return false;  // already summarizing: live wins
  for (const Image::EntryImage& ei : image.entries) {
    entries_.emplace(KeyOf(ei.attr, ei.block), ei.entry);
  }
  return true;
}

void StatsSelectivityEstimator::Register(const std::string& table,
                                         const StatsCollector* stats,
                                         std::shared_ptr<Schema> schema) {
  tables_[table] = TableEntry{stats, std::move(schema)};
}

namespace {

/// Selectivities are fractions; degenerate stats (empty samples,
/// zero-width ranges, broken sketches) must never leak NaN/inf into
/// the planner's ordering comparisons.
std::optional<double> ClampSelectivity(std::optional<double> sel) {
  if (!sel.has_value()) return sel;
  if (!std::isfinite(*sel)) return std::nullopt;
  return std::min(1.0, std::max(0.0, *sel));
}

}  // namespace

std::optional<double> StatsSelectivityEstimator::EstimateSelectivity(
    const std::string& table, const Expr& predicate) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return std::nullopt;
  const TableEntry& entry = it->second;

  auto stats_for = [&](const Expr& e) -> const AttributeStats* {
    const auto* ref = dynamic_cast<const ColumnRefExpr*>(&e);
    if (ref == nullptr) return nullptr;
    auto idx = entry.schema->FieldIndex(ref->name());
    if (!idx.ok()) {
      // Join-side conjuncts carry qualified display names ("alias.col");
      // retry with the bare column name against the table schema.
      size_t dot = ref->name().rfind('.');
      if (dot == std::string::npos) return nullptr;
      idx = entry.schema->FieldIndex(ref->name().substr(dot + 1));
      if (!idx.ok()) return nullptr;
    }
    if (!entry.stats->HasStats(static_cast<uint32_t>(*idx))) return nullptr;
    return entry.stats->GetStats(static_cast<uint32_t>(*idx));
  };

  if (const auto* cmp = dynamic_cast<const CompareExpr*>(&predicate)) {
    const AttributeStats* stats = stats_for(*cmp->left());
    const Expr* literal_side = cmp->right().get();
    CompareOp op = cmp->op();
    if (stats == nullptr) {
      stats = stats_for(*cmp->right());
      literal_side = cmp->left().get();
      // Mirror the operator: lit < col  ==  col > lit.
      switch (op) {
        case CompareOp::kLt:
          op = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          op = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          op = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          op = CompareOp::kLe;
          break;
        default:
          break;
      }
    }
    if (stats == nullptr) return std::nullopt;
    const auto* lit = dynamic_cast<const LiteralExpr*>(literal_side);
    if (lit == nullptr) return std::nullopt;
    return ClampSelectivity(
        stats->EstimateCompareSelectivity(op, lit->value()));
  }

  if (const auto* like = dynamic_cast<const LikeExpr*>(&predicate)) {
    // LikeExpr does not expose its input publicly beyond CollectColumns;
    // resolve via collected column indices against the projected schema
    // is not possible here, so estimate only simple column LIKEs.
    (void)like;
    return std::nullopt;
  }

  if (const auto* isnull = dynamic_cast<const IsNullExpr*>(&predicate)) {
    (void)isnull;
    return std::nullopt;
  }

  // AND of estimable conjuncts: product (independence assumption).
  if (const auto* logical = dynamic_cast<const LogicalExpr*>(&predicate)) {
    if (logical->op() == LogicalOp::kAnd) {
      auto l = EstimateSelectivity(table, *logical->left());
      auto r = EstimateSelectivity(table, *logical->right());
      if (l && r) return ClampSelectivity(*l * *r);
      return ClampSelectivity(l ? l : r);
    }
    if (logical->op() == LogicalOp::kOr) {
      auto l = EstimateSelectivity(table, *logical->left());
      auto r = EstimateSelectivity(table, *logical->right());
      if (l && r) return ClampSelectivity(*l + *r - *l * *r);
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace nodb
