#include "raw/stats_collector.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace nodb {

AttributeStats::AttributeStats(DataType type) : type_(type) {
  numeric_sample_.reserve(kReservoirSize);
  if (type == DataType::kString) string_sample_.reserve(kReservoirSize);
}

void AttributeStats::Sample(double numeric, const std::string* text) {
  ++sampled_stream_;
  size_t capacity = kReservoirSize;
  if (type_ == DataType::kString) {
    if (string_sample_.size() < capacity) {
      string_sample_.push_back(*text);
    } else {
      uint64_t j = rng_.Uniform(sampled_stream_);
      if (j < capacity) string_sample_[j] = *text;
    }
    return;
  }
  if (numeric_sample_.size() < capacity) {
    numeric_sample_.push_back(numeric);
  } else {
    uint64_t j = rng_.Uniform(sampled_stream_);
    if (j < capacity) numeric_sample_[j] = numeric;
  }
}

void AttributeStats::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  nulls_ = 0;
  min_.reset();
  max_.reset();
  kmv_.clear();
  numeric_sample_.clear();
  string_sample_.clear();
  sampled_stream_ = 0;
}

void AttributeStats::Observe(const ColumnVector& column) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < column.size(); ++i) {
    ++count_;
    if (column.IsNull(i)) {
      ++nulls_;
      continue;
    }
    uint64_t hash;
    if (type_ == DataType::kString) {
      std::string_view s = column.GetString(i);
      hash = Fnv1a64(s.data(), s.size());
      std::string text(s);
      Sample(0, &text);
    } else {
      double v = column.GetNumeric(i);
      if (!min_ || v < *min_) min_ = v;
      if (!max_ || v > *max_) max_ = v;
      int64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(v));
      hash = MixHash64(static_cast<uint64_t>(bits));
      Sample(v, nullptr);
    }
    // KMV sketch: keep the k smallest hashes.
    if (kmv_.size() < kKmvSize) {
      kmv_.insert(hash);
    } else if (hash < *kmv_.rbegin()) {
      kmv_.insert(hash);
      if (kmv_.size() > kKmvSize) kmv_.erase(std::prev(kmv_.end()));
    }
  }
}

double AttributeStats::EstimateDistinct() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EstimateDistinctLocked();
}

double AttributeStats::EstimateDistinctLocked() const {
  if (kmv_.empty()) return 0;
  if (kmv_.size() < kKmvSize) return static_cast<double>(kmv_.size());
  // Standard KMV estimator: (k-1) / normalized kth-minimum.
  double kth = static_cast<double>(*kmv_.rbegin()) /
               static_cast<double>(UINT64_MAX);
  if (kth <= 0) return static_cast<double>(kmv_.size());
  return (static_cast<double>(kKmvSize) - 1.0) / kth;
}

std::optional<double> AttributeStats::EstimateCompareSelectivity(
    CompareOp op, const Value& literal) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (type_ == DataType::kString) {
    if (!literal.is_string() || string_sample_.empty()) return std::nullopt;
    const std::string& lit = literal.str();
    size_t pass = 0;
    for (const auto& s : string_sample_) {
      int cmp = s.compare(lit);
      bool ok = false;
      switch (op) {
        case CompareOp::kEq:
          ok = cmp == 0;
          break;
        case CompareOp::kNe:
          ok = cmp != 0;
          break;
        case CompareOp::kLt:
          ok = cmp < 0;
          break;
        case CompareOp::kLe:
          ok = cmp <= 0;
          break;
        case CompareOp::kGt:
          ok = cmp > 0;
          break;
        case CompareOp::kGe:
          ok = cmp >= 0;
          break;
      }
      if (ok) ++pass;
    }
    return static_cast<double>(pass) / string_sample_.size();
  }
  if (literal.is_null() || literal.is_string() || numeric_sample_.empty()) {
    return std::nullopt;
  }
  double lit = literal.AsDouble();
  size_t pass = 0;
  for (double v : numeric_sample_) {
    bool ok = false;
    switch (op) {
      case CompareOp::kEq:
        ok = v == lit;
        break;
      case CompareOp::kNe:
        ok = v != lit;
        break;
      case CompareOp::kLt:
        ok = v < lit;
        break;
      case CompareOp::kLe:
        ok = v <= lit;
        break;
      case CompareOp::kGt:
        ok = v > lit;
        break;
      case CompareOp::kGe:
        ok = v >= lit;
        break;
    }
    if (ok) ++pass;
  }
  double frac = static_cast<double>(pass) / numeric_sample_.size();
  if (op == CompareOp::kEq && pass == 0) {
    // Equality that misses the sample: fall back on 1/NDV.
    double ndv = EstimateDistinctLocked();
    return ndv > 0 ? 1.0 / ndv : frac;
  }
  return frac;
}

std::optional<double> AttributeStats::EstimateLikeSelectivity(
    std::string_view pattern, bool negated) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (string_sample_.empty()) return std::nullopt;
  size_t pass = 0;
  for (const auto& s : string_sample_) {
    if (LikeExpr::Match(s, pattern) != negated) ++pass;
  }
  return static_cast<double>(pass) / string_sample_.size();
}

std::vector<uint64_t> AttributeStats::SampleHistogram(size_t buckets) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> hist(buckets, 0);
  if (numeric_sample_.empty() || !min_ || !max_ || buckets == 0) {
    return hist;
  }
  double lo = *min_;
  double width = (*max_ - lo) / static_cast<double>(buckets);
  if (width <= 0) {
    hist[0] = numeric_sample_.size();
    return hist;
  }
  for (double v : numeric_sample_) {
    size_t b = static_cast<size_t>((v - lo) / width);
    if (b >= buckets) b = buckets - 1;
    ++hist[b];
  }
  return hist;
}

StatsCollector::StatsCollector(std::shared_ptr<Schema> schema)
    : schema_(std::move(schema)) {
  attrs_.resize(schema_->num_fields());
  heat_.assign(schema_->num_fields(), 0);
}

void StatsCollector::RecordAccessHeat(const std::vector<uint32_t>& attrs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t a : attrs) {
    if (a < heat_.size()) ++heat_[a];
  }
}

uint64_t StatsCollector::access_heat(uint32_t attr) const {
  std::lock_guard<std::mutex> lock(mu_);
  return attr < heat_.size() ? heat_[attr] : 0;
}

std::vector<uint64_t> StatsCollector::access_heat_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heat_;
}

void StatsCollector::ObserveBlock(uint32_t attr, uint64_t block,
                                  const ColumnVector& column) {
  uint64_t key = (static_cast<uint64_t>(attr) << 40) | block;
  AttributeStats* stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!observed_.insert(key).second) return;  // already folded in
    if (attrs_[attr] == nullptr) {
      attrs_[attr] =
          std::make_unique<AttributeStats>(schema_->field(attr).type);
    }
    stats = attrs_[attr].get();
  }
  // Fold outside the collector lock; the attribute's own mutex
  // serializes concurrent observers of the same attribute.
  stats->Observe(column);
}

bool StatsCollector::HasStats(uint32_t attr) const {
  AttributeStats* stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats = attrs_[attr].get();
  }
  return stats != nullptr && stats->row_count() > 0;
}

std::vector<uint32_t> StatsCollector::CoveredAttributes() const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < attrs_.size(); ++i) {
    if (HasStats(i)) out.push_back(i);
  }
  return out;
}

void StatsCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Reset in place: estimators may still hold GetStats() pointers.
  for (auto& a : attrs_) {
    if (a != nullptr) a->Reset();
  }
  heat_.assign(heat_.size(), 0);
  observed_.clear();
}

void StatsSelectivityEstimator::Register(const std::string& table,
                                         const StatsCollector* stats,
                                         std::shared_ptr<Schema> schema) {
  tables_[table] = TableEntry{stats, std::move(schema)};
}

std::optional<double> StatsSelectivityEstimator::EstimateSelectivity(
    const std::string& table, const Expr& predicate) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return std::nullopt;
  const TableEntry& entry = it->second;

  auto stats_for = [&](const Expr& e) -> const AttributeStats* {
    const auto* ref = dynamic_cast<const ColumnRefExpr*>(&e);
    if (ref == nullptr) return nullptr;
    auto idx = entry.schema->FieldIndex(ref->name());
    if (!idx.ok()) return nullptr;
    if (!entry.stats->HasStats(static_cast<uint32_t>(*idx))) return nullptr;
    return entry.stats->GetStats(static_cast<uint32_t>(*idx));
  };

  if (const auto* cmp = dynamic_cast<const CompareExpr*>(&predicate)) {
    const AttributeStats* stats = stats_for(*cmp->left());
    const Expr* literal_side = cmp->right().get();
    CompareOp op = cmp->op();
    if (stats == nullptr) {
      stats = stats_for(*cmp->right());
      literal_side = cmp->left().get();
      // Mirror the operator: lit < col  ==  col > lit.
      switch (op) {
        case CompareOp::kLt:
          op = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          op = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          op = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          op = CompareOp::kLe;
          break;
        default:
          break;
      }
    }
    if (stats == nullptr) return std::nullopt;
    const auto* lit = dynamic_cast<const LiteralExpr*>(literal_side);
    if (lit == nullptr) return std::nullopt;
    return stats->EstimateCompareSelectivity(op, lit->value());
  }

  if (const auto* like = dynamic_cast<const LikeExpr*>(&predicate)) {
    // LikeExpr does not expose its input publicly beyond CollectColumns;
    // resolve via collected column indices against the projected schema
    // is not possible here, so estimate only simple column LIKEs.
    (void)like;
    return std::nullopt;
  }

  if (const auto* isnull = dynamic_cast<const IsNullExpr*>(&predicate)) {
    (void)isnull;
    return std::nullopt;
  }

  // AND of estimable conjuncts: product (independence assumption).
  if (const auto* logical = dynamic_cast<const LogicalExpr*>(&predicate)) {
    if (logical->op() == LogicalOp::kAnd) {
      auto l = EstimateSelectivity(table, *logical->left());
      auto r = EstimateSelectivity(table, *logical->right());
      if (l && r) return *l * *r;
      return l ? l : r;
    }
    if (logical->op() == LogicalOp::kOr) {
      auto l = EstimateSelectivity(table, *logical->left());
      auto r = EstimateSelectivity(table, *logical->right());
      if (l && r) return std::min(1.0, *l + *r - *l * *r);
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace nodb
