#include "raw/raw_scan.h"

#include <algorithm>
#include <cassert>

#include "csv/value_parser.h"
#include "simd/simd.h"
#include "util/stopwatch.h"

namespace nodb {

namespace {

/// Accumulates (wall time − I/O time that elapsed inside the region)
/// into `sink`, keeping the Figure-3 categories disjoint: physical read
/// time is accounted once, by the reader.
class PhaseTimer {
 public:
  PhaseTimer(int64_t* sink, const BufferedReader* reader)
      : sink_(sink), reader_(reader), io_before_(reader->io_nanos()) {}
  ~PhaseTimer() {
    *sink_ +=
        watch_.ElapsedNanos() - (reader_->io_nanos() - io_before_);
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  int64_t* sink_;
  const BufferedReader* reader_;
  int64_t io_before_;
  Stopwatch watch_;
};

/// Zone-map attributes summarize only numeric-ish payloads.
bool ZoneEligibleType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble ||
         type == DataType::kDate;
}

/// True when every row of a block with the given bounds provably fails
/// `op` against the literal — the zone-map pruning rule. Bounds and
/// literal are compared exactly like CompareExpr::Evaluate compares
/// rows: exact int64 when both sides are integral, otherwise through
/// the double view (a monotone conversion, so converted bounds remain
/// bounds).
template <typename T>
bool ZoneDisjoint(CompareOp op, T min, T max, T lit) {
  switch (op) {
    case CompareOp::kEq:
      return lit < min || lit > max;
    case CompareOp::kNe:
      return min == max && min == lit;
    case CompareOp::kLt:
      return min >= lit;
    case CompareOp::kLe:
      return min > lit;
    case CompareOp::kGt:
      return max <= lit;
    case CompareOp::kGe:
      return max < lit;
  }
  return false;
}

}  // namespace

RawScanOperator::RawScanOperator(RawTableState* state,
                                 std::vector<uint32_t> projection,
                                 ScanMetrics* metrics, bool internal)
    : state_(state),
      projection_(std::move(projection)),
      metrics_(metrics != nullptr ? metrics : &local_metrics_),
      internal_(internal),
      table_name_(state->info().name),
      table_path_(state->info().path),
      tokenizer_(state->info().dialect,
                 simd::LevelFor(state->config().enable_simd)) {
  std::vector<size_t> indices(projection_.begin(), projection_.end());
  schema_ = state_->info().schema->Project(indices);
}

void RawScanOperator::SetPushdownPredicates(
    std::vector<ExprPtr> predicates) {
  predicates_ = std::move(predicates);
}

Status RawScanOperator::Open() {
  const NoDbConfig& config = state_->config();
  ComponentFlags flags = state_->component_flags();
  use_map_ = flags.map;
  use_cache_ = flags.cache;
  use_stats_ = flags.stats;
  use_store_ = flags.store;
  // Serving from the store needs the map: the raw residue of a hybrid
  // plan locates rows through it after a store-served block.
  serve_store_ = use_store_ && use_map_ && !projection_.empty();
  // Snapshot the store generation *before* taking the file handle: if
  // the file is rewritten after this point, the generation moves on
  // and this scan's promotions are rejected rather than poisoning the
  // cleared store with old-file segments.
  store_generation_ = state_->store().generation();
  // Zone maps follow the same discipline: collect summaries whenever
  // the config asks for them, but prune blocks only when predicates
  // were pushed and the map can resume the scan at the next block.
  collect_zones_ = config.enable_zone_maps;
  skip_zones_ =
      config.enable_zone_maps && use_map_ && !predicates_.empty();
  zone_generation_ = state_->zones().generation();

  // Recovered-vs-rebuilt provenance: this scan runs over structures a
  // snapshot restored, not ones this process built (persist/).
  persist::RecoveryReport recovery = state_->recovery();
  if (use_map_ && recovery.map_recovered) {
    ++metrics_->scans_using_recovered_map;
  }
  if (serve_store_ && recovery.store_recovered) {
    ++metrics_->scans_using_recovered_store;
  }

  // Pushdown analysis: which projection slots feed a predicate
  // (phase 1), and which conjuncts are zone-checkable `col op lit`.
  pred_slot_.assign(projection_.size(), false);
  zone_preds_.clear();
  for (const ExprPtr& p : predicates_) {
    std::vector<size_t> cols;
    p->CollectColumns(&cols);
    for (size_t c : cols) {
      NODB_CHECK(c < projection_.size());
      pred_slot_[c] = true;
    }
    const auto* cmp = dynamic_cast<const CompareExpr*>(p.get());
    if (cmp == nullptr) continue;
    const auto* ref =
        dynamic_cast<const ColumnRefExpr*>(cmp->left().get());
    const auto* lit =
        dynamic_cast<const LiteralExpr*>(cmp->right().get());
    CompareOp op = cmp->op();
    if (ref == nullptr || lit == nullptr) {
      ref = dynamic_cast<const ColumnRefExpr*>(cmp->right().get());
      lit = dynamic_cast<const LiteralExpr*>(cmp->left().get());
      if (ref == nullptr || lit == nullptr) continue;
      // Mirror the operator: lit < col  ==  col > lit.
      switch (op) {
        case CompareOp::kLt:
          op = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          op = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          op = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          op = CompareOp::kLe;
          break;
        default:
          break;
      }
    }
    if (!ZoneEligibleType(ref->type())) continue;
    ZonePredicate zp;
    zp.attr = projection_[ref->index()];
    zp.op = op;
    const Value& v = lit->value();
    if (v.is_int64()) {
      zp.lit_is_int = true;
      zp.lit_i = v.int64();
      zp.lit_d = static_cast<double>(v.int64());
    } else if (v.is_date()) {
      zp.lit_is_int = true;
      zp.lit_i = v.date_days();
      zp.lit_d = static_cast<double>(v.date_days());
    } else if (v.is_double()) {
      zp.lit_d = v.dbl();
    } else {
      continue;  // NULL/string literal: evaluate, never zone-prune
    }
    zone_preds_.push_back(zp);
  }

  std::shared_ptr<RandomAccessFile> file = state_->file();
  if (file == nullptr) {
    NODB_RETURN_NOT_OK(state_->Open());
    file = state_->file();
  }
  // The reader keeps this handle for the whole scan, so a concurrent
  // reopen of the table cannot pull the file out from under us.
  reader_ = std::make_unique<BufferedReader>(std::move(file),
                                             config.read_buffer_bytes);
  NODB_RETURN_NOT_OK(reader_->Refresh());

  row_ = 0;
  exhausted_ = false;
  current_block_ = UINT64_MAX;
  block_plan_.reset();
  chunk_builder_.reset();
  window_first_ = 0;
  window_rows_ = 0;
  window_bounds_.clear();
  store_block_ = false;
  store_tail_ = false;
  store_until_row_ = 0;
  store_segments_.clear();
  block_has_building_ = false;
  attr_states_.clear();
  attr_states_.resize(projection_.size());
  for (size_t i = 0; i < projection_.size(); ++i) {
    attr_states_[i].attr = projection_[i];
    attr_states_[i].type =
        state_->info().schema->field(projection_[i]).type;
  }

  // Header line: data rows start after it.
  header_skip_ = 0;
  if (state_->info().dialect.has_header && reader_->file_size() > 0) {
    uint64_t header_end = 0;
    Status s = reader_->FindNewline(0, &header_end);
    header_skip_ = std::min<uint64_t>(header_end + 1, reader_->file_size());
    (void)s;  // a header-only file simply has zero data rows
  }
  if (use_map_) {
    state_->map().EnsureDiscoveryStartsAt(header_skip_);
  }
  local_offset_ = header_skip_;

  if (!internal_) state_->RecordAttributeAccess(projection_);

  // Snapshot promotion heat after recording this access, so the scan
  // that crosses the threshold is the one that promotes.
  promote_attr_.assign(projection_.size(), false);
  if (use_store_) {
    for (size_t i = 0; i < projection_.size(); ++i) {
      promote_attr_[i] = state_->stats().access_heat(projection_[i]) >=
                         config.promote_after_accesses;
    }
  }

  uint32_t max_attr = projection_.empty() ? 0 : projection_.back();
  starts_.assign(max_attr + 2, 0);
  return Status::OK();
}

Result<bool> RawScanOperator::LocateRow(uint64_t row, uint64_t* start,
                                        uint64_t* end) {
  const uint64_t file_size = reader_->file_size();
  if (!use_map_) {
    if (local_offset_ >= file_size) return false;
    *start = local_offset_;
    PhaseTimer timer(&metrics_->parsing_ns, reader_.get());
    Status s = reader_->FindNewline(*start, end);
    if (!s.ok() && !s.IsOutOfRange()) return s;
    local_offset_ = *end + 1;
    return true;
  }

  PositionalMap& map = state_->map();
  const uint32_t rows_per_block = state_->config().rows_per_block;
  while (true) {
    // Fast path: the row's bounds are in the local snapshot window —
    // no locking, plain array indexing.
    if (row >= window_first_ && row < window_first_ + window_rows_) {
      size_t i = static_cast<size_t>(row - window_first_);
      *start = window_bounds_[i];
      *end = window_bounds_[i + 1] - 1;
      return true;
    }

    // Refill the window with whatever is published from `row` to the
    // end of its block (scans advance monotonically, so nothing before
    // `row` is needed again).
    uint32_t remaining =
        rows_per_block - static_cast<uint32_t>(row % rows_per_block);
    PositionalMap::RowSnapshot snap =
        map.SnapshotRows(row, remaining, &window_bounds_);
    window_first_ = row;
    window_rows_ = snap.rows;
    if (snap.rows > 0) continue;
    if (snap.complete && row >= snap.known_rows) return false;

    // The row is past the published frontier: take the discovery baton
    // and walk the tail to the end of the row's block in one round —
    // the bounds land in the local window, so a cold sequential scan
    // pays one baton acquisition per block, not per row. Other threads
    // block here only for rows nobody has walked yet.
    PositionalMap::Discovery discovery(&map);
    uint64_t resume = 0;
    uint64_t frontier_row = 0;
    while (discovery.NeedsRow(row, &resume, &frontier_row)) {
      if (resume >= file_size) {
        discovery.MarkComplete(file_size);
        break;
      }
      const uint64_t block_end =
          (row / rows_per_block + 1) * uint64_t{rows_per_block};
      uint64_t cursor = resume;
      uint64_t cursor_row = frontier_row;
      window_bounds_.clear();
      window_rows_ = 0;
      while (cursor_row < block_end && cursor < file_size) {
        uint64_t line_end = 0;
        {
          PhaseTimer timer(&metrics_->parsing_ns, reader_.get());
          Status s = reader_->FindNewline(cursor, &line_end);
          if (!s.ok() && !s.IsOutOfRange()) return s;
        }
        discovery.PublishRow(cursor, line_end);
        if (cursor_row >= row) window_bounds_.push_back(cursor);
        cursor = line_end + 1;
        ++cursor_row;
      }
      if (cursor >= file_size) discovery.MarkComplete(file_size);
      if (!window_bounds_.empty()) {
        window_bounds_.push_back(cursor);  // sentinel: last end + 1
        window_first_ = row;
        window_rows_ = static_cast<uint32_t>(window_bounds_.size() - 1);
        break;  // the fast path serves `row` from the fresh window
      }
      // File ended before reaching `row`; NeedsRow decides next.
    }
    // Another thread published past `row`, the window was walked, or
    // the file ended; loop to serve or finish.
  }
}

void RawScanOperator::MaybeObserveZone(uint32_t attr, uint64_t block,
                                       const ColumnVector& segment) {
  // Summaries admit exactly like store segments: the values must
  // provably cover the whole block, else a skip could hide rows.
  if (!collect_zones_ || !ZoneEligibleType(segment.type())) return;
  if (!SegmentCoversBlock(segment.size(), block)) return;
  if (state_->zones().Contains(attr, block)) return;
  state_->zones().Observe(attr, block, segment, zone_generation_);
}

bool RawScanOperator::SegmentCoversBlock(size_t segment_rows,
                                         uint64_t block) const {
  const uint32_t rows_per_block = state_->config().rows_per_block;
  if (segment_rows >= rows_per_block) return true;
  if (use_map_ && state_->map().rows_complete()) {
    uint64_t known = state_->map().known_rows();
    uint64_t first = block * uint64_t{rows_per_block};
    uint64_t expected =
        first >= known ? 0
                       : std::min<uint64_t>(rows_per_block, known - first);
    return segment_rows >= expected;
  }
  return false;
}

Status RawScanOperator::EnterBlock(uint64_t row) {
  NODB_RETURN_NOT_OK(CommitBlock());

  const NoDbConfig& config = state_->config();
  const uint32_t rows_per_block = config.rows_per_block;
  current_block_ = row / rows_per_block;
  block_first_row_ = current_block_ * rows_per_block;
  store_block_ = false;
  block_has_building_ = false;

  // Resolve cache residency per attribute. A segment counts only when
  // it provably covers the whole block (partial tail segments are
  // rebuilt — bounded by one block of work).
  PositionalMap& map = state_->map();

  std::vector<uint32_t> probe_attrs;
  probe_slot_.clear();
  for (size_t i = 0; i < attr_states_.size(); ++i) {
    AttrState& st = attr_states_[i];
    st.cached.reset();
    st.building.reset();
    bool promote = use_store_ && promote_attr_[i] &&
                   !state_->store().Contains(st.attr, current_block_);
    if (use_cache_) {
      auto seg = state_->cache().Get(st.attr, current_block_);
      if (seg != nullptr && SegmentCoversBlock(seg->size(), current_block_)) {
        st.cached = std::move(seg);
        ++metrics_->cache_block_hits;
        continue;
      }
      ++metrics_->cache_block_misses;
    }
    probe_attrs.push_back(st.attr);
    probe_slot_.push_back(i);
    // Zone maps piggyback on the same full-block segments the cache
    // and statistics build; a missing summary is worth one block of
    // accumulation even when those components are off.
    bool want_zone = collect_zones_ && ZoneEligibleType(st.type) &&
                     !state_->zones().Contains(st.attr, current_block_);
    if (use_cache_ || use_stats_ || promote || want_zone) {
      st.building = std::make_unique<ColumnVector>(st.type);
      st.building->Reserve(rows_per_block);
      block_has_building_ = true;
    }
  }

  block_plan_.reset();
  chunk_builder_.reset();
  chunk_attrs_.clear();
  if (use_map_ && !probe_attrs.empty()) {
    PhaseTimer timer(&metrics_->nodb_ns, reader_.get());
    block_plan_ = map.PrepareBlock(block_first_row_, probe_attrs);
    if (map.ShouldIndexCombination(*block_plan_)) {
      chunk_attrs_ = probe_attrs;
      chunk_builder_ = map.StartChunk(block_first_row_, chunk_attrs_);
    }
  }

  span_start_.assign(probe_attrs.size(), 0);
  span_end_.assign(probe_attrs.size(), 0);
  probe_identity_.resize(probe_attrs.size());
  for (size_t j = 0; j < probe_identity_.size(); ++j) {
    probe_identity_[j] = j;
  }
  probe_attrs_ = std::move(probe_attrs);
  return Status::OK();
}

Status RawScanOperator::CommitBlock() {
  if (current_block_ == UINT64_MAX) return Status::OK();
  PhaseTimer timer(&metrics_->nodb_ns, reader_.get());
  if (chunk_builder_.has_value()) {
    if (chunk_builder_->rows() > 0) {
      state_->map().CommitChunk(std::move(*chunk_builder_));
    }
    chunk_builder_.reset();
  }
  for (size_t i = 0; i < attr_states_.size(); ++i) {
    AttrState& st = attr_states_[i];
    bool promote = use_store_ && promote_attr_[i];
    if (st.building == nullptr || st.building->size() == 0) {
      st.building.reset();
      // Piggybacked promotion from the cache: the segment that served
      // this block is already fully parsed — hand it to the store
      // instead of re-parsing later. Zone maps summarize it the same
      // way.
      if (st.cached != nullptr) {
        MaybeObserveZone(st.attr, current_block_, *st.cached);
        if (promote &&
            SegmentCoversBlock(st.cached->size(), current_block_)) {
          state_->store().Promote(st.attr, current_block_, st.cached,
                                  store_generation_);
        }
      }
      continue;
    }
    std::shared_ptr<ColumnVector> segment(st.building.release());
    MaybeObserveZone(st.attr, current_block_, *segment);
    if (use_stats_) {
      state_->stats().ObserveBlock(st.attr, current_block_, *segment);
    }
    if (use_cache_) {
      state_->cache().Put(st.attr, current_block_, segment);
    }
    // Piggybacked promotion of the segment this scan just parsed;
    // admitted only when it provably covers the whole block (a scan
    // abandoned mid-block leaves nothing half-promoted).
    if (promote && SegmentCoversBlock(segment->size(), current_block_)) {
      state_->store().Promote(st.attr, current_block_, segment,
                              store_generation_);
    }
  }
  return Status::OK();
}

bool RawScanOperator::FetchStoreBlock(uint64_t block, size_t* rows) {
  const uint32_t rows_per_block = state_->config().rows_per_block;
  const uint64_t first = block * uint64_t{rows_per_block};
  {
    PhaseTimer timer(&metrics_->nodb_ns, reader_.get());
    if (!state_->store().GetBlock(projection_, block, &store_segments_)) {
      return false;
    }
  }
  // Serve-time validation. A short segment claims to be the file's
  // tail, which would end the scan at its last row — so it must match
  // the completed row index *right now*; and all attributes of the
  // block must agree on its row count. A stale segment (e.g. a
  // pre-append tail committed by a racing promotion) fails these, is
  // evicted, and the block re-parses through the raw path.
  *rows = store_segments_[0]->size();
  bool aligned = true;
  for (const auto& seg : store_segments_) {
    aligned = aligned && seg->size() == *rows;
  }
  if (!aligned ||
      (*rows < rows_per_block &&
       (!state_->map().rows_complete() ||
        first + *rows != state_->map().known_rows()))) {
    state_->store().DropBlock(block);
    store_segments_.clear();
    return false;
  }
  return true;
}

Result<bool> RawScanOperator::TryEnterStoreBlock(uint64_t row) {
  const uint32_t rows_per_block = state_->config().rows_per_block;
  const uint64_t block = row / rows_per_block;
  size_t rows = 0;
  if (!FetchStoreBlock(block, &rows)) return false;
  NODB_RETURN_NOT_OK(CommitBlock());
  // Store-served blocks summarize into the zone maps too: the
  // segments are fully parsed, so the pass is one cheap scan.
  {
    PhaseTimer timer(&metrics_->nodb_ns, reader_.get());
    for (size_t i = 0; i < store_segments_.size(); ++i) {
      MaybeObserveZone(projection_[i], block, *store_segments_[i]);
    }
  }
  current_block_ = block;
  block_first_row_ = block * uint64_t{rows_per_block};
  block_plan_.reset();
  chunk_builder_.reset();
  chunk_attrs_.clear();
  probe_attrs_.clear();
  probe_slot_.clear();
  for (AttrState& st : attr_states_) {
    st.cached.reset();
    st.building.reset();
  }
  block_has_building_ = false;
  store_block_ = true;
  store_tail_ = rows < rows_per_block;  // only the file's last block may
  store_until_row_ = block_first_row_ + rows;
  ++metrics_->store_block_hits;
  return true;
}

Result<BatchPtr> RawScanOperator::Next() {
  if (!predicates_.empty()) return NextPushdown();
  if (exhausted_) return BatchPtr();

  auto out = std::make_shared<RecordBatch>(schema_);
  const uint32_t rows_per_block = state_->config().rows_per_block;
  size_t emitted = 0;
  Slice line;

  while (emitted < RecordBatch::kDefaultBatchRows) {
    // ---- store fast path: the current block is fully materialized —
    // rows come straight out of the promoted segments, with no row
    // location, map lookup, tokenizing or parsing.
    if (store_block_) {
      if (row_ < store_until_row_) {
        size_t rel = static_cast<size_t>(row_ - block_first_row_);
        for (size_t i = 0; i < store_segments_.size(); ++i) {
          out->column(i).AppendFrom(*store_segments_[i], rel);
        }
        ++metrics_->rows_scanned;
        ++metrics_->rows_from_store;
        ++row_;
        ++emitted;
        continue;
      }
      store_block_ = false;
      if (store_tail_) {
        // The served block was the file's known tail: end of scan.
        exhausted_ = true;
        current_block_ = UINT64_MAX;
        break;
      }
    }
    if (serve_store_ && row_ / rows_per_block != current_block_) {
      NODB_ASSIGN_OR_RETURN(bool served, TryEnterStoreBlock(row_));
      if (served) continue;
    }

    uint64_t start = 0;
    uint64_t end = 0;
    NODB_ASSIGN_OR_RETURN(bool ok, LocateRow(row_, &start, &end));
    if (!ok) {
      exhausted_ = true;
      NODB_RETURN_NOT_OK(CommitBlock());
      current_block_ = UINT64_MAX;
      break;
    }
    if (row_ / rows_per_block != current_block_) {
      NODB_RETURN_NOT_OK(EnterBlock(row_));
    }
    uint64_t rel = row_ - block_first_row_;

    // Read the tuple's bytes (the reader accounts physical I/O). A
    // fully-cached block never touches the raw file at all — the
    // paper's "eliminating the need to access hot raw data".
    if (!probe_attrs_.empty() && end > start) {
      NODB_RETURN_NOT_OK(
          reader_->ReadAt(start, static_cast<size_t>(end - start), &line));
      // CRLF line endings: the tokenizer treats a trailing '\r' as part
      // of the terminator, so the raw record passes through untrimmed.
    } else {
      line = Slice();
    }

    // ---- cached attributes: copy binary values straight through.
    for (size_t i = 0; i < attr_states_.size(); ++i) {
      const AttrState& st = attr_states_[i];
      if (st.cached == nullptr) continue;
      NODB_CHECK(rel < st.cached->size());
      out->column(i).AppendFrom(*st.cached, rel);
    }

    // ---- selective tokenizing: spans for the uncached attributes.
    if (!probe_attrs_.empty()) {
      NODB_RETURN_NOT_OK(TokenizeSpans(line, row_, block_plan_,
                                       probe_attrs_, probe_identity_,
                                       span_start_.data(),
                                       span_end_.data(),
                                       /*count_blind=*/true));
    }

    // ---- selective parsing/conversion of exactly those spans.
    if (!probe_attrs_.empty()) {
      PhaseTimer timer(&metrics_->convert_ns, reader_.get());
      for (size_t j = 0; j < probe_attrs_.size(); ++j) {
        size_t slot = probe_slot_[j];
        const AttrState& st = attr_states_[slot];
        Slice raw = CsvTokenizer::RawField(line, span_start_[j],
                                           span_end_[j] + 1);
        Slice text = tokenizer_.DecodeField(raw, &decode_scratch_);
        Status s = ValueParser::ParseInto(text, st.type, &out->column(slot));
        if (!s.ok()) {
          return Status::ParseError(
              table_name_ + ": row " + std::to_string(row_) +
              ", attribute " + std::to_string(st.attr) + ": " +
              s.message());
        }
        ++metrics_->fields_converted;
      }
    }

    // ---- NoDB side effects: teach the map, grow the cache segments.
    if (!probe_attrs_.empty() &&
        (chunk_builder_.has_value() || block_has_building_)) {
      PhaseTimer timer(&metrics_->nodb_ns, reader_.get());
      if (chunk_builder_.has_value()) {
        chunk_builder_->AddRow(span_start_.data(), span_end_.data());
      }
      for (size_t j = 0; j < probe_attrs_.size(); ++j) {
        size_t slot = probe_slot_[j];
        AttrState& st = attr_states_[slot];
        if (st.building != nullptr) {
          const ColumnVector& col = out->column(slot);
          st.building->AppendFrom(col, col.size() - 1);
        }
      }
    }

    // Tier attribution: a row whose every needed column came from the
    // cache never touched the raw bytes (empty projections count here
    // too); anything tokenized or parsed is a raw-tier row.
    if (probe_attrs_.empty()) {
      ++metrics_->rows_from_cache;
    } else {
      ++metrics_->rows_from_raw;
    }
    ++metrics_->rows_scanned;
    ++row_;
    ++emitted;
  }

  metrics_->io_ns += reader_->io_nanos();
  metrics_->bytes_read += reader_->bytes_read();
  reader_->ResetCounters();

  if (emitted == 0) return BatchPtr();
  out->SetNumRows(emitted);
  return out;
}

// --------------------------------------------------------------- pushdown

Result<BatchPtr> RawScanOperator::NextPushdown() {
  while (!exhausted_) {
    NODB_ASSIGN_OR_RETURN(BatchPtr batch, ProcessPushdownBlock());
    if (batch != nullptr && batch->num_rows() > 0) {
      metrics_->io_ns += reader_->io_nanos();
      metrics_->bytes_read += reader_->bytes_read();
      reader_->ResetCounters();
      return batch;
    }
    // A skipped or fully filtered block: keep walking. The operator
    // contract forbids empty non-final batches (drains stop on them).
  }
  metrics_->io_ns += reader_->io_nanos();
  metrics_->bytes_read += reader_->bytes_read();
  reader_->ResetCounters();
  return BatchPtr();
}

Result<BatchPtr> RawScanOperator::ProcessPushdownBlock() {
  const uint32_t rows_per_block = state_->config().rows_per_block;
  const uint64_t block = row_ / rows_per_block;
  const uint64_t first = block * uint64_t{rows_per_block};

  // ---- zone pruning: a block provably disjoint from a pushed
  // range/equality conjunct advances the cursor without locating,
  // tokenizing or parsing a single row — on any serving tier.
  if (skip_zones_ && !zone_preds_.empty()) {
    uint64_t block_rows = 0;
    bool skip;
    {
      PhaseTimer timer(&metrics_->nodb_ns, reader_.get());
      skip = ZoneSkipsBlock(block, &block_rows);
    }
    if (skip) {
      ++metrics_->zone_skipped_blocks;
      metrics_->zone_skipped_rows += block_rows;
      row_ = first + block_rows;
      if (block_rows < rows_per_block) {
        exhausted_ = true;  // the entry was validated as the file tail
      }
      return BatchPtr();
    }
  }

  if (serve_store_) {
    BatchPtr staged;
    NODB_ASSIGN_OR_RETURN(bool served,
                          TryPushdownStoreBlock(block, &staged));
    if (served) return staged;
  }

  return PushdownRawBlock(block);
}

bool RawScanOperator::ZoneSkipsBlock(uint64_t block,
                                     uint64_t* rows_in_block) const {
  const uint32_t rows_per_block = state_->config().rows_per_block;
  const uint64_t first = block * uint64_t{rows_per_block};
  const ZoneMaps& zones = state_->zones();
  for (const ZonePredicate& zp : zone_preds_) {
    std::optional<ZoneMaps::Entry> entry = zones.Get(zp.attr, block);
    if (!entry.has_value()) continue;
    const ZoneMaps::Entry& e = *entry;
    // NULL-bearing (and NaN-bearing, and all-NULL) blocks are never
    // skipped: their rows' fate is decided row-by-row, exactly like
    // FilterOperator would.
    if (e.has_null || e.unsafe || !e.non_null) continue;
    // The entry must provably cover the block *right now*: a full
    // block, or the tail of the currently-complete row index. (Append
    // truncation and generation tagging make stale entries disappear,
    // but serve-time validation keeps even a racing one harmless.)
    if (e.rows < rows_per_block &&
        (!state_->map().rows_complete() ||
         first + e.rows != state_->map().known_rows())) {
      continue;
    }
    bool disjoint =
        e.is_int && zp.lit_is_int
            ? ZoneDisjoint<int64_t>(zp.op, e.min_i, e.max_i, zp.lit_i)
            : ZoneDisjoint<double>(zp.op, e.min_d, e.max_d, zp.lit_d);
    if (disjoint) {
      *rows_in_block = std::min<uint64_t>(e.rows, rows_per_block);
      return true;
    }
  }
  return false;
}

Result<bool> RawScanOperator::TryPushdownStoreBlock(uint64_t block,
                                                    BatchPtr* staged) {
  const uint32_t rows_per_block = state_->config().rows_per_block;
  const uint64_t first = block * uint64_t{rows_per_block};
  size_t rows = 0;
  if (!FetchStoreBlock(block, &rows)) return false;

  // The store's fully parsed segments are the cheapest zone-map
  // source there is — summarize any block the maps do not know yet.
  {
    PhaseTimer timer(&metrics_->nodb_ns, reader_.get());
    for (size_t c = 0; c < store_segments_.size(); ++c) {
      MaybeObserveZone(projection_[c], block, *store_segments_[c]);
    }
  }

  // Vectorize the pushed conjuncts straight over the promoted segments
  // (a read-only batch view; segments are immutable, shared-owned).
  std::vector<std::shared_ptr<ColumnVector>> view;
  view.reserve(store_segments_.size());
  for (const auto& seg : store_segments_) {
    view.push_back(std::const_pointer_cast<ColumnVector>(seg));
  }
  auto probe = std::make_shared<RecordBatch>(schema_, std::move(view),
                                             rows);
  NODB_ASSIGN_OR_RETURN(size_t passing,
                        EvaluatePushdown(*probe, &pd_pass_));

  BatchPtr out;
  if (passing == rows) {
    // Every row passes: hand the view out as-is — the store tier's
    // zero-copy serving survives pushdown.
    out = std::move(probe);
  } else {
    out = std::make_shared<RecordBatch>(schema_);
    if (passing > 0) {
      for (size_t c = 0; c < store_segments_.size(); ++c) {
        ColumnVector& dst = out->column(c);
        dst.Reserve(passing);
        for (size_t r = 0; r < rows; ++r) {
          if (pd_pass_[r]) dst.AppendFrom(*store_segments_[c], r);
        }
      }
      out->SetNumRows(passing);
    }
  }
  ++metrics_->store_block_hits;
  metrics_->rows_scanned += rows;
  metrics_->rows_from_store += rows;
  metrics_->pushdown_rows_pruned += rows - passing;
  store_segments_.clear();
  row_ = first + rows;
  if (rows < rows_per_block) exhausted_ = true;  // validated tail
  *staged = std::move(out);
  return true;
}

Result<size_t> RawScanOperator::EvaluatePushdown(
    const RecordBatch& batch, std::vector<char>* pass) const {
  const size_t n = batch.num_rows();
  pass->assign(n, 1);
  size_t passing = n;
  for (const ExprPtr& predicate : predicates_) {
    NODB_ASSIGN_OR_RETURN(auto mask, predicate->Evaluate(batch));
    for (size_t i = 0; i < n; ++i) {
      if (!(*pass)[i]) continue;
      // SQL WHERE semantics: NULL folds to "drop", like FilterOperator.
      if (mask->IsNull(i) || mask->GetInt64(i) == 0) {
        (*pass)[i] = 0;
        --passing;
      }
    }
  }
  return passing;
}

Status RawScanOperator::TokenizeSpans(
    Slice line, uint64_t row,
    const std::optional<PositionalMap::BlockPlan>& plan,
    const std::vector<uint32_t>& probe_attrs,
    const std::vector<size_t>& subset, uint32_t* starts, uint32_t* ends,
    bool count_blind) {
  PhaseTimer timer(&metrics_->tokenize_ns, reader_.get());
  uint32_t progress_field = 0;
  uint32_t progress_off = 0;
  bool had_help = false;
  for (size_t k = 0; k < subset.size(); ++k) {
    size_t j = subset[k];
    uint32_t attr = probe_attrs[j];
    PositionalMap::Probe probe;
    if (plan.has_value()) {
      probe = plan->Lookup(row, j);
    }
    if (probe.exact) {
      starts[k] = probe.start;
      ends[k] = probe.end;
      ++metrics_->map_exact_probes;
      had_help = true;
      if (attr + 1 > progress_field) {
        progress_field = attr + 1;
        progress_off = std::min<uint32_t>(
            probe.end + 1, static_cast<uint32_t>(line.size()));
      }
      continue;
    }
    if (probe.anchor_attr > progress_field) {
      progress_field = probe.anchor_attr;
      progress_off = std::min<uint32_t>(
          probe.anchor_rel, static_cast<uint32_t>(line.size()));
      ++metrics_->map_anchor_probes;
      had_help = true;
    }
    uint32_t before = progress_field;
    uint32_t high = tokenizer_.ScanStarts(line, progress_field,
                                          progress_off, attr + 1,
                                          starts_.data());
    if (high < attr + 1) {
      return Status::ParseError(
          table_name_ + ": row " + std::to_string(row) + " has " +
          std::to_string(high) + " fields, attribute " +
          std::to_string(attr) + " requested (file " + table_path_ + ")");
    }
    metrics_->fields_tokenized += attr + 1 - before;
    starts[k] = starts_[attr];
    ends[k] = starts_[attr + 1] - 1;
    progress_field = attr + 1;
    progress_off = std::min<uint32_t>(
        starts_[attr + 1], static_cast<uint32_t>(line.size()));
  }
  if (count_blind && !had_help && !subset.empty()) {
    ++metrics_->map_blind_rows;
  }
  return Status::OK();
}

Result<BatchPtr> RawScanOperator::PushdownRawBlock(uint64_t block) {
  const NoDbConfig& config = state_->config();
  const uint32_t rows_per_block = config.rows_per_block;
  const uint64_t first = block * uint64_t{rows_per_block};
  PositionalMap& map = state_->map();

  // ---- resolve cache residency and split the probes into phases:
  // predicate columns parse for every row (phase 1), the rest only for
  // qualifying rows (phase 2).
  const size_t n_slots = projection_.size();
  std::vector<std::shared_ptr<const ColumnVector>> cached(n_slots);
  std::vector<std::shared_ptr<ColumnVector>> built(n_slots);
  std::vector<uint32_t> probe_attrs;
  std::vector<size_t> probe_slots;
  std::vector<size_t> p1_idx, p2_idx;  // indices into probe_attrs
  for (size_t i = 0; i < n_slots; ++i) {
    uint32_t attr = projection_[i];
    if (use_cache_) {
      auto seg = state_->cache().Get(attr, block);
      if (seg != nullptr && SegmentCoversBlock(seg->size(), block)) {
        cached[i] = std::move(seg);
        ++metrics_->cache_block_hits;
        continue;
      }
      ++metrics_->cache_block_misses;
    }
    if (pred_slot_[i]) {
      p1_idx.push_back(probe_attrs.size());
      built[i] = std::make_shared<ColumnVector>(attr_states_[i].type);
      built[i]->Reserve(rows_per_block);
    } else {
      p2_idx.push_back(probe_attrs.size());
    }
    probe_attrs.push_back(attr);
    probe_slots.push_back(i);
  }

  std::optional<PositionalMap::BlockPlan> plan;
  std::optional<PositionalMap::ChunkBuilder> chunk;
  if (use_map_ && !probe_attrs.empty()) {
    PhaseTimer timer(&metrics_->nodb_ns, reader_.get());
    plan = map.PrepareBlock(first, probe_attrs);
    // The distance policy still decides per combination, but only the
    // phase-1 columns have spans for every row of the block — the
    // chunk records exactly those.
    if (!p1_idx.empty() && map.ShouldIndexCombination(*plan)) {
      std::vector<uint32_t> chunk_attrs;
      chunk_attrs.reserve(p1_idx.size());
      for (size_t j : p1_idx) chunk_attrs.push_back(probe_attrs[j]);
      chunk = map.StartChunk(first, chunk_attrs);
    }
  }

  // ---- phase 1: locate every row of the block, tokenize and convert
  // only the predicate columns.
  pd_bounds_.clear();
  std::vector<uint32_t> p1_starts(p1_idx.size());
  std::vector<uint32_t> p1_ends(p1_idx.size());
  Slice line;
  for (uint64_t r = first; r < first + rows_per_block; ++r) {
    uint64_t start = 0;
    uint64_t end = 0;
    NODB_ASSIGN_OR_RETURN(bool ok, LocateRow(r, &start, &end));
    if (!ok) break;
    pd_bounds_.emplace_back(start, end);
    if (p1_idx.empty()) continue;
    if (end > start) {
      NODB_RETURN_NOT_OK(
          reader_->ReadAt(start, static_cast<size_t>(end - start), &line));
    } else {
      line = Slice();
    }
    NODB_RETURN_NOT_OK(TokenizeSpans(line, r, plan, probe_attrs, p1_idx,
                                     p1_starts.data(), p1_ends.data(),
                                     /*count_blind=*/true));
    {
      PhaseTimer timer(&metrics_->convert_ns, reader_.get());
      for (size_t k = 0; k < p1_idx.size(); ++k) {
        size_t slot = probe_slots[p1_idx[k]];
        Slice raw =
            CsvTokenizer::RawField(line, p1_starts[k], p1_ends[k] + 1);
        Slice text = tokenizer_.DecodeField(raw, &decode_scratch_);
        Status s = ValueParser::ParseInto(text, attr_states_[slot].type,
                                          built[slot].get());
        if (!s.ok()) {
          return Status::ParseError(
              table_name_ + ": row " + std::to_string(r) +
              ", attribute " + std::to_string(projection_[slot]) + ": " +
              s.message());
        }
        ++metrics_->fields_converted;
        ++metrics_->pushdown_phase1_fields;
      }
    }
    if (chunk.has_value()) {
      PhaseTimer timer(&metrics_->nodb_ns, reader_.get());
      chunk->AddRow(p1_starts.data(), p1_ends.data());
    }
  }
  const size_t rows = pd_bounds_.size();
  if (rows == 0) {
    exhausted_ = true;
    return BatchPtr();
  }

  // ---- vectorize the conjuncts over the partial batch. Slots no
  // predicate references hold empty placeholder columns.
  size_t passing = 0;
  {
    std::vector<std::shared_ptr<ColumnVector>> columns(n_slots);
    for (size_t i = 0; i < n_slots; ++i) {
      if (built[i] != nullptr) {
        columns[i] = built[i];
      } else if (pred_slot_[i] && cached[i] != nullptr) {
        NODB_CHECK(cached[i]->size() >= rows);
        columns[i] = std::const_pointer_cast<ColumnVector>(cached[i]);
      } else {
        columns[i] =
            std::make_shared<ColumnVector>(attr_states_[i].type);
      }
    }
    RecordBatch probe(schema_, std::move(columns), rows);
    NODB_ASSIGN_OR_RETURN(passing, EvaluatePushdown(probe, &pd_pass_));
  }

  // ---- phase 2: qualifying rows only — tokenize/convert the
  // remaining columns and form the output tuples (the paper's
  // selective tuple formation, now predicate-aware).
  auto out = std::make_shared<RecordBatch>(schema_);
  std::vector<uint32_t> p2_starts(p2_idx.size());
  std::vector<uint32_t> p2_ends(p2_idx.size());
  if (passing > 0) {
    for (size_t i = 0; i < n_slots; ++i) out->column(i).Reserve(passing);
    for (size_t r = 0; r < rows; ++r) {
      if (!pd_pass_[r]) continue;
      if (!p2_idx.empty()) {
        uint64_t start = pd_bounds_[r].first;
        uint64_t end = pd_bounds_[r].second;
        if (end > start) {
          NODB_RETURN_NOT_OK(reader_->ReadAt(
              start, static_cast<size_t>(end - start), &line));
        } else {
          line = Slice();
        }
        // Blind-row attribution happened in phase 1 (when predicate
        // columns probed) — count here only when phase 2 is the row's
        // first tokenize pass.
        NODB_RETURN_NOT_OK(TokenizeSpans(line, first + r, plan,
                                         probe_attrs, p2_idx,
                                         p2_starts.data(), p2_ends.data(),
                                         /*count_blind=*/p1_idx.empty()));
      }
      size_t k2 = 0;
      PhaseTimer timer(&metrics_->convert_ns, reader_.get());
      for (size_t i = 0; i < n_slots; ++i) {
        if (built[i] != nullptr) {
          out->column(i).AppendFrom(*built[i], r);
          continue;
        }
        if (cached[i] != nullptr) {
          NODB_CHECK(r < cached[i]->size());
          out->column(i).AppendFrom(*cached[i], r);
          continue;
        }
        Slice raw =
            CsvTokenizer::RawField(line, p2_starts[k2], p2_ends[k2] + 1);
        Slice text = tokenizer_.DecodeField(raw, &decode_scratch_);
        Status s = ValueParser::ParseInto(text, attr_states_[i].type,
                                          &out->column(i));
        if (!s.ok()) {
          return Status::ParseError(
              table_name_ + ": row " + std::to_string(first + r) +
              ", attribute " + std::to_string(projection_[i]) + ": " +
              s.message());
        }
        ++metrics_->fields_converted;
        ++metrics_->pushdown_phase2_fields;
        ++k2;
      }
    }
    out->SetNumRows(passing);
  }

  // ---- side effects: phase-1 columns covered the whole block, so
  // they feed the map, cache, statistics, zone maps and promotion
  // exactly like a predicate-free scan's segments; phase-2 columns
  // were only parsed for qualifying rows and teach nothing.
  {
    PhaseTimer timer(&metrics_->nodb_ns, reader_.get());
    if (chunk.has_value() && chunk->rows() > 0) {
      map.CommitChunk(std::move(*chunk));
    }
    for (size_t i = 0; i < n_slots; ++i) {
      uint32_t attr = projection_[i];
      bool promote = use_store_ && promote_attr_[i] &&
                     !state_->store().Contains(attr, block);
      if (built[i] != nullptr) {
        MaybeObserveZone(attr, block, *built[i]);
        if (use_stats_) {
          state_->stats().ObserveBlock(attr, block, *built[i]);
        }
        if (use_cache_) {
          state_->cache().Put(attr, block, built[i]);
        }
        if (promote && SegmentCoversBlock(built[i]->size(), block)) {
          state_->store().Promote(attr, block, built[i],
                                  store_generation_);
        }
      } else if (cached[i] != nullptr) {
        MaybeObserveZone(attr, block, *cached[i]);
        if (promote) {
          state_->store().Promote(attr, block, cached[i],
                                  store_generation_);
        }
      }
    }
  }

  metrics_->rows_scanned += rows;
  metrics_->pushdown_rows_pruned += rows - passing;
  if (probe_attrs.empty()) {
    metrics_->rows_from_cache += rows;
  } else {
    metrics_->rows_from_raw += rows;
  }
  row_ = first + rows;
  if (rows < rows_per_block) exhausted_ = true;  // end of file
  return out;
}

}  // namespace nodb
