#ifndef NODB_IO_TEMP_DIR_H_
#define NODB_IO_TEMP_DIR_H_

#include <string>

#include "util/result.h"

namespace nodb {

/// A mkdtemp-backed directory removed (recursively) on destruction.
///
/// Tests, examples and benches generate raw CSV fixtures inside one of
/// these so runs leave nothing behind.
class TempDir {
 public:
  /// Creates a fresh directory under $TMPDIR (default /tmp).
  static Result<TempDir> Create(const std::string& prefix = "nodb");

  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir();

  const std::string& path() const { return path_; }

  /// Returns `path()/name`.
  std::string FilePath(const std::string& name) const;

 private:
  explicit TempDir(std::string path) : path_(std::move(path)) {}
  void Remove();

  std::string path_;
};

}  // namespace nodb

#endif  // NODB_IO_TEMP_DIR_H_
