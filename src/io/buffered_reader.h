#ifndef NODB_IO_BUFFERED_READER_H_
#define NODB_IO_BUFFERED_READER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "io/file.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace nodb {

/// Block-buffered positional reader over a RandomAccessFile.
///
/// The in-situ scan mixes sequential access (tokenizing unmapped
/// regions) with jumps (positional-map hits), so the reader exposes a
/// positional API and keeps one aligned block buffered. Ranges that
/// cross a block boundary are served by refilling so the caller always
/// receives one contiguous Slice; ranges longer than the buffer grow it.
///
/// All physical reads are accounted in io_nanos()/bytes_read() so the
/// per-query breakdown (Figure 3) can separate I/O from CPU work.
class BufferedReader {
 public:
  static constexpr size_t kDefaultBufferSize = 1 << 20;  // 1 MiB

  explicit BufferedReader(std::shared_ptr<RandomAccessFile> file,
                          size_t buffer_size = kDefaultBufferSize);

  /// Views `length` bytes at `offset`. Short only at end of file.
  Status ReadAt(uint64_t offset, size_t length, Slice* out);

  /// Finds the next '\n' at or after `offset`.
  ///
  /// On success `*line_end` is the newline's offset. Returns OutOfRange
  /// when the file ends first; `*line_end` is then the file size (i.e.
  /// the final unterminated line ends at EOF).
  Status FindNewline(uint64_t offset, uint64_t* line_end);

  /// Cached size captured at construction; Refresh() re-stats the file.
  uint64_t file_size() const { return file_size_; }
  Status Refresh();

  int64_t io_nanos() const { return io_nanos_; }
  uint64_t bytes_read() const { return bytes_read_; }
  void ResetCounters() {
    io_nanos_ = 0;
    bytes_read_ = 0;
  }

  const std::string& path() const { return file_->path(); }

 private:
  /// Loads the aligned block containing `offset`; extends the buffer if
  /// `min_length` does not fit in one block.
  Status Fill(uint64_t offset, size_t min_length);

  std::shared_ptr<RandomAccessFile> file_;
  size_t buffer_size_;
  std::vector<char> buffer_;
  uint64_t buffer_offset_ = 0;
  size_t buffer_valid_ = 0;
  uint64_t file_size_ = 0;
  int64_t io_nanos_ = 0;
  uint64_t bytes_read_ = 0;
};

}  // namespace nodb

#endif  // NODB_IO_BUFFERED_READER_H_
