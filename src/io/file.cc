#include "io/file.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>

namespace nodb {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + ::strerror(errno);
}

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t length, char* scratch,
              Slice* out) const override {
    size_t done = 0;
    while (done < length) {
      ssize_t n = ::pread(fd_, scratch + done, length - done,
                          static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread " + path_));
      }
      if (n == 0) break;  // EOF
      done += static_cast<size_t>(n);
    }
    *out = Slice(scratch, done);
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError(ErrnoMessage("fstat " + path_));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  int fd_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(Slice data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("write " + path_));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Close() override {
    if (fd_ >= 0) {
      if (::close(fd_) != 0) {
        fd_ = -1;
        return Status::IOError(ErrnoMessage("close " + path_));
      }
      fd_ = -1;
    }
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

}  // namespace

Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccessFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open " + path));
  }
  return std::unique_ptr<RandomAccessFile>(
      new PosixRandomAccessFile(path, fd));
}

Result<std::unique_ptr<WritableFile>> OpenWritableFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open " + path));
  }
  return std::unique_ptr<WritableFile>(new PosixWritableFile(path, fd));
}

Result<std::unique_ptr<WritableFile>> OpenAppendableFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open " + path));
  }
  return std::unique_ptr<WritableFile>(new PosixWritableFile(path, fd));
}

Result<std::string> ReadFileToString(const std::string& path) {
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(path));
  NODB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string out;
  out.resize(size);
  Slice got;
  NODB_RETURN_NOT_OK(file->Read(0, size, out.data(), &got));
  out.resize(got.size());
  return out;
}

Status WriteStringToFile(const std::string& path, Slice contents) {
  NODB_ASSIGN_OR_RETURN(auto file, OpenWritableFile(path));
  NODB_RETURN_NOT_OK(file->Append(contents));
  return file->Close();
}

Status WriteFileAtomic(const std::string& path, Slice contents) {
  // Same-directory temp name, unique per process *and* per call (the
  // counter): concurrent savers — other processes or other threads of
  // this one — each write their own complete temp file and race only
  // at the rename, where last one wins.
  static std::atomic<uint64_t> serial{0};
  std::string tmp = path + ".tmp." +
                    std::to_string(static_cast<long>(::getpid())) + "." +
                    std::to_string(serial.fetch_add(1));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open " + tmp));
  const char* p = contents.data();
  size_t left = contents.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::IOError(ErrnoMessage("write " + tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status s = Status::IOError(ErrnoMessage("fsync " + tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError(ErrnoMessage("close " + tmp));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Status::IOError(ErrnoMessage("rename " + tmp));
    ::unlink(tmp.c_str());
    return s;
  }
  // Durably record the rename itself. Best-effort: some filesystems
  // refuse O_RDONLY directory fsync; the data file above is synced.
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Result<uint64_t> GetFileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError(ErrnoMessage("stat " + path));
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<int64_t> GetFileMtimeNanos(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError(ErrnoMessage("stat " + path));
  }
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000LL +
         st.st_mtim.tv_nsec;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("unlink " + path));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace nodb
