#include "io/buffered_reader.h"

#include <algorithm>
#include <cstring>

#include "util/stopwatch.h"

namespace nodb {

BufferedReader::BufferedReader(std::shared_ptr<RandomAccessFile> file,
                               size_t buffer_size)
    : file_(std::move(file)), buffer_size_(std::max<size_t>(
                                  buffer_size, 4096)) {
  buffer_.resize(buffer_size_);
  auto size = file_->Size();
  file_size_ = size.ok() ? *size : 0;
}

Status BufferedReader::Refresh() {
  NODB_ASSIGN_OR_RETURN(file_size_, file_->Size());
  // Invalidate the buffer: the tail block may have grown.
  buffer_valid_ = 0;
  return Status::OK();
}

Status BufferedReader::Fill(uint64_t offset, size_t min_length) {
  if (min_length > buffer_.size()) {
    buffer_.resize(min_length);
  }
  // Align the fill to the buffer grid for sequential-scan friendliness,
  // unless alignment would leave less than min_length available.
  uint64_t aligned = offset - (offset % buffer_size_);
  if (offset - aligned + min_length > buffer_.size()) {
    aligned = offset;
  }
  Slice got;
  {
    ScopedTimer timer(&io_nanos_);
    NODB_RETURN_NOT_OK(
        file_->Read(aligned, buffer_.size(), buffer_.data(), &got));
  }
  bytes_read_ += got.size();
  buffer_offset_ = aligned;
  buffer_valid_ = got.size();
  return Status::OK();
}

Status BufferedReader::ReadAt(uint64_t offset, size_t length, Slice* out) {
  if (offset >= file_size_) {
    *out = Slice();
    return Status::OK();
  }
  length = std::min<uint64_t>(length, file_size_ - offset);
  if (offset < buffer_offset_ ||
      offset + length > buffer_offset_ + buffer_valid_) {
    NODB_RETURN_NOT_OK(Fill(offset, length));
    if (offset < buffer_offset_ ||
        offset + length > buffer_offset_ + buffer_valid_) {
      // File shrank under us; surface what we have.
      uint64_t avail =
          (offset >= buffer_offset_ + buffer_valid_)
              ? 0
              : buffer_offset_ + buffer_valid_ - offset;
      *out = Slice(buffer_.data() + (offset - buffer_offset_),
                   std::min<uint64_t>(length, avail));
      return Status::OK();
    }
  }
  *out = Slice(buffer_.data() + (offset - buffer_offset_), length);
  return Status::OK();
}

Status BufferedReader::FindNewline(uint64_t offset, uint64_t* line_end) {
  // Scans the *buffered* bytes and refills one aligned block at a time.
  // (Asking ReadAt for a fixed-size window here would force an unaligned
  // refill on nearly every call once the window crosses the block edge.)
  uint64_t pos = offset;
  while (pos < file_size_) {
    if (pos < buffer_offset_ || pos >= buffer_offset_ + buffer_valid_) {
      NODB_RETURN_NOT_OK(Fill(pos, 1));
      if (buffer_valid_ == 0 || pos < buffer_offset_ ||
          pos >= buffer_offset_ + buffer_valid_) {
        break;  // file shrank under us
      }
    }
    size_t avail =
        static_cast<size_t>(buffer_offset_ + buffer_valid_ - pos);
    const char* base = buffer_.data() + (pos - buffer_offset_);
    const char* nl =
        static_cast<const char*>(std::memchr(base, '\n', avail));
    if (nl != nullptr) {
      *line_end = pos + static_cast<uint64_t>(nl - base);
      return Status::OK();
    }
    pos += avail;
  }
  *line_end = file_size_;
  return Status::OutOfRange("no newline before end of file");
}

}  // namespace nodb
