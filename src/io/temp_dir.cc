#include "io/temp_dir.h"

#include <dirent.h>
#include <stdlib.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <vector>

namespace nodb {

namespace {

void RemoveRecursively(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> subdirs;
  struct dirent* entry;
  while ((entry = ::readdir(d)) != nullptr) {
    if (::strcmp(entry->d_name, ".") == 0 ||
        ::strcmp(entry->d_name, "..") == 0) {
      continue;
    }
    std::string full = dir + "/" + entry->d_name;
    struct stat st;
    if (::lstat(full.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      subdirs.push_back(full);
    } else {
      ::unlink(full.c_str());
    }
  }
  ::closedir(d);
  for (const auto& sub : subdirs) RemoveRecursively(sub);
  ::rmdir(dir.c_str());
}

}  // namespace

Result<TempDir> TempDir::Create(const std::string& prefix) {
  const char* base = ::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/" +
                     prefix + ".XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IOError("mkdtemp failed for " + tmpl);
  }
  return TempDir(std::string(buf.data()));
}

TempDir::TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    Remove();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

TempDir::~TempDir() { Remove(); }

void TempDir::Remove() {
  if (!path_.empty()) {
    RemoveRecursively(path_);
    path_.clear();
  }
}

std::string TempDir::FilePath(const std::string& name) const {
  return path_ + "/" + name;
}

}  // namespace nodb
