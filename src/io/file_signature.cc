#include "io/file_signature.h"

#include <algorithm>
#include <vector>

#include "io/file.h"
#include "util/hash.h"

namespace nodb {

std::string_view FileChangeToString(FileChange change) {
  switch (change) {
    case FileChange::kUnchanged:
      return "unchanged";
    case FileChange::kAppended:
      return "appended";
    case FileChange::kRewritten:
      return "rewritten";
  }
  return "?";
}

Result<uint64_t> FileSignature::HashRange(const std::string& path,
                                          uint64_t offset, size_t length) {
  if (length == 0) return uint64_t{0};
  NODB_ASSIGN_OR_RETURN(auto file, OpenRandomAccessFile(path));
  std::vector<char> scratch(length);
  Slice got;
  NODB_RETURN_NOT_OK(file->Read(offset, length, scratch.data(), &got));
  return Fnv1a64(got.data(), got.size());
}

Result<FileSignature> FileSignature::Capture(const std::string& path) {
  FileSignature sig;
  sig.path_ = path;
  NODB_ASSIGN_OR_RETURN(sig.size_, GetFileSize(path));
  NODB_ASSIGN_OR_RETURN(sig.mtime_nanos_, GetFileMtimeNanos(path));
  size_t head_len =
      static_cast<size_t>(std::min<uint64_t>(sig.size_, kProbeBytes));
  NODB_ASSIGN_OR_RETURN(sig.head_hash_, HashRange(path, 0, head_len));
  uint64_t tail_start = sig.size_ >= kProbeBytes ? sig.size_ - kProbeBytes : 0;
  NODB_ASSIGN_OR_RETURN(
      sig.tail_hash_,
      HashRange(path, tail_start,
                static_cast<size_t>(sig.size_ - tail_start)));
  return sig;
}

FileSignature FileSignature::FromParts(std::string path, uint64_t size,
                                       int64_t mtime_nanos,
                                       uint64_t head_hash,
                                       uint64_t tail_hash) {
  FileSignature sig;
  sig.path_ = std::move(path);
  sig.size_ = size;
  sig.mtime_nanos_ = mtime_nanos;
  sig.head_hash_ = head_hash;
  sig.tail_hash_ = tail_hash;
  return sig;
}

Result<FileChange> FileSignature::Compare(bool verify_content) const {
  NODB_ASSIGN_OR_RETURN(uint64_t now_size, GetFileSize(path_));
  NODB_ASSIGN_OR_RETURN(int64_t now_mtime, GetFileMtimeNanos(path_));
  if (!verify_content && now_size == size_ && now_mtime == mtime_nanos_) {
    return FileChange::kUnchanged;
  }
  if (now_size < size_) return FileChange::kRewritten;

  // Same or larger: decide by re-hashing the regions the signature
  // covered. Both must match for the old content to be a prefix.
  size_t head_len =
      static_cast<size_t>(std::min<uint64_t>(size_, kProbeBytes));
  NODB_ASSIGN_OR_RETURN(uint64_t now_head, HashRange(path_, 0, head_len));
  if (now_head != head_hash_) return FileChange::kRewritten;
  uint64_t tail_start = size_ >= kProbeBytes ? size_ - kProbeBytes : 0;
  NODB_ASSIGN_OR_RETURN(
      uint64_t now_tail,
      HashRange(path_, tail_start, static_cast<size_t>(size_ - tail_start)));
  if (now_tail != tail_hash_) return FileChange::kRewritten;
  return now_size == size_ ? FileChange::kUnchanged : FileChange::kAppended;
}

}  // namespace nodb
