#ifndef NODB_IO_FILE_SIGNATURE_H_
#define NODB_IO_FILE_SIGNATURE_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace nodb {

/// How a raw file changed since a signature was captured.
///
/// Drives the demo's "Updates" scenario (§4.2): appends keep the
/// positional map / cache / statistics valid for the old region, while
/// rewrites invalidate everything.
enum class FileChange {
  kUnchanged,
  kAppended,   ///< grew; old content is a byte-identical prefix
  kRewritten,  ///< shrank or content changed
};

std::string_view FileChangeToString(FileChange change);

/// Compact fingerprint of a raw file: size, mtime, and checksums of the
/// head block and of the block ending at the recorded size — a bounded
/// content-prefix/suffix hash, so classification never reads more than
/// 2 × kProbeBytes no matter how large the file is.
///
/// Checksums cover at most kProbeBytes each, so capture and comparison
/// cost O(1) regardless of file size — cheap enough to run before every
/// query.
class FileSignature {
 public:
  static constexpr size_t kProbeBytes = 64 * 1024;

  FileSignature() = default;

  /// Fingerprints `path` as it exists now.
  static Result<FileSignature> Capture(const std::string& path);

  /// Reconstructs a previously captured signature from its stored
  /// fields (the persisted-snapshot loader's entry point).
  static FileSignature FromParts(std::string path, uint64_t size,
                                 int64_t mtime_nanos, uint64_t head_hash,
                                 uint64_t tail_hash);

  /// Classifies how the file at `path` relates to this signature.
  ///
  /// By default a matching (size, mtime) pair short-circuits to
  /// kUnchanged — the right trade for the per-query update check. With
  /// `verify_content` the prefix/suffix hashes are always re-read, so
  /// an in-place rewrite that preserves both size and mtime (restored
  /// timestamps, mmap'ed edits, clock games) is still classified as
  /// kRewritten whenever the edit touches the probed head/tail
  /// regions — required before trusting persisted adaptive state. The
  /// probes stay bounded (kProbeBytes each): a same-size mtime-
  /// restored edit strictly between them is beyond what any O(1)
  /// signature can see, the same bound the live per-query update
  /// check already accepts.
  Result<FileChange> Compare(bool verify_content = false) const;

  uint64_t size() const { return size_; }
  int64_t mtime_nanos() const { return mtime_nanos_; }
  uint64_t head_hash() const { return head_hash_; }
  uint64_t tail_hash() const { return tail_hash_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  uint64_t size_ = 0;
  int64_t mtime_nanos_ = 0;
  uint64_t head_hash_ = 0;
  uint64_t tail_hash_ = 0;  // hash of bytes [max(0,size-probe), size)

  static Result<uint64_t> HashRange(const std::string& path,
                                    uint64_t offset, size_t length);
};

}  // namespace nodb

#endif  // NODB_IO_FILE_SIGNATURE_H_
