#ifndef NODB_IO_FILE_H_
#define NODB_IO_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace nodb {

/// Read-only file with positional (pread) access.
///
/// The raw scan reads through a BufferedReader on top of this; the
/// positional map allows jumping, hence positional rather than streaming
/// reads.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `length` bytes at `offset` into `scratch`; `*out` views
  /// the bytes actually read (short reads happen only at end of file).
  virtual Status Read(uint64_t offset, size_t length, char* scratch,
                      Slice* out) const = 0;

  /// Current file size in bytes.
  virtual Result<uint64_t> Size() const = 0;

  virtual const std::string& path() const = 0;
};

/// Append-only file used by the data generators and CSV writer.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(Slice data) = 0;
  virtual Status Flush() = 0;
  virtual Status Close() = 0;
};

/// Opens `path` for positional reads.
Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccessFile(
    const std::string& path);

/// Creates (truncating) `path` for appends.
Result<std::unique_ptr<WritableFile>> OpenWritableFile(
    const std::string& path);

/// Opens `path` for appends, creating it when absent.
Result<std::unique_ptr<WritableFile>> OpenAppendableFile(
    const std::string& path);

/// Reads an entire small file into a string (tests / fixtures).
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, truncating.
Status WriteStringToFile(const std::string& path, Slice contents);

/// Crash-safe whole-file replace: writes `contents` to a temp file in
/// the same directory, fsyncs it, atomically renames it over `path`,
/// then fsyncs the directory. A crash at any point leaves either the
/// old file or the new one — never a torn mix (the persistence
/// subsystem's durability primitive).
Status WriteFileAtomic(const std::string& path, Slice contents);

/// Returns the file size without opening it.
Result<uint64_t> GetFileSize(const std::string& path);

/// Returns the file's mtime in nanoseconds since epoch.
Result<int64_t> GetFileMtimeNanos(const std::string& path);

/// Removes a file; OK if it did not exist.
Status RemoveFileIfExists(const std::string& path);

bool FileExists(const std::string& path);

}  // namespace nodb

#endif  // NODB_IO_FILE_H_
