// Tests for the util/thread_pool fork/join primitive backing the
// parallel chunked raw scan.

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nodb {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { ++count; });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    }
    // No Wait(): the destructor must still run everything queued.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversExactlyTheRange) {
  ThreadPool pool(4);
  Mutex mu;
  std::set<size_t> seen;
  ParallelFor(&pool, 257, [&](size_t i) {
    MutexLock lock(mu);
    seen.insert(i);
  });
  ASSERT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  // With 4 workers, 4 tasks that each wait for the others to start can
  // only finish if they run at the same time.
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::atomic<bool> timed_out{false};
  ParallelFor(&pool, 4, [&](size_t) {
    ++started;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (started.load() < 4) {
      if (std::chrono::steady_clock::now() > deadline) {
        timed_out = true;
        return;
      }
      std::this_thread::yield();
    }
  });
  EXPECT_FALSE(timed_out.load());
  EXPECT_EQ(started.load(), 4);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

// ------------------------------------------------ instrumentation

TEST(ThreadPoolTest, MetricsGaugeReturnsToZeroAfterWait) {
  obs::Gauge depth;
  obs::LatencyHistogram wait_ns;
  obs::LatencyHistogram run_ns;
  obs::Counter tasks;
  ThreadPool pool(3);
  ThreadPoolMetrics metrics;
  metrics.queue_depth = &depth;
  metrics.task_wait_ns = &wait_ns;
  metrics.task_run_ns = &run_ns;
  metrics.tasks_total = &tasks;
  pool.SetMetrics(metrics);

  for (int batch = 0; batch < 3; ++batch) {
    std::atomic<int> count{0};
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++count;
      });
    }
    // Depth counts queued + running, so mid-batch it may be anything
    // in [0, 40]; the contract is that Wait() returning implies the
    // gauge already drained back to zero.
    pool.Wait();
    EXPECT_EQ(count.load(), 40);
    EXPECT_EQ(depth.Value(), 0);
  }
  EXPECT_EQ(tasks.Value(), 120u);
  EXPECT_EQ(run_ns.Snapshot().count, 120u);
  EXPECT_EQ(wait_ns.Snapshot().count, 120u);
  // Every task slept 50us, so recorded run latency cannot be zero.
  EXPECT_GT(run_ns.Snapshot().p50, 0u);
}

TEST(ThreadPoolTest, SetMetricsMidFlightKeepsGaugesBalanced) {
  // Tasks queued under the old metrics must decrement the gauge they
  // incremented, even if SetMetrics swaps handles before they run.
  obs::Gauge old_depth;
  obs::Gauge new_depth;
  ThreadPool pool(1);
  ThreadPoolMetrics metrics;
  metrics.queue_depth = &old_depth;
  pool.SetMetrics(metrics);

  std::atomic<bool> release{false};
  pool.Submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 8; ++i) pool.Submit([] {});
  metrics.queue_depth = &new_depth;
  pool.SetMetrics(metrics);  // queued tasks still carry old_depth
  for (int i = 0; i < 8; ++i) pool.Submit([] {});
  release.store(true);
  pool.Wait();
  EXPECT_EQ(old_depth.Value(), 0);
  EXPECT_EQ(new_depth.Value(), 0);
}

TEST(ThreadPoolTest, NullMetricsAreIgnored) {
  ThreadPool pool(2);
  pool.SetMetrics(ThreadPoolMetrics{});  // all-null: nothing recorded
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 10);
}

// ------------------------------------------------ exception delivery

TEST(ThreadPoolTest, TaskExceptionReachesWaiter) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task blew up"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, PoolStaysUsableAfterTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("first batch"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);

  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();  // error was consumed by the previous Wait
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsDelivered) {
  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // drained and cleared: no rethrow
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(&pool, 16,
                           [](size_t i) {
                             if (i == 7) throw std::logic_error("bad lane");
                           }),
               std::logic_error);
  // The pool survives for the next fork/join.
  std::atomic<int> count{0};
  ParallelFor(&pool, 8, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

// ----------------------------------------------------------- groups

TEST(TaskGroupTest, WaitsOnlyForOwnTasks) {
  ThreadPool pool(4);
  std::atomic<bool> release_other{false};
  std::atomic<int> own_done{0};

  TaskGroup slow(&pool);
  slow.Submit([&release_other] {
    while (!release_other.load()) std::this_thread::yield();
  });

  TaskGroup fast(&pool);
  for (int i = 0; i < 8; ++i) {
    fast.Submit([&own_done] { ++own_done; });
  }
  // Must return although the slow group's task is still running.
  fast.Wait();
  EXPECT_EQ(own_done.load(), 8);

  release_other = true;
  slow.Wait();
}

TEST(TaskGroupTest, ExceptionGoesToGroupNotPool) {
  ThreadPool pool(2);
  {
    TaskGroup group(&pool);
    group.Submit([] { throw std::runtime_error("group task"); });
    EXPECT_THROW(group.Wait(), std::runtime_error);
  }
  pool.Wait();  // pool-level error state untouched: no rethrow
}

TEST(TaskGroupTest, DestructorDrainsWithoutThrowing) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 10; ++i) {
      group.Submit([&count, i] {
        if (i == 3) throw std::runtime_error("swallowed by dtor");
        ++count;
      });
    }
    // No Wait(): the destructor must drain and must not throw.
  }
  EXPECT_EQ(count.load(), 9);
}

}  // namespace
}  // namespace nodb
