// Tests for the monitoring library: metrics arithmetic, bar rendering,
// panel content and CSV emitters.

#include <gtest/gtest.h>

#include "io/file.h"
#include "io/temp_dir.h"
#include "monitor/panel.h"
#include "monitor/query_metrics.h"
#include "raw/table_state.h"
#include "util/string_util.h"

namespace nodb {
namespace {

TEST(QueryMetricsTest, ProcessingIsResidual) {
  QueryMetrics metrics;
  metrics.total_ns = 100;
  metrics.scan.io_ns = 20;
  metrics.scan.tokenize_ns = 30;
  metrics.scan.parsing_ns = 10;
  metrics.scan.convert_ns = 15;
  metrics.scan.nodb_ns = 5;
  EXPECT_EQ(metrics.scan.TotalScanNs(), 80);
  EXPECT_EQ(metrics.processing_ns(), 20);
  // Never negative even when timers overlap slightly.
  metrics.total_ns = 50;
  EXPECT_EQ(metrics.processing_ns(), 0);
}

TEST(QueryMetricsTest, ScanMetricsAddIsComponentWise) {
  ScanMetrics a;
  a.io_ns = 1;
  a.rows_scanned = 10;
  a.cache_block_hits = 2;
  ScanMetrics b;
  b.io_ns = 2;
  b.rows_scanned = 20;
  b.map_exact_probes = 7;
  a.Add(b);
  EXPECT_EQ(a.io_ns, 3);
  EXPECT_EQ(a.rows_scanned, 30u);
  EXPECT_EQ(a.cache_block_hits, 2u);
  EXPECT_EQ(a.map_exact_probes, 7u);
}

TEST(EngineTotalsTest, DataToQueryTime) {
  EngineTotals totals;
  totals.init_ns = 100;
  QueryMetrics q;
  q.total_ns = 40;
  totals.AddQuery(q);
  totals.AddQuery(q);
  EXPECT_EQ(totals.queries, 2u);
  EXPECT_EQ(totals.query_ns, 80);
  EXPECT_EQ(totals.data_to_query_ns(), 180);
}

TEST(PanelTest, BarRendering) {
  EXPECT_EQ(MonitorPanel::Bar(0.0, 10), "[..........]   0.0%");
  EXPECT_EQ(MonitorPanel::Bar(0.5, 10), "[#####.....]  50.0%");
  EXPECT_EQ(MonitorPanel::Bar(1.0, 10), "[##########] 100.0%");
  // Over-budget fractions clamp the bar but report the true percent.
  EXPECT_EQ(MonitorPanel::Bar(1.5, 10), "[##########] 150.0%");
  EXPECT_EQ(MonitorPanel::Bar(-0.1, 10), "[..........]   0.0%");
}

TEST(PanelTest, BreakdownLineContainsAllCategories) {
  QueryMetrics metrics;
  metrics.total_ns = 5000000;
  metrics.scan.io_ns = 1000000;
  metrics.scan.tokenize_ns = 500000;
  std::string line = MonitorPanel::RenderBreakdown("label", metrics);
  for (const char* token : {"label", "total", "proc", "io", "convert",
                            "parse", "tokenize", "nodb"}) {
    EXPECT_NE(line.find(token), std::string::npos) << token;
  }
}

TEST(PanelTest, BreakdownClampsNegativeProcessing) {
  // Per-category timers are measured independently, so on a tiny query
  // their sum can exceed the wall clock; the derived Processing column
  // must clamp at zero instead of rendering a negative duration.
  QueryMetrics metrics;
  metrics.total_ns = 1000;
  metrics.scan.io_ns = 800;
  metrics.scan.parsing_ns = 400;
  metrics.scan.tokenize_ns = 300;
  metrics.scan.convert_ns = 200;
  metrics.scan.nodb_ns = 100;
  ASSERT_GT(metrics.scan.TotalScanNs(), metrics.total_ns);
  std::string line = MonitorPanel::RenderBreakdown("tiny", metrics);
  EXPECT_NE(line.find(FormatNanos(0)), std::string::npos) << line;
  EXPECT_EQ(line.find('-'), std::string::npos) << line;
}

TEST(PanelTest, CsvRowAlignsWithHeader) {
  QueryMetrics metrics;
  metrics.scan.rows_scanned = 42;
  std::string header = MonitorPanel::BreakdownCsvHeader();
  std::string row = MonitorPanel::BreakdownCsvRow("x", metrics);
  EXPECT_EQ(SplitString(header, ',').size(), SplitString(row, ',').size());
  EXPECT_EQ(SplitString(row, ',')[0], "x");
}

TEST(PanelTest, TableStatePanelShowsStructures) {
  auto dir = TempDir::Create("nodb-monitor");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->FilePath("t.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,4\n").ok());
  RawTableInfo info{"watched", path,
                    Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64}}),
                    CsvDialect()};
  RawTableState state(info, NoDbConfig());
  ASSERT_TRUE(state.Open().ok());
  state.RecordAttributeAccess({0});
  std::string panel = MonitorPanel::RenderTableState(state);
  EXPECT_NE(panel.find("watched"), std::string::npos);
  EXPECT_NE(panel.find("positional map"), std::string::npos);
  EXPECT_NE(panel.find("cache"), std::string::npos);
  EXPECT_NE(panel.find("tuple index"), std::string::npos);
  EXPECT_NE(panel.find("a "), std::string::npos);  // accessed attribute
}

TEST(PanelTest, ConcurrentBatchPanelAggregates) {
  ConcurrentBatchOutcome batch;
  batch.clients = 3;
  batch.wall_ns = 2'000'000;  // 2 ms for 4 queries -> 2000 q/s
  for (size_t i = 0; i < 4; ++i) {
    ConcurrentQueryReport report;
    report.index = i;
    report.client = "client-" + std::to_string(i % 3);
    report.sql = "SELECT " + std::to_string(i);
    report.metrics.total_ns = 900'000;
    // Overlapping pairs: q0/q1 together, then q2/q3 together.
    report.start_ns = static_cast<int64_t>((i / 2) * 1'000'000);
    report.finish_ns = report.start_ns + 900'000;
    batch.reports.push_back(std::move(report));
  }
  batch.reports[3].status = Status::ParseError("bad row");

  EXPECT_EQ(batch.peak_in_flight(), 2u);
  EXPECT_EQ(batch.failures(), 1u);
  EXPECT_NEAR(batch.queries_per_second(), 2000.0, 1.0);

  std::string panel = MonitorPanel::RenderConcurrentBatch(batch);
  EXPECT_NE(panel.find("4 queries on 3 client(s)"), std::string::npos);
  EXPECT_NE(panel.find("peak in flight 2"), std::string::npos);
  EXPECT_NE(panel.find("failures 1"), std::string::npos);
  EXPECT_NE(panel.find("client-1"), std::string::npos);
  EXPECT_NE(panel.find("FAILED"), std::string::npos);
  EXPECT_NE(panel.find("queries/s"), std::string::npos);
}

TEST(PanelTest, PeakInFlightBackToBackDoesNotOverlap) {
  ConcurrentBatchOutcome batch;
  batch.clients = 1;
  batch.wall_ns = 2'000'000;
  for (size_t i = 0; i < 3; ++i) {
    ConcurrentQueryReport report;
    report.index = i;
    report.start_ns = static_cast<int64_t>(i) * 500'000;
    report.finish_ns = report.start_ns + 500'000;  // finish == next start
    batch.reports.push_back(std::move(report));
  }
  EXPECT_EQ(batch.peak_in_flight(), 1u);
}

}  // namespace
}  // namespace nodb
