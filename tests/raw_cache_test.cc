// Tests for the binary raw-data cache: hit/miss accounting, LRU
// eviction under a byte budget, segment replacement and invariants
// under randomized workloads.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "raw/raw_cache.h"
#include "util/random.h"

namespace nodb {
namespace {

std::shared_ptr<ColumnVector> MakeSegment(size_t rows, int64_t base = 0) {
  auto col = std::make_shared<ColumnVector>(DataType::kInt64);
  for (size_t i = 0; i < rows; ++i) {
    col->AppendInt64(base + static_cast<int64_t>(i));
  }
  return col;
}

TEST(RawCacheTest, MissThenHit) {
  RawCache cache(1 << 20);
  EXPECT_EQ(cache.Get(0, 0), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Put(0, 0, MakeSegment(100));
  auto seg = cache.Get(0, 0);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(seg->GetInt64(5), 5);
  EXPECT_TRUE(cache.Contains(0, 0));
  EXPECT_FALSE(cache.Contains(0, 1));
  EXPECT_FALSE(cache.Contains(1, 0));
}

TEST(RawCacheTest, KeysAreAttrBlockPairs) {
  RawCache cache(1 << 20);
  cache.Put(1, 2, MakeSegment(10, 100));
  cache.Put(2, 1, MakeSegment(10, 200));
  EXPECT_EQ(cache.Get(1, 2)->GetInt64(0), 100);
  EXPECT_EQ(cache.Get(2, 1)->GetInt64(0), 200);
}

TEST(RawCacheTest, ReplaceUpdatesBytes) {
  RawCache cache(1 << 20);
  cache.Put(0, 0, MakeSegment(10));
  size_t small = cache.bytes_used();
  cache.Put(0, 0, MakeSegment(1000));
  EXPECT_GT(cache.bytes_used(), small);
  EXPECT_EQ(cache.num_segments(), 1u);
  EXPECT_EQ(cache.Get(0, 0)->size(), 1000u);
}

TEST(RawCacheTest, LruEvictionUnderBudget) {
  // Each 100-row int segment is ~900 bytes with overhead; budget for ~4.
  RawCache cache(4000);
  for (uint32_t a = 0; a < 10; ++a) {
    cache.Put(a, 0, MakeSegment(100));
    EXPECT_LE(cache.bytes_used(), 4000u);
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_EQ(cache.Get(0, 0), nullptr);   // oldest evicted
  EXPECT_NE(cache.Get(9, 0), nullptr);   // newest resident
}

TEST(RawCacheTest, GetRefreshesRecency) {
  RawCache cache(4000);
  cache.Put(0, 0, MakeSegment(100));
  for (uint32_t a = 1; a < 10; ++a) {
    ASSERT_NE(cache.Get(0, 0), nullptr) << "a=" << a;  // keep attr 0 hot
    cache.Put(a, 0, MakeSegment(100));
  }
  EXPECT_NE(cache.Get(0, 0), nullptr);
}

TEST(RawCacheTest, OversizedSegmentRejected) {
  RawCache cache(100);
  cache.Put(0, 0, MakeSegment(1000));
  EXPECT_FALSE(cache.Contains(0, 0));
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(RawCacheTest, OversizedReplacementInvalidatesStaleEntry) {
  // Regression: Put() used to return early on an over-budget segment
  // *without* dropping the existing entry under the same key, so a
  // re-parsed block (e.g. the tail after an append) could keep serving
  // its stale predecessor.
  RawCache cache(2000);
  cache.Put(3, 7, MakeSegment(10, 100));
  ASSERT_NE(cache.Get(3, 7), nullptr);
  size_t occupied = cache.bytes_used();
  ASSERT_GT(occupied, 0u);

  cache.Put(3, 7, MakeSegment(100000, 999));  // far over the whole budget
  EXPECT_FALSE(cache.Contains(3, 7));
  EXPECT_EQ(cache.Get(3, 7), nullptr);  // stale data must be gone
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.num_segments(), 0u);
}

TEST(RawCacheTest, ClearResetsContentKeepsCounters) {
  RawCache cache(1 << 20);
  cache.Put(0, 0, MakeSegment(10));
  ASSERT_NE(cache.Get(0, 0), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.num_segments(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.Get(0, 0), nullptr);
}

TEST(RawCacheTest, UtilizationTracksBudget) {
  RawCache cache(10000);
  EXPECT_DOUBLE_EQ(cache.utilization(), 0.0);
  cache.Put(0, 0, MakeSegment(100));
  EXPECT_GT(cache.utilization(), 0.0);
  EXPECT_LE(cache.utilization(), 1.0);
}

/// Property sweep across budgets: the cache never exceeds its budget,
/// hits always return the exact segment last Put, and hit+miss counts
/// equal the number of Gets.
class CacheBudgetSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CacheBudgetSweep, InvariantsUnderRandomAccess) {
  size_t budget = GetParam();
  RawCache cache(budget);
  Random rng(budget);
  uint64_t gets = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    uint32_t attr = static_cast<uint32_t>(rng.Uniform(8));
    uint64_t block = rng.Uniform(8);
    if (rng.Bernoulli(0.5)) {
      cache.Put(attr, block,
                MakeSegment(1 + rng.Uniform(200),
                            static_cast<int64_t>(attr * 1000 + block)));
    } else {
      ++gets;
      auto seg = cache.Get(attr, block);
      if (seg != nullptr) {
        EXPECT_EQ(seg->GetInt64(0),
                  static_cast<int64_t>(attr * 1000 + block));
      }
    }
    ASSERT_LE(cache.bytes_used(), budget);
  }
  EXPECT_EQ(cache.hits() + cache.misses(), gets);
}

INSTANTIATE_TEST_SUITE_P(Budgets, CacheBudgetSweep,
                         ::testing::Values(2000, 8000, 64000, 1 << 20));

// --------------------------------------------------------- concurrency

TEST(RawCacheConcurrencyTest, ConcurrentGetPutStaysConsistent) {
  // Eight threads hammer one small cache with mixed Get/Put/Contains;
  // every segment for key (attr, block) carries a key-derived marker,
  // so any cross-wired entry or torn LRU touch shows up as a wrong
  // value (and TSan sees any unlocked access).
  const size_t budget = 16000;
  RawCache cache(budget);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Random rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint32_t attr = static_cast<uint32_t>(rng.Uniform(4));
        uint64_t block = rng.Uniform(16);
        switch (rng.Uniform(3)) {
          case 0:
            cache.Put(attr, block,
                      MakeSegment(1 + rng.Uniform(50),
                                  static_cast<int64_t>(attr * 1000 + block)));
            break;
          case 1: {
            auto seg = cache.Get(attr, block);
            if (seg != nullptr) {
              EXPECT_EQ(seg->GetInt64(0),
                        static_cast<int64_t>(attr * 1000 + block));
            }
            break;
          }
          default:
            cache.Contains(attr, block);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_LE(cache.bytes_used(), budget);
  // Counters were kept under the lock, so they add up exactly.
  uint64_t lookups = cache.hits() + cache.misses();
  EXPECT_GT(lookups, 0u);
  // The cache still works after the storm.
  cache.Put(9, 9, MakeSegment(5, 9009));
  auto seg = cache.Get(9, 9);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->GetInt64(0), 9009);
}

TEST(RawCacheConcurrencyTest, HitsSurviveConcurrentEviction) {
  // A reader holds segments it got from the cache while a writer
  // floods the cache and evicts everything repeatedly: shared
  // ownership must keep every held segment valid and unchanged.
  RawCache cache(8000);
  cache.Put(0, 0, MakeSegment(64, 42));

  std::thread writer([&cache] {
    for (int round = 0; round < 2000; ++round) {
      cache.Put(1, static_cast<uint64_t>(round % 8), MakeSegment(128, round));
    }
  });

  for (int i = 0; i < 2000; ++i) {
    auto seg = cache.Get(0, 0);
    if (seg == nullptr) {
      cache.Put(0, 0, MakeSegment(64, 42));
      continue;
    }
    ASSERT_EQ(seg->size(), 64u);
    EXPECT_EQ(seg->GetInt64(0), 42);
    EXPECT_EQ(seg->GetInt64(63), 42 + 63);
  }
  writer.join();
}

}  // namespace
}  // namespace nodb
