// Negative case: reads a GUARDED_BY member without holding its mutex.
// clang -Wthread-safety -Werror must refuse to compile this file; the
// corrected twin is cases/locked_guarded_read.cc.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    nodb::MutexLock lock(mu_);
    ++value_;
  }

  // BUG (seeded): unguarded read of a mu_-guarded member.
  int Get() const { return value_; }

 private:
  mutable nodb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return c.Get();
}
