// Negative case: calls a REQUIRES(mu_) helper without holding mu_.
// clang -Wthread-safety -Werror must refuse to compile this file; the
// corrected call pattern appears in cases/locked_guarded_read.cc.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  // BUG (seeded): the REQUIRES precondition is not established.
  void Bump() { BumpLocked(); }

 private:
  void BumpLocked() REQUIRES(mu_) { ++value_; }

  nodb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
