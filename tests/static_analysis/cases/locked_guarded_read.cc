// Positive control: the corrected twin of unlocked_guarded_read.cc and
// missing_requires.cc. Must compile clean under the exact flags that
// reject the negatives, proving those failures come from the seeded
// bugs and not from the harness or the annotation headers.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    nodb::MutexLock lock(mu_);
    BumpLocked();
  }

  int Get() const {
    nodb::MutexLock lock(mu_);
    return value_;
  }

 private:
  void BumpLocked() REQUIRES(mu_) { ++value_; }

  mutable nodb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return c.Get();
}
