// Negative case: discards a [[nodiscard]] Status. Any compiler with
// -Werror=unused-result (gcc and clang both) must refuse to compile
// this file; the corrected twin is cases/checked_status.cc.

#include "util/status.h"

namespace {

nodb::Status MightFail() {
  return nodb::Status::IOError("synthetic failure");
}

}  // namespace

int main() {
  MightFail();  // BUG (seeded): error silently dropped
  return 0;
}
