// Positive control: the corrected twin of dropped_status.cc. Checking
// the Status (or explicitly voiding it with a documented reason) must
// compile clean under the exact flags that reject the negative.

#include "util/status.h"

namespace {

nodb::Status MightFail() {
  return nodb::Status::IOError("synthetic failure");
}

}  // namespace

int main() {
  nodb::Status s = MightFail();
  return s.ok() ? 0 : 1;
}
