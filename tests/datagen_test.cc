// Tests for the workload generators: the synthetic CSV generator (the
// demo GUI's knobs) and the TPC-H-shaped generators.

#include <gtest/gtest.h>

#include "csv/tokenizer.h"
#include "datagen/synthetic.h"
#include "datagen/tpch.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "types/date_util.h"
#include "util/string_util.h"

namespace nodb {
namespace {

class DatagenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-datagen");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
  }
  std::unique_ptr<TempDir> dir_;
};

TEST_F(DatagenTest, SchemaCyclesThroughEnabledTypes) {
  SyntheticSpec spec;
  spec.num_attributes = 8;
  spec.ints_per_cycle = 1;
  spec.doubles_per_cycle = 1;
  spec.strings_per_cycle = 1;
  spec.dates_per_cycle = 1;
  auto schema = spec.MakeSchema();
  ASSERT_EQ(schema->num_fields(), 8u);
  EXPECT_EQ(schema->field(0).type, DataType::kInt64);
  EXPECT_EQ(schema->field(1).type, DataType::kDouble);
  EXPECT_EQ(schema->field(2).type, DataType::kString);
  EXPECT_EQ(schema->field(3).type, DataType::kDate);
  EXPECT_EQ(schema->field(4).type, DataType::kInt64);
  EXPECT_EQ(schema->field(0).name, "attr0");
}

TEST_F(DatagenTest, FileShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.num_tuples = 100;
  spec.num_attributes = 5;
  spec.attribute_width = 6;
  std::string path = dir_->FilePath("s.csv");
  auto bytes = GenerateSyntheticCsv(path, spec, CsvDialect());
  ASSERT_TRUE(bytes.ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  auto lines = SplitString(*content, '\n');
  // Trailing newline yields one empty final entry.
  ASSERT_EQ(lines.size(), 101u);
  EXPECT_TRUE(lines.back().empty());
  CsvTokenizer tok{CsvDialect()};
  std::vector<uint32_t> starts;
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(tok.TokenizeLine(lines[i], &starts), 5u) << "line " << i;
    // All-int default: each field is exactly `attribute_width` chars.
    for (size_t f = 0; f < 5; ++f) {
      EXPECT_EQ(starts[f + 1] - 1 - starts[f], 6u);
    }
  }
}

TEST_F(DatagenTest, DeterministicBySeed) {
  SyntheticSpec spec;
  spec.num_tuples = 50;
  spec.num_attributes = 3;
  std::string p1 = dir_->FilePath("a.csv");
  std::string p2 = dir_->FilePath("b.csv");
  ASSERT_TRUE(GenerateSyntheticCsv(p1, spec, CsvDialect()).ok());
  ASSERT_TRUE(GenerateSyntheticCsv(p2, spec, CsvDialect()).ok());
  EXPECT_EQ(*ReadFileToString(p1), *ReadFileToString(p2));
  spec.seed = 43;
  std::string p3 = dir_->FilePath("c.csv");
  ASSERT_TRUE(GenerateSyntheticCsv(p3, spec, CsvDialect()).ok());
  EXPECT_NE(*ReadFileToString(p1), *ReadFileToString(p3));
}

TEST_F(DatagenTest, HeaderRowWhenDialectAsks) {
  SyntheticSpec spec;
  spec.num_tuples = 2;
  spec.num_attributes = 3;
  CsvDialect dialect;
  dialect.has_header = true;
  std::string path = dir_->FilePath("h.csv");
  ASSERT_TRUE(GenerateSyntheticCsv(path, spec, dialect).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(StartsWith(*content, "attr0,attr1,attr2\n"));
}

TEST_F(DatagenTest, NullFractionProducesEmptyFields) {
  SyntheticSpec spec;
  spec.num_tuples = 500;
  spec.num_attributes = 4;
  spec.null_fraction = 0.3;
  std::string path = dir_->FilePath("n.csv");
  ASSERT_TRUE(GenerateSyntheticCsv(path, spec, CsvDialect()).ok());
  auto content = ReadFileToString(path);
  size_t empties = 0;
  size_t fields = 0;
  for (const auto& line : SplitString(*content, '\n')) {
    if (line.empty()) continue;
    for (const auto& f : SplitString(line, ',')) {
      ++fields;
      if (f.empty()) ++empties;
    }
  }
  double ratio = static_cast<double>(empties) / fields;
  EXPECT_NEAR(ratio, 0.3, 0.05);
}

TEST_F(DatagenTest, MixedTypeFieldsParse) {
  SyntheticSpec spec;
  spec.num_tuples = 20;
  spec.num_attributes = 4;
  spec.ints_per_cycle = 1;
  spec.doubles_per_cycle = 1;
  spec.strings_per_cycle = 1;
  spec.dates_per_cycle = 1;
  std::string path = dir_->FilePath("m.csv");
  ASSERT_TRUE(GenerateSyntheticCsv(path, spec, CsvDialect()).ok());
  auto content = ReadFileToString(path);
  auto lines = SplitString(*content, '\n');
  auto fields = SplitString(lines[0], ',');
  ASSERT_EQ(fields.size(), 4u);
  // attr3 is a DATE in TPC-H's range.
  auto days = ParseDate(fields[3]);
  ASSERT_TRUE(days.ok()) << fields[3];
  EXPECT_GE(*days, CivilToDays(1992, 1, 1));
  EXPECT_LT(*days, CivilToDays(1999, 1, 1));
}

// -------------------------------------------------------------------- TPCH

TEST_F(DatagenTest, LineitemShape) {
  TpchSpec spec;
  spec.scale_factor = 0.001;  // ~1500 orders, ~6000 lineitems
  std::string path = dir_->FilePath("lineitem.tbl");
  auto rows = GenerateTpchLineitem(path, spec);
  ASSERT_TRUE(rows.ok());
  EXPECT_GT(*rows, 2000u);
  EXPECT_LT(*rows, 12000u);

  auto schema = TpchLineitemSchema();
  EXPECT_EQ(schema->num_fields(), 16u);
  EXPECT_EQ(*schema->FieldIndex("l_shipdate"), 10u);

  auto content = ReadFileToString(path);
  auto lines = SplitString(*content, '\n');
  CsvTokenizer tok{CsvDialect::Pipe()};
  std::vector<uint32_t> starts;
  ASSERT_EQ(tok.TokenizeLine(lines[0], &starts), 16u);
  // l_orderkey of the first line is 1.
  EXPECT_EQ(lines[0].substr(starts[0], starts[1] - 1 - starts[0]), "1");
  // Return flag is one of N/R/A.
  std::string flag =
      lines[0].substr(starts[8], starts[9] - 1 - starts[8]);
  EXPECT_TRUE(flag == "N" || flag == "R" || flag == "A") << flag;
}

TEST_F(DatagenTest, OrdersShapeAndKeyAlignment) {
  TpchSpec spec;
  spec.scale_factor = 0.001;
  std::string path = dir_->FilePath("orders.tbl");
  auto rows = GenerateTpchOrders(path, spec);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, spec.num_orders());
  EXPECT_EQ(TpchOrdersSchema()->num_fields(), 9u);

  // Order keys run 1..num_orders, aligning with lineitem's l_orderkey
  // domain so joins produce matches.
  auto content = ReadFileToString(path);
  auto lines = SplitString(*content, '\n');
  EXPECT_TRUE(StartsWith(lines[0], "1|"));
  EXPECT_TRUE(StartsWith(lines[*rows - 1],
                         std::to_string(*rows) + "|"));
}

TEST_F(DatagenTest, LineitemDatesAreOrderedPerRow) {
  TpchSpec spec;
  spec.scale_factor = 0.0005;
  std::string path = dir_->FilePath("li.tbl");
  ASSERT_TRUE(GenerateTpchLineitem(path, spec).ok());
  auto content = ReadFileToString(path);
  for (const auto& line : SplitString(*content, '\n')) {
    if (line.empty()) continue;
    auto fields = SplitString(line, '|');
    ASSERT_EQ(fields.size(), 16u);
    int64_t ship = *ParseDate(fields[10]);
    int64_t commit = *ParseDate(fields[11]);
    int64_t receipt = *ParseDate(fields[12]);
    EXPECT_LT(ship, commit);
    EXPECT_LT(ship, receipt);
  }
}

}  // namespace
}  // namespace nodb
