// The engine-equivalence property suite: for randomized data and
// queries, the in-situ engine (in every knob configuration, cold and
// warm) must return exactly the rows a conventional load-first engine
// returns. This is the core correctness claim of the reproduction —
// the NoDB structures are pure accelerators.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "datagen/synthetic.h"
#include "engines/load_first_engine.h"
#include "engines/nodb_engine.h"
#include "io/temp_dir.h"
#include "raw/parallel_scan.h"
#include "util/random.h"

namespace nodb {
namespace {

/// Builds random-but-valid SQL over the synthetic schema
/// (attr0 INT, attr1 DOUBLE, attr2 STRING, attr3 DATE, attr4 INT, ...).
class QueryGenerator {
 public:
  QueryGenerator(const Schema& schema, uint64_t seed)
      : schema_(schema), rng_(seed) {}

  std::string Next() {
    switch (rng_.Uniform(4)) {
      case 0:
        return Projection();
      case 1:
        return GlobalAggregate();
      case 2:
        return GroupBy();
      default:
        return Projection();
    }
  }

 private:
  std::string RandomColumn(bool numeric_only = false) {
    while (true) {
      size_t i = rng_.Uniform(schema_.num_fields());
      if (!numeric_only || schema_.field(i).type != DataType::kString) {
        return schema_.field(i).name;
      }
    }
  }

  std::string RandomPredicate() {
    size_t i = rng_.Uniform(schema_.num_fields());
    const Field& f = schema_.field(i);
    const char* ops[] = {"<", "<=", ">", ">=", "=", "<>"};
    std::string op = ops[rng_.Uniform(6)];
    switch (f.type) {
      case DataType::kInt64:
        return f.name + " " + op + " " +
               std::to_string(rng_.Uniform(1000000));
      case DataType::kDouble:
        return f.name + " " + op + " " +
               std::to_string(rng_.Uniform(10000)) + ".5";
      case DataType::kDate: {
        unsigned day = 1 + static_cast<unsigned>(rng_.Uniform(28));
        unsigned month = 1 + static_cast<unsigned>(rng_.Uniform(12));
        unsigned year = 1992 + static_cast<unsigned>(rng_.Uniform(7));
        char buf[48];
        std::snprintf(buf, sizeof(buf), "DATE '%04u-%02u-%02u'", year,
                      month, day);
        return f.name + " " + op + " " + buf;
      }
      case DataType::kString:
        if (rng_.Bernoulli(0.5)) {
          return f.name + " LIKE '" +
                 std::to_string(rng_.Uniform(10)) + "%'";
        }
        return f.name + " " + op + " '" +
               std::to_string(rng_.Uniform(10)) + "'";
    }
    return "1 = 1";
  }

  std::string MaybeWhere() {
    switch (rng_.Uniform(4)) {
      case 0:
        return "";
      case 1:
        return " WHERE " + RandomPredicate();
      case 2:
        return " WHERE " + RandomPredicate() + " AND " + RandomPredicate();
      default:
        return " WHERE " + RandomPredicate() + " OR " + RandomPredicate();
    }
  }

  std::string Projection() {
    size_t n = 1 + rng_.Uniform(3);
    std::string cols;
    std::string first_col;
    for (size_t i = 0; i < n; ++i) {
      std::string c = RandomColumn();
      if (i == 0) first_col = c;
      if (i > 0) cols += ", ";
      cols += c;
    }
    std::string sql = "SELECT " + cols + " FROM t" + MaybeWhere();
    // Deterministic order + limit so row sets stay comparable and small.
    sql += " ORDER BY " + first_col;
    sql += " LIMIT 50";
    return sql;
  }

  std::string GlobalAggregate() {
    std::string c = RandomColumn(/*numeric_only=*/true);
    const char* funcs[] = {"COUNT", "SUM", "MIN", "MAX", "AVG"};
    std::string f = funcs[rng_.Uniform(5)];
    return "SELECT COUNT(*) AS n, " + f + "(" + c + ") AS v FROM t" +
           MaybeWhere();
  }

  std::string GroupBy() {
    // Group by a string attribute prefix-heavy domain or an int column.
    std::string key = RandomColumn();
    std::string agg = RandomColumn(/*numeric_only=*/true);
    return "SELECT " + key + ", COUNT(*) AS n, MIN(" + agg +
           ") AS lo FROM t" + MaybeWhere() + " GROUP BY " + key +
           " ORDER BY " + key + " LIMIT 40";
  }

  const Schema& schema_;
  Random rng_;
};

struct EquivalenceCase {
  int knob_mask;       // bit0 map, bit1 cache, bit2 stats
  uint32_t rows_per_block;
};

class EquivalenceSweep
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EquivalenceSweep, NoDbMatchesLoadFirstOnRandomWorkloads) {
  const EquivalenceCase param = GetParam();
  auto dir = TempDir::Create("nodb-equiv");
  ASSERT_TRUE(dir.ok());

  SyntheticSpec spec;
  spec.num_tuples = 600;
  spec.num_attributes = 8;
  spec.ints_per_cycle = 1;
  spec.doubles_per_cycle = 1;
  spec.strings_per_cycle = 1;
  spec.dates_per_cycle = 1;
  spec.attribute_width = 7;
  spec.null_fraction = 0.05;
  spec.seed = 1234 + param.knob_mask;
  std::string path = dir->FilePath("t.csv");
  ASSERT_TRUE(GenerateSyntheticCsv(path, spec, CsvDialect()).ok());

  Catalog catalog;
  auto schema = spec.MakeSchema();
  ASSERT_TRUE(
      catalog.RegisterTable({"t", path, schema, CsvDialect()}).ok());

  NoDbConfig config;
  config.enable_positional_map = param.knob_mask & 1;
  config.enable_cache = param.knob_mask & 2;
  config.enable_statistics = param.knob_mask & 4;
  config.rows_per_block = param.rows_per_block;
  // A deliberately tiny map budget on some configs exercises eviction
  // during the workload.
  if (param.knob_mask == 7) config.positional_map_budget = 8 * 1024;

  NoDbEngine nodb(catalog, config);
  LoadFirstEngine reference(catalog, LoadProfile::kPostgres);
  ASSERT_TRUE(reference.Initialize().ok());

  QueryGenerator generator(*schema, 99 + param.knob_mask);
  for (int q = 0; q < 25; ++q) {
    std::string sql = generator.Next();
    SCOPED_TRACE("query " + std::to_string(q) + ": " + sql);
    auto expected = reference.Execute(sql);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    // Run twice: cold structures, then warm (the warm path must not
    // change results).
    auto first = nodb.Execute(sql);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_EQ(first->result.CanonicalRows(),
              expected->result.CanonicalRows());
    auto second = nodb.Execute(sql);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(second->result.CanonicalRows(),
              expected->result.CanonicalRows());
  }
}

INSTANTIATE_TEST_SUITE_P(
    KnobAndBlockSweep, EquivalenceSweep,
    ::testing::Values(EquivalenceCase{0, 128}, EquivalenceCase{1, 128},
                      EquivalenceCase{2, 128}, EquivalenceCase{3, 64},
                      EquivalenceCase{4, 128}, EquivalenceCase{5, 256},
                      EquivalenceCase{6, 32}, EquivalenceCase{7, 128},
                      EquivalenceCase{7, 16}, EquivalenceCase{7, 1024}));

/// The parallel chunked first-touch scan (NoDbConfig::num_threads) must
/// be invisible in query results: for any thread count, cold and warm
/// answers equal both the serial NoDB engine's and the load-first
/// reference's.
class ParallelEquivalence : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParallelEquivalence, ThreadedEngineMatchesSerialAndReference) {
  const uint32_t threads = GetParam();
  auto dir = TempDir::Create("nodb-equiv-par");
  ASSERT_TRUE(dir.ok());

  SyntheticSpec spec;
  spec.num_tuples = 600;
  spec.num_attributes = 8;
  spec.ints_per_cycle = 1;
  spec.doubles_per_cycle = 1;
  spec.strings_per_cycle = 1;
  spec.dates_per_cycle = 1;
  spec.attribute_width = 7;
  spec.null_fraction = 0.05;
  spec.seed = 4321;
  std::string path = dir->FilePath("t.csv");
  ASSERT_TRUE(GenerateSyntheticCsv(path, spec, CsvDialect()).ok());

  Catalog catalog;
  auto schema = spec.MakeSchema();
  ASSERT_TRUE(
      catalog.RegisterTable({"t", path, schema, CsvDialect()}).ok());

  NoDbConfig config;
  config.rows_per_block = 64;
  NoDbEngine serial(catalog, config);
  config.num_threads = threads;
  NoDbEngine parallel(catalog, config);
  LoadFirstEngine reference(catalog, LoadProfile::kPostgres);
  ASSERT_TRUE(reference.Initialize().ok());

  QueryGenerator generator(*schema, 2024);
  for (int q = 0; q < 20; ++q) {
    std::string sql = generator.Next();
    SCOPED_TRACE("threads " + std::to_string(threads) + " query " +
                 std::to_string(q) + ": " + sql);
    auto expected = reference.Execute(sql);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto serial_out = serial.Execute(sql);
    ASSERT_TRUE(serial_out.ok()) << serial_out.status().ToString();
    auto parallel_out = parallel.Execute(sql);
    ASSERT_TRUE(parallel_out.ok()) << parallel_out.status().ToString();
    EXPECT_EQ(parallel_out->result.CanonicalRows(),
              expected->result.CanonicalRows());
    EXPECT_EQ(parallel_out->result.CanonicalRows(),
              serial_out->result.CanonicalRows());
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelEquivalence,
                         ::testing::Values(1u, 2u, 8u));

TEST(ParallelEquivalenceCrlf, CrlfFileMatchesReferenceAtEveryThreadCount) {
  auto dir = TempDir::Create("nodb-equiv-crlf");
  ASSERT_TRUE(dir.ok());
  std::string content;
  for (int i = 0; i < 250; ++i) {
    content += std::to_string(i) + ",v" + std::to_string(i % 7) + "," +
               std::to_string(i) + ".5\r\n";
  }
  std::string path = dir->FilePath("crlf.csv");
  ASSERT_TRUE(WriteStringToFile(path, content).ok());

  Catalog catalog;
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"grp", DataType::kString},
                              {"x", DataType::kDouble}});
  ASSERT_TRUE(
      catalog.RegisterTable({"t", path, schema, CsvDialect()}).ok());
  LoadFirstEngine reference(catalog, LoadProfile::kPostgres);
  ASSERT_TRUE(reference.Initialize().ok());

  const char* queries[] = {
      "SELECT grp, COUNT(*) AS n, SUM(x) AS s FROM t GROUP BY grp "
      "ORDER BY grp",
      "SELECT id, grp FROM t WHERE x > 100 ORDER BY id LIMIT 20",
      "SELECT COUNT(*) AS n FROM t",
  };
  for (uint32_t threads : {1u, 2u, 8u}) {
    NoDbConfig config;
    config.rows_per_block = 64;
    config.num_threads = threads;
    NoDbEngine nodb(catalog, config);
    for (const char* sql : queries) {
      SCOPED_TRACE(std::to_string(threads) + " threads: " + sql);
      auto expected = reference.Execute(sql);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      auto cold = nodb.Execute(sql);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();
      EXPECT_EQ(cold->result.CanonicalRows(),
                expected->result.CanonicalRows());
      auto warm = nodb.Execute(sql);
      ASSERT_TRUE(warm.ok());
      EXPECT_EQ(warm->result.CanonicalRows(),
                expected->result.CanonicalRows());
    }
  }
}

/// Quoted CSV must not take the parallel chunked first-touch path:
/// chunk boundaries are aligned on raw '\n' bytes, which RFC-4180
/// quoting allows *inside* a field, so a boundary could split a record
/// mid-quote. The engine falls back to the serial first-touch path
/// (and the direct parallel scan collapses to a single chunk).
TEST(QuotedCsvFallback, QuotedFieldsMatchReferenceAtEveryThreadCount) {
  auto dir = TempDir::Create("nodb-equiv-quoted");
  ASSERT_TRUE(dir.ok());
  std::string content;
  for (int i = 0; i < 300; ++i) {
    // Embedded delimiters and doubled quotes inside quoted fields.
    content += std::to_string(i) + ",\"v," + std::to_string(i % 7) +
               ",\"\"q\"\"\"," + std::to_string(i) + ".25\n";
  }
  std::string path = dir->FilePath("quoted.csv");
  ASSERT_TRUE(WriteStringToFile(path, content).ok());

  Catalog catalog;
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"txt", DataType::kString},
                              {"x", DataType::kDouble}});
  ASSERT_TRUE(
      catalog.RegisterTable({"t", path, schema, CsvDialect::QuotedCsv()})
          .ok());
  LoadFirstEngine reference(catalog, LoadProfile::kPostgres);
  ASSERT_TRUE(reference.Initialize().ok());

  const char* queries[] = {
      "SELECT txt, COUNT(*) AS n FROM t GROUP BY txt ORDER BY txt",
      "SELECT id, txt, x FROM t WHERE x > 100 ORDER BY id LIMIT 20",
      "SELECT COUNT(*) AS n FROM t",
  };
  for (uint32_t threads : {1u, 2u, 8u}) {
    NoDbConfig config;
    config.rows_per_block = 64;
    config.num_threads = threads;
    NoDbEngine nodb(catalog, config);
    for (const char* sql : queries) {
      SCOPED_TRACE(std::to_string(threads) + " threads: " + sql);
      auto expected = reference.Execute(sql);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      auto cold = nodb.Execute(sql);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();
      EXPECT_EQ(cold->result.CanonicalRows(),
                expected->result.CanonicalRows());
      auto warm = nodb.Execute(sql);
      ASSERT_TRUE(warm.ok());
      EXPECT_EQ(warm->result.CanonicalRows(),
                expected->result.CanonicalRows());
    }
    // The fallback really engaged: no parallel prewarm was claimed.
    const RawTableState* state = nodb.table_state("t");
    ASSERT_NE(state, nullptr);
    EXPECT_FALSE(state->parallel_prewarmed());
  }
}

TEST(QuotedCsvFallback, DirectParallelScanCollapsesToOneChunk) {
  auto dir = TempDir::Create("nodb-equiv-quoted-direct");
  ASSERT_TRUE(dir.ok());
  // Quoted fields containing raw newlines: exactly the bytes that
  // would corrupt rows if chunk boundaries split on them. The direct
  // parallel entry point must degrade to a single serial chunk, so
  // its structures match what the serial scan builds.
  std::string content;
  for (int i = 0; i < 200; ++i) {
    content += std::to_string(i) + ",\"a\nb" + std::to_string(i) + "\"\n";
  }
  std::string path = dir->FilePath("newlines.csv");
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  RawTableInfo info{"t", path,
                    Schema::Make({{"id", DataType::kString},
                                  {"txt", DataType::kString}}),
                    CsvDialect::QuotedCsv()};
  NoDbConfig config;
  config.rows_per_block = 64;
  RawTableState state(info, config);
  ASSERT_TRUE(state.Open().ok());

  auto stats = ParallelChunkedScan(&state, {0}, 8);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->byte_chunks, 1u);

  // Engine-level: the same file through the threaded engine config
  // equals the serial engine (both see raw-newline row semantics).
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(info).ok());
  NoDbConfig serial_config;
  serial_config.rows_per_block = 64;
  NoDbEngine serial(catalog, serial_config);
  NoDbConfig par_config = serial_config;
  par_config.num_threads = 8;
  NoDbEngine parallel(catalog, par_config);
  const char* sql = "SELECT COUNT(*) AS n FROM t";
  auto serial_out = serial.Execute(sql);
  ASSERT_TRUE(serial_out.ok()) << serial_out.status().ToString();
  auto parallel_out = parallel.Execute(sql);
  ASSERT_TRUE(parallel_out.ok()) << parallel_out.status().ToString();
  EXPECT_EQ(parallel_out->result.CanonicalRows(),
            serial_out->result.CanonicalRows());
  const RawTableState* par_state = parallel.table_state("t");
  ASSERT_NE(par_state, nullptr);
  EXPECT_FALSE(par_state->parallel_prewarmed());
}

/// The concurrent-serving property: N clients hammering one shared
/// TableState — mixed cold and warm, every knob on, small blocks so
/// many chunks/segments publish concurrently — must return exactly the
/// rows the serial engines return, for every query.
class ConcurrentEquivalence : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ConcurrentEquivalence, ClientsMatchSerialOnSharedState) {
  const uint32_t clients = GetParam();
  auto dir = TempDir::Create("nodb-equiv-conc");
  ASSERT_TRUE(dir.ok());

  SyntheticSpec spec;
  spec.num_tuples = 700;
  spec.num_attributes = 8;
  spec.ints_per_cycle = 1;
  spec.doubles_per_cycle = 1;
  spec.strings_per_cycle = 1;
  spec.dates_per_cycle = 1;
  spec.attribute_width = 7;
  spec.null_fraction = 0.05;
  spec.seed = 777;
  std::string path = dir->FilePath("t.csv");
  ASSERT_TRUE(GenerateSyntheticCsv(path, spec, CsvDialect()).ok());

  Catalog catalog;
  auto schema = spec.MakeSchema();
  ASSERT_TRUE(
      catalog.RegisterTable({"t", path, schema, CsvDialect()}).ok());

  NoDbConfig config;
  config.rows_per_block = 32;  // many blocks -> many concurrent commits
  // A small map budget keeps eviction racing against publication.
  config.positional_map_budget = 32 * 1024;

  LoadFirstEngine reference(catalog, LoadProfile::kPostgres);
  ASSERT_TRUE(reference.Initialize().ok());
  NoDbEngine serial(catalog, config);

  // Each query appears twice in the batch, so one shared state serves
  // cold and warm instances of the same query at the same time.
  QueryGenerator generator(*schema, 31337);
  std::vector<std::string> batch;
  std::vector<std::string> unique;
  for (int q = 0; q < 12; ++q) unique.push_back(generator.Next());
  for (int q = 0; q < 12; ++q) {
    batch.push_back(unique[q]);
    batch.push_back(unique[(q + 5) % 12]);
  }

  std::vector<std::vector<std::string>> expected;
  expected.reserve(batch.size());
  for (const std::string& sql : batch) {
    auto ref = reference.Execute(sql);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    auto ser = serial.Execute(sql);
    ASSERT_TRUE(ser.ok()) << ser.status().ToString();
    ASSERT_EQ(ser->result.CanonicalRows(), ref->result.CanonicalRows())
        << sql;
    expected.push_back(ref->result.CanonicalRows());
  }

  NoDbEngine concurrent(catalog, config);
  for (int round = 0; round < 2; ++round) {  // cold batch, then warm
    SCOPED_TRACE("round " + std::to_string(round) + ", " +
                 std::to_string(clients) + " clients");
    ConcurrentBatchOutcome outcome =
        concurrent.ExecuteConcurrent(batch, clients);
    ASSERT_EQ(outcome.reports.size(), batch.size());
    EXPECT_EQ(outcome.failures(), 0u);
    for (size_t i = 0; i < outcome.reports.size(); ++i) {
      const ConcurrentQueryReport& report = outcome.reports[i];
      SCOPED_TRACE("query " + std::to_string(i) + ": " + batch[i]);
      ASSERT_TRUE(report.status.ok()) << report.status.ToString();
      EXPECT_EQ(report.result.CanonicalRows(), expected[i]);
    }
  }

  // The shared state really was exercised by the batch.
  const RawTableState* state = concurrent.table_state("t");
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->map().rows_complete());
  EXPECT_EQ(state->map().known_rows(), spec.num_tuples);
}

INSTANTIATE_TEST_SUITE_P(ClientCounts, ConcurrentEquivalence,
                         ::testing::Values(2u, 8u));

TEST(ConcurrentEquivalence, RawExecutePathIsThreadSafeWithoutSessions) {
  // Plain Engine::Execute from bare threads (no ExecuteConcurrent, no
  // pool): the documented contract is the method itself.
  auto dir = TempDir::Create("nodb-equiv-bare");
  ASSERT_TRUE(dir.ok());
  std::string content;
  for (int i = 0; i < 500; ++i) {
    content += std::to_string(i) + "," + std::to_string(i % 13) + "," +
               std::to_string(i * 3) + "\n";
  }
  std::string path = dir->FilePath("t.csv");
  ASSERT_TRUE(WriteStringToFile(path, content).ok());

  Catalog catalog;
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"grp", DataType::kInt64},
                              {"x", DataType::kInt64}});
  ASSERT_TRUE(
      catalog.RegisterTable({"t", path, schema, CsvDialect()}).ok());

  NoDbConfig config;
  config.rows_per_block = 64;
  NoDbEngine nodb(catalog, config);
  LoadFirstEngine reference(catalog, LoadProfile::kPostgres);
  ASSERT_TRUE(reference.Initialize().ok());

  const std::vector<std::string> queries = {
      "SELECT grp, COUNT(*) AS n, SUM(x) AS s FROM t GROUP BY grp "
      "ORDER BY grp",
      "SELECT id, x FROM t WHERE x > 600 ORDER BY id LIMIT 25",
      "SELECT COUNT(*) AS n FROM t WHERE grp = 7",
      "SELECT MIN(x) AS lo, MAX(x) AS hi FROM t",
  };
  std::vector<std::vector<std::string>> expected;
  for (const auto& sql : queries) {
    auto ref = reference.Execute(sql);
    ASSERT_TRUE(ref.ok());
    expected.push_back(ref->result.CanonicalRows());
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 6; ++round) {
        size_t q = static_cast<size_t>(t + round) % queries.size();
        auto got = nodb.Execute(queries[q]);
        if (!got.ok() ||
            got->result.CanonicalRows() != expected[q]) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

/// Pushdown + zone maps under concurrency: 8 clients hammering one
/// shared state with selective predicates over a *clustered* attribute
/// must return byte-identical rows to the serial engines, and the
/// per-query ScanMetrics must stay consistent — every row of every
/// full scan is either examined or zone-skipped, never lost.
class PushdownConcurrentStress : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(PushdownConcurrentStress, SkippedBlockCountersStayConsistent) {
  const uint32_t clients = GetParam();
  auto dir = TempDir::Create("nodb-pushdown-stress");
  ASSERT_TRUE(dir.ok());

  // id ascending (clustered), grp cyclic, x with NULL holes.
  constexpr int kRows = 4096;
  std::string content;
  for (int i = 0; i < kRows; ++i) {
    content += std::to_string(i) + "," + std::to_string(i % 17) + ",";
    if (i % 11 != 0) content += std::to_string(i * 3);
    content += "\n";
  }
  std::string path = dir->FilePath("t.csv");
  ASSERT_TRUE(WriteStringToFile(path, content).ok());

  Catalog catalog;
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"grp", DataType::kInt64},
                              {"x", DataType::kInt64}});
  ASSERT_TRUE(
      catalog.RegisterTable({"t", path, schema, CsvDialect()}).ok());

  NoDbConfig config;
  config.rows_per_block = 128;  // 32 blocks
  LoadFirstEngine reference(catalog, LoadProfile::kPostgres);
  ASSERT_TRUE(reference.Initialize().ok());
  NoDbEngine serial(catalog, config);

  // Full-scan aggregates (no LIMIT): rows_scanned + zone_skipped_rows
  // must cover the whole table on every execution.
  std::vector<std::string> batch;
  for (int k = 1; k <= 6; ++k) {
    batch.push_back("SELECT COUNT(*) AS n, SUM(x) AS s FROM t WHERE id < " +
                    std::to_string(k * 300));
    batch.push_back("SELECT COUNT(*) AS n FROM t WHERE id >= " +
                    std::to_string(4096 - k * 250) + " AND grp = 3");
  }
  batch.push_back("SELECT COUNT(*) AS n FROM t WHERE x IS NULL");
  batch.push_back("SELECT COUNT(*) AS n, MIN(id) AS lo FROM t");

  std::vector<std::vector<std::string>> expected;
  for (const auto& sql : batch) {
    auto ref = reference.Execute(sql);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    auto ser = serial.Execute(sql);
    ASSERT_TRUE(ser.ok()) << ser.status().ToString();
    ASSERT_EQ(ser->result.CanonicalRows(), ref->result.CanonicalRows())
        << sql;
    expected.push_back(ref->result.CanonicalRows());
  }

  NoDbEngine concurrent(catalog, config);
  uint64_t total_skipped = 0;
  for (int round = 0; round < 3; ++round) {  // cold, warm, store-warm
    SCOPED_TRACE("round " + std::to_string(round));
    ConcurrentBatchOutcome outcome =
        concurrent.ExecuteConcurrent(batch, clients);
    ASSERT_EQ(outcome.reports.size(), batch.size());
    EXPECT_EQ(outcome.failures(), 0u);
    for (size_t i = 0; i < outcome.reports.size(); ++i) {
      const ConcurrentQueryReport& report = outcome.reports[i];
      SCOPED_TRACE("query " + std::to_string(i) + ": " + batch[i]);
      ASSERT_TRUE(report.status.ok()) << report.status.ToString();
      EXPECT_EQ(report.result.CanonicalRows(), expected[i]);
      const ScanMetrics& scan = report.metrics.scan;
      // Full scans: every row examined or provably skipped.
      EXPECT_EQ(scan.rows_scanned + scan.zone_skipped_rows,
                static_cast<uint64_t>(kRows));
      // A skipped block accounts for at least one and at most one
      // block's worth of rows.
      EXPECT_LE(scan.zone_skipped_rows,
                scan.zone_skipped_blocks * config.rows_per_block);
      EXPECT_GE(scan.zone_skipped_rows, scan.zone_skipped_blocks);
      total_skipped += scan.zone_skipped_blocks;
    }
    concurrent.WaitForPromotions();
  }
  // Once the first round summarized the blocks, the clustered-id
  // predicates really pruned.
  EXPECT_GT(total_skipped, 0u);
}

INSTANTIATE_TEST_SUITE_P(ClientCounts, PushdownConcurrentStress,
                         ::testing::Values(2u, 8u));

TEST(EquivalenceJoinTest, JoinsMatchAcrossEngines) {
  auto dir = TempDir::Create("nodb-equiv-join");
  ASSERT_TRUE(dir.ok());

  // Two tables with a shared key domain.
  std::string left_path = dir->FilePath("l.csv");
  std::string right_path = dir->FilePath("r.csv");
  std::string l, r;
  Random rng(5);
  for (int i = 0; i < 300; ++i) {
    l += std::to_string(rng.Uniform(60)) + "," + std::to_string(i) + "\n";
  }
  for (int i = 0; i < 80; ++i) {
    r += std::to_string(rng.Uniform(60)) + ",grp" +
         std::to_string(i % 5) + "\n";
  }
  ASSERT_TRUE(WriteStringToFile(left_path, l).ok());
  ASSERT_TRUE(WriteStringToFile(right_path, r).ok());

  Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterTable({"l", left_path,
                                  Schema::Make({{"k", DataType::kInt64},
                                                {"v", DataType::kInt64}}),
                                  CsvDialect()})
                  .ok());
  ASSERT_TRUE(catalog
                  .RegisterTable({"r", right_path,
                                  Schema::Make({{"k", DataType::kInt64},
                                                {"g", DataType::kString}}),
                                  CsvDialect()})
                  .ok());

  NoDbConfig config;
  config.rows_per_block = 64;
  NoDbEngine nodb(catalog, config);
  LoadFirstEngine reference(catalog, LoadProfile::kPostgres);

  const char* queries[] = {
      "SELECT a.v, b.g FROM l a JOIN r b ON a.k = b.k",
      "SELECT b.g, COUNT(*) AS n, SUM(a.v) AS s FROM l a JOIN r b "
      "ON a.k = b.k GROUP BY b.g ORDER BY b.g",
      "SELECT COUNT(*) AS n FROM l a JOIN r b ON a.k = b.k "
      "WHERE a.v > 100",
  };
  for (const char* sql : queries) {
    SCOPED_TRACE(sql);
    auto expected = reference.Execute(sql);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto cold = nodb.Execute(sql);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_EQ(cold->result.CanonicalRows(),
              expected->result.CanonicalRows());
    auto warm = nodb.Execute(sql);
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm->result.CanonicalRows(),
              expected->result.CanonicalRows());
  }
}

}  // namespace
}  // namespace nodb
