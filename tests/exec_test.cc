// Tests for the execution engine: expression evaluation (including SQL
// three-valued logic) and the volcano operators over a column store.

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/column_store.h"
#include "exec/distinct.h"
#include "exec/expr.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/limit.h"
#include "exec/project.h"
#include "exec/query_result.h"
#include "exec/sort.h"

namespace nodb {
namespace {

ExprPtr Col(size_t i, const std::string& name, DataType t) {
  return std::make_shared<ColumnRefExpr>(i, name, t);
}
ExprPtr Lit(int64_t v) {
  return std::make_shared<LiteralExpr>(Value::Int64(v), DataType::kInt64);
}
ExprPtr LitS(const std::string& s) {
  return std::make_shared<LiteralExpr>(Value::String(s), DataType::kString);
}
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(op, std::move(l), std::move(r));
}

/// A small table: id INT, name STRING, score DOUBLE (with NULLs).
std::shared_ptr<ColumnStoreTable> MakeTable() {
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"name", DataType::kString},
                              {"score", DataType::kDouble}});
  auto table = std::make_shared<ColumnStoreTable>(schema);
  struct RowSpec {
    int64_t id;
    const char* name;
    double score;
    bool null_score;
  };
  RowSpec rows[] = {
      {1, "ada", 3.5, false},  {2, "bob", 1.0, false},
      {3, "cat", 0.0, true},   {4, "dan", 2.0, false},
      {5, "eve", 4.5, false},  {6, "fox", 0.0, true},
  };
  for (const auto& r : rows) {
    table->column(0).AppendInt64(r.id);
    table->column(1).AppendString(r.name);
    if (r.null_score) {
      table->column(2).AppendNull();
    } else {
      table->column(2).AppendDouble(r.score);
    }
  }
  table->SetNumRows(6);
  return table;
}

RecordBatch MakeBatch(const std::shared_ptr<ColumnStoreTable>& table) {
  std::vector<std::shared_ptr<ColumnVector>> cols;
  for (size_t c = 0; c < table->schema()->num_fields(); ++c) {
    cols.push_back(table->column_ptr(c));
  }
  return RecordBatch(table->schema(), cols, table->num_rows());
}

// ------------------------------------------------------------- expressions

TEST(ExprTest, ColumnRefAndLiteral) {
  auto table = MakeTable();
  RecordBatch batch = MakeBatch(table);
  auto col = Col(0, "id", DataType::kInt64);
  auto vals = col->Evaluate(batch);
  ASSERT_TRUE(vals.ok());
  EXPECT_EQ((*vals)->GetInt64(4), 5);
  auto lit = Lit(7)->Evaluate(batch);
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ((*lit)->size(), 6u);
  EXPECT_EQ((*lit)->GetInt64(0), 7);
}

TEST(ExprTest, ComparisonsWithNullPropagation) {
  auto table = MakeTable();
  RecordBatch batch = MakeBatch(table);
  // score > 1.5 : NULL rows yield NULL, not false.
  auto pred = Cmp(CompareOp::kGt, Col(2, "score", DataType::kDouble),
                  std::make_shared<LiteralExpr>(Value::Double(1.5),
                                                DataType::kDouble));
  auto mask = pred->Evaluate(batch);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ((*mask)->GetInt64(0), 1);   // 3.5
  EXPECT_EQ((*mask)->GetInt64(1), 0);   // 1.0
  EXPECT_TRUE((*mask)->IsNull(2));      // NULL score
  EXPECT_EQ((*mask)->GetInt64(4), 1);   // 4.5
}

TEST(ExprTest, StringComparison) {
  auto table = MakeTable();
  RecordBatch batch = MakeBatch(table);
  auto pred = Cmp(CompareOp::kGe, Col(1, "name", DataType::kString),
                  LitS("dan"));
  auto mask = pred->Evaluate(batch);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ((*mask)->GetInt64(0), 0);  // ada
  EXPECT_EQ((*mask)->GetInt64(3), 1);  // dan
  EXPECT_EQ((*mask)->GetInt64(5), 1);  // fox
}

TEST(ExprTest, TypeMismatchIsCaughtByOutputType) {
  auto schema = Schema::Make({{"id", DataType::kInt64},
                              {"name", DataType::kString}});
  auto bad = Cmp(CompareOp::kEq, Col(0, "id", DataType::kInt64),
                 LitS("x"));
  EXPECT_FALSE(bad->OutputType(*schema).ok());
  auto arith = std::make_shared<ArithExpr>(
      ArithOp::kAdd, Col(1, "name", DataType::kString), Lit(1));
  EXPECT_FALSE(arith->OutputType(*schema).ok());
}

TEST(ExprTest, ThreeValuedLogicTables) {
  // Build one-row batches for each (l, r) combination and check AND/OR.
  auto schema = Schema::Make({{"l", DataType::kInt64},
                              {"r", DataType::kInt64}});
  // -1 encodes NULL below.
  int cases[][2] = {{1, 1}, {1, 0}, {0, 1}, {0, 0}, {1, -1}, {-1, 1},
                    {0, -1}, {-1, 0}, {-1, -1}};
  // Expected: AND, OR with -1 = NULL.
  int expected_and[] = {1, 0, 0, 0, -1, -1, 0, 0, -1};
  int expected_or[] = {1, 1, 1, 0, 1, 1, -1, -1, -1};
  for (size_t i = 0; i < 9; ++i) {
    RecordBatch batch(schema);
    std::vector<Value> row;
    row.push_back(cases[i][0] < 0 ? Value::Null()
                                  : Value::Int64(cases[i][0]));
    row.push_back(cases[i][1] < 0 ? Value::Null()
                                  : Value::Int64(cases[i][1]));
    batch.AppendRow(row);
    auto l = Col(0, "l", DataType::kInt64);
    auto r = Col(1, "r", DataType::kInt64);
    auto and_mask = LogicalExpr(LogicalOp::kAnd, l, r).Evaluate(batch);
    auto or_mask = LogicalExpr(LogicalOp::kOr, l, r).Evaluate(batch);
    ASSERT_TRUE(and_mask.ok());
    ASSERT_TRUE(or_mask.ok());
    if (expected_and[i] < 0) {
      EXPECT_TRUE((*and_mask)->IsNull(0)) << "case " << i;
    } else {
      EXPECT_EQ((*and_mask)->GetInt64(0), expected_and[i]) << "case " << i;
    }
    if (expected_or[i] < 0) {
      EXPECT_TRUE((*or_mask)->IsNull(0)) << "case " << i;
    } else {
      EXPECT_EQ((*or_mask)->GetInt64(0), expected_or[i]) << "case " << i;
    }
  }
}

TEST(ExprTest, ArithmeticTypesAndDivision) {
  auto table = MakeTable();
  RecordBatch batch = MakeBatch(table);
  auto schema = table->schema();
  auto sum = std::make_shared<ArithExpr>(
      ArithOp::kAdd, Col(0, "id", DataType::kInt64), Lit(10));
  EXPECT_EQ(*sum->OutputType(*schema), DataType::kInt64);
  auto vals = sum->Evaluate(batch);
  EXPECT_EQ((*vals)->GetInt64(0), 11);

  auto div = std::make_shared<ArithExpr>(
      ArithOp::kDiv, Col(0, "id", DataType::kInt64), Lit(2));
  EXPECT_EQ(*div->OutputType(*schema), DataType::kDouble);
  auto dvals = div->Evaluate(batch);
  EXPECT_DOUBLE_EQ((*dvals)->GetDouble(0), 0.5);

  // Division by zero yields NULL.
  auto div0 = std::make_shared<ArithExpr>(
      ArithOp::kDiv, Col(0, "id", DataType::kInt64), Lit(0));
  auto zvals = div0->Evaluate(batch);
  EXPECT_TRUE((*zvals)->IsNull(0));
}

TEST(ExprTest, IsNullAndNegation) {
  auto table = MakeTable();
  RecordBatch batch = MakeBatch(table);
  auto isnull =
      IsNullExpr(Col(2, "score", DataType::kDouble), false).Evaluate(batch);
  EXPECT_EQ((*isnull)->GetInt64(0), 0);
  EXPECT_EQ((*isnull)->GetInt64(2), 1);
  auto notnull =
      IsNullExpr(Col(2, "score", DataType::kDouble), true).Evaluate(batch);
  EXPECT_EQ((*notnull)->GetInt64(2), 0);
}

TEST(ExprTest, LikeMatcher) {
  EXPECT_TRUE(LikeExpr::Match("hello", "hello"));
  EXPECT_TRUE(LikeExpr::Match("hello", "h%"));
  EXPECT_TRUE(LikeExpr::Match("hello", "%llo"));
  EXPECT_TRUE(LikeExpr::Match("hello", "%ell%"));
  EXPECT_TRUE(LikeExpr::Match("hello", "h_llo"));
  EXPECT_TRUE(LikeExpr::Match("", "%"));
  EXPECT_FALSE(LikeExpr::Match("hello", "h_llx"));
  EXPECT_FALSE(LikeExpr::Match("hello", "hell"));
  EXPECT_FALSE(LikeExpr::Match("", "_"));
  EXPECT_TRUE(LikeExpr::Match("abcbc", "a%bc"));  // backtracking
}

// --------------------------------------------------------------- operators

TEST(OperatorTest, ColumnStoreScanProjectsAndBatches) {
  auto table = MakeTable();
  ColumnStoreScan scan(table, {2, 0});
  ASSERT_TRUE(scan.Open().ok());
  auto batch = scan.Next();
  ASSERT_TRUE(batch.ok());
  ASSERT_NE(*batch, nullptr);
  EXPECT_EQ((*batch)->num_columns(), 2u);
  EXPECT_EQ((*batch)->schema()->field(0).name, "score");
  EXPECT_EQ((*batch)->column(1).GetInt64(0), 1);
  auto eof = scan.Next();
  EXPECT_EQ(*eof, nullptr);
}

TEST(OperatorTest, EmptyProjectionCarriesRowCount) {
  auto table = MakeTable();
  ColumnStoreScan scan(table, {});
  ASSERT_TRUE(scan.Open().ok());
  auto batch = scan.Next();
  ASSERT_TRUE(batch.ok());
  ASSERT_NE(*batch, nullptr);
  EXPECT_EQ((*batch)->num_columns(), 0u);
  EXPECT_EQ((*batch)->num_rows(), 6u);
}

TEST(OperatorTest, FilterDropsNullAndFalse) {
  auto table = MakeTable();
  auto scan = std::make_unique<ColumnStoreScan>(
      table, ColumnStoreScan::AllColumns(*table));
  auto pred = Cmp(CompareOp::kGt, Col(2, "score", DataType::kDouble),
                  std::make_shared<LiteralExpr>(Value::Double(1.5),
                                                DataType::kDouble));
  FilterOperator filter(std::move(scan), pred);
  auto result = QueryResult::Drain(&filter);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3u);  // 3.5, 2.0, 4.5; NULLs dropped
}

TEST(OperatorTest, ProjectComputesExpressions) {
  auto table = MakeTable();
  auto scan = std::make_unique<ColumnStoreScan>(
      table, ColumnStoreScan::AllColumns(*table));
  auto doubled = std::make_shared<ArithExpr>(
      ArithOp::kMul, Col(0, "id", DataType::kInt64), Lit(2));
  auto proj = ProjectOperator::Create(std::move(scan), {doubled}, {"d"});
  ASSERT_TRUE(proj.ok());
  auto result = QueryResult::Drain(proj->get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Row(2)[0], Value::Int64(6));
}

TEST(OperatorTest, HashAggregateGlobal) {
  auto table = MakeTable();
  auto scan = std::make_unique<ColumnStoreScan>(
      table, ColumnStoreScan::AllColumns(*table));
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFunc::kCountStar, nullptr, "n"});
  aggs.push_back({AggFunc::kCount, Col(2, "score", DataType::kDouble),
                  "n_score"});
  aggs.push_back({AggFunc::kSum, Col(0, "id", DataType::kInt64), "s"});
  aggs.push_back({AggFunc::kAvg, Col(2, "score", DataType::kDouble), "a"});
  aggs.push_back({AggFunc::kMin, Col(1, "name", DataType::kString), "mn"});
  aggs.push_back({AggFunc::kMax, Col(2, "score", DataType::kDouble), "mx"});
  auto agg = HashAggregateOperator::Create(std::move(scan), {}, {},
                                           std::move(aggs));
  ASSERT_TRUE(agg.ok());
  auto result = QueryResult::Drain(agg->get());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  auto row = result->Row(0);
  EXPECT_EQ(row[0], Value::Int64(6));
  EXPECT_EQ(row[1], Value::Int64(4));  // two NULL scores skipped
  EXPECT_EQ(row[2], Value::Int64(21));
  EXPECT_DOUBLE_EQ(row[3].dbl(), (3.5 + 1.0 + 2.0 + 4.5) / 4);
  EXPECT_EQ(row[4], Value::String("ada"));
  EXPECT_DOUBLE_EQ(row[5].dbl(), 4.5);
}

TEST(OperatorTest, HashAggregateEmptyInputEmitsOneRow) {
  auto schema = Schema::Make({{"x", DataType::kInt64}});
  auto table = std::make_shared<ColumnStoreTable>(schema);
  auto scan = std::make_unique<ColumnStoreScan>(table,
                                                std::vector<size_t>{0});
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFunc::kCountStar, nullptr, "n"});
  aggs.push_back({AggFunc::kSum, Col(0, "x", DataType::kInt64), "s"});
  auto agg = HashAggregateOperator::Create(std::move(scan), {}, {},
                                           std::move(aggs));
  ASSERT_TRUE(agg.ok());
  auto result = QueryResult::Drain(agg->get());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->Row(0)[0], Value::Int64(0));
  EXPECT_TRUE(result->Row(0)[1].is_null());  // SUM of nothing is NULL
}

TEST(OperatorTest, HashAggregateGroupsWithNullKeys) {
  auto table = MakeTable();
  // Group by score IS NULL (boolean) to get two groups.
  auto scan = std::make_unique<ColumnStoreScan>(
      table, ColumnStoreScan::AllColumns(*table));
  std::vector<ExprPtr> keys = {std::make_shared<IsNullExpr>(
      Col(2, "score", DataType::kDouble), false)};
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggFunc::kCountStar, nullptr, "n"});
  auto agg = HashAggregateOperator::Create(std::move(scan), keys,
                                           {"isnull"}, std::move(aggs));
  ASSERT_TRUE(agg.ok());
  auto result = QueryResult::Drain(agg->get());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  auto rows = result->CanonicalRows();
  EXPECT_EQ(rows[0], "0|4");
  EXPECT_EQ(rows[1], "1|2");
}

TEST(OperatorTest, SortOrdersWithNullsFirstAscending) {
  auto table = MakeTable();
  auto scan = std::make_unique<ColumnStoreScan>(
      table, ColumnStoreScan::AllColumns(*table));
  std::vector<SortKey> keys;
  keys.push_back({Col(2, "score", DataType::kDouble), true});
  SortOperator sort(std::move(scan), std::move(keys));
  auto result = QueryResult::Drain(&sort);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 6u);
  EXPECT_TRUE(result->Row(0)[2].is_null());
  EXPECT_TRUE(result->Row(1)[2].is_null());
  EXPECT_DOUBLE_EQ(result->Row(2)[2].dbl(), 1.0);
  EXPECT_DOUBLE_EQ(result->Row(5)[2].dbl(), 4.5);
}

TEST(OperatorTest, SortDescendingMultiKeyIsStable) {
  auto table = MakeTable();
  auto scan = std::make_unique<ColumnStoreScan>(
      table, ColumnStoreScan::AllColumns(*table));
  std::vector<SortKey> keys;
  keys.push_back({Col(2, "score", DataType::kDouble), false});
  SortOperator sort(std::move(scan), std::move(keys));
  auto result = QueryResult::Drain(&sort);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->Row(0)[2].dbl(), 4.5);
  // NULLs last on descending.
  EXPECT_TRUE(result->Row(5)[2].is_null());
}

TEST(OperatorTest, LimitAndOffset) {
  auto table = MakeTable();
  auto scan = std::make_unique<ColumnStoreScan>(
      table, ColumnStoreScan::AllColumns(*table));
  LimitOperator limit(std::move(scan), 2, 3);
  auto result = QueryResult::Drain(&limit);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->Row(0)[0], Value::Int64(4));
  EXPECT_EQ(result->Row(1)[0], Value::Int64(5));
}

TEST(OperatorTest, DistinctDropsDuplicatesAcrossBatches) {
  auto schema = Schema::Make({{"x", DataType::kInt64},
                              {"s", DataType::kString}});
  auto table = std::make_shared<ColumnStoreTable>(schema);
  // 3000 rows cycling through 7 distinct (x, s) pairs, spanning
  // multiple 1024-row batches so cross-batch dedup is exercised.
  for (int i = 0; i < 3000; ++i) {
    table->column(0).AppendInt64(i % 7);
    table->column(1).AppendString("s" + std::to_string(i % 7));
  }
  table->SetNumRows(3000);
  DistinctOperator distinct(std::make_unique<ColumnStoreScan>(
      table, ColumnStoreScan::AllColumns(*table)));
  auto result = QueryResult::Drain(&distinct);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 7u);
}

TEST(OperatorTest, DistinctTreatsNullAsAValue) {
  auto schema = Schema::Make({{"x", DataType::kInt64}});
  auto table = std::make_shared<ColumnStoreTable>(schema);
  table->column(0).AppendNull();
  table->column(0).AppendInt64(1);
  table->column(0).AppendNull();
  table->column(0).AppendInt64(1);
  table->SetNumRows(4);
  DistinctOperator distinct(std::make_unique<ColumnStoreScan>(
      table, std::vector<size_t>{0}));
  auto result = QueryResult::Drain(&distinct);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);  // NULL and 1
}

TEST(OperatorTest, DistinctDistinguishesNullFromZeroAndEmpty) {
  auto schema = Schema::Make({{"s", DataType::kString}});
  auto table = std::make_shared<ColumnStoreTable>(schema);
  table->column(0).AppendNull();
  table->column(0).AppendString("");
  table->column(0).AppendNull();
  table->column(0).AppendString("");
  table->SetNumRows(4);
  DistinctOperator distinct(std::make_unique<ColumnStoreScan>(
      table, std::vector<size_t>{0}));
  auto result = QueryResult::Drain(&distinct);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);  // NULL != empty string
}

TEST(OperatorTest, HashJoinInner) {
  // Left: (id, name); right: (uid, bonus). Join on id == uid.
  auto left_schema = Schema::Make({{"id", DataType::kInt64},
                                   {"name", DataType::kString}});
  auto left = std::make_shared<ColumnStoreTable>(left_schema);
  for (int64_t i = 1; i <= 4; ++i) {
    left->column(0).AppendInt64(i);
    left->column(1).AppendString("user" + std::to_string(i));
  }
  left->SetNumRows(4);

  auto right_schema = Schema::Make({{"uid", DataType::kInt64},
                                    {"bonus", DataType::kInt64}});
  auto right = std::make_shared<ColumnStoreTable>(right_schema);
  int64_t uids[] = {2, 2, 3, 9};
  for (size_t i = 0; i < 4; ++i) {
    right->column(0).AppendInt64(uids[i]);
    right->column(1).AppendInt64(static_cast<int64_t>(i * 10));
  }
  right->SetNumRows(4);

  auto probe = std::make_unique<ColumnStoreScan>(
      left, ColumnStoreScan::AllColumns(*left));
  auto build = std::make_unique<ColumnStoreScan>(
      right, ColumnStoreScan::AllColumns(*right));
  auto join = HashJoinOperator::Create(
      std::move(probe), std::move(build),
      {Col(0, "id", DataType::kInt64)}, {Col(0, "uid", DataType::kInt64)});
  ASSERT_TRUE(join.ok());
  auto result = QueryResult::Drain(join->get());
  ASSERT_TRUE(result.ok());
  // id=2 matches twice, id=3 once; ids 1,4 and uid 9 unmatched.
  EXPECT_EQ(result->num_rows(), 3u);
  auto rows = result->CanonicalRows();
  EXPECT_EQ(rows[0], "2|user2|2|0");
  EXPECT_EQ(rows[1], "2|user2|2|10");
  EXPECT_EQ(rows[2], "3|user3|3|20");
}

TEST(OperatorTest, HashJoinNullKeysNeverMatch) {
  auto schema = Schema::Make({{"k", DataType::kInt64}});
  auto left = std::make_shared<ColumnStoreTable>(schema);
  left->column(0).AppendNull();
  left->column(0).AppendInt64(1);
  left->SetNumRows(2);
  auto right = std::make_shared<ColumnStoreTable>(schema);
  right->column(0).AppendNull();
  right->column(0).AppendInt64(1);
  right->SetNumRows(2);
  auto join = HashJoinOperator::Create(
      std::make_unique<ColumnStoreScan>(left, std::vector<size_t>{0}),
      std::make_unique<ColumnStoreScan>(right, std::vector<size_t>{0}),
      {Col(0, "k", DataType::kInt64)}, {Col(0, "k", DataType::kInt64)});
  ASSERT_TRUE(join.ok());
  auto result = QueryResult::Drain(join->get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1u);  // only 1 == 1
}

TEST(OperatorTest, JoinKeyTypeMismatchRejected) {
  auto li = Schema::Make({{"k", DataType::kInt64}});
  auto ls = Schema::Make({{"k", DataType::kString}});
  auto left = std::make_shared<ColumnStoreTable>(li);
  auto right = std::make_shared<ColumnStoreTable>(ls);
  auto join = HashJoinOperator::Create(
      std::make_unique<ColumnStoreScan>(left, std::vector<size_t>{0}),
      std::make_unique<ColumnStoreScan>(right, std::vector<size_t>{0}),
      {Col(0, "k", DataType::kInt64)}, {Col(0, "k", DataType::kString)});
  EXPECT_FALSE(join.ok());
}

}  // namespace
}  // namespace nodb
