// Tests for RawTableState: the demo's "Updates" scenario — append
// detection with structure retention, rewrite invalidation, and file
// replacement.

#include <gtest/gtest.h>

#include "exec/query_result.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "raw/raw_scan.h"
#include "raw/table_state.h"
#include "util/random.h"

namespace nodb {
namespace {

class TableStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-state");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    path_ = dir_->FilePath("t.csv");
    schema_ = Schema::Make({{"a", DataType::kInt64},
                            {"b", DataType::kInt64}});
  }

  RawTableInfo Info() { return {"t", path_, schema_, CsvDialect()}; }

  static std::string Rows(int64_t from, int64_t to) {
    std::string out;
    for (int64_t r = from; r < to; ++r) {
      out += std::to_string(r) + "," + std::to_string(r * 2) + "\n";
    }
    return out;
  }

  NoDbConfig Config() {
    NoDbConfig config;
    config.rows_per_block = 16;
    return config;
  }

  Result<size_t> ScanCount(RawTableState* state) {
    RawScanOperator scan(state, {0, 1}, nullptr);
    NODB_ASSIGN_OR_RETURN(auto result, QueryResult::Drain(&scan));
    return result.num_rows();
  }

  std::unique_ptr<TempDir> dir_;
  std::string path_;
  std::shared_ptr<Schema> schema_;
};

TEST_F(TableStateTest, UnchangedFileKeepsEverything) {
  ASSERT_TRUE(WriteStringToFile(path_, Rows(0, 100)).ok());
  RawTableState state(Info(), Config());
  ASSERT_TRUE(state.Open().ok());
  EXPECT_EQ(*ScanCount(&state), 100u);
  size_t map_bytes = state.map().bytes_used();
  auto change = state.CheckForUpdates();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kUnchanged);
  EXPECT_EQ(state.map().bytes_used(), map_bytes);
  EXPECT_TRUE(state.map().rows_complete());
}

TEST_F(TableStateTest, AppendKeepsStructuresAndScansTail) {
  ASSERT_TRUE(WriteStringToFile(path_, Rows(0, 100)).ok());
  RawTableState state(Info(), Config());
  ASSERT_TRUE(state.Open().ok());
  EXPECT_EQ(*ScanCount(&state), 100u);
  uint64_t known_before = state.map().known_rows();
  size_t cache_segments = state.cache().num_segments();
  ASSERT_GT(cache_segments, 0u);

  auto app = OpenAppendableFile(path_);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE((*app)->Append(Rows(100, 150)).ok());
  ASSERT_TRUE((*app)->Close().ok());

  auto change = state.CheckForUpdates();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kAppended);
  // Old structures retained; discovery reopened for the tail.
  EXPECT_EQ(state.map().known_rows(), known_before);
  EXPECT_FALSE(state.map().rows_complete());
  EXPECT_GT(state.cache().num_segments(), 0u);

  ScanMetrics metrics;
  RawScanOperator scan(&state, {0, 1}, &metrics);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 150u);
  EXPECT_EQ(result->Row(149)[0], Value::Int64(149));
  // Cache still serves the old region: far fewer conversions than a
  // cold 150-row x 2-attr scan.
  EXPECT_LT(metrics.fields_converted, 2u * 150u);
  EXPECT_GT(metrics.cache_block_hits, 0u);
  EXPECT_TRUE(state.map().rows_complete());
  EXPECT_EQ(state.map().known_rows(), 150u);
}

TEST_F(TableStateTest, RewriteDropsEverything) {
  ASSERT_TRUE(WriteStringToFile(path_, Rows(0, 100)).ok());
  RawTableState state(Info(), Config());
  ASSERT_TRUE(state.Open().ok());
  EXPECT_EQ(*ScanCount(&state), 100u);

  ASSERT_TRUE(WriteStringToFile(path_, Rows(500, 520)).ok());
  auto change = state.CheckForUpdates();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kRewritten);
  EXPECT_EQ(state.map().known_rows(), 0u);
  EXPECT_EQ(state.cache().num_segments(), 0u);
  EXPECT_TRUE(state.stats().CoveredAttributes().empty());

  RawScanOperator scan(&state, {0}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 20u);
  EXPECT_EQ(result->Row(0)[0], Value::Int64(500));
}

TEST_F(TableStateTest, AppendWithoutTrailingNewlineIsRewrite) {
  // Old content not newline-terminated: the final old tuple may have
  // been extended, so appending must invalidate.
  ASSERT_TRUE(WriteStringToFile(path_, "1,2\n3,4").ok());
  RawTableState state(Info(), Config());
  ASSERT_TRUE(state.Open().ok());
  EXPECT_EQ(*ScanCount(&state), 2u);

  auto app = OpenAppendableFile(path_);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE((*app)->Append("5\n6,7\n").ok());  // old last row becomes 3,45
  ASSERT_TRUE((*app)->Close().ok());

  auto change = state.CheckForUpdates();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kRewritten);
  RawScanOperator scan(&state, {0, 1}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->Row(1)[1], Value::Int64(45));
}

TEST_F(TableStateTest, ReplaceFilePointsAtNewData) {
  ASSERT_TRUE(WriteStringToFile(path_, Rows(0, 10)).ok());
  RawTableState state(Info(), Config());
  ASSERT_TRUE(state.Open().ok());
  EXPECT_EQ(*ScanCount(&state), 10u);

  std::string other = dir_->FilePath("other.csv");
  ASSERT_TRUE(WriteStringToFile(other, Rows(0, 25)).ok());
  RawTableInfo info = Info();
  info.path = other;
  ASSERT_TRUE(state.ReplaceFile(info).ok());
  EXPECT_EQ(state.map().known_rows(), 0u);
  EXPECT_EQ(*ScanCount(&state), 25u);
}

TEST_F(TableStateTest, RandomAppendSequencesStayConsistent) {
  // Property: after any sequence of appends (interleaved with scans of
  // random projections), a scan of the adaptive state matches a fresh
  // ground-truth read of the current file.
  Random rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    std::string path = dir_->FilePath("seq" + std::to_string(trial) +
                                      ".csv");
    int64_t rows = 20 + static_cast<int64_t>(rng.Uniform(80));
    {
      auto content = Rows(0, rows);
      ASSERT_TRUE(WriteStringToFile(path, content).ok());
    }
    RawTableInfo info{"t", path, schema_, CsvDialect()};
    NoDbConfig config;
    config.rows_per_block = 8 + static_cast<uint32_t>(rng.Uniform(24));
    RawTableState state(info, config);
    ASSERT_TRUE(state.Open().ok());

    for (int step = 0; step < 6; ++step) {
      // Scan a random projection.
      std::vector<uint32_t> projection;
      if (rng.Bernoulli(0.7)) projection.push_back(0);
      if (rng.Bernoulli(0.7)) projection.push_back(1);
      RawScanOperator scan(&state, projection, nullptr);
      auto result = QueryResult::Drain(&scan);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result->num_rows(), static_cast<size_t>(rows))
          << "trial " << trial << " step " << step;
      if (!projection.empty() && result->num_rows() > 0) {
        size_t last = result->num_rows() - 1;
        int64_t expect = projection[0] == 0 ? rows - 1 : (rows - 1) * 2;
        EXPECT_EQ(result->Row(last)[0], Value::Int64(expect));
      }
      // Randomly append.
      if (rng.Bernoulli(0.7)) {
        int64_t extra = 1 + static_cast<int64_t>(rng.Uniform(50));
        auto app = OpenAppendableFile(path);
        ASSERT_TRUE(app.ok());
        ASSERT_TRUE((*app)->Append(Rows(rows, rows + extra)).ok());
        ASSERT_TRUE((*app)->Close().ok());
        rows += extra;
        auto change = state.CheckForUpdates();
        ASSERT_TRUE(change.ok());
        EXPECT_EQ(*change, FileChange::kAppended);
      }
    }
  }
}

TEST_F(TableStateTest, AccessCountsAccumulate) {
  ASSERT_TRUE(WriteStringToFile(path_, Rows(0, 5)).ok());
  RawTableState state(Info(), Config());
  ASSERT_TRUE(state.Open().ok());
  state.RecordAttributeAccess({0, 1});
  state.RecordAttributeAccess({1});
  EXPECT_EQ(state.attribute_access_counts()[0], 1u);
  EXPECT_EQ(state.attribute_access_counts()[1], 2u);
}

}  // namespace
}  // namespace nodb
