// Tests for the on-the-fly statistics: min/max/null tracking, KMV
// distinct estimation, sample-based selectivity and the planner bridge.

#include <gtest/gtest.h>

#include "raw/stats_collector.h"
#include "util/random.h"

namespace nodb {
namespace {

ColumnVector IntColumn(const std::vector<int64_t>& values,
                       const std::vector<bool>& nulls = {}) {
  ColumnVector col(DataType::kInt64);
  for (size_t i = 0; i < values.size(); ++i) {
    if (!nulls.empty() && nulls[i]) {
      col.AppendNull();
    } else {
      col.AppendInt64(values[i]);
    }
  }
  return col;
}

TEST(AttributeStatsTest, MinMaxNullCounts) {
  AttributeStats stats(DataType::kInt64);
  stats.Observe(IntColumn({5, -3, 10, 0}, {false, false, false, true}));
  EXPECT_EQ(stats.row_count(), 4u);
  EXPECT_EQ(stats.null_count(), 1u);
  EXPECT_DOUBLE_EQ(stats.null_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(*stats.numeric_min(), -3.0);
  EXPECT_DOUBLE_EQ(*stats.numeric_max(), 10.0);
}

TEST(AttributeStatsTest, DistinctEstimateExactWhenSmall) {
  AttributeStats stats(DataType::kInt64);
  stats.Observe(IntColumn({1, 2, 3, 1, 2, 3, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(stats.EstimateDistinct(), 3.0);
}

TEST(AttributeStatsTest, DistinctEstimateWithinBandWhenLarge) {
  AttributeStats stats(DataType::kInt64);
  Random rng(1);
  ColumnVector col(DataType::kInt64);
  const int64_t kTrueNdv = 20000;
  for (int i = 0; i < 100000; ++i) {
    col.AppendInt64(static_cast<int64_t>(rng.Uniform(kTrueNdv)));
  }
  stats.Observe(col);
  double est = stats.EstimateDistinct();
  // KMV with k=256 has ~1/sqrt(k) ≈ 6% relative error; allow 25%.
  EXPECT_GT(est, kTrueNdv * 0.75);
  EXPECT_LT(est, kTrueNdv * 1.25);
}

TEST(AttributeStatsTest, CompareSelectivityFromSample) {
  AttributeStats stats(DataType::kInt64);
  ColumnVector col(DataType::kInt64);
  for (int i = 0; i < 10000; ++i) col.AppendInt64(i % 100);
  stats.Observe(col);
  auto sel = stats.EstimateCompareSelectivity(CompareOp::kLt,
                                              Value::Int64(10));
  ASSERT_TRUE(sel.has_value());
  EXPECT_NEAR(*sel, 0.10, 0.06);
  auto eq = stats.EstimateCompareSelectivity(CompareOp::kEq,
                                             Value::Int64(5));
  ASSERT_TRUE(eq.has_value());
  EXPECT_LT(*eq, 0.1);
  auto none = stats.EstimateCompareSelectivity(CompareOp::kEq,
                                               Value::String("x"));
  EXPECT_FALSE(none.has_value());
}

TEST(AttributeStatsTest, EqualityMissFallsBackToNdv) {
  AttributeStats stats(DataType::kInt64);
  ColumnVector col(DataType::kInt64);
  for (int i = 0; i < 1000; ++i) col.AppendInt64(i);
  stats.Observe(col);
  // A value outside the sample: estimate ~1/NDV, not zero.
  auto sel = stats.EstimateCompareSelectivity(CompareOp::kEq,
                                              Value::Int64(-12345));
  ASSERT_TRUE(sel.has_value());
  EXPECT_GT(*sel, 0.0);
  EXPECT_LT(*sel, 0.01);
}

TEST(AttributeStatsTest, StringSelectivityAndLike) {
  AttributeStats stats(DataType::kString);
  ColumnVector col(DataType::kString);
  const char* words[] = {"apple", "banana", "cherry", "apricot"};
  for (int i = 0; i < 400; ++i) col.AppendString(words[i % 4]);
  stats.Observe(col);
  auto eq = stats.EstimateCompareSelectivity(CompareOp::kEq,
                                             Value::String("apple"));
  ASSERT_TRUE(eq.has_value());
  EXPECT_NEAR(*eq, 0.25, 0.1);
  auto like = stats.EstimateLikeSelectivity("ap%", false);
  ASSERT_TRUE(like.has_value());
  EXPECT_NEAR(*like, 0.5, 0.12);  // apple + apricot
}

TEST(AttributeStatsTest, SampleHistogramShapesUniform) {
  AttributeStats stats(DataType::kInt64);
  ColumnVector col(DataType::kInt64);
  Random rng(2);
  for (int i = 0; i < 5000; ++i) {
    col.AppendInt64(static_cast<int64_t>(rng.Uniform(1000)));
  }
  stats.Observe(col);
  auto hist = stats.SampleHistogram(10);
  ASSERT_EQ(hist.size(), 10u);
  uint64_t total = 0;
  for (uint64_t b : hist) total += b;
  EXPECT_EQ(total, AttributeStats::kReservoirSize);
  for (uint64_t b : hist) EXPECT_GT(b, 10u);  // roughly uniform
}

TEST(StatsCollectorTest, ObserveBlockDeduplicates) {
  auto schema = Schema::Make({{"a", DataType::kInt64},
                              {"b", DataType::kInt64}});
  StatsCollector collector(schema);
  auto col = IntColumn({1, 2, 3});
  collector.ObserveBlock(0, 0, col);
  collector.ObserveBlock(0, 0, col);  // second fold-in is ignored
  EXPECT_EQ(collector.GetStats(0)->row_count(), 3u);
  collector.ObserveBlock(0, 1, col);
  EXPECT_EQ(collector.GetStats(0)->row_count(), 6u);
  EXPECT_FALSE(collector.HasStats(1));
  EXPECT_EQ(collector.CoveredAttributes(), (std::vector<uint32_t>{0}));
  collector.Clear();
  EXPECT_FALSE(collector.HasStats(0));
}

TEST(StatsSelectivityEstimatorTest, BridgesBoundPredicates) {
  auto schema = Schema::Make({{"a", DataType::kInt64},
                              {"b", DataType::kInt64}});
  StatsCollector collector(schema);
  ColumnVector skewed(DataType::kInt64);
  for (int i = 0; i < 1000; ++i) skewed.AppendInt64(i < 990 ? 1 : 2);
  collector.ObserveBlock(0, 0, skewed);

  StatsSelectivityEstimator estimator;
  estimator.Register("t", &collector, schema);

  auto col_a = std::make_shared<ColumnRefExpr>(0, "a", DataType::kInt64);
  auto lit2 = std::make_shared<LiteralExpr>(Value::Int64(2),
                                            DataType::kInt64);
  CompareExpr rare(CompareOp::kEq, col_a, lit2);
  auto sel = estimator.EstimateSelectivity("t", rare);
  ASSERT_TRUE(sel.has_value());
  EXPECT_LT(*sel, 0.1);

  // Literal-on-the-left mirrors the operator.
  CompareExpr mirrored(CompareOp::kGt, lit2, col_a);  // 2 > a  ==  a < 2
  auto msel = estimator.EstimateSelectivity("t", mirrored);
  ASSERT_TRUE(msel.has_value());
  EXPECT_GT(*msel, 0.8);

  // Unknown table / unknown column -> no estimate.
  EXPECT_FALSE(estimator.EstimateSelectivity("nope", rare).has_value());
  auto col_b = std::make_shared<ColumnRefExpr>(1, "b", DataType::kInt64);
  CompareExpr unstat(CompareOp::kEq, col_b, lit2);
  EXPECT_FALSE(estimator.EstimateSelectivity("t", unstat).has_value());

  // AND combines multiplicatively.
  auto both = LogicalExpr(
      LogicalOp::kAnd,
      std::make_shared<CompareExpr>(CompareOp::kEq, col_a, lit2),
      std::make_shared<CompareExpr>(CompareOp::kEq, col_a, lit2));
  auto combined = estimator.EstimateSelectivity("t", both);
  ASSERT_TRUE(combined.has_value());
  EXPECT_NEAR(*combined, *sel * *sel, 1e-9);
}

}  // namespace
}  // namespace nodb
