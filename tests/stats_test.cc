// Tests for the on-the-fly statistics: min/max/null tracking, KMV
// distinct estimation, sample-based selectivity and the planner bridge.

#include <gtest/gtest.h>

#include <cmath>

#include "raw/stats_collector.h"
#include "util/random.h"

namespace nodb {
namespace {

ColumnVector IntColumn(const std::vector<int64_t>& values,
                       const std::vector<bool>& nulls = {}) {
  ColumnVector col(DataType::kInt64);
  for (size_t i = 0; i < values.size(); ++i) {
    if (!nulls.empty() && nulls[i]) {
      col.AppendNull();
    } else {
      col.AppendInt64(values[i]);
    }
  }
  return col;
}

TEST(AttributeStatsTest, MinMaxNullCounts) {
  AttributeStats stats(DataType::kInt64);
  stats.Observe(IntColumn({5, -3, 10, 0}, {false, false, false, true}));
  EXPECT_EQ(stats.row_count(), 4u);
  EXPECT_EQ(stats.null_count(), 1u);
  EXPECT_DOUBLE_EQ(stats.null_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(*stats.numeric_min(), -3.0);
  EXPECT_DOUBLE_EQ(*stats.numeric_max(), 10.0);
}

TEST(AttributeStatsTest, DistinctEstimateExactWhenSmall) {
  AttributeStats stats(DataType::kInt64);
  stats.Observe(IntColumn({1, 2, 3, 1, 2, 3, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(stats.EstimateDistinct(), 3.0);
}

TEST(AttributeStatsTest, DistinctEstimateWithinBandWhenLarge) {
  AttributeStats stats(DataType::kInt64);
  Random rng(1);
  ColumnVector col(DataType::kInt64);
  const int64_t kTrueNdv = 20000;
  for (int i = 0; i < 100000; ++i) {
    col.AppendInt64(static_cast<int64_t>(rng.Uniform(kTrueNdv)));
  }
  stats.Observe(col);
  double est = stats.EstimateDistinct();
  // KMV with k=256 has ~1/sqrt(k) ≈ 6% relative error; allow 25%.
  EXPECT_GT(est, kTrueNdv * 0.75);
  EXPECT_LT(est, kTrueNdv * 1.25);
}

TEST(AttributeStatsTest, CompareSelectivityFromSample) {
  AttributeStats stats(DataType::kInt64);
  ColumnVector col(DataType::kInt64);
  for (int i = 0; i < 10000; ++i) col.AppendInt64(i % 100);
  stats.Observe(col);
  auto sel = stats.EstimateCompareSelectivity(CompareOp::kLt,
                                              Value::Int64(10));
  ASSERT_TRUE(sel.has_value());
  EXPECT_NEAR(*sel, 0.10, 0.06);
  auto eq = stats.EstimateCompareSelectivity(CompareOp::kEq,
                                             Value::Int64(5));
  ASSERT_TRUE(eq.has_value());
  EXPECT_LT(*eq, 0.1);
  auto none = stats.EstimateCompareSelectivity(CompareOp::kEq,
                                               Value::String("x"));
  EXPECT_FALSE(none.has_value());
}

TEST(AttributeStatsTest, EqualityMissFallsBackToNdv) {
  AttributeStats stats(DataType::kInt64);
  ColumnVector col(DataType::kInt64);
  for (int i = 0; i < 1000; ++i) col.AppendInt64(i);
  stats.Observe(col);
  // A value outside the sample: estimate ~1/NDV, not zero.
  auto sel = stats.EstimateCompareSelectivity(CompareOp::kEq,
                                              Value::Int64(-12345));
  ASSERT_TRUE(sel.has_value());
  EXPECT_GT(*sel, 0.0);
  EXPECT_LT(*sel, 0.01);
}

TEST(AttributeStatsTest, StringSelectivityAndLike) {
  AttributeStats stats(DataType::kString);
  ColumnVector col(DataType::kString);
  const char* words[] = {"apple", "banana", "cherry", "apricot"};
  for (int i = 0; i < 400; ++i) col.AppendString(words[i % 4]);
  stats.Observe(col);
  auto eq = stats.EstimateCompareSelectivity(CompareOp::kEq,
                                             Value::String("apple"));
  ASSERT_TRUE(eq.has_value());
  EXPECT_NEAR(*eq, 0.25, 0.1);
  auto like = stats.EstimateLikeSelectivity("ap%", false);
  ASSERT_TRUE(like.has_value());
  EXPECT_NEAR(*like, 0.5, 0.12);  // apple + apricot
}

TEST(AttributeStatsTest, SampleHistogramShapesUniform) {
  AttributeStats stats(DataType::kInt64);
  ColumnVector col(DataType::kInt64);
  Random rng(2);
  for (int i = 0; i < 5000; ++i) {
    col.AppendInt64(static_cast<int64_t>(rng.Uniform(1000)));
  }
  stats.Observe(col);
  auto hist = stats.SampleHistogram(10);
  ASSERT_EQ(hist.size(), 10u);
  uint64_t total = 0;
  for (uint64_t b : hist) total += b;
  EXPECT_EQ(total, AttributeStats::kReservoirSize);
  for (uint64_t b : hist) EXPECT_GT(b, 10u);  // roughly uniform
}

TEST(StatsCollectorTest, ObserveBlockDeduplicates) {
  auto schema = Schema::Make({{"a", DataType::kInt64},
                              {"b", DataType::kInt64}});
  StatsCollector collector(schema);
  auto col = IntColumn({1, 2, 3});
  collector.ObserveBlock(0, 0, col);
  collector.ObserveBlock(0, 0, col);  // second fold-in is ignored
  EXPECT_EQ(collector.GetStats(0)->row_count(), 3u);
  collector.ObserveBlock(0, 1, col);
  EXPECT_EQ(collector.GetStats(0)->row_count(), 6u);
  EXPECT_FALSE(collector.HasStats(1));
  EXPECT_EQ(collector.CoveredAttributes(), (std::vector<uint32_t>{0}));
  collector.Clear();
  EXPECT_FALSE(collector.HasStats(0));
}

TEST(StatsSelectivityEstimatorTest, BridgesBoundPredicates) {
  auto schema = Schema::Make({{"a", DataType::kInt64},
                              {"b", DataType::kInt64}});
  StatsCollector collector(schema);
  ColumnVector skewed(DataType::kInt64);
  for (int i = 0; i < 1000; ++i) skewed.AppendInt64(i < 990 ? 1 : 2);
  collector.ObserveBlock(0, 0, skewed);

  StatsSelectivityEstimator estimator;
  estimator.Register("t", &collector, schema);

  auto col_a = std::make_shared<ColumnRefExpr>(0, "a", DataType::kInt64);
  auto lit2 = std::make_shared<LiteralExpr>(Value::Int64(2),
                                            DataType::kInt64);
  CompareExpr rare(CompareOp::kEq, col_a, lit2);
  auto sel = estimator.EstimateSelectivity("t", rare);
  ASSERT_TRUE(sel.has_value());
  EXPECT_LT(*sel, 0.1);

  // Literal-on-the-left mirrors the operator.
  CompareExpr mirrored(CompareOp::kGt, lit2, col_a);  // 2 > a  ==  a < 2
  auto msel = estimator.EstimateSelectivity("t", mirrored);
  ASSERT_TRUE(msel.has_value());
  EXPECT_GT(*msel, 0.8);

  // Unknown table / unknown column -> no estimate.
  EXPECT_FALSE(estimator.EstimateSelectivity("nope", rare).has_value());
  auto col_b = std::make_shared<ColumnRefExpr>(1, "b", DataType::kInt64);
  CompareExpr unstat(CompareOp::kEq, col_b, lit2);
  EXPECT_FALSE(estimator.EstimateSelectivity("t", unstat).has_value());

  // AND combines multiplicatively.
  auto both = LogicalExpr(
      LogicalOp::kAnd,
      std::make_shared<CompareExpr>(CompareOp::kEq, col_a, lit2),
      std::make_shared<CompareExpr>(CompareOp::kEq, col_a, lit2));
  auto combined = estimator.EstimateSelectivity("t", both);
  ASSERT_TRUE(combined.has_value());
  EXPECT_NEAR(*combined, *sel * *sel, 1e-9);
}

// --------------------------------------------------- degenerate stats

TEST(AttributeStatsTest, AllNullColumnIsDegenerateButSafe) {
  AttributeStats stats(DataType::kInt64);
  ColumnVector col(DataType::kInt64);
  for (int i = 0; i < 100; ++i) col.AppendNull();
  stats.Observe(col);
  EXPECT_EQ(stats.row_count(), 100u);
  EXPECT_EQ(stats.null_count(), 100u);
  EXPECT_DOUBLE_EQ(stats.null_fraction(), 1.0);
  EXPECT_FALSE(stats.numeric_min().has_value());
  EXPECT_FALSE(stats.numeric_max().has_value());
  EXPECT_DOUBLE_EQ(stats.EstimateDistinct(), 0.0);
  // No sample -> no estimate; never NaN or a division by zero.
  EXPECT_FALSE(stats.EstimateCompareSelectivity(CompareOp::kLt,
                                                Value::Int64(5))
                   .has_value());
  auto hist = stats.SampleHistogram(8);
  ASSERT_EQ(hist.size(), 8u);
  for (uint64_t b : hist) EXPECT_EQ(b, 0u);
}

TEST(AttributeStatsTest, ZeroWidthRangeStaysFinite) {
  AttributeStats stats(DataType::kInt64);
  ColumnVector col(DataType::kInt64);
  for (int i = 0; i < 1000; ++i) col.AppendInt64(7);
  stats.Observe(col);
  EXPECT_DOUBLE_EQ(*stats.numeric_min(), 7.0);
  EXPECT_DOUBLE_EQ(*stats.numeric_max(), 7.0);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    for (int64_t lit : {6, 7, 8}) {
      auto sel = stats.EstimateCompareSelectivity(op, Value::Int64(lit));
      ASSERT_TRUE(sel.has_value());
      EXPECT_TRUE(std::isfinite(*sel));
      EXPECT_GE(*sel, 0.0);
      EXPECT_LE(*sel, 1.0);
    }
  }
  // Zero-width histogram range: everything lands in one bucket.
  auto hist = stats.SampleHistogram(4);
  EXPECT_EQ(hist[0], AttributeStats::kReservoirSize);
}

TEST(AttributeStatsTest, NanValuesNeverPoisonEstimates) {
  AttributeStats stats(DataType::kDouble);
  ColumnVector col(DataType::kDouble);
  for (int i = 0; i < 200; ++i) {
    if (i % 5 == 0) {
      col.AppendDouble(std::nan(""));
    } else {
      col.AppendDouble(static_cast<double>(i));
    }
  }
  stats.Observe(col);
  EXPECT_TRUE(std::isfinite(stats.EstimateDistinct()));
  for (CompareOp op : {CompareOp::kEq, CompareOp::kLt, CompareOp::kGe}) {
    auto sel = stats.EstimateCompareSelectivity(op, Value::Double(50.0));
    if (sel.has_value()) {
      EXPECT_TRUE(std::isfinite(*sel));
      EXPECT_GE(*sel, 0.0);
      EXPECT_LE(*sel, 1.0);
    }
  }
}

TEST(StatsSelectivityEstimatorTest, DegenerateStatsNeverYieldNanOrInf) {
  auto schema = Schema::Make({{"allnull", DataType::kInt64},
                              {"constant", DataType::kInt64}});
  StatsCollector collector(schema);
  ColumnVector nulls(DataType::kInt64);
  ColumnVector constant(DataType::kInt64);
  for (int i = 0; i < 500; ++i) {
    nulls.AppendNull();
    constant.AppendInt64(42);
  }
  collector.ObserveBlock(0, 0, nulls);
  collector.ObserveBlock(1, 0, constant);

  StatsSelectivityEstimator estimator;
  estimator.Register("t", &collector, schema);

  auto col_null =
      std::make_shared<ColumnRefExpr>(0, "allnull", DataType::kInt64);
  auto col_const =
      std::make_shared<ColumnRefExpr>(1, "constant", DataType::kInt64);
  auto lit = std::make_shared<LiteralExpr>(Value::Int64(42),
                                           DataType::kInt64);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kGe}) {
    for (const auto& col : {col_null, col_const}) {
      CompareExpr pred(op, col, lit);
      auto sel = estimator.EstimateSelectivity("t", pred);
      if (sel.has_value()) {
        EXPECT_TRUE(std::isfinite(*sel)) << pred.ToString();
        EXPECT_GE(*sel, 0.0);
        EXPECT_LE(*sel, 1.0);
      }
    }
  }
  // AND/OR over a degenerate and an estimable side stay clamped.
  LogicalExpr both(
      LogicalOp::kAnd,
      std::make_shared<CompareExpr>(CompareOp::kEq, col_const, lit),
      std::make_shared<CompareExpr>(CompareOp::kLt, col_null, lit));
  auto combined = estimator.EstimateSelectivity("t", both);
  if (combined.has_value()) {
    EXPECT_TRUE(std::isfinite(*combined));
    EXPECT_GE(*combined, 0.0);
    EXPECT_LE(*combined, 1.0);
  }
}

TEST(StatsSelectivityEstimatorTest, QualifiedNamesResolveToColumns) {
  // Join-side conjuncts reference "alias.column" display names; the
  // estimator strips the qualifier to reach the table schema.
  auto schema = Schema::Make({{"a", DataType::kInt64}});
  StatsCollector collector(schema);
  ColumnVector col(DataType::kInt64);
  for (int i = 0; i < 1000; ++i) col.AppendInt64(i % 10);
  collector.ObserveBlock(0, 0, col);
  StatsSelectivityEstimator estimator;
  estimator.Register("t", &collector, schema);
  auto qualified =
      std::make_shared<ColumnRefExpr>(0, "x.a", DataType::kInt64);
  auto lit =
      std::make_shared<LiteralExpr>(Value::Int64(5), DataType::kInt64);
  CompareExpr pred(CompareOp::kLt, qualified, lit);
  auto sel = estimator.EstimateSelectivity("t", pred);
  ASSERT_TRUE(sel.has_value());
  EXPECT_NEAR(*sel, 0.5, 0.1);
}

// ------------------------------------------------------------ zone maps

TEST(ZoneMapsTest, ObserveComputesBoundsPerPayload) {
  ZoneMaps zones;
  ColumnVector ints(DataType::kInt64);
  for (int64_t v : {5, -3, 10, 0}) ints.AppendInt64(v);
  zones.Observe(0, 0, ints, zones.generation());
  auto entry = zones.Get(0, 0);
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->is_int);
  EXPECT_EQ(entry->min_i, -3);
  EXPECT_EQ(entry->max_i, 10);
  EXPECT_DOUBLE_EQ(entry->min_d, -3.0);
  EXPECT_DOUBLE_EQ(entry->max_d, 10.0);
  EXPECT_EQ(entry->rows, 4u);
  EXPECT_FALSE(entry->has_null);
  EXPECT_TRUE(entry->non_null);
  EXPECT_FALSE(entry->unsafe);

  ColumnVector doubles(DataType::kDouble);
  doubles.AppendDouble(1.5);
  doubles.AppendNull();
  doubles.AppendDouble(-2.5);
  zones.Observe(1, 3, doubles, zones.generation());
  auto d = zones.Get(1, 3);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->is_int);
  EXPECT_DOUBLE_EQ(d->min_d, -2.5);
  EXPECT_DOUBLE_EQ(d->max_d, 1.5);
  EXPECT_TRUE(d->has_null);

  // Strings are never summarized; NaN marks the entry unusable;
  // all-NULL blocks report no usable bounds.
  ColumnVector strings(DataType::kString);
  strings.AppendString("abc");
  zones.Observe(2, 0, strings, zones.generation());
  EXPECT_FALSE(zones.Contains(2, 0));
  ColumnVector nan_col(DataType::kDouble);
  nan_col.AppendDouble(std::nan(""));
  nan_col.AppendDouble(1.0);
  zones.Observe(3, 0, nan_col, zones.generation());
  ASSERT_TRUE(zones.Get(3, 0).has_value());
  EXPECT_TRUE(zones.Get(3, 0)->unsafe);
  ColumnVector all_null(DataType::kInt64);
  all_null.AppendNull();
  zones.Observe(4, 0, all_null, zones.generation());
  ASSERT_TRUE(zones.Get(4, 0).has_value());
  EXPECT_FALSE(zones.Get(4, 0)->non_null);
  EXPECT_TRUE(zones.Get(4, 0)->has_null);
}

TEST(ZoneMapsTest, GenerationTaggingAndInvalidation) {
  ZoneMaps zones;
  ColumnVector col(DataType::kInt64);
  col.AppendInt64(1);
  uint64_t old_generation = zones.generation();
  for (uint64_t block = 0; block < 4; ++block) {
    zones.Observe(0, block, col, old_generation);
  }
  EXPECT_EQ(zones.num_entries(), 4u);

  // Append truncation: blocks >= 2 vanish, earlier ones stay.
  zones.DropBlocksFrom(2);
  EXPECT_EQ(zones.num_entries(), 2u);
  EXPECT_TRUE(zones.Contains(0, 1));
  EXPECT_FALSE(zones.Contains(0, 2));

  // Rewrite: everything drops, and an in-flight observation against
  // the old generation is rejected — a stale map can never skip live
  // rows.
  zones.Clear();
  EXPECT_EQ(zones.num_entries(), 0u);
  EXPECT_GT(zones.generation(), old_generation);
  zones.Observe(0, 0, col, old_generation);
  EXPECT_EQ(zones.num_entries(), 0u);
  zones.Observe(0, 0, col, zones.generation());
  EXPECT_EQ(zones.num_entries(), 1u);
}

}  // namespace
}  // namespace nodb
