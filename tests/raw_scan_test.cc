// Tests for the in-situ raw scan operator: correctness of selective
// tokenizing/parsing against a ground-truth load, positional-map and
// cache warm paths, partial blocks, headers, malformed input and
// update interplay.

#include <gtest/gtest.h>

#include <cstdio>

#include "csv/csv_writer.h"
#include "engines/csv_loader.h"
#include "exec/filter.h"
#include "exec/query_result.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "raw/parallel_scan.h"
#include "raw/raw_scan.h"
#include "util/random.h"

namespace nodb {
namespace {

class RawScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-rawscan");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
  }

  /// Writes a deterministic CSV: value(row, col) = row * 100 + col,
  /// with variable-width fields to make positions non-trivial.
  RawTableInfo WriteFixture(const std::string& name, size_t rows,
                            size_t cols, bool header = false) {
    std::string content;
    std::vector<Field> fields;
    for (size_t c = 0; c < cols; ++c) {
      fields.push_back(Field{"c" + std::to_string(c), DataType::kInt64});
    }
    if (header) {
      for (size_t c = 0; c < cols; ++c) {
        if (c > 0) content += ',';
        content += "c" + std::to_string(c);
      }
      content += '\n';
    }
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        if (c > 0) content += ',';
        content += std::to_string(r * 100 + c);
      }
      content += '\n';
    }
    std::string path = dir_->FilePath(name + ".csv");
    EXPECT_TRUE(WriteStringToFile(path, content).ok());
    CsvDialect dialect;
    dialect.has_header = header;
    return RawTableInfo{name, path, Schema::Make(fields), dialect};
  }

  /// Drains a scan over `projection` and checks every value.
  void VerifyScan(RawTableState* state, std::vector<uint32_t> projection,
                  size_t expected_rows, ScanMetrics* metrics = nullptr) {
    RawScanOperator scan(state, projection, metrics);
    auto result = QueryResult::Drain(&scan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->num_rows(), expected_rows);
    for (size_t r = 0; r < expected_rows; ++r) {
      auto row = result->Row(r);
      for (size_t i = 0; i < projection.size(); ++i) {
        ASSERT_EQ(row[i], Value::Int64(static_cast<int64_t>(
                              r * 100 + projection[i])))
            << "row " << r << " attr " << projection[i];
      }
    }
  }

  NoDbConfig SmallBlocks(bool map, bool cache, bool stats) {
    NoDbConfig config;
    config.enable_positional_map = map;
    config.enable_cache = cache;
    config.enable_statistics = stats;
    config.rows_per_block = 64;  // force multi-block handling
    return config;
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(RawScanTest, ColdScanMatchesGroundTruth) {
  auto info = WriteFixture("t", 500, 8);
  RawTableState state(info, SmallBlocks(true, true, true));
  VerifyScan(&state, {1, 4, 6}, 500);
}

/// All 8 knob combinations produce identical results.
class KnobSweep : public RawScanTest,
                  public ::testing::WithParamInterface<int> {};

TEST_P(KnobSweep, ResultsIdenticalAcrossConfigs) {
  int mask = GetParam();
  auto info = WriteFixture("t", 300, 6);
  RawTableState state(info, SmallBlocks(mask & 1, mask & 2, mask & 4));
  VerifyScan(&state, {0, 3, 5}, 300);
  VerifyScan(&state, {2}, 300);       // different combination, warm state
  VerifyScan(&state, {0, 3, 5}, 300); // repeat the first
}

INSTANTIATE_TEST_SUITE_P(AllKnobCombos, KnobSweep,
                         ::testing::Range(0, 8));

TEST_F(RawScanTest, EmptyProjectionCountsRows) {
  auto info = WriteFixture("t", 123, 4);
  RawTableState state(info, SmallBlocks(true, true, true));
  ScanMetrics metrics;
  RawScanOperator scan(&state, {}, &metrics);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 123u);
  EXPECT_EQ(metrics.rows_scanned, 123u);
  EXPECT_EQ(metrics.fields_tokenized, 0u);   // selective tokenizing:
  EXPECT_EQ(metrics.fields_converted, 0u);   // nothing parsed at all
}

TEST_F(RawScanTest, WarmMapServesExactSpans) {
  auto info = WriteFixture("t", 400, 10);
  NoDbConfig config = SmallBlocks(true, false, false);  // map only
  RawTableState state(info, config);

  ScanMetrics cold;
  VerifyScan(&state, {3, 7}, 400, &cold);
  EXPECT_GT(cold.fields_tokenized, 0u);
  EXPECT_EQ(cold.map_exact_probes, 0u);

  ScanMetrics warm;
  VerifyScan(&state, {3, 7}, 400, &warm);
  // Every probe is exact now: no tokenizing at all.
  EXPECT_EQ(warm.fields_tokenized, 0u);
  EXPECT_EQ(warm.map_exact_probes, 2u * 400u);
  EXPECT_EQ(warm.map_blind_rows, 0u);
  // And row ends come from the tuple index: no newline scans either.
  EXPECT_EQ(warm.parsing_ns, 0);
}

TEST_F(RawScanTest, AnchorsReduceTokenizingForNearbyAttributes) {
  auto info = WriteFixture("t", 200, 12);
  RawTableState state(info, SmallBlocks(true, false, false));

  ScanMetrics first;
  VerifyScan(&state, {8}, 200, &first);
  // Cold: tokenize from field 0 through field 9 per row.
  EXPECT_EQ(first.fields_tokenized, 200u * 9u);

  ScanMetrics second;
  VerifyScan(&state, {9}, 200, &second);
  // Attr 9 probes anchor at attr 9 via the {8} chunk (end(8)+1), so
  // only the span of 9 itself is scanned: 1 field per row.
  EXPECT_EQ(second.fields_tokenized, 200u * 1u);
  EXPECT_EQ(second.map_anchor_probes, 200u);
}

TEST_F(RawScanTest, WarmCacheSkipsFileEntirely) {
  auto info = WriteFixture("t", 300, 6);
  RawTableState state(info, SmallBlocks(true, true, false));

  ScanMetrics cold;
  VerifyScan(&state, {1, 2}, 300, &cold);
  EXPECT_GT(cold.bytes_read, 0u);
  EXPECT_EQ(cold.cache_block_hits, 0u);

  ScanMetrics warm;
  VerifyScan(&state, {1, 2}, 300, &warm);
  EXPECT_EQ(warm.cache_block_misses, 0u);
  EXPECT_GT(warm.cache_block_hits, 0u);
  EXPECT_EQ(warm.bytes_read, 0u);  // zero raw-file I/O
  EXPECT_EQ(warm.fields_converted, 0u);
}

TEST_F(RawScanTest, PartialCacheServesSubsetOfAttributes) {
  auto info = WriteFixture("t", 200, 8);
  RawTableState state(info, SmallBlocks(true, true, false));
  VerifyScan(&state, {2}, 200);  // cache attr 2

  ScanMetrics mixed;
  VerifyScan(&state, {2, 5}, 200, &mixed);
  EXPECT_GT(mixed.cache_block_hits, 0u);    // attr 2 from cache
  EXPECT_GT(mixed.fields_converted, 0u);    // attr 5 parsed
  // Only attr 5 converted: one field per row.
  EXPECT_EQ(mixed.fields_converted, 200u);
}

TEST_F(RawScanTest, HeaderLineSkipped) {
  auto info = WriteFixture("t", 50, 3, /*header=*/true);
  RawTableState state(info, SmallBlocks(true, true, true));
  VerifyScan(&state, {0, 1, 2}, 50);
  // Re-scan (map-known path) also skips the header.
  VerifyScan(&state, {0, 1, 2}, 50);
}

TEST_F(RawScanTest, FileWithoutTrailingNewline) {
  std::string path = dir_->FilePath("nonl.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,4\n5,6").ok());
  RawTableInfo info{"nonl", path,
                    Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64}}),
                    CsvDialect()};
  RawTableState state(info, SmallBlocks(true, true, true));
  RawScanOperator scan(&state, {0, 1}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->Row(2)[0], Value::Int64(5));
  EXPECT_EQ(result->Row(2)[1], Value::Int64(6));
  // Warm re-scan over the tuple index agrees.
  RawScanOperator again(&state, {0, 1}, nullptr);
  auto warm = QueryResult::Drain(&again);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->num_rows(), 3u);
  EXPECT_EQ(warm->Row(2)[1], Value::Int64(6));
}

TEST_F(RawScanTest, CrlfLineEndingsTolerated) {
  std::string path = dir_->FilePath("crlf.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\r\n3,4\r\n5,6\r\n").ok());
  RawTableInfo info{"crlf", path,
                    Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64}}),
                    CsvDialect()};
  RawTableState state(info, SmallBlocks(true, true, true));
  RawScanOperator scan(&state, {0, 1}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->Row(1)[1], Value::Int64(4));  // no trailing \r
  EXPECT_EQ(result->Row(2)[1], Value::Int64(6));
  // The bulk loader agrees.
  auto loaded = LoadCsv(path, info.schema, info.dialect);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->column(1).GetInt64(2), 6);
}

TEST_F(RawScanTest, EmptyFileYieldsNoRows) {
  std::string path = dir_->FilePath("empty.csv");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  RawTableInfo info{"empty", path,
                    Schema::Make({{"a", DataType::kInt64}}), CsvDialect()};
  RawTableState state(info, SmallBlocks(true, true, true));
  RawScanOperator scan(&state, {0}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST_F(RawScanTest, MissingFieldIsParseError) {
  std::string path = dir_->FilePath("short.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2,3\n4,5\n6,7,8\n").ok());
  RawTableInfo info{"short", path,
                    Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64},
                                  {"c", DataType::kInt64}}),
                    CsvDialect()};
  RawTableState state(info, SmallBlocks(true, true, true));
  RawScanOperator scan(&state, {2}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
  EXPECT_NE(result.status().message().find("row 1"), std::string::npos);
}

TEST_F(RawScanTest, MalformedValueIsParseError) {
  std::string path = dir_->FilePath("bad.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,oops\n").ok());
  RawTableInfo info{"bad", path,
                    Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64}}),
                    CsvDialect()};
  RawTableState state(info, SmallBlocks(true, true, true));
  RawScanOperator scan(&state, {1}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
  // But attr 0 alone scans fine (selective parsing never touches 'oops').
  RawScanOperator ok_scan(&state, {0}, nullptr);
  auto ok = QueryResult::Drain(&ok_scan);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->num_rows(), 2u);
}

TEST_F(RawScanTest, EmptyFieldsParseAsNull) {
  std::string path = dir_->FilePath("nulls.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,,x\n,5,\n").ok());
  RawTableInfo info{"nulls", path,
                    Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64},
                                  {"c", DataType::kString}}),
                    CsvDialect()};
  RawTableState state(info, SmallBlocks(true, true, true));
  RawScanOperator scan(&state, {0, 1, 2}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Row(0)[1].is_null());
  EXPECT_EQ(result->Row(0)[2], Value::String("x"));
  EXPECT_TRUE(result->Row(1)[0].is_null());
  EXPECT_TRUE(result->Row(1)[2].is_null());  // empty string field -> NULL
}

TEST_F(RawScanTest, AbandonedScanLeavesStateConsistent) {
  auto info = WriteFixture("t", 500, 5);
  RawTableState state(info, SmallBlocks(true, true, true));
  {
    // Pull one batch and drop the scan (LIMIT-style early stop).
    RawScanOperator scan(&state, {1}, nullptr);
    ASSERT_TRUE(scan.Open().ok());
    auto batch = scan.Next();
    ASSERT_TRUE(batch.ok());
    ASSERT_NE(*batch, nullptr);
  }
  // A full scan afterwards sees every row with correct values.
  VerifyScan(&state, {1, 3}, 500);
  VerifyScan(&state, {1, 3}, 500);
}

TEST_F(RawScanTest, MixedTypesParseCorrectly) {
  std::string path = dir_->FilePath("mixed.csv");
  ASSERT_TRUE(WriteStringToFile(
                  path, "1,2.5,hello,1994-01-02\n2,3.5,world,1995-06-07\n")
                  .ok());
  RawTableInfo info{"mixed", path,
                    Schema::Make({{"i", DataType::kInt64},
                                  {"d", DataType::kDouble},
                                  {"s", DataType::kString},
                                  {"t", DataType::kDate}}),
                    CsvDialect()};
  RawTableState state(info, SmallBlocks(true, true, true));
  RawScanOperator scan(&state, {0, 1, 2, 3}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto row = result->Row(1);
  EXPECT_EQ(row[0], Value::Int64(2));
  EXPECT_DOUBLE_EQ(row[1].dbl(), 3.5);
  EXPECT_EQ(row[2], Value::String("world"));
  EXPECT_EQ(row[3].ToString(), "1995-06-07");
}

TEST_F(RawScanTest, QuotedDialectEndToEnd) {
  std::string path = dir_->FilePath("quoted.csv");
  ASSERT_TRUE(WriteStringToFile(
                  path, "1,\"a,b\",2\n3,\"say \"\"hi\"\"\",4\n")
                  .ok());
  RawTableInfo info{"quoted", path,
                    Schema::Make({{"x", DataType::kInt64},
                                  {"s", DataType::kString},
                                  {"y", DataType::kInt64}}),
                    CsvDialect::QuotedCsv()};
  RawTableState state(info, SmallBlocks(true, true, true));
  RawScanOperator scan(&state, {0, 1, 2}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->Row(0)[1], Value::String("a,b"));
  EXPECT_EQ(result->Row(1)[1], Value::String("say \"hi\""));
  EXPECT_EQ(result->Row(1)[2], Value::Int64(4));
}

TEST_F(RawScanTest, QuotedRandomFieldsAgainstBulkLoader) {
  // Property: quote-heavy string data (embedded delimiters, escaped
  // quotes, empty fields) survives the in-situ path exactly as the
  // bulk loader reads it, in every knob configuration.
  Random rng(4242);
  CsvDialect dialect = CsvDialect::QuotedCsv();
  for (int iter = 0; iter < 6; ++iter) {
    std::string path =
        dir_->FilePath("quoted" + std::to_string(iter) + ".csv");
    size_t rows = 30 + rng.Uniform(100);
    {
      auto file = OpenWritableFile(path);
      ASSERT_TRUE(file.ok());
      CsvWriter writer(std::move(*file), dialect);
      for (size_t r = 0; r < rows; ++r) {
        writer.BeginRecord();
        writer.AddField(std::to_string(r));
        for (int c = 0; c < 3; ++c) {
          std::string field;
          size_t len = rng.Uniform(10);
          for (size_t i = 0; i < len; ++i) {
            switch (rng.Uniform(5)) {
              case 0:
                field.push_back(',');
                break;
              case 1:
                field.push_back('"');
                break;
              default:
                field.push_back(static_cast<char>('a' + rng.Uniform(26)));
            }
          }
          writer.AddField(field);
        }
        ASSERT_TRUE(writer.FinishRecord().ok());
      }
      ASSERT_TRUE(writer.Close().ok());
    }
    auto schema = Schema::Make({{"id", DataType::kInt64},
                                {"s1", DataType::kString},
                                {"s2", DataType::kString},
                                {"s3", DataType::kString}});
    auto loaded = LoadCsv(path, schema, dialect);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    RawTableInfo info{"q", path, schema, dialect};
    RawTableState state(info, SmallBlocks(iter % 2 == 0, iter % 3 == 0,
                                          false));
    for (auto projection : std::vector<std::vector<uint32_t>>{
             {0, 1, 2, 3}, {2}, {1, 3}}) {
      RawScanOperator scan(&state, projection, nullptr);
      auto result = QueryResult::Drain(&scan);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result->num_rows(), rows);
      for (size_t r = 0; r < rows; ++r) {
        for (size_t i = 0; i < projection.size(); ++i) {
          ASSERT_EQ(result->Row(r)[i],
                    (*loaded)->column(projection[i]).GetValue(r))
              << "iter " << iter << " row " << r << " attr "
              << projection[i];
        }
      }
    }
  }
}

TEST_F(RawScanTest, RandomizedAgainstBulkLoader) {
  // Property: for random shapes, the selective in-situ scan agrees
  // with the full bulk loader on every projected cell.
  Random rng(77);
  for (int iter = 0; iter < 10; ++iter) {
    size_t rows = 50 + rng.Uniform(400);
    size_t cols = 2 + rng.Uniform(10);
    auto info = WriteFixture("r" + std::to_string(iter), rows, cols);
    auto loaded = LoadCsv(info.path, info.schema, info.dialect);
    ASSERT_TRUE(loaded.ok());

    NoDbConfig config = SmallBlocks(rng.Bernoulli(0.5),
                                    rng.Bernoulli(0.5),
                                    rng.Bernoulli(0.5));
    RawTableState state(info, config);
    for (int q = 0; q < 3; ++q) {
      std::vector<uint32_t> projection;
      for (uint32_t c = 0; c < cols; ++c) {
        if (rng.Bernoulli(0.4)) projection.push_back(c);
      }
      if (projection.empty()) projection.push_back(0);
      RawScanOperator scan(&state, projection, nullptr);
      auto result = QueryResult::Drain(&scan);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result->num_rows(), rows);
      for (size_t r = 0; r < rows; ++r) {
        for (size_t i = 0; i < projection.size(); ++i) {
          ASSERT_EQ(result->Row(r)[i],
                    (*loaded)->column(projection[i]).GetValue(r))
              << "iter " << iter << " q " << q << " row " << r;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Parallel chunked scan: the multi-threaded first-touch path must leave
// the table state — and therefore every later query — byte-identical to
// what the serial scan produces, at any thread count.

TEST_F(RawScanTest, ParallelPrewarmServesWarmScans) {
  for (uint32_t threads : {1u, 2u, 8u}) {
    auto info =
        WriteFixture("p" + std::to_string(threads), 500, 8);
    RawTableState state(info, SmallBlocks(true, true, true));
    auto stats = ParallelChunkedScan(&state, {1, 4, 6}, threads);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->rows, 500u);

    // The scan behaves fully warm: no tokenizing, no raw-file I/O.
    ScanMetrics warm;
    VerifyScan(&state, {1, 4, 6}, 500, &warm);
    EXPECT_EQ(warm.fields_tokenized, 0u) << threads << " threads";
    EXPECT_EQ(warm.bytes_read, 0u) << threads << " threads";
    EXPECT_GT(warm.cache_block_hits, 0u);
  }
}

TEST_F(RawScanTest, ParallelStateIdenticalToSerialAtAnyThreadCount) {
  // 777 rows with 64-row blocks: a partial tail block included.
  auto info = WriteFixture("serial", 777, 6);
  RawTableState serial(info, SmallBlocks(true, true, true));
  VerifyScan(&serial, {0, 2, 5}, 777);  // cold serial scan adapts

  for (uint32_t threads : {1u, 2u, 8u}) {
    RawTableState state(info, SmallBlocks(true, true, true));
    auto stats = ParallelChunkedScan(&state, {0, 2, 5}, threads);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    SCOPED_TRACE(std::to_string(threads) + " threads");
    EXPECT_EQ(state.map().known_rows(), serial.map().known_rows());
    EXPECT_TRUE(state.map().rows_complete());
    EXPECT_EQ(state.map().num_chunks(), serial.map().num_chunks());
    EXPECT_EQ(state.map().bytes_used(), serial.map().bytes_used());
    EXPECT_EQ(state.cache().num_segments(),
              serial.cache().num_segments());
    EXPECT_EQ(state.cache().bytes_used(), serial.cache().bytes_used());
    VerifyScan(&state, {0, 2, 5}, 777);
  }
}

TEST_F(RawScanTest, ParallelPrewarmCrlfFixture) {
  std::string content;
  for (int r = 0; r < 200; ++r) {
    content += std::to_string(r) + "," + std::to_string(r * 2) + ",s" +
               std::to_string(r) + "\r\n";
  }
  std::string path = dir_->FilePath("crlf_par.csv");
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  RawTableInfo info{"crlfp", path,
                    Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64},
                                  {"s", DataType::kString}}),
                    CsvDialect()};
  for (uint32_t threads : {1u, 2u, 8u}) {
    RawTableState state(info, SmallBlocks(true, true, true));
    auto stats = ParallelChunkedScan(&state, {0, 1, 2}, threads);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->rows, 200u);
    RawScanOperator scan(&state, {0, 1, 2}, nullptr);
    auto result = QueryResult::Drain(&scan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->num_rows(), 200u);
    // No '\r' leaked into the cached last column.
    EXPECT_EQ(result->Row(7)[2], Value::String("s7"));
    EXPECT_EQ(result->Row(199)[1], Value::Int64(398));
  }
}

TEST_F(RawScanTest, ParallelPrewarmHeaderAndMissingFinalNewline) {
  auto with_header = WriteFixture("hdr", 150, 4, /*header=*/true);
  RawTableState hstate(with_header, SmallBlocks(true, true, true));
  ASSERT_TRUE(ParallelChunkedScan(&hstate, {0, 3}, 8).ok());
  VerifyScan(&hstate, {0, 3}, 150);

  std::string path = dir_->FilePath("nonl_par.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,4\n5,6").ok());
  RawTableInfo info{"nonlp", path,
                    Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64}}),
                    CsvDialect()};
  RawTableState state(info, SmallBlocks(true, true, true));
  auto stats = ParallelChunkedScan(&state, {0, 1}, 8);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows, 3u);
  RawScanOperator scan(&state, {0, 1}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 3u);
  EXPECT_EQ(result->Row(2)[1], Value::Int64(6));
}

TEST_F(RawScanTest, ParallelMapOnlyNoFinalNewlineLastRowIntact) {
  // Regression: empty tail chunks (boundary targets landing inside a
  // row) used to clobber the discovery cursor, truncating the final
  // unterminated row. Map-only config so nothing is served from cache.
  std::string path = dir_->FilePath("nonl_maponly.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,4\n5,6").ok());
  RawTableInfo info{"nonlm", path,
                    Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64}}),
                    CsvDialect()};
  for (uint32_t threads : {2u, 8u, 16u}) {
    RawTableState state(info, SmallBlocks(true, false, false));
    auto stats = ParallelChunkedScan(&state, {0, 1}, threads);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->rows, 3u);
    RawScanOperator scan(&state, {0, 1}, nullptr);
    auto result = QueryResult::Drain(&scan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->num_rows(), 3u);
    EXPECT_EQ(result->Row(2)[0], Value::Int64(5)) << threads;
    EXPECT_EQ(result->Row(2)[1], Value::Int64(6)) << threads;
  }
}

TEST_F(RawScanTest, ParallelBoundaryTargetsInsideOneRowStillSplit) {
  // Regression: when one boundary target fell inside the previous
  // boundary's row, every later boundary collapsed to end-of-file and
  // the scan degraded to a single chunk. A long first row followed by
  // many short rows must still produce multiple non-empty chunks.
  std::string content = "9";
  content.append(2000, '0');  // one very long first field
  content += ",1\n";
  for (int r = 0; r < 50; ++r) {
    content += std::to_string(r) + "," + std::to_string(r * 2) + "\n";
  }
  std::string path = dir_->FilePath("longrow.csv");
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  RawTableInfo info{"longrow", path,
                    Schema::Make({{"a", DataType::kString},
                                  {"b", DataType::kInt64}}),
                    CsvDialect()};
  RawTableState state(info, SmallBlocks(true, true, true));
  auto stats = ParallelChunkedScan(&state, {0, 1}, 8);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows, 51u);
  RawScanOperator scan(&state, {0, 1}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 51u);
  EXPECT_EQ(result->Row(50)[1], Value::Int64(98));
}

TEST_F(RawScanTest, ParallelPrewarmEmptyProjectionBuildsRowIndex) {
  auto info = WriteFixture("count", 321, 4);
  RawTableState state(info, SmallBlocks(true, true, true));
  auto stats = ParallelChunkedScan(&state, {}, 4);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows, 321u);
  EXPECT_EQ(state.map().known_rows(), 321u);
  EXPECT_TRUE(state.map().rows_complete());
  // A COUNT(*)-style scan now locates rows without newline hunting.
  ScanMetrics metrics;
  RawScanOperator scan(&state, {}, &metrics);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 321u);
  EXPECT_EQ(metrics.parsing_ns, 0);
}

TEST_F(RawScanTest, ParallelPrewarmSurfacesSerialErrorUntouched) {
  std::string path = dir_->FilePath("bad_par.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,2\n3,oops\n5,6\n").ok());
  RawTableInfo info{"badp", path,
                    Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64}}),
                    CsvDialect()};
  RawTableState state(info, SmallBlocks(true, true, true));
  auto stats = ParallelChunkedScan(&state, {1}, 8);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsParseError());
  // Same "row N" the serial scan reports, and no half-built state.
  EXPECT_NE(stats.status().message().find("row 1"), std::string::npos);
  EXPECT_EQ(state.map().known_rows(), 0u);
  EXPECT_EQ(state.cache().num_segments(), 0u);

  // Short rows likewise mirror the serial field-count error.
  std::string short_path = dir_->FilePath("short_par.csv");
  ASSERT_TRUE(WriteStringToFile(short_path, "1,2,3\n4,5\n6,7,8\n").ok());
  RawTableInfo short_info{"shortp", short_path,
                          Schema::Make({{"a", DataType::kInt64},
                                        {"b", DataType::kInt64},
                                        {"c", DataType::kInt64}}),
                          CsvDialect()};
  RawTableState short_state(short_info, SmallBlocks(true, true, true));
  auto short_stats = ParallelChunkedScan(&short_state, {2}, 8);
  ASSERT_FALSE(short_stats.ok());
  EXPECT_TRUE(short_stats.status().IsParseError());
  EXPECT_NE(short_stats.status().message().find("row 1"),
            std::string::npos);
}

// -------------------------------------------- pushdown and zone maps

/// Drains `scan` into a QueryResult, asserting success.
QueryResult MustDrain(RawScanOperator* scan) {
  auto result = QueryResult::Drain(scan);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(*result) : QueryResult();
}

ExprPtr LessThan(size_t slot, const std::string& name, int64_t lit) {
  return std::make_shared<CompareExpr>(
      CompareOp::kLt,
      std::make_shared<ColumnRefExpr>(slot, name, DataType::kInt64),
      std::make_shared<LiteralExpr>(Value::Int64(lit), DataType::kInt64));
}

TEST_F(RawScanTest, PushdownMatchesFilterOperatorAndSkipsBlocks) {
  // Fixture values are r * 100 + c: attribute c1 is clustered
  // ascending, so zone maps can prune whole blocks once warm.
  auto info = WriteFixture("t", 500, 6);
  NoDbConfig config = SmallBlocks(true, true, true);
  RawTableState state(info, config);
  ASSERT_TRUE(state.Open().ok());

  // Reference: the unfiltered scan under a FilterOperator — over its
  // own state, so the pushdown scan below starts genuinely cold.
  std::vector<std::string> expected;
  {
    RawTableState ref_state(info, config);
    ASSERT_TRUE(ref_state.Open().ok());
    auto scan = std::make_unique<RawScanOperator>(&ref_state,
        std::vector<uint32_t>{1, 3}, nullptr);
    FilterOperator filter(std::move(scan), LessThan(0, "c1", 10000));
    auto result = QueryResult::Drain(&filter);
    ASSERT_TRUE(result.ok());
    expected = result->CanonicalRows();
    ASSERT_EQ(expected.size(), 100u);  // rows 0..99: r*100+1 < 10000
  }

  // Cold pushdown: phase 1 parses c1 for every row, phase 2 parses c3
  // only for the 100 qualifying rows.
  {
    ScanMetrics metrics;
    RawScanOperator scan(&state, {1, 3}, &metrics);
    scan.SetPushdownPredicates({LessThan(0, "c1", 10000)});
    QueryResult result = MustDrain(&scan);
    EXPECT_EQ(result.CanonicalRows(), expected);
    EXPECT_EQ(metrics.rows_scanned, 500u);
    EXPECT_EQ(metrics.pushdown_rows_pruned, 400u);
    EXPECT_EQ(metrics.pushdown_phase1_fields, 500u);
    EXPECT_EQ(metrics.pushdown_phase2_fields, 100u);
    EXPECT_EQ(metrics.zone_skipped_blocks, 0u);  // no summaries yet
  }

  // Warm: the first scan summarized every block; disjoint blocks are
  // now skipped without locating a single row.
  {
    ScanMetrics metrics;
    RawScanOperator scan(&state, {1, 3}, &metrics);
    scan.SetPushdownPredicates({LessThan(0, "c1", 10000)});
    QueryResult result = MustDrain(&scan);
    EXPECT_EQ(result.CanonicalRows(), expected);
    // Blocks of 64 rows: c1 spans [6400b + 1, 6400b + 6301]; blocks
    // 2..7 have min >= 10000 and vanish (6 of 8, tail included).
    EXPECT_EQ(metrics.zone_skipped_blocks, 6u);
    EXPECT_EQ(metrics.rows_scanned + metrics.zone_skipped_rows, 500u);
    EXPECT_EQ(metrics.pushdown_phase1_fields, 0u);  // cache-served
  }

  // Pushdown off the same way the planner would leave it: identical.
  {
    RawScanOperator scan(&state, {1, 3}, nullptr);
    QueryResult all = MustDrain(&scan);
    EXPECT_EQ(all.num_rows(), 500u);
  }
}

TEST_F(RawScanTest, PushdownNullSemanticsMatchFilterOperator) {
  // Empty CSV fields parse as NULL. c1 is NULL on every third row and
  // otherwise >= 100, so `c1 < 50` matches nothing — and NULL-bearing
  // blocks must never be zone-skipped, the rows are dropped row by
  // row exactly like FilterOperator drops them.
  std::string content;
  for (int r = 0; r < 200; ++r) {
    content += std::to_string(r) + ",";
    if (r % 3 != 0) content += std::to_string(100 + r);
    content += "," + std::to_string(r * 2) + "\n";
  }
  std::string path = dir_->FilePath("nulls.csv");
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  RawTableInfo info{"nulls", path,
                    Schema::Make({{"c0", DataType::kInt64},
                                  {"c1", DataType::kInt64},
                                  {"c2", DataType::kInt64}}),
                    CsvDialect()};
  RawTableState state(info, SmallBlocks(true, true, true));
  ASSERT_TRUE(state.Open().ok());

  ExprPtr pred = LessThan(1, "c1", 50);
  std::vector<std::string> expected;
  {
    auto scan = std::make_unique<RawScanOperator>(
        &state, std::vector<uint32_t>{0, 1, 2}, nullptr);
    FilterOperator filter(std::move(scan), pred);
    auto result = QueryResult::Drain(&filter);
    ASSERT_TRUE(result.ok());
    expected = result->CanonicalRows();
    EXPECT_TRUE(expected.empty());
  }
  for (int round = 0; round < 2; ++round) {  // cold, then warm zones
    ScanMetrics metrics;
    RawScanOperator scan(&state, {0, 1, 2}, &metrics);
    scan.SetPushdownPredicates({pred});
    QueryResult result = MustDrain(&scan);
    EXPECT_EQ(result.CanonicalRows(), expected);
    // Every block holds NULLs: conservatively non-skippable.
    EXPECT_EQ(metrics.zone_skipped_blocks, 0u);
    EXPECT_EQ(metrics.rows_scanned, 200u);
  }

  // IS NULL rides the pushdown path too (never zone-checked).
  auto is_null = std::make_shared<IsNullExpr>(
      std::make_shared<ColumnRefExpr>(1, "c1", DataType::kInt64), false);
  {
    auto scan = std::make_unique<RawScanOperator>(
        &state, std::vector<uint32_t>{0, 1}, nullptr);
    FilterOperator filter(std::move(scan), is_null);
    auto ref = QueryResult::Drain(&filter);
    ASSERT_TRUE(ref.ok());
    ScanMetrics metrics;
    RawScanOperator pushed(&state, {0, 1}, &metrics);
    pushed.SetPushdownPredicates({is_null});
    QueryResult result = MustDrain(&pushed);
    EXPECT_EQ(result.CanonicalRows(), ref->CanonicalRows());
    EXPECT_EQ(result.num_rows(), 67u);  // rows 0, 3, 6, ... 198
  }
}

TEST_F(RawScanTest, ZoneMapsDropOnAppendAndClearOnRewrite) {
  auto info = WriteFixture("zt", 200, 3);
  NoDbConfig config = SmallBlocks(true, true, true);
  RawTableState state(info, config);
  ASSERT_TRUE(state.Open().ok());
  VerifyScan(&state, {0, 1}, 200);
  ASSERT_GT(state.zones().num_entries(), 0u);
  uint64_t generation = state.zones().generation();

  // Clean append: the frontier block's summaries vanish (block 3 of
  // 64-row blocks holds rows 192..199), earlier full blocks stay.
  size_t before = state.zones().num_entries();
  auto app = OpenAppendableFile(info.path);
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE((*app)->Append("20000,20001,20002\n").ok());
  ASSERT_TRUE((*app)->Close().ok());
  auto change = state.CheckForUpdates();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kAppended);
  EXPECT_LT(state.zones().num_entries(), before);
  EXPECT_GT(state.zones().num_entries(), 0u);
  EXPECT_EQ(state.zones().generation(), generation);
  ScanMetrics metrics;
  RawScanOperator scan(&state, {0}, &metrics);
  QueryResult result = MustDrain(&scan);
  EXPECT_EQ(result.num_rows(), 201u);

  // Rewrite: everything drops, generation advances, and a stale
  // observation against the old generation is rejected.
  ASSERT_TRUE(WriteStringToFile(info.path, "1,2,3\n4,5,6\n").ok());
  auto rewritten = state.CheckForUpdates();
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(*rewritten, FileChange::kRewritten);
  EXPECT_EQ(state.zones().num_entries(), 0u);
  EXPECT_GT(state.zones().generation(), generation);
  ColumnVector stale(DataType::kInt64);
  stale.AppendInt64(7);
  state.zones().Observe(0, 0, stale, generation);  // old generation
  EXPECT_EQ(state.zones().num_entries(), 0u);
}

TEST_F(RawScanTest, PushdownServesFromShadowStoreWithZoneSkips) {
  auto info = WriteFixture("st", 400, 4);
  NoDbConfig config = SmallBlocks(true, true, true);
  config.enable_store = true;
  config.promote_after_accesses = 1;  // first touch promotes
  RawTableState state(info, config);
  ASSERT_TRUE(state.Open().ok());

  // Touch both columns so the piggyback promotes them block by block.
  VerifyScan(&state, {0, 2}, 400);
  ASSERT_GT(state.store().num_segments(), 0u);

  // The pushed scan now serves from the store — and zone maps prune
  // store blocks too: only qualifying blocks are even probed.
  ScanMetrics metrics;
  RawScanOperator scan(&state, {0, 2}, &metrics);
  scan.SetPushdownPredicates({LessThan(0, "c0", 10000)});
  QueryResult result = MustDrain(&scan);
  EXPECT_EQ(result.num_rows(), 100u);  // rows 0..99
  EXPECT_GT(metrics.zone_skipped_blocks, 0u);
  EXPECT_GT(metrics.rows_from_store, 0u);
  EXPECT_EQ(metrics.rows_from_raw, 0u);
  EXPECT_EQ(metrics.fields_converted, 0u);
  EXPECT_EQ(metrics.rows_scanned + metrics.zone_skipped_rows, 400u);
}

TEST_F(RawScanTest, ParallelPrewarmBuildsZoneMaps) {
  auto info = WriteFixture("pz", 300, 4);
  RawTableState state(info, SmallBlocks(true, true, true));
  ASSERT_TRUE(state.Open().ok());
  ASSERT_TRUE(ParallelChunkedScan(&state, {0, 2}, 4).ok());
  EXPECT_GT(state.zones().num_entries(), 0u);

  // The first post-prewarm query already zone-skips.
  ScanMetrics metrics;
  RawScanOperator scan(&state, {0, 2}, &metrics);
  scan.SetPushdownPredicates({LessThan(0, "c0", 5000)});
  QueryResult result = MustDrain(&scan);
  EXPECT_EQ(result.num_rows(), 50u);
  EXPECT_GT(metrics.zone_skipped_blocks, 0u);
  EXPECT_EQ(metrics.rows_scanned + metrics.zone_skipped_rows, 300u);
}

TEST_F(RawScanTest, ParallelPrewarmKnobSubsets) {
  // Each knob subset only populates its enabled structures.
  auto info = WriteFixture("knobs", 300, 5);
  for (int mask = 0; mask < 8; ++mask) {
    RawTableState state(info, SmallBlocks(mask & 1, mask & 2, mask & 4));
    ASSERT_TRUE(ParallelChunkedScan(&state, {1, 3}, 4).ok());
    if (mask & 1) {
      EXPECT_EQ(state.map().known_rows(), 300u);
    } else {
      EXPECT_EQ(state.map().known_rows(), 0u);
    }
    if (mask & 2) {
      EXPECT_GT(state.cache().num_segments(), 0u);
    } else {
      EXPECT_EQ(state.cache().num_segments(), 0u);
    }
    VerifyScan(&state, {1, 3}, 300);
  }
}

}  // namespace
}  // namespace nodb
