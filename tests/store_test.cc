// Tests for the shadow column store subsystem: ShadowStore unit
// behavior (LRU budget, all-or-nothing block probes, invalidation),
// access-heat tracking, piggybacked and background promotion, hybrid
// store/cache/raw serving, append/rewrite lifecycle, and byte-identical
// results under concurrent promotion.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engines/load_first_engine.h"
#include "engines/nodb_engine.h"
#include "exec/query_result.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "raw/raw_scan.h"
#include "raw/table_state.h"
#include "store/promoter.h"
#include "store/shadow_store.h"

namespace nodb {
namespace {

std::shared_ptr<const ColumnVector> MakeSegment(size_t rows,
                                                int64_t start) {
  auto col = std::make_shared<ColumnVector>(DataType::kInt64);
  for (size_t i = 0; i < rows; ++i) {
    col->AppendInt64(start + static_cast<int64_t>(i));
  }
  return col;
}

TEST(ShadowStoreTest, PromoteGetContainsAndCoverage) {
  ShadowStore store(1 << 20);
  EXPECT_EQ(store.Get(0, 0), nullptr);
  EXPECT_FALSE(store.Contains(0, 0));

  store.Promote(0, 0, MakeSegment(64, 0), store.generation());
  store.Promote(0, 1, MakeSegment(64, 64), store.generation());
  store.Promote(3, 0, MakeSegment(64, 0), store.generation());
  EXPECT_TRUE(store.Contains(0, 0));
  EXPECT_TRUE(store.Contains(3, 0));
  EXPECT_EQ(store.num_segments(), 3u);
  EXPECT_EQ(store.promotions(), 3u);
  EXPECT_EQ(store.rows_materialized(0), 128u);
  EXPECT_EQ(store.rows_materialized(3), 64u);
  EXPECT_EQ(store.rows_materialized(1), 0u);

  auto seg = store.Get(0, 1);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->GetInt64(0), 64);

  // Duplicate promotion is a no-op: the resident segment parsed the
  // same bytes.
  store.Promote(0, 0, MakeSegment(64, 1000), store.generation());
  EXPECT_EQ(store.promotions(), 3u);
  EXPECT_EQ(store.Get(0, 0)->GetInt64(0), 0);

  EXPECT_EQ(store.MaterializedAttributes(),
            (std::vector<uint32_t>{0, 3}));
}

TEST(ShadowStoreTest, GetBlockIsAllOrNothing) {
  ShadowStore store(1 << 20);
  store.Promote(0, 2, MakeSegment(64, 0), store.generation());
  store.Promote(5, 2, MakeSegment(64, 100), store.generation());

  std::vector<std::shared_ptr<const ColumnVector>> segs;
  EXPECT_TRUE(store.GetBlock({0, 5}, 2, &segs));
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[1]->GetInt64(0), 100);
  EXPECT_EQ(store.hits(), 1u);

  // One attribute missing: nothing is returned, one miss counted.
  EXPECT_FALSE(store.GetBlock({0, 3, 5}, 2, &segs));
  EXPECT_TRUE(segs.empty());
  EXPECT_EQ(store.misses(), 1u);
}

TEST(ShadowStoreTest, LruEvictionUnderBudget) {
  size_t one_segment = MakeSegment(64, 0)->MemoryUsage();
  ShadowStore store(one_segment * 2 + one_segment / 2);
  store.Promote(0, 0, MakeSegment(64, 0), store.generation());
  store.Promote(0, 1, MakeSegment(64, 64), store.generation());
  EXPECT_EQ(store.evictions(), 0u);

  // Touch block 0 so block 1 is the LRU victim.
  ASSERT_NE(store.Get(0, 0), nullptr);
  store.Promote(0, 2, MakeSegment(64, 128), store.generation());
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_TRUE(store.Contains(0, 0));
  EXPECT_FALSE(store.Contains(0, 1));
  EXPECT_TRUE(store.Contains(0, 2));
  EXPECT_LE(store.bytes_used(), store.budget_bytes());
  EXPECT_EQ(store.rows_materialized(0), 128u);

  // A segment larger than the whole budget is rejected silently.
  ShadowStore tiny(8);
  tiny.Promote(0, 0, MakeSegment(64, 0), tiny.generation());
  EXPECT_EQ(tiny.num_segments(), 0u);
}

TEST(ShadowStoreTest, DropBlocksFromAndClear) {
  ShadowStore store(1 << 20);
  store.Promote(0, 0, MakeSegment(64, 0), store.generation());
  store.Promote(0, 1, MakeSegment(64, 64), store.generation());
  store.Promote(1, 2, MakeSegment(32, 0), store.generation());

  store.DropBlocksFrom(1);
  EXPECT_TRUE(store.Contains(0, 0));
  EXPECT_FALSE(store.Contains(0, 1));
  EXPECT_FALSE(store.Contains(1, 2));
  EXPECT_EQ(store.rows_materialized(0), 64u);
  EXPECT_EQ(store.rows_materialized(1), 0u);

  store.Clear();
  EXPECT_EQ(store.num_segments(), 0u);
  EXPECT_EQ(store.bytes_used(), 0u);
  EXPECT_EQ(store.rows_materialized(0), 0u);
}

TEST(ShadowStoreTest, StaleGenerationPromotionsAreRejected) {
  ShadowStore store(1 << 20);
  uint64_t before = store.generation();
  store.Promote(0, 0, MakeSegment(64, 0), before);
  ASSERT_TRUE(store.Contains(0, 0));

  // A rewrite clears the store and moves the generation: an in-flight
  // pass that parsed the old file must not repopulate it.
  store.Clear();
  EXPECT_NE(store.generation(), before);
  store.Promote(0, 0, MakeSegment(64, 999), before);
  EXPECT_EQ(store.num_segments(), 0u);

  store.Promote(0, 0, MakeSegment(64, 7), store.generation());
  ASSERT_TRUE(store.Contains(0, 0));
  EXPECT_EQ(store.Get(0, 0)->GetInt64(0), 7);
}

// ---------------------------------------------------------------------
// State-level integration: heat, piggybacked promotion, hybrid serving.

class StoreScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-store");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
  }

  /// value(row, col) = row * 100 + col, like raw_scan_test's fixture.
  RawTableInfo WriteFixture(const std::string& name, size_t rows,
                            size_t cols) {
    std::string content;
    std::vector<Field> fields;
    for (size_t c = 0; c < cols; ++c) {
      fields.push_back(Field{"c" + std::to_string(c), DataType::kInt64});
    }
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        if (c > 0) content += ',';
        content += std::to_string(r * 100 + c);
      }
      content += '\n';
    }
    std::string path = dir_->FilePath(name + ".csv");
    EXPECT_TRUE(WriteStringToFile(path, content).ok());
    return RawTableInfo{name, path, Schema::Make(fields), CsvDialect()};
  }

  NoDbConfig StoreConfig() {
    NoDbConfig config;
    config.rows_per_block = 64;
    config.promote_after_accesses = 2;
    return config;
  }

  void VerifyScan(RawTableState* state, std::vector<uint32_t> projection,
                  size_t expected_rows, ScanMetrics* metrics = nullptr) {
    RawScanOperator scan(state, projection, metrics);
    auto result = QueryResult::Drain(&scan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->num_rows(), expected_rows);
    for (size_t r = 0; r < expected_rows; ++r) {
      auto row = result->Row(r);
      for (size_t i = 0; i < projection.size(); ++i) {
        ASSERT_EQ(row[i], Value::Int64(static_cast<int64_t>(
                              r * 100 + projection[i])))
            << "row " << r << " attr " << projection[i];
      }
    }
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(StoreScanTest, HeatTracksAccessesAndHotAttributes) {
  auto info = WriteFixture("t", 10, 4);
  RawTableState state(info, StoreConfig());
  ASSERT_TRUE(state.Open().ok());
  EXPECT_TRUE(HotAttributes(state).empty());

  state.RecordAttributeAccess({0, 2});
  EXPECT_EQ(state.stats().access_heat(0), 1u);
  EXPECT_EQ(state.stats().access_heat(1), 0u);
  EXPECT_TRUE(HotAttributes(state).empty());

  state.RecordAttributeAccess({0, 2});
  EXPECT_EQ(state.stats().access_heat(0), 2u);
  EXPECT_EQ(HotAttributes(state), (std::vector<uint32_t>{0, 2}));
}

TEST_F(StoreScanTest, ThirdScanIsServedEntirelyFromStore) {
  auto info = WriteFixture("t", 300, 6);
  RawTableState state(info, StoreConfig());

  ScanMetrics cold;
  VerifyScan(&state, {0, 2}, 300, &cold);
  EXPECT_EQ(cold.rows_from_store, 0u);
  EXPECT_EQ(cold.rows_from_raw, 300u);
  EXPECT_EQ(state.store().num_segments(), 0u);  // heat 1 < threshold 2

  // The second scan crosses the threshold: cache segments are handed
  // to the store as blocks commit (no re-parse), but serving is still
  // the cache path.
  ScanMetrics warm;
  VerifyScan(&state, {0, 2}, 300, &warm);
  EXPECT_EQ(warm.rows_from_store, 0u);
  EXPECT_EQ(warm.rows_from_cache, 300u);
  EXPECT_EQ(state.store().rows_materialized(0), 300u);
  EXPECT_EQ(state.store().rows_materialized(2), 300u);

  // Third scan: every block is materialized — no row location, no
  // tokenizing, no parsing, no raw-file I/O.
  ScanMetrics hot;
  VerifyScan(&state, {0, 2}, 300, &hot);
  EXPECT_EQ(hot.rows_from_store, 300u);
  EXPECT_EQ(hot.rows_from_cache, 0u);
  EXPECT_EQ(hot.rows_from_raw, 0u);
  EXPECT_GT(hot.store_block_hits, 0u);
  EXPECT_EQ(hot.fields_tokenized, 0u);
  EXPECT_EQ(hot.fields_converted, 0u);
  EXPECT_EQ(hot.bytes_read, 0u);
  EXPECT_EQ(hot.map_exact_probes, 0u);  // no positional-map lookups
}

TEST_F(StoreScanTest, PromotionWithoutCacheParsesOnceThenServes) {
  auto info = WriteFixture("t", 200, 5);
  NoDbConfig config = StoreConfig();
  config.enable_cache = false;  // piggyback must use the parsed vectors
  RawTableState state(info, config);

  VerifyScan(&state, {1}, 200);
  ScanMetrics warm;
  VerifyScan(&state, {1}, 200, &warm);
  EXPECT_GT(warm.fields_converted, 0u);  // no cache: re-parsed once more
  EXPECT_EQ(state.store().rows_materialized(1), 200u);

  ScanMetrics hot;
  VerifyScan(&state, {1}, 200, &hot);
  EXPECT_EQ(hot.rows_from_store, 200u);
  EXPECT_EQ(hot.fields_converted, 0u);
}

TEST_F(StoreScanTest, PromotionWorksWithCacheAndStatsDisabled) {
  // Regression: with cache AND statistics off, the store is the only
  // consumer of the per-block building vectors — the side-effect path
  // must still run for them.
  auto info = WriteFixture("t", 200, 5);
  NoDbConfig config = StoreConfig();
  config.enable_cache = false;
  config.enable_statistics = false;
  RawTableState state(info, config);

  VerifyScan(&state, {1}, 200);
  VerifyScan(&state, {1}, 200);
  EXPECT_EQ(state.store().rows_materialized(1), 200u);

  ScanMetrics hot;
  VerifyScan(&state, {1}, 200, &hot);
  EXPECT_EQ(hot.rows_from_store, 200u);
  EXPECT_EQ(hot.fields_converted, 0u);
}

TEST_F(StoreScanTest, ServingRequiresPositionalMap) {
  auto info = WriteFixture("t", 300, 4);
  NoDbConfig config = StoreConfig();
  config.enable_positional_map = false;
  RawTableState state(info, config);

  for (int i = 0; i < 3; ++i) {
    ScanMetrics metrics;
    VerifyScan(&state, {0, 1}, 300, &metrics);
    // The hybrid plan's raw residue needs the map to locate rows, so
    // the store fast path stays off without it.
    EXPECT_EQ(metrics.rows_from_store, 0u);
  }
}

TEST_F(StoreScanTest, HybridPlanServesStorePrefixAndCacheTail) {
  auto info = WriteFixture("t", 640, 4);  // 10 blocks of 64
  NoDbConfig config = StoreConfig();
  config.promote_after_accesses = 100;  // promotion only by hand below
  RawTableState state(info, config);

  VerifyScan(&state, {3}, 640);  // fills map + cache
  // Materialize only the first half of the column: the scan must mix
  // store-served blocks with cache-served blocks in one pass.
  for (uint64_t block = 0; block < 5; ++block) {
    auto seg = state.cache().Get(3, block);
    ASSERT_NE(seg, nullptr);
    state.store().Promote(3, block, seg, state.store().generation());
  }

  ScanMetrics mixed;
  VerifyScan(&state, {3}, 640, &mixed);
  EXPECT_EQ(mixed.rows_from_store, 5u * 64u);
  EXPECT_EQ(mixed.rows_from_cache, 640u - 5u * 64u);
  EXPECT_EQ(mixed.rows_from_raw, 0u);
  EXPECT_EQ(mixed.store_block_hits, 5u);
}

TEST_F(StoreScanTest, TinyBudgetEvictsButResultsStayCorrect) {
  auto info = WriteFixture("t", 640, 4);  // 10 blocks of 64
  NoDbConfig config = StoreConfig();
  // Room for roughly half the blocks of one column: eviction races
  // promotion, and repeated scans keep re-promoting under pressure.
  config.store_budget = MakeSegment(64, 0)->MemoryUsage() * 5;
  RawTableState state(info, config);

  for (int i = 0; i < 3; ++i) {
    ScanMetrics metrics;
    VerifyScan(&state, {3}, 640, &metrics);
    EXPECT_EQ(metrics.rows_from_store + metrics.rows_from_cache +
                  metrics.rows_from_raw,
              640u);
  }
  EXPECT_GT(state.store().evictions(), 0u);
  EXPECT_LE(state.store().bytes_used(), state.store().budget_bytes());
  EXPECT_GT(state.store().num_segments(), 0u);
}

TEST_F(StoreScanTest, AppendKeepsPromotedPrefixAndPromotesTail) {
  NoDbConfig config = StoreConfig();
  config.rows_per_block = 16;
  // 100 rows: blocks 0-5 full, block 6 holds 4 rows.
  std::string content;
  for (int r = 0; r < 100; ++r) {
    content += std::to_string(r) + "," + std::to_string(r * 2) + "\n";
  }
  std::string path = dir_->FilePath("t.csv");
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  RawTableInfo info{"t", path,
                    Schema::Make({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64}}),
                    CsvDialect()};
  RawTableState state(info, config);

  auto scan_all = [&](ScanMetrics* metrics, size_t expect) {
    RawScanOperator scan(&state, {0, 1}, metrics);
    auto result = QueryResult::Drain(&scan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->num_rows(), expect);
    for (size_t r = 0; r < expect; ++r) {
      ASSERT_EQ(result->Row(r)[0], Value::Int64(static_cast<int64_t>(r)));
      ASSERT_EQ(result->Row(r)[1],
                Value::Int64(static_cast<int64_t>(r) * 2));
    }
  };
  scan_all(nullptr, 100);
  scan_all(nullptr, 100);
  ASSERT_EQ(state.store().rows_materialized(0), 100u);

  // Clean append of 28 rows: blocks 6 and 7 become full.
  auto app = OpenAppendableFile(path);
  ASSERT_TRUE(app.ok());
  std::string extra;
  for (int r = 100; r < 128; ++r) {
    extra += std::to_string(r) + "," + std::to_string(r * 2) + "\n";
  }
  ASSERT_TRUE((*app)->Append(extra).ok());
  ASSERT_TRUE((*app)->Close().ok());
  auto change = state.CheckForUpdates();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kAppended);

  // The partial tail block (6) was dropped; full blocks 0-5 survive.
  EXPECT_EQ(state.store().rows_materialized(0), 96u);
  EXPECT_TRUE(state.store().Contains(0, 5));
  EXPECT_FALSE(state.store().Contains(0, 6));

  // First post-append scan: prefix from the store, tail re-parsed and
  // re-promoted as its blocks fill.
  ScanMetrics after;
  scan_all(&after, 128);
  EXPECT_EQ(after.rows_from_store, 96u);
  EXPECT_EQ(state.store().rows_materialized(0), 128u);

  ScanMetrics hot;
  scan_all(&hot, 128);
  EXPECT_EQ(hot.rows_from_store, 128u);
}

TEST_F(StoreScanTest, RewriteDropsStoreAndHeat) {
  auto info = WriteFixture("t", 120, 3);
  RawTableState state(info, StoreConfig());
  VerifyScan(&state, {0, 1}, 120);
  VerifyScan(&state, {0, 1}, 120);
  ASSERT_GT(state.store().num_segments(), 0u);
  ASSERT_GE(state.stats().access_heat(0), 2u);

  std::string fresh;
  for (int r = 0; r < 30; ++r) fresh += "7,8,9\n";
  ASSERT_TRUE(WriteStringToFile(info.path, fresh).ok());
  auto change = state.CheckForUpdates();
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(*change, FileChange::kRewritten);
  EXPECT_EQ(state.store().num_segments(), 0u);
  EXPECT_EQ(state.stats().access_heat(0), 0u);

  RawScanOperator scan(&state, {0, 1, 2}, nullptr);
  auto result = QueryResult::Drain(&scan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 30u);
  EXPECT_EQ(result->Row(0)[0], Value::Int64(7));
}

// ---------------------------------------------------------------------
// Engine-level: background promotion and concurrent serving.

class StoreEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-store-engine");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    path_ = dir_->FilePath("t.csv");
    std::string content;
    for (int r = 0; r < 3000; ++r) {
      content += std::to_string(r) + "," + std::to_string(r % 13) + "," +
                 std::to_string(r * 3) + "\n";
    }
    ASSERT_TRUE(WriteStringToFile(path_, content).ok());
    schema_ = Schema::Make({{"id", DataType::kInt64},
                            {"grp", DataType::kInt64},
                            {"x", DataType::kInt64}});
    ASSERT_TRUE(
        catalog_.RegisterTable({"t", path_, schema_, CsvDialect()}).ok());
  }

  std::unique_ptr<TempDir> dir_;
  Catalog catalog_;
  std::string path_;
  std::shared_ptr<Schema> schema_;
};

TEST_F(StoreEngineTest, BackgroundPromotionCompletesWhatLimitScansSkip) {
  NoDbConfig config;
  config.rows_per_block = 64;
  config.promote_after_accesses = 2;
  NoDbEngine engine(catalog_, config);

  // LIMIT abandons the scan after the first batch: piggybacking alone
  // cannot cover the file, so the background pass must finish the job.
  ASSERT_TRUE(engine.Execute("SELECT id FROM t LIMIT 10").ok());
  ASSERT_TRUE(engine.Execute("SELECT id FROM t LIMIT 10").ok());
  engine.WaitForPromotions();

  const RawTableState* state = engine.table_state("t");
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->map().rows_complete());
  EXPECT_EQ(state->map().known_rows(), 3000u);
  EXPECT_EQ(state->store().rows_materialized(0), 3000u);

  auto hot = engine.Execute("SELECT id FROM t LIMIT 10");
  ASSERT_TRUE(hot.ok());
  EXPECT_GT(hot->metrics.scan.rows_from_store, 0u);
  EXPECT_EQ(hot->metrics.scan.fields_converted, 0u);
}

TEST_F(StoreEngineTest, FullyMaterializedPresetLoadsOnFirstTouch) {
  NoDbConfig config = NoDbConfig::FullyMaterialized();
  config.rows_per_block = 128;
  NoDbEngine engine(catalog_, config);

  auto first = engine.Execute("SELECT id, x FROM t WHERE x > 30");
  ASSERT_TRUE(first.ok());
  engine.WaitForPromotions();
  const RawTableState* state = engine.table_state("t");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->store().rows_materialized(0), 3000u);
  EXPECT_EQ(state->store().rows_materialized(2), 3000u);

  auto second = engine.Execute("SELECT id, x FROM t WHERE x > 30");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->metrics.scan.rows_from_store, 3000u);
  EXPECT_EQ(second->result.CanonicalRows(), first->result.CanonicalRows());
}

TEST_F(StoreEngineTest, StoreToggleDisablesServingButKeepsResults) {
  NoDbConfig config;
  config.rows_per_block = 64;
  config.promote_after_accesses = 2;
  NoDbEngine engine(catalog_, config);
  const char* sql = "SELECT grp, x FROM t WHERE id < 500 ORDER BY id";

  auto baseline = engine.Execute(sql);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(engine.Execute(sql).ok());
  engine.WaitForPromotions();

  engine.SetStoreEnabled(false);
  auto off = engine.Execute(sql);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->metrics.scan.rows_from_store, 0u);
  EXPECT_EQ(off->result.CanonicalRows(), baseline->result.CanonicalRows());

  engine.SetStoreEnabled(true);
  auto on = engine.Execute(sql);
  ASSERT_TRUE(on.ok());
  EXPECT_GT(on->metrics.scan.rows_from_store, 0u);
  EXPECT_EQ(on->result.CanonicalRows(), baseline->result.CanonicalRows());
}

TEST_F(StoreEngineTest, ConcurrentPromotionStaysByteIdentical) {
  NoDbConfig config;
  config.rows_per_block = 32;  // many blocks promoting concurrently
  config.promote_after_accesses = 2;
  // A constrained store keeps eviction racing promotion and serving.
  config.store_budget = 64 * 1024;
  NoDbEngine engine(catalog_, config);

  LoadFirstEngine reference(catalog_, LoadProfile::kPostgres);
  ASSERT_TRUE(reference.Initialize().ok());

  const std::vector<std::string> unique = {
      "SELECT grp, COUNT(*) AS n, SUM(x) AS s FROM t GROUP BY grp "
      "ORDER BY grp",
      "SELECT id, x FROM t WHERE x > 600 ORDER BY id LIMIT 25",
      "SELECT COUNT(*) AS n FROM t WHERE grp = 7",
      "SELECT MIN(x) AS lo, MAX(x) AS hi FROM t",
      "SELECT id FROM t WHERE id >= 2990 ORDER BY id",
  };
  std::vector<std::string> batch;
  std::vector<std::vector<std::string>> expected;
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& sql : unique) batch.push_back(sql);
  }
  for (const auto& sql : batch) {
    auto ref = reference.Execute(sql);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    expected.push_back(ref->result.CanonicalRows());
  }

  // Three rounds over shared state: cold, promoting, store-served —
  // with background promotion passes overlapping the later rounds.
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    ConcurrentBatchOutcome outcome = engine.ExecuteConcurrent(batch, 8);
    ASSERT_EQ(outcome.reports.size(), batch.size());
    EXPECT_EQ(outcome.failures(), 0u);
    for (size_t i = 0; i < outcome.reports.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i) + ": " + batch[i]);
      ASSERT_TRUE(outcome.reports[i].status.ok())
          << outcome.reports[i].status.ToString();
      EXPECT_EQ(outcome.reports[i].result.CanonicalRows(), expected[i]);
    }
  }
  engine.WaitForPromotions();

  const RawTableState* state = engine.table_state("t");
  ASSERT_NE(state, nullptr);
  EXPECT_GT(state->store().promotions(), 0u);
  EXPECT_GT(state->store().hits(), 0u);
  EXPECT_LE(state->store().bytes_used(), state->store().budget_bytes());
}

}  // namespace
}  // namespace nodb
