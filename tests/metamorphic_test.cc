// Metamorphic and fuzz tests: whole-query invariants that must hold
// for ANY data, plus a parser robustness sweep. These catch classes of
// bugs example-based tests miss (partition-completeness of predicates,
// three-valued-logic accounting, limit monotonicity) and prove the SQL
// frontend never crashes on garbage.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datagen/synthetic.h"
#include "engines/nodb_engine.h"
#include "engines/result_export.h"
#include "io/file.h"
#include "io/temp_dir.h"
#include "sql/parser.h"
#include "util/random.h"
#include "util/string_util.h"

namespace nodb {
namespace {

class MetamorphicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("nodb-meta");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));

    SyntheticSpec spec;
    spec.num_tuples = 2000;
    spec.num_attributes = 6;
    spec.ints_per_cycle = 2;
    spec.strings_per_cycle = 1;
    spec.dates_per_cycle = 0;
    spec.doubles_per_cycle = 1;
    spec.null_fraction = 0.1;
    spec.attribute_width = 6;
    path_ = dir_->FilePath("m.csv");
    ASSERT_TRUE(GenerateSyntheticCsv(path_, spec, CsvDialect()).ok());
    schema_ = spec.MakeSchema();
    Catalog catalog;
    ASSERT_TRUE(
        catalog.RegisterTable({"m", path_, schema_, CsvDialect()}).ok());
    engine_ = std::make_unique<NoDbEngine>(catalog, NoDbConfig());
  }

  int64_t Count(const std::string& where) {
    auto outcome =
        engine_->Execute("SELECT COUNT(*) AS n FROM m" + where);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString() << where;
    if (!outcome.ok()) return -1;
    return outcome->result.Row(0)[0].int64();
  }

  std::unique_ptr<TempDir> dir_;
  std::string path_;
  std::shared_ptr<Schema> schema_;
  std::unique_ptr<NoDbEngine> engine_;
};

TEST_F(MetamorphicTest, PredicatePartitionIsComplete) {
  // For any predicate p over a nullable column:
  //   COUNT(p) + COUNT(NOT p) + COUNT(column IS NULL) == COUNT(*)
  // (rows where p is UNKNOWN are exactly the NULL rows for a simple
  // comparison predicate).
  Random rng(31);
  int64_t total = Count("");
  ASSERT_GT(total, 0);
  // INT columns in the generated cycle (attr2 DOUBLE, attr3 STRING).
  const int int_cols[] = {0, 1, 4, 5};
  for (int i = 0; i < 12; ++i) {
    std::string col = "attr" + std::to_string(int_cols[rng.Uniform(4)]);
    std::string lit = std::to_string(rng.Uniform(1000000));
    std::string p = col + " < " + lit;
    int64_t yes = Count(" WHERE " + p);
    int64_t no = Count(" WHERE NOT (" + p + ")");
    int64_t null = Count(" WHERE " + col + " IS NULL");
    EXPECT_EQ(yes + no + null, total) << p;
  }
}

TEST_F(MetamorphicTest, RangeSplitSumsMatch) {
  // SUM over [lo, hi) == SUM over [lo, mid) + SUM over [mid, hi).
  auto sum_over = [&](int64_t lo, int64_t hi) {
    auto outcome = engine_->Execute(
        "SELECT SUM(attr1) AS s FROM m WHERE attr0 >= " +
        std::to_string(lo) + " AND attr0 < " + std::to_string(hi));
    EXPECT_TRUE(outcome.ok());
    auto v = outcome->result.Row(0)[0];
    return v.is_null() ? int64_t{0} : v.int64();
  };
  int64_t whole = sum_over(0, 1000000);
  int64_t left = sum_over(0, 400000);
  int64_t right = sum_over(400000, 1000000);
  EXPECT_EQ(whole, left + right);
}

TEST_F(MetamorphicTest, GroupSumsEqualGlobalSum) {
  auto global = engine_->Execute("SELECT SUM(attr0) AS s, COUNT(attr0) "
                                 "AS n FROM m");
  ASSERT_TRUE(global.ok());
  auto grouped = engine_->Execute(
      "SELECT attr2, SUM(attr0) AS s, COUNT(attr0) AS n FROM m "
      "GROUP BY attr2");
  ASSERT_TRUE(grouped.ok());
  int64_t sum = 0, count = 0;
  for (size_t r = 0; r < grouped->result.num_rows(); ++r) {
    auto row = grouped->result.Row(r);
    if (!row[1].is_null()) sum += row[1].int64();
    count += row[2].int64();
  }
  EXPECT_EQ(sum, global->result.Row(0)[0].int64());
  EXPECT_EQ(count, global->result.Row(0)[1].int64());
}

TEST_F(MetamorphicTest, LimitIsPrefixOfOrderedResult) {
  auto full = engine_->Execute(
      "SELECT attr0, attr1 FROM m WHERE attr0 IS NOT NULL "
      "ORDER BY attr0, attr1");
  ASSERT_TRUE(full.ok());
  auto limited = engine_->Execute(
      "SELECT attr0, attr1 FROM m WHERE attr0 IS NOT NULL "
      "ORDER BY attr0, attr1 LIMIT 37");
  ASSERT_TRUE(limited.ok());
  ASSERT_EQ(limited->result.num_rows(), 37u);
  for (size_t r = 0; r < 37; ++r) {
    EXPECT_EQ(limited->result.Row(r), full->result.Row(r)) << r;
  }
}

TEST_F(MetamorphicTest, DistinctCountMatchesGroupCount) {
  auto distinct = engine_->Execute("SELECT DISTINCT attr2 FROM m");
  ASSERT_TRUE(distinct.ok());
  auto grouped =
      engine_->Execute("SELECT attr2, COUNT(*) AS n FROM m GROUP BY attr2");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(distinct->result.num_rows(), grouped->result.num_rows());
}

TEST_F(MetamorphicTest, ExportedResultReimportsIdentically) {
  // Round-trip: query -> CSV -> register -> re-query must agree.
  auto outcome = engine_->Execute(
      "SELECT attr0, attr2, attr3 FROM m WHERE attr0 IS NOT NULL "
      "ORDER BY attr0 LIMIT 200");
  ASSERT_TRUE(outcome.ok());
  std::string out_path = dir_->FilePath("export.csv");
  CsvDialect out_dialect;
  out_dialect.allow_quoting = true;
  ASSERT_TRUE(
      WriteResultToCsv(outcome->result, out_path, out_dialect).ok());

  Catalog catalog;
  // In the generated cycle attr2 is DOUBLE and attr3 is STRING.
  auto export_schema = Schema::Make({{"attr0", DataType::kInt64},
                                     {"attr2", DataType::kDouble},
                                     {"attr3", DataType::kString}});
  ASSERT_TRUE(catalog
                  .RegisterTable({"ex", out_path, export_schema,
                                  out_dialect})
                  .ok());
  NoDbEngine re(catalog, NoDbConfig());
  auto back = re.Execute("SELECT attr0, attr2, attr3 FROM ex");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->result.CanonicalRows(),
            outcome->result.CanonicalRows());
}

// ------------------------------------------------- pushdown parity

/// Metamorphic property: a pushed-down plan and the FilterOperator-only
/// plan are the same query — results must be byte-identical for ANY
/// data, in particular around NULLs (empty CSV fields): a pushed
/// predicate must drop NULL rows exactly like FilterOperator does, and
/// zone maps must never skip a row a filter would keep — across all
/// three storage tiers, quoted dialects, appends and rewrites.
class PushdownParityTest : public ::testing::Test {
 protected:
  void RunParity(const CsvDialect& dialect) {
    auto dir = TempDir::Create("nodb-pushdown-parity");
    ASSERT_TRUE(dir.ok());

    SyntheticSpec spec;
    spec.num_tuples = 1500;
    spec.num_attributes = 6;
    spec.ints_per_cycle = 2;
    spec.doubles_per_cycle = 1;
    spec.strings_per_cycle = 1;
    spec.dates_per_cycle = 0;
    spec.null_fraction = 0.15;  // plenty of empty fields -> NULLs
    spec.attribute_width = 6;
    spec.seed = 20260727;
    std::string path = dir->FilePath("p.csv");
    ASSERT_TRUE(GenerateSyntheticCsv(path, spec, dialect).ok());

    Catalog catalog;
    auto schema = spec.MakeSchema();
    ASSERT_TRUE(
        catalog.RegisterTable({"p", path, schema, dialect}).ok());

    // Pushed engine: pushdown + zone maps + store; unpushed engine:
    // the same adaptive structures, predicates above the scan only.
    NoDbConfig pushed_config;
    pushed_config.rows_per_block = 128;
    NoDbConfig plain_config = pushed_config;
    plain_config.enable_pushdown = false;
    plain_config.enable_zone_maps = false;
    NoDbEngine pushed(catalog, pushed_config);
    NoDbEngine plain(catalog, plain_config);

    const std::vector<std::string> queries = {
        // Range/equality over nullable columns: NULL != FALSE matters.
        "SELECT attr0, attr1 FROM p WHERE attr0 < 300000 "
        "ORDER BY attr0, attr1",
        "SELECT COUNT(*) AS n FROM p WHERE attr1 >= 500000",
        "SELECT attr0 FROM p WHERE attr0 = 123456 ORDER BY attr0",
        // NOT folds NULL to NULL: partition completeness again.
        "SELECT COUNT(*) AS n FROM p WHERE NOT (attr0 < 300000)",
        "SELECT COUNT(*) AS n FROM p WHERE attr0 IS NULL",
        // Conjunctions over several nullable columns.
        "SELECT attr0, attr2 FROM p WHERE attr0 > 100000 AND "
        "attr2 < 5000.5 ORDER BY attr0, attr2",
        // String predicates ride pushdown without zone checks.
        "SELECT COUNT(*) AS n FROM p WHERE attr3 LIKE '1%'",
    };

    // Cold (raw), warm (cache), and post-promotion (store) rounds.
    for (int round = 0; round < 3; ++round) {
      for (const auto& sql : queries) {
        SCOPED_TRACE("round " + std::to_string(round) + ": " + sql);
        auto expect = plain.Execute(sql);
        ASSERT_TRUE(expect.ok()) << expect.status().ToString();
        auto got = pushed.Execute(sql);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(got->result.CanonicalRows(),
                  expect->result.CanonicalRows());
      }
      pushed.WaitForPromotions();
      plain.WaitForPromotions();
    }
    // The store tier really served pushed queries by the last round.
    const RawTableState* state = pushed.table_state("p");
    ASSERT_NE(state, nullptr);
    EXPECT_GT(state->store().hits(), 0u);

    // Clean append: zone maps truncate at the frontier block; results
    // must still agree (fresh rows visible to both engines).
    {
      // Appended rows carry fresh NULLs (empty fields) in predicate
      // columns; clean unquoted fields are valid in both dialects.
      std::string extra;
      for (int i = 0; i < 40; ++i) {
        extra += std::to_string(10 + i) + ",," +
                 std::to_string(1.25 * i) + ",zz,7,\n";
      }
      auto app = OpenAppendableFile(path);
      ASSERT_TRUE(app.ok());
      ASSERT_TRUE((*app)->Append(extra).ok());
      ASSERT_TRUE((*app)->Close().ok());
    }
    for (const auto& sql : queries) {
      SCOPED_TRACE("after append: " + sql);
      auto expect = plain.Execute(sql);
      ASSERT_TRUE(expect.ok()) << expect.status().ToString();
      auto got = pushed.Execute(sql);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->result.CanonicalRows(),
                expect->result.CanonicalRows());
    }

    // Rewrite: stale zone maps must never skip live rows.
    spec.seed = 987;
    spec.num_tuples = 900;
    ASSERT_TRUE(GenerateSyntheticCsv(path, spec, dialect).ok());
    for (const auto& sql : queries) {
      SCOPED_TRACE("after rewrite: " + sql);
      auto expect = plain.Execute(sql);
      ASSERT_TRUE(expect.ok()) << expect.status().ToString();
      auto got = pushed.Execute(sql);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->result.CanonicalRows(),
                expect->result.CanonicalRows());
    }
  }
};

TEST_F(PushdownParityTest, PushedPlansMatchUnpushedPlainDialect) {
  RunParity(CsvDialect());
}

TEST_F(PushdownParityTest, PushedPlansMatchUnpushedQuotedDialect) {
  RunParity(CsvDialect::QuotedCsv());
}

// ------------------------------------------------------------ parser fuzz

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  Random rng(1337);
  const std::string alphabet =
      "SELECT FROM WHERE GROUP BY ORDER LIMIT JOIN ON AND OR NOT LIKE "
      "BETWEEN IN IS NULL DATE HAVING DISTINCT COUNT SUM AVG MIN MAX "
      "abc xyz t 0 1 42 3.14 'str' \" , . ; ( ) = < > <= >= <> + - * / "
      "attr0 @ # %";
  auto words = SplitString(alphabet, ' ');
  size_t parsed_ok = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    std::string sql;
    size_t len = 1 + rng.Uniform(20);
    for (size_t i = 0; i < len; ++i) {
      sql += words[rng.Uniform(words.size())];
      sql += ' ';
    }
    auto stmt = ParseSelect(sql);  // must not crash or hang
    if (stmt.ok()) ++parsed_ok;
  }
  // Some random soups happen to be valid; most are rejected cleanly.
  EXPECT_LT(parsed_ok, 3000u);
}

TEST(ParserFuzzTest, MutatedValidQueriesNeverCrash) {
  Random rng(7331);
  const std::string base =
      "SELECT a, COUNT(*) AS n FROM t WHERE a > 5 AND b LIKE 'x%' "
      "GROUP BY a HAVING n > 1 ORDER BY a DESC LIMIT 10 OFFSET 2";
  for (int iter = 0; iter < 3000; ++iter) {
    std::string sql = base;
    size_t edits = 1 + rng.Uniform(4);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(sql.size());
      switch (rng.Uniform(3)) {
        case 0:
          sql.erase(pos, 1 + rng.Uniform(5));
          break;
        case 1:
          sql.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
          break;
        default:
          if (!sql.empty()) {
            sql[std::min(pos, sql.size() - 1)] =
                static_cast<char>(32 + rng.Uniform(95));
          }
      }
      if (sql.empty()) sql = "S";
    }
    (void)ParseSelect(sql);  // outcome irrelevant; must not crash
  }
  SUCCEED();
}

}  // namespace
}  // namespace nodb
